// Quickstart: the paper's Example 1.1 — assess milk sales against a KPI.
//
// Builds the FoodMart-style SALES cube, issues one assess statement with a
// constant benchmark, and prints the labeled result plus the SQL the engine
// executed and the plan explanation.

#include <cstdio>
#include <iostream>

#include "assess/session.h"
#include "ssb/sales_generator.h"

int main() {
  // 1. Generate the SALES cube (date/customer/product/store hierarchies).
  assess::SalesConfig config;
  auto db = assess::BuildSalesDatabase(config);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }

  // 2. Open a session and pose the intention of Example 1.1: how good are
  //    the 1997 milk sales against a target of 10000 units?
  assess::AssessSession session(db->get());
  const char* statement =
      "with SALES "
      "for year = '1997', product = 'milk' "
      "by year, product "
      "assess quantity against 10000 "
      "using ratio(quantity, 10000) "
      "labels {[0, 0.9): bad, [0.9, 1.1]: acceptable, (1.1, inf): good}";

  auto explain = session.Explain(statement, assess::PlanKind::kNP);
  if (explain.ok()) std::cout << *explain << "\n";

  auto result = session.Query(statement);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  // 3. Inspect the result: coordinate, measure, benchmark, comparison and
  //    label for every cell (one cell here: 1997 x milk).
  std::cout << result->ToString() << "\n";
  std::cout << "plan: " << assess::PlanKindToString(result->plan)
            << ", timings:" << result->timings.ToString() << "\n\n";
  std::cout << "SQL pushed to the engine:\n";
  for (const std::string& sql : result->sql) {
    std::cout << sql << "\n\n";
  }
  return 0;
}
