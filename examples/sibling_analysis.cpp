// Sibling benchmark walkthrough: the paper's running example (Examples 3.2,
// 4.1, 4.5) — assess the quantity of each fresh-fruit product sold in Italy
// against the sales of the same product in France, and compare all three
// execution plans (NP, JOP, POP) on the same statement.

#include <iostream>

#include "assess/session.h"
#include "ssb/sales_generator.h"

int main() {
  assess::SalesConfig config;
  config.facts = 200000;
  auto db = assess::BuildSalesDatabase(config);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  assess::AssessSession session(db->get());

  // The statement of Example 4.1: per fresh-fruit product, the difference
  // between Italian and French quantities as a share of total Italian
  // fresh-fruit sales.
  const char* statement =
      "with SALES "
      "for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country "
      "assess quantity against country = 'France' "
      "using percOfTotal(difference(quantity, benchmark.quantity), quantity) "
      "labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}";

  for (assess::PlanKind plan :
       {assess::PlanKind::kNP, assess::PlanKind::kJOP,
        assess::PlanKind::kPOP}) {
    auto explain = session.Explain(statement, plan);
    if (explain.ok()) std::cout << *explain;
    auto result = session.Query(statement, plan);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\n" << result->ToString();
    std::cout << "timings:" << result->timings.ToString() << "\n\n";
    std::cout << "SQL pushed to the engine ("
              << (result->sql.size() == 1 ? "fused" : "per get") << "):\n";
    for (const std::string& sql : result->sql) std::cout << sql << "\n\n";
    std::cout << std::string(72, '-') << "\n";
  }
  return 0;
}
