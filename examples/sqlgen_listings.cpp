// Regenerates the paper's SQL listings from the prototype's SQL generator:
// Listing 1 (the get of Example 2.7), Listing 4 (the sibling join under
// JOP) and Listing 5 (the sibling pivot under POP), phrased over the SALES
// star schema.

#include <iostream>

#include "assess/session.h"
#include "sqlgen/sql_generator.h"
#include "ssb/sales_generator.h"

int main() {
  auto db = assess::BuildSalesDatabase(assess::SalesConfig{});
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  assess::AssessSession session(db->get());

  const char* statement =
      "with SALES "
      "for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country "
      "assess quantity against country = 'France' "
      "using percOfTotal(difference(quantity, benchmark.quantity), quantity) "
      "labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}";

  struct Entry {
    const char* title;
    assess::PlanKind plan;
  };
  const Entry entries[] = {
      {"Listing 1 — the get operations of the Naive Plan", assess::PlanKind::kNP},
      {"Listing 4 — the join pushed to the engine (JOP)", assess::PlanKind::kJOP},
      {"Listing 5 — the pivot pushed to the engine (POP)", assess::PlanKind::kPOP},
  };
  for (const Entry& entry : entries) {
    auto result = session.Query(statement, entry.plan);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << entry.title << ":\n\n";
    for (const std::string& sql : result->sql) std::cout << sql << "\n\n";
    std::cout << std::string(72, '=') << "\n";
  }
  return 0;
}
