// Shared remote REPL loop for assess_client and `assess_cli --connect`:
// reads assess statements from stdin, executes them on a remote assessd,
// and prints results exactly like the in-process shell. Meta commands:
//   \csv <stmt>     execute and print the result as CSV
//   \sql <stmt>     show the SQL the server's plan pushed to the engine
//   \analyze <stmt> EXPLAIN ANALYZE on the server (span tree + phases)
//   \ingest <file> [cube]  stream a CSV/JSONL file into a cube on the
//                   server (needs assessd --ingest; cube defaults to SALES)
//   \stats          server statistics (load, latency percentiles, cache)
//   \cache          just the shared result cache counters
//   \metrics        Prometheus-style metrics exposition
//   \workload       workload profile + MV-advisor report
//   \ping           liveness probe
//   \help, \quit
//
// Plan forcing and completion (\plan, \rank, \suggest, ...) are in-process
// features: the server always picks the best feasible plan.

#ifndef ASSESS_EXAMPLES_REMOTE_REPL_H_
#define ASSESS_EXAMPLES_REMOTE_REPL_H_

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "client/assess_client.h"
#include "common/str_util.h"

namespace assess_examples {

/// Reads a whole file; false (with a message on stdout) when unreadable.
inline bool ReadFileForIngest(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cout << "cannot open '" << path << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Splits "\ingest <file> [cube]" arguments; false on a missing file arg.
inline bool ParseIngestArgs(std::string_view rest, std::string* path,
                            std::string* cube) {
  size_t space = rest.find_first_of(" \t");
  if (space == std::string_view::npos) {
    *path = std::string(rest);
  } else {
    *path = std::string(rest.substr(0, space));
    std::string_view tail = assess::Trim(rest.substr(space));
    if (!tail.empty()) *cube = std::string(tail);
  }
  return !path->empty();
}

/// Turns the statuses a remote call can fail with into a message that tells
/// the user what to *do*, not just what went wrong. Falls back to the plain
/// status text for ordinary query errors (parse errors etc.).
inline std::string DescribeRemoteError(const assess::Status& status) {
  switch (status.code()) {
    case assess::StatusCode::kUnavailable:
      if (status.message().find("overloaded") != std::string::npos) {
        return status.ToString() +
               "\nThe server is saturated; retry in a moment or raise its "
               "--queue/--workers.";
      }
      if (status.message().find("shutting down") != std::string::npos) {
        return status.ToString() +
               "\nThe server is draining for shutdown; reconnect once it is "
               "restarted.";
      }
      return status.ToString() +
             "\nThe connection is gone; check that assessd is still running "
             "and reachable, then reconnect (or pass --retry N to retry "
             "automatically).";
    case assess::StatusCode::kTimeout:
      return status.ToString() +
             "\nThe request may still have executed. Retrying is safe — "
             "retried queries are deduplicated server-side.";
    case assess::StatusCode::kCorruptFrame:
      return status.ToString() +
             "\nA frame failed its integrity check; the link is unreliable. "
             "Retrying on a fresh connection is safe.";
    case assess::StatusCode::kFrameTooLarge:
      return status.ToString() +
             "\nNarrow the query (fewer group-by members) or raise "
             "--max-frame-mb on both ends.";
    default:
      return status.ToString();
  }
}

inline void PrintRemoteHelp() {
  std::cout <<
      R"(Type an assess statement, e.g.:
  with SALES by month assess storeSales labels quartiles
Meta commands: \csv <stmt>, \sql <stmt>, \analyze <stmt>, \stats, \cache,
               \metrics, \workload, \ping, \ingest <file> [cube], \help, \quit
)";
}

/// Runs the REPL until \quit or EOF. Returns 0, or 1 when the connection
/// died mid-session.
inline int RunRemoteRepl(assess::AssessClient& client) {
  std::string line;
  while (true) {
    std::cout << "assess> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string_view input = assess::Trim(line);
    if (input.empty()) continue;
    if (input[0] == '\\') {
      if (input == "\\quit" || input == "\\q") break;
      if (input == "\\help") {
        PrintRemoteHelp();
        continue;
      }
      if (input == "\\ping") {
        assess::Status st = client.Ping();
        std::cout << (st.ok() ? "pong" : DescribeRemoteError(st)) << "\n";
        if (!client.connected()) return 1;
        continue;
      }
      if (input == "\\stats" || input == "\\cache") {
        auto stats = client.Stats();
        if (!stats.ok()) {
          std::cout << DescribeRemoteError(stats.status()) << "\n";
          if (!client.connected()) return 1;
          continue;
        }
        if (input == "\\stats") {
          std::cout << stats->ToString() << "\n";
        } else {
          std::cout << "  lookups " << stats->cache_lookups << ", exact hits "
                    << stats->cache_exact_hits << ", subsumption hits "
                    << stats->cache_subsumption_hits << ", misses "
                    << stats->cache_misses << "\n  entries "
                    << stats->cache_entries << ", resident "
                    << stats->cache_bytes << " bytes\n";
        }
        continue;
      }
      if (input == "\\metrics") {
        auto metrics = client.Metrics();
        if (!metrics.ok()) {
          std::cout << DescribeRemoteError(metrics.status()) << "\n";
          if (!client.connected()) return 1;
          continue;
        }
        std::cout << *metrics;
        continue;
      }
      if (input == "\\workload") {
        auto report = client.Workload();
        if (!report.ok()) {
          std::cout << DescribeRemoteError(report.status()) << "\n";
          if (!client.connected()) return 1;
          continue;
        }
        std::cout << *report;
        continue;
      }
      if (assess::StartsWith(input, "\\ingest")) {
        std::string path;
        std::string cube = "SALES";
        if (!ParseIngestArgs(assess::Trim(input.substr(7)), &path, &cube)) {
          std::cout << "usage: \\ingest <file> [cube]\n";
          continue;
        }
        std::string text;
        if (!ReadFileForIngest(path, &text)) continue;
        auto stats = client.Ingest(cube, text,
                                   assess::IngestFormatFromPath(path),
                                   /*auto_insert=*/true);
        if (!stats.ok()) {
          std::cout << DescribeRemoteError(stats.status()) << "\n";
          if (!client.connected()) return 1;
          continue;
        }
        std::cout << stats->ToString() << "\n";
        continue;
      }
      if (assess::StartsWith(input, "\\analyze")) {
        std::string_view stmt = assess::Trim(input.substr(8));
        auto text = client.ExplainAnalyze(stmt);
        if (!text.ok()) {
          std::cout << DescribeRemoteError(text.status()) << "\n";
          if (!client.connected()) return 1;
          continue;
        }
        std::cout << *text;
        continue;
      }
      if (assess::StartsWith(input, "\\csv") ||
          assess::StartsWith(input, "\\sql")) {
        bool csv = assess::StartsWith(input, "\\csv");
        std::string_view stmt = assess::Trim(input.substr(4));
        auto result = client.Query(stmt);
        if (!result.ok()) {
          std::cout << DescribeRemoteError(result.status()) << "\n";
          if (!client.connected()) return 1;
          continue;
        }
        if (csv) {
          result->WriteCsv(std::cout);
        } else {
          for (const std::string& sql : result->sql) {
            std::cout << sql << "\n\n";
          }
        }
        continue;
      }
      std::cout << "unknown meta command; \\help for help\n";
      continue;
    }
    auto result = client.Query(input);
    if (!result.ok()) {
      std::cout << DescribeRemoteError(result.status()) << "\n";
      if (!client.connected()) return 1;
      continue;
    }
    std::cout << result->ToString(40) << "("
              << assess::PlanKindToString(result->plan) << ","
              << result->timings.ToString() << ")\n";
  }
  return 0;
}

/// Parses "host:port" (or just "host", keeping `*port`). Returns false on a
/// malformed port.
inline bool ParseHostPort(std::string_view target, std::string* host,
                          uint16_t* port) {
  size_t colon = target.rfind(':');
  if (colon == std::string_view::npos) {
    *host = std::string(target);
    return !host->empty();
  }
  *host = std::string(target.substr(0, colon));
  std::string port_text(target.substr(colon + 1));
  if (host->empty() || port_text.empty()) return false;
  char* end = nullptr;
  long value = std::strtol(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0 || value > 65535) {
    return false;
  }
  *port = static_cast<uint16_t>(value);
  return true;
}

}  // namespace assess_examples

#endif  // ASSESS_EXAMPLES_REMOTE_REPL_H_
