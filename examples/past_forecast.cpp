// Past benchmark walkthrough: the last statement of Example 4.1 — assess
// the July 1997 sales of the SmartMart store against the value predicted
// from the previous four months, and show how the forecasting method can be
// switched (linear regression, moving average, exponential smoothing).

#include <iostream>

#include "assess/session.h"
#include "ssb/sales_generator.h"

int main() {
  assess::SalesConfig config;
  config.facts = 200000;
  auto db = assess::BuildSalesDatabase(config);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  assess::AssessSession session(db->get());

  const char* statement =
      "with SALES "
      "for month = '1997-07', store = 'SmartMart' "
      "by month, store "
      "assess storeSales against past 4 "
      "using ratio(storeSales, benchmark.storeSales) "
      "labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}";

  auto explain = session.Explain(statement, assess::PlanKind::kPOP);
  if (explain.ok()) std::cout << *explain << "\n";

  for (assess::ForecastMethod method :
       {assess::ForecastMethod::kLinearRegression,
        assess::ForecastMethod::kMovingAverage,
        assess::ForecastMethod::kExponentialSmoothing}) {
    session.options()->forecast = method;
    auto result = session.Query(statement);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "forecast = " << assess::ForecastMethodToString(method)
              << " (plan " << assess::PlanKindToString(result->plan)
              << "):\n"
              << result->ToString() << "\n";
  }

  // Widen the assessment: every store in Italy for the same month, labeled
  // by where each store's ratio falls in the overall distribution.
  const char* all_stores =
      "with SALES "
      "for month = '1997-07', country = 'Italy' "
      "by month, store "
      "assess storeSales against past 4 "
      "using ratio(storeSales, benchmark.storeSales) "
      "labels quartiles";
  session.options()->forecast = assess::ForecastMethod::kLinearRegression;
  auto result = session.Query(all_stores);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "every Italian store vs its own forecast, in quartiles:\n"
            << result->ToString() << "\n";
  return 0;
}
