// Ancestor (roll-up) benchmark walkthrough — the Section 8 extension:
// assess a member against its own ancestor in the roll-up order, e.g. each
// product against its type ("how much of the Fresh Fruit business is
// Apples?"), and let the cost-based optimizer pick the plan.

#include <iostream>
#include <sstream>

#include "assess/session.h"
#include "ssb/sales_generator.h"

int main() {
  assess::SalesConfig config;
  config.facts = 150000;
  auto db = assess::BuildSalesDatabase(config);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  assess::AssessSession session(db->get());
  session.set_plan_selection(assess::PlanSelection::kCostBased);

  // Apples as a share of all fresh fruit, per country.
  const char* statement =
      "with SALES for product = 'Apple' by product, country "
      "assess quantity against type "
      "using percentage(quantity, benchmark.quantity) "
      "labels {[0, 20): niche, [20, 50): strong, [50, 100]: dominant}";

  auto ranked = session.RankPlans(statement);
  if (ranked.ok()) {
    std::cout << "cost model ranking:\n";
    for (const assess::PlanCost& pc : *ranked) {
      std::cout << "  " << assess::PlanKindToString(pc.plan)
                << "  cost=" << pc.cost << "\n";
    }
    std::cout << "\n";
  }

  auto result = session.Query(statement);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "plan " << assess::PlanKindToString(result->plan) << ":\n"
            << result->ToString() << "\n";

  // The same idea one level up: every fresh-fruit product against the
  // whole category, exported as CSV for downstream tools.
  const char* category_share =
      "with SALES for type = 'Fresh Fruit' by type, country "
      "assess storeSales against category "
      "using percentage(storeSales, benchmark.storeSales) "
      "labels quartiles";
  auto shares = session.Query(category_share);
  if (!shares.ok()) {
    std::cerr << shares.status().ToString() << "\n";
    return 1;
  }
  std::ostringstream csv;
  shares->WriteCsv(csv);
  std::cout << "fresh fruit as a share of its category, as CSV:\n"
            << csv.str() << "\n";
  return 0;
}
