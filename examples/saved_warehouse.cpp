// Persistence walkthrough: generate a warehouse once, save it to disk, and
// reopen it in a fresh process state — the workflow for iterating on assess
// statements without regenerating data. Also demonstrates running the same
// session against the reloaded database with a parallel engine.

#include <filesystem>
#include <iostream>

#include "assess/session.h"
#include "common/stopwatch.h"
#include "ssb/ssb_generator.h"
#include "ssb/workload.h"
#include "storage/database_io.h"

int main(int argc, char** argv) {
  std::string dir = argc > 1
                        ? argv[1]
                        : (std::filesystem::temp_directory_path() /
                           "assess_ssb_warehouse")
                              .string();

  std::unique_ptr<assess::StarDatabase> db;
  if (auto loaded = assess::LoadDatabase(dir); loaded.ok()) {
    std::cout << "reopened warehouse from " << dir << "\n";
    db = std::move(loaded).value();
  } else {
    std::cout << "generating warehouse (first run)...\n";
    assess::SsbConfig config;
    config.scale_factor = 0.02;
    auto built = assess::BuildSsbDatabase(config);
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return 1;
    }
    db = std::move(built).value();
    assess::Stopwatch sw;
    assess::Status saved = assess::SaveDatabase(*db, dir);
    if (!saved.ok()) {
      std::cerr << saved.ToString() << "\n";
      return 1;
    }
    std::cout << "saved to " << dir << " in " << sw.ElapsedMillis()
              << " ms; rerun to load from disk\n";
  }

  assess::AssessSession session(db.get());
  for (const assess::WorkloadStatement& stmt : assess::SsbWorkload()) {
    assess::Stopwatch sw;
    auto result = session.Query(stmt.text);
    if (!result.ok()) {
      std::cerr << stmt.name << ": " << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << stmt.name << ": " << result->cube.NumRows() << " cells via "
              << assess::PlanKindToString(result->plan) << " in "
              << sw.ElapsedMillis() << " ms\n";
  }
  return 0;
}
