// Remote assess shell: connects to a running assessd and serves the same
// REPL as assess_cli, executed server-side.
//
//   assess_client                         # 127.0.0.1:7117 (assessd default)
//   assess_client host:port               # interactive REPL
//   assess_client host:port "<statement>" # one-shot: execute and print
//
// Start a server first, e.g.:  assessd --sales --port 7117

#include <cstdlib>
#include <iostream>
#include <string>

#include "client/assess_client.h"
#include "remote_repl.h"
#include "server/protocol.h"

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = assess::kDefaultPort;
  if (argc > 1 &&
      !assess_examples::ParseHostPort(argv[1], &host, &port)) {
    std::cerr << "usage: " << argv[0] << " [host:port] [statement]\n";
    return 2;
  }

  auto client = assess::AssessClient::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "cannot connect to assessd at " << host << ":" << port
              << ":\n"
              << assess_examples::DescribeRemoteError(client.status()) << "\n";
    return 1;
  }
  std::cout << "connected to assessd at " << host << ":" << port << "\n";

  if (argc > 2) {
    // One-shot mode: run the statement, print the result, exit non-zero on
    // a typed error.
    auto result = client->Query(argv[2]);
    if (!result.ok()) {
      std::cerr << assess_examples::DescribeRemoteError(result.status())
                << "\n";
      return 1;
    }
    std::cout << result->ToString(40);
    return 0;
  }

  assess_examples::PrintRemoteHelp();
  return assess_examples::RunRemoteRepl(*client);
}
