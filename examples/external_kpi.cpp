// External benchmark walkthrough on the Star Schema Benchmark: assess each
// customer's actual revenue against the planned revenue stored in the
// reconciled BUDGET cube, with distribution-based labeling, and demonstrate
// assess vs assess* (null labels for cells without a plan).

#include <iostream>

#include "assess/session.h"
#include "ssb/ssb_generator.h"

int main() {
  assess::SsbConfig config;
  config.scale_factor = 0.01;  // 60k lineorders: a demo-sized warehouse
  auto db = assess::BuildSsbDatabase(config);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  assess::AssessSession session(db->get());

  // Customers of one nation: actual vs planned revenue, labeled by the
  // z-score of the normalized shortfall across the whole slice.
  const char* statement =
      "with SSB "
      "for c_nation = 'FRANCE' "
      "by customer "
      "assess revenue against BUDGET.plannedRevenue "
      "using normalizedDifference(revenue, benchmark.plannedRevenue) "
      "labels zscore";

  for (assess::PlanKind plan :
       {assess::PlanKind::kNP, assess::PlanKind::kJOP}) {
    auto result = session.Query(statement, plan);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "plan " << assess::PlanKindToString(result->plan) << ": "
              << result->cube.NumRows() << " assessed customers, timings:"
              << result->timings.ToString() << "\n";
    if (plan == assess::PlanKind::kJOP) {
      std::cout << "\n" << result->ToString(10) << "\n";
    }
  }

  // assess* keeps customers with no budget line, labeling them null.
  const char* star_statement =
      "with SSB "
      "for c_nation = 'FRANCE' "
      "by customer "
      "assess* revenue against BUDGET.plannedRevenue "
      "using normalizedDifference(revenue, benchmark.plannedRevenue) "
      "labels zscore";
  auto star = session.Query(star_statement);
  if (!star.ok()) {
    std::cerr << star.status().ToString() << "\n";
    return 1;
  }
  int64_t unmatched = 0;
  for (const std::string& label : star->cube.labels()) {
    if (label.empty()) ++unmatched;
  }
  std::cout << "assess*: " << star->cube.NumRows() << " cells, " << unmatched
            << " with null labels (no budget line)\n";
  return 0;
}
