// Interactive assess shell: a small REPL over the SALES cube (or the SSB
// cube with --ssb), or — with --connect host:port — a remote REPL against a
// running assessd. Type an assess statement on one line; the shell prints
// the labeled result. Meta commands (local mode):
//   \plan NP|JOP|POP   force a plan (default: best feasible)
//   \explain <stmt>    show the logical plan instead of executing
//   \analyze <stmt>    EXPLAIN ANALYZE: execute under a trace and print the
//                      span tree + Figure 4 phase breakdown
//   \sql <stmt>        show the SQL the plan pushes to the engine
//   \rank <stmt>       rank the feasible plans by estimated cost
//   \suggest <partial> complete a partial statement (labels etc. optional)
//   \csv <stmt>        execute and print the result as CSV
//   \functions         list comparison functions
//   \labelings         list predeclared labeling functions
//   \ingest <file> [cube]  stream a CSV/JSONL file into a cube (members
//                      are auto-inserted; cube defaults to SALES or SSB)
//   \cache             result-cache counters (local session / remote server)
//   \stats             \cache plus server load & latency (remote; alias of
//                      \cache locally)
//   \workload          workload profile + MV-advisor report (what this
//                      session queried and which views to materialize)
//   \quit
// Remote mode serves the subset in examples/remote_repl.h; plan forcing and
// suggestion stay in-process (the server always picks the best plan).
//
// One-shot mode: `assess_cli [--ssb] --explain-analyze "<stmt>"` runs the
// statement under EXPLAIN ANALYZE and exits (scriptable; needs a build with
// ASSESS_TRACING=ON).

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "assess/explain_analyze.h"
#include "assess/session.h"
#include "assess/suggest.h"
#include "client/assess_client.h"
#include "common/str_util.h"
#include "ingest/ingestor.h"
#include "obs/workload_profiler.h"
#include "remote_repl.h"
#include "ssb/sales_generator.h"
#include "ssb/ssb_generator.h"

namespace {

void PrintHelp() {
  std::cout <<
      R"(Type an assess statement, e.g.:
  with SALES by month assess storeSales labels quartiles
  with SALES for year = '1997', product = 'milk' by year, product
    assess quantity against 10000 using ratio(quantity, 10000)
    labels {[0, 0.9): bad, [0.9, 1.1]: acceptable, (1.1, inf): good}
Meta commands: \plan NP|JOP|POP, \explain <stmt>, \analyze <stmt>,
               \sql <stmt>, \rank <stmt>, \csv <stmt>,
               \suggest <partial stmt>, \ingest <file> [cube],
               \functions, \labelings, \help, \quit
Monitoring:    \cache  result-cache counters (this session's engine)
               \stats  alias of \cache here; against a server
                       (--connect host:port) it adds load, in-flight/queued
                       requests and latency percentiles
               \workload  workload profile + MV-advisor report
)";
}

int RunRemote(const std::string& target, const assess::ClientOptions& options) {
  std::string host = "127.0.0.1";
  uint16_t port = assess::kDefaultPort;
  if (!assess_examples::ParseHostPort(target, &host, &port)) {
    std::cerr << "bad --connect target '" << target << "' (want host:port)\n";
    return 2;
  }
  auto client = assess::AssessClient::Connect(host, port, options);
  if (!client.ok()) {
    std::cerr << "cannot connect to assessd at " << host << ":" << port
              << ":\n"
              << assess_examples::DescribeRemoteError(client.status()) << "\n";
    return 1;
  }
  std::cout << "connected to assessd at " << host << ":" << port << "\n";
  assess_examples::PrintRemoteHelp();
  return assess_examples::RunRemoteRepl(*client);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--connect") {
    if (argc < 3) {
      std::cerr << "usage: " << argv[0]
                << " --connect host:port [--retry N] [--connect-timeout-ms N]\n";
      return 2;
    }
    assess::ClientOptions options;
    for (int i = 3; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--retry" && i + 1 < argc) {
        options.max_retries = std::atoi(argv[++i]);
      } else if (arg == "--connect-timeout-ms" && i + 1 < argc) {
        options.connect_timeout_ms = std::atoll(argv[++i]);
      } else {
        std::cerr << "unknown option '" << arg
                  << "' (want --retry N or --connect-timeout-ms N)\n";
        return 2;
      }
    }
    return RunRemote(argv[2], options);
  }
  bool use_ssb = false;
  std::optional<std::string> explain_analyze;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--ssb") {
      use_ssb = true;
    } else if (arg == "--explain-analyze") {
      if (i + 1 >= argc) {
        std::cerr << "usage: " << argv[0]
                  << " [--ssb] --explain-analyze \"<stmt>\"\n";
        return 2;
      }
      explain_analyze = argv[++i];
    }
  }
  std::unique_ptr<assess::StarDatabase> db;
  if (use_ssb) {
    assess::SsbConfig config;
    config.scale_factor = 0.01;
    auto built = assess::BuildSsbDatabase(config);
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return 1;
    }
    db = std::move(built).value();
    std::cout << "SSB database ready (cubes: SSB, BUDGET).\n";
  } else {
    auto built = assess::BuildSalesDatabase(assess::SalesConfig{});
    if (!built.ok()) {
      std::cerr << built.status().ToString() << "\n";
      return 1;
    }
    db = std::move(built).value();
    std::cout << "SALES database ready.\n";
  }

  if (explain_analyze.has_value()) {
    assess::AssessSession session(db.get());
    auto text = assess::ExplainAnalyzeStatement(session, *explain_analyze);
    if (!text.ok()) {
      std::cerr << text.status().ToString() << "\n";
      return 1;
    }
    std::cout << *text;
    return 0;
  }
  PrintHelp();

  // One explicit shared cache, so \ingest sweeps the same entries the
  // session's queries populate (a private session cache would be invisible
  // to the ingester).
  assess::EngineOptions engine;
  engine.shared_cache =
      std::make_shared<assess::CubeResultCache>(engine.cache);
  // The process-wide profiler feeds \workload: every statement this shell
  // runs lands in the profile, and the MV advisor reports on exactly the
  // session's own history.
  engine.profiler = &assess::WorkloadProfiler::Process();
  assess::AssessSession session(db.get(), engine);
  std::optional<assess::PlanKind> forced_plan = std::nullopt;
  auto run = [&session, &forced_plan](std::string_view stmt) {
    if (forced_plan.has_value()) return session.Query(stmt, *forced_plan);
    return session.Query(stmt);
  };
  std::string line;
  while (true) {
    std::cout << "assess> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string_view input = assess::Trim(line);
    if (input.empty()) continue;
    if (input[0] == '\\') {
      if (input == "\\quit" || input == "\\q") break;
      if (input == "\\help") {
        PrintHelp();
        continue;
      }
      if (input == "\\functions") {
        for (const std::string& name : session.functions()->Names()) {
          auto def = session.functions()->Find(name);
          std::cout << "  " << (*def)->doc << "\n";
        }
        continue;
      }
      if (input == "\\labelings") {
        for (const std::string& name : session.labelings()->Names()) {
          std::cout << "  " << name << "\n";
        }
        continue;
      }
      if (input == "\\workload") {
        std::cout << assess::WorkloadProfiler::Process().BuildReport().ToText();
        continue;
      }
      if (input == "\\cache" || input == "\\stats") {
        assess::CacheStats stats = session.cache_stats();
        std::cout << "  lookups " << stats.lookups << ", exact hits "
                  << stats.exact_hits << ", subsumption hits "
                  << stats.subsumption_hits << ", misses " << stats.misses
                  << "\n  insertions " << stats.insertions << ", evictions "
                  << stats.evictions << ", entries " << stats.entries
                  << ", resident " << stats.bytes_resident << " bytes\n";
        continue;
      }
      if (assess::StartsWith(input, "\\plan")) {
        std::string_view arg = assess::Trim(input.substr(5));
        if (arg.empty()) {
          forced_plan.reset();
          std::cout << "plan: best feasible\n";
          continue;
        }
        auto plan = assess::PlanKindFromString(arg);
        if (!plan.ok()) {
          std::cout << plan.status().ToString() << "\n";
          continue;
        }
        forced_plan = *plan;
        std::cout << "plan forced to " << assess::PlanKindToString(*plan)
                  << "\n";
        continue;
      }
      if (assess::StartsWith(input, "\\analyze")) {
        std::string_view stmt = assess::Trim(input.substr(8));
        auto text = assess::ExplainAnalyzeStatement(session, stmt, forced_plan);
        if (!text.ok()) {
          std::cout << text.status().ToString() << "\n";
          continue;
        }
        std::cout << *text;
        continue;
      }
      if (assess::StartsWith(input, "\\explain")) {
        std::string_view stmt = assess::Trim(input.substr(8));
        auto analyzed = session.Prepare(stmt);
        if (!analyzed.ok()) {
          std::cout << analyzed.status().ToString() << "\n";
          continue;
        }
        for (assess::PlanKind plan : assess::FeasiblePlans(*analyzed)) {
          std::cout << assess::ExplainPlan(*analyzed, plan);
        }
        continue;
      }
      if (assess::StartsWith(input, "\\rank")) {
        std::string_view stmt = assess::Trim(input.substr(5));
        auto ranked = session.RankPlans(stmt);
        if (!ranked.ok()) {
          std::cout << ranked.status().ToString() << "\n";
          continue;
        }
        for (const assess::PlanCost& pc : *ranked) {
          std::cout << "  " << assess::PlanKindToString(pc.plan)
                    << "  estimated cost " << pc.cost << "\n";
        }
        continue;
      }
      if (assess::StartsWith(input, "\\suggest")) {
        std::string_view stmt = assess::Trim(input.substr(8));
        auto partial = assess::ParsePartialAssessStatement(stmt);
        if (!partial.ok()) {
          std::cout << partial.status().ToString() << "\n";
          continue;
        }
        auto suggestions = assess::SuggestCompletions(
            *partial, *db, *session.functions(), *session.labelings());
        if (!suggestions.ok()) {
          std::cout << suggestions.status().ToString() << "\n";
          continue;
        }
        if (suggestions->empty()) {
          std::cout << "no valid completions found\n";
          continue;
        }
        for (const assess::Suggestion& s : *suggestions) {
          std::cout << "  [" << s.rationale << "]\n    "
                    << s.statement.ToString() << "\n";
        }
        continue;
      }
      if (assess::StartsWith(input, "\\ingest")) {
        std::string path;
        std::string cube = use_ssb ? "SSB" : "SALES";
        if (!assess_examples::ParseIngestArgs(assess::Trim(input.substr(7)),
                                              &path, &cube)) {
          std::cout << "usage: \\ingest <file> [cube]\n";
          continue;
        }
        assess::IngestOptions opts;
        opts.format = assess::IngestFormatFromPath(path);
        opts.auto_insert_members = true;
        assess::Ingestor ingestor(db.get(), engine.shared_cache, opts);
        auto stats = ingestor.IngestFile(cube, path);
        if (!stats.ok()) {
          std::cout << stats.status().ToString() << "\n";
          continue;
        }
        std::cout << stats->ToString() << "\n";
        continue;
      }
      if (assess::StartsWith(input, "\\csv")) {
        std::string_view stmt = assess::Trim(input.substr(4));
        auto result = run(stmt);
        if (!result.ok()) {
          std::cout << result.status().ToString() << "\n";
          continue;
        }
        result->WriteCsv(std::cout);
        continue;
      }
      if (assess::StartsWith(input, "\\sql")) {
        std::string_view stmt = assess::Trim(input.substr(4));
        auto result = run(stmt);
        if (!result.ok()) {
          std::cout << result.status().ToString() << "\n";
          continue;
        }
        for (const std::string& sql : result->sql) {
          std::cout << sql << "\n\n";
        }
        continue;
      }
      std::cout << "unknown meta command; \\help for help\n";
      continue;
    }
    auto result = run(input);
    if (!result.ok()) {
      std::cout << result.status().ToString() << "\n";
      continue;
    }
    std::cout << result->ToString(40) << "("
              << assess::PlanKindToString(result->plan) << ","
              << result->timings.ToString() << ")\n";
  }
  return 0;
}
