
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/operators.cc" "src/CMakeFiles/assess.dir/algebra/operators.cc.o" "gcc" "src/CMakeFiles/assess.dir/algebra/operators.cc.o.d"
  "/root/repo/src/assess/analyzer.cc" "src/CMakeFiles/assess.dir/assess/analyzer.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/analyzer.cc.o.d"
  "/root/repo/src/assess/ast.cc" "src/CMakeFiles/assess.dir/assess/ast.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/ast.cc.o.d"
  "/root/repo/src/assess/cost_model.cc" "src/CMakeFiles/assess.dir/assess/cost_model.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/cost_model.cc.o.d"
  "/root/repo/src/assess/effort.cc" "src/CMakeFiles/assess.dir/assess/effort.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/effort.cc.o.d"
  "/root/repo/src/assess/executor.cc" "src/CMakeFiles/assess.dir/assess/executor.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/executor.cc.o.d"
  "/root/repo/src/assess/lexer.cc" "src/CMakeFiles/assess.dir/assess/lexer.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/lexer.cc.o.d"
  "/root/repo/src/assess/parser.cc" "src/CMakeFiles/assess.dir/assess/parser.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/parser.cc.o.d"
  "/root/repo/src/assess/planner.cc" "src/CMakeFiles/assess.dir/assess/planner.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/planner.cc.o.d"
  "/root/repo/src/assess/python_codegen.cc" "src/CMakeFiles/assess.dir/assess/python_codegen.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/python_codegen.cc.o.d"
  "/root/repo/src/assess/result_set.cc" "src/CMakeFiles/assess.dir/assess/result_set.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/result_set.cc.o.d"
  "/root/repo/src/assess/suggest.cc" "src/CMakeFiles/assess.dir/assess/suggest.cc.o" "gcc" "src/CMakeFiles/assess.dir/assess/suggest.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/assess.dir/common/status.cc.o" "gcc" "src/CMakeFiles/assess.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/assess.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/assess.dir/common/str_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/assess.dir/common/value.cc.o" "gcc" "src/CMakeFiles/assess.dir/common/value.cc.o.d"
  "/root/repo/src/forecast/forecast.cc" "src/CMakeFiles/assess.dir/forecast/forecast.cc.o" "gcc" "src/CMakeFiles/assess.dir/forecast/forecast.cc.o.d"
  "/root/repo/src/functions/builtin_functions.cc" "src/CMakeFiles/assess.dir/functions/builtin_functions.cc.o" "gcc" "src/CMakeFiles/assess.dir/functions/builtin_functions.cc.o.d"
  "/root/repo/src/functions/expression.cc" "src/CMakeFiles/assess.dir/functions/expression.cc.o" "gcc" "src/CMakeFiles/assess.dir/functions/expression.cc.o.d"
  "/root/repo/src/functions/function_registry.cc" "src/CMakeFiles/assess.dir/functions/function_registry.cc.o" "gcc" "src/CMakeFiles/assess.dir/functions/function_registry.cc.o.d"
  "/root/repo/src/labeling/distribution_labeling.cc" "src/CMakeFiles/assess.dir/labeling/distribution_labeling.cc.o" "gcc" "src/CMakeFiles/assess.dir/labeling/distribution_labeling.cc.o.d"
  "/root/repo/src/labeling/kmeans_labeling.cc" "src/CMakeFiles/assess.dir/labeling/kmeans_labeling.cc.o" "gcc" "src/CMakeFiles/assess.dir/labeling/kmeans_labeling.cc.o.d"
  "/root/repo/src/labeling/label_function.cc" "src/CMakeFiles/assess.dir/labeling/label_function.cc.o" "gcc" "src/CMakeFiles/assess.dir/labeling/label_function.cc.o.d"
  "/root/repo/src/labeling/range_labeling.cc" "src/CMakeFiles/assess.dir/labeling/range_labeling.cc.o" "gcc" "src/CMakeFiles/assess.dir/labeling/range_labeling.cc.o.d"
  "/root/repo/src/olap/cube.cc" "src/CMakeFiles/assess.dir/olap/cube.cc.o" "gcc" "src/CMakeFiles/assess.dir/olap/cube.cc.o.d"
  "/root/repo/src/olap/cube_query.cc" "src/CMakeFiles/assess.dir/olap/cube_query.cc.o" "gcc" "src/CMakeFiles/assess.dir/olap/cube_query.cc.o.d"
  "/root/repo/src/olap/cube_schema.cc" "src/CMakeFiles/assess.dir/olap/cube_schema.cc.o" "gcc" "src/CMakeFiles/assess.dir/olap/cube_schema.cc.o.d"
  "/root/repo/src/olap/group_by_set.cc" "src/CMakeFiles/assess.dir/olap/group_by_set.cc.o" "gcc" "src/CMakeFiles/assess.dir/olap/group_by_set.cc.o.d"
  "/root/repo/src/olap/hierarchy.cc" "src/CMakeFiles/assess.dir/olap/hierarchy.cc.o" "gcc" "src/CMakeFiles/assess.dir/olap/hierarchy.cc.o.d"
  "/root/repo/src/sqlgen/sql_generator.cc" "src/CMakeFiles/assess.dir/sqlgen/sql_generator.cc.o" "gcc" "src/CMakeFiles/assess.dir/sqlgen/sql_generator.cc.o.d"
  "/root/repo/src/ssb/sales_generator.cc" "src/CMakeFiles/assess.dir/ssb/sales_generator.cc.o" "gcc" "src/CMakeFiles/assess.dir/ssb/sales_generator.cc.o.d"
  "/root/repo/src/ssb/ssb_generator.cc" "src/CMakeFiles/assess.dir/ssb/ssb_generator.cc.o" "gcc" "src/CMakeFiles/assess.dir/ssb/ssb_generator.cc.o.d"
  "/root/repo/src/ssb/workload.cc" "src/CMakeFiles/assess.dir/ssb/workload.cc.o" "gcc" "src/CMakeFiles/assess.dir/ssb/workload.cc.o.d"
  "/root/repo/src/storage/database_io.cc" "src/CMakeFiles/assess.dir/storage/database_io.cc.o" "gcc" "src/CMakeFiles/assess.dir/storage/database_io.cc.o.d"
  "/root/repo/src/storage/materialized_view.cc" "src/CMakeFiles/assess.dir/storage/materialized_view.cc.o" "gcc" "src/CMakeFiles/assess.dir/storage/materialized_view.cc.o.d"
  "/root/repo/src/storage/predicate.cc" "src/CMakeFiles/assess.dir/storage/predicate.cc.o" "gcc" "src/CMakeFiles/assess.dir/storage/predicate.cc.o.d"
  "/root/repo/src/storage/star_query_engine.cc" "src/CMakeFiles/assess.dir/storage/star_query_engine.cc.o" "gcc" "src/CMakeFiles/assess.dir/storage/star_query_engine.cc.o.d"
  "/root/repo/src/storage/star_schema.cc" "src/CMakeFiles/assess.dir/storage/star_schema.cc.o" "gcc" "src/CMakeFiles/assess.dir/storage/star_schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/assess.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/assess.dir/storage/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
