# Empty dependencies file for assess.
# This may be replaced when dependencies are built.
