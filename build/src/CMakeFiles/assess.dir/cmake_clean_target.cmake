file(REMOVE_RECURSE
  "libassess.a"
)
