# Empty dependencies file for rollup_share.
# This may be replaced when dependencies are built.
