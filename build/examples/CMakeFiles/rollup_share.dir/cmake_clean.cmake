file(REMOVE_RECURSE
  "CMakeFiles/rollup_share.dir/rollup_share.cpp.o"
  "CMakeFiles/rollup_share.dir/rollup_share.cpp.o.d"
  "rollup_share"
  "rollup_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollup_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
