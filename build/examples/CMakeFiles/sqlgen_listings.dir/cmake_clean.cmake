file(REMOVE_RECURSE
  "CMakeFiles/sqlgen_listings.dir/sqlgen_listings.cpp.o"
  "CMakeFiles/sqlgen_listings.dir/sqlgen_listings.cpp.o.d"
  "sqlgen_listings"
  "sqlgen_listings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlgen_listings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
