# Empty compiler generated dependencies file for sqlgen_listings.
# This may be replaced when dependencies are built.
