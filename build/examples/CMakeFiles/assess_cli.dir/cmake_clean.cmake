file(REMOVE_RECURSE
  "CMakeFiles/assess_cli.dir/assess_cli.cpp.o"
  "CMakeFiles/assess_cli.dir/assess_cli.cpp.o.d"
  "assess_cli"
  "assess_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assess_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
