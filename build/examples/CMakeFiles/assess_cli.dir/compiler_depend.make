# Empty compiler generated dependencies file for assess_cli.
# This may be replaced when dependencies are built.
