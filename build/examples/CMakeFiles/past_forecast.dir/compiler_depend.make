# Empty compiler generated dependencies file for past_forecast.
# This may be replaced when dependencies are built.
