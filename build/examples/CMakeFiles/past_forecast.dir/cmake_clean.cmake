file(REMOVE_RECURSE
  "CMakeFiles/past_forecast.dir/past_forecast.cpp.o"
  "CMakeFiles/past_forecast.dir/past_forecast.cpp.o.d"
  "past_forecast"
  "past_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
