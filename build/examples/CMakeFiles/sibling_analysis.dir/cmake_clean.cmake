file(REMOVE_RECURSE
  "CMakeFiles/sibling_analysis.dir/sibling_analysis.cpp.o"
  "CMakeFiles/sibling_analysis.dir/sibling_analysis.cpp.o.d"
  "sibling_analysis"
  "sibling_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sibling_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
