# Empty dependencies file for sibling_analysis.
# This may be replaced when dependencies are built.
