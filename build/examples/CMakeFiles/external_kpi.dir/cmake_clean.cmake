file(REMOVE_RECURSE
  "CMakeFiles/external_kpi.dir/external_kpi.cpp.o"
  "CMakeFiles/external_kpi.dir/external_kpi.cpp.o.d"
  "external_kpi"
  "external_kpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_kpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
