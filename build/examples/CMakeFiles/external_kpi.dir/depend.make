# Empty dependencies file for external_kpi.
# This may be replaced when dependencies are built.
