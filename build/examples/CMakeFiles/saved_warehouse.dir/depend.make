# Empty dependencies file for saved_warehouse.
# This may be replaced when dependencies are built.
