file(REMOVE_RECURSE
  "CMakeFiles/saved_warehouse.dir/saved_warehouse.cpp.o"
  "CMakeFiles/saved_warehouse.dir/saved_warehouse.cpp.o.d"
  "saved_warehouse"
  "saved_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saved_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
