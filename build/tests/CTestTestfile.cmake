# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/group_by_set_test[1]_include.cmake")
include("/root/repo/build/tests/cube_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/functions_test[1]_include.cmake")
include("/root/repo/build/tests/labeling_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/sqlgen_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/plan_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/effort_test[1]_include.cmake")
include("/root/repo/build/tests/ssb_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/suggest_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_engine_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
