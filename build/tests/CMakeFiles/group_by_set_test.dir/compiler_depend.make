# Empty compiler generated dependencies file for group_by_set_test.
# This may be replaced when dependencies are built.
