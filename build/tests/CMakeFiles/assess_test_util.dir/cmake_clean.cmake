file(REMOVE_RECURSE
  "CMakeFiles/assess_test_util.dir/test_util.cc.o"
  "CMakeFiles/assess_test_util.dir/test_util.cc.o.d"
  "libassess_test_util.a"
  "libassess_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assess_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
