# Empty compiler generated dependencies file for assess_test_util.
# This may be replaced when dependencies are built.
