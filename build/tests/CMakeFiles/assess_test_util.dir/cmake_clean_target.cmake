file(REMOVE_RECURSE
  "libassess_test_util.a"
)
