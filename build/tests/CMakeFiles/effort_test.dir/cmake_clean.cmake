file(REMOVE_RECURSE
  "CMakeFiles/effort_test.dir/effort_test.cc.o"
  "CMakeFiles/effort_test.dir/effort_test.cc.o.d"
  "effort_test"
  "effort_test.pdb"
  "effort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
