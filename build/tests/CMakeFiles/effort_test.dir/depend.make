# Empty dependencies file for effort_test.
# This may be replaced when dependencies are built.
