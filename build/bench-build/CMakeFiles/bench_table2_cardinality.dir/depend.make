# Empty dependencies file for bench_table2_cardinality.
# This may be replaced when dependencies are built.
