file(REMOVE_RECURSE
  "../bench/bench_table2_cardinality"
  "../bench/bench_table2_cardinality.pdb"
  "CMakeFiles/bench_table2_cardinality.dir/bench_table2_cardinality.cc.o"
  "CMakeFiles/bench_table2_cardinality.dir/bench_table2_cardinality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
