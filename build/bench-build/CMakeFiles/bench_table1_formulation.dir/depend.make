# Empty dependencies file for bench_table1_formulation.
# This may be replaced when dependencies are built.
