file(REMOVE_RECURSE
  "../bench/bench_table1_formulation"
  "../bench/bench_table1_formulation.pdb"
  "CMakeFiles/bench_table1_formulation.dir/bench_table1_formulation.cc.o"
  "CMakeFiles/bench_table1_formulation.dir/bench_table1_formulation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_formulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
