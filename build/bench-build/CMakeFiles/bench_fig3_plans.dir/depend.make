# Empty dependencies file for bench_fig3_plans.
# This may be replaced when dependencies are built.
