file(REMOVE_RECURSE
  "../bench/bench_fig3_plans"
  "../bench/bench_fig3_plans.pdb"
  "CMakeFiles/bench_fig3_plans.dir/bench_fig3_plans.cc.o"
  "CMakeFiles/bench_fig3_plans.dir/bench_fig3_plans.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
