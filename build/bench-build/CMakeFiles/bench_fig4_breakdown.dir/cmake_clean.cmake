file(REMOVE_RECURSE
  "../bench/bench_fig4_breakdown"
  "../bench/bench_fig4_breakdown.pdb"
  "CMakeFiles/bench_fig4_breakdown.dir/bench_fig4_breakdown.cc.o"
  "CMakeFiles/bench_fig4_breakdown.dir/bench_fig4_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
