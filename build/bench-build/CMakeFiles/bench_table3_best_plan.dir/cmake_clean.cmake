file(REMOVE_RECURSE
  "../bench/bench_table3_best_plan"
  "../bench/bench_table3_best_plan.pdb"
  "CMakeFiles/bench_table3_best_plan.dir/bench_table3_best_plan.cc.o"
  "CMakeFiles/bench_table3_best_plan.dir/bench_table3_best_plan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_best_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
