#ifndef ASSESS_OLAP_CUBE_H_
#define ASSESS_OLAP_CUBE_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "olap/cube_schema.h"
#include "olap/group_by_set.h"

namespace assess {

/// \brief One axis of a derived cube: a level of some hierarchy.
struct LevelRef {
  std::shared_ptr<Hierarchy> hierarchy;
  int level = 0;

  const std::string& name() const { return hierarchy->level_name(level); }
  int32_t cardinality() const { return hierarchy->LevelCardinality(level); }
};

/// \brief The "null" measure value used for non-matching cells of assess*
/// (left-outer join) results. Cubes are partial functions, so absence is a
/// first-class concept; NaN encodes it in measure columns.
inline constexpr double kNullMeasure =
    std::numeric_limits<double>::quiet_NaN();

bool IsNullMeasure(double v);

/// \brief A derived cube (Definition 2.6): a partial function from
/// coordinates of a group-by set to tuples of measure values.
///
/// Storage is columnar: one MemberId vector per group-by level and one
/// double vector per measure, all row-aligned; a row is a cell. An optional
/// label column carries the nominal labels added by the labeling step.
/// The closure property of the logical algebra (Section 4.2) is realized by
/// every operator consuming and producing this type.
class Cube {
 public:
  Cube() = default;

  /// \brief Creates an empty cube with the given axes and measure names.
  Cube(std::vector<LevelRef> levels, std::vector<std::string> measure_names);

  /// \brief Builds a cube directly from row-aligned columns (the engine's
  /// zero-copy output path). All columns must have equal length.
  static Cube FromColumns(std::vector<LevelRef> levels,
                          std::vector<std::vector<MemberId>> coord_columns,
                          std::vector<std::string> measure_names,
                          std::vector<std::vector<double>> measure_columns);

  // -- Schema ----------------------------------------------------------

  int level_count() const { return static_cast<int>(levels_.size()); }
  const LevelRef& level(int i) const { return levels_[i]; }
  const std::vector<LevelRef>& levels() const { return levels_; }

  /// \brief Index of the axis named `level_name`, or error.
  Result<int> LevelPosition(std::string_view level_name) const;

  int measure_count() const { return static_cast<int>(measure_names_.size()); }
  const std::string& measure_name(int i) const { return measure_names_[i]; }
  Result<int> MeasureIndex(std::string_view name) const;

  /// \brief Appends a new, NaN-filled measure column; returns its index.
  /// This is how the transform operators "monotonically add new measures".
  int AddMeasureColumn(std::string name);

  // -- Cells ------------------------------------------------------------

  int64_t NumRows() const {
    return coords_.empty()
               ? static_cast<int64_t>(measures_.empty()
                                          ? 0
                                          : measures_[0].size())
               : static_cast<int64_t>(coords_[0].size());
  }

  /// \brief Appends a cell; `coords` and `measures` must match the arity.
  void AddRow(const std::vector<MemberId>& coords,
              const std::vector<double>& measures);

  MemberId CoordAt(int64_t row, int level_pos) const {
    return coords_[level_pos][row];
  }
  const std::string& CoordName(int64_t row, int level_pos) const {
    const LevelRef& l = levels_[level_pos];
    return l.hierarchy->MemberName(l.level, coords_[level_pos][row]);
  }
  double MeasureAt(int64_t row, int measure_idx) const {
    return measures_[measure_idx][row];
  }
  void SetMeasure(int64_t row, int measure_idx, double v) {
    measures_[measure_idx][row] = v;
  }

  const std::vector<MemberId>& coord_column(int level_pos) const {
    return coords_[level_pos];
  }
  const std::vector<double>& measure_column(int measure_idx) const {
    return measures_[measure_idx];
  }
  std::vector<double>& mutable_measure_column(int measure_idx) {
    return measures_[measure_idx];
  }

  // -- Labels -----------------------------------------------------------

  bool has_labels() const { return !labels_.empty() || NumRows() == 0; }
  void SetLabels(std::vector<std::string> labels) {
    labels_ = std::move(labels);
  }
  const std::vector<std::string>& labels() const { return labels_; }

  // -- Ordering / rendering ---------------------------------------------

  /// \brief Sorts cells lexicographically by coordinate; canonical form for
  /// result comparison in tests and for stable printing.
  void SortByCoordinates();

  /// \brief Multi-line table rendering (coordinates, measures, labels).
  std::string ToString(int64_t max_rows = 20) const;

  /// \brief Writes the cube as CSV: a header row (level names, measure
  /// names, "label" when labels are present) followed by one row per cell.
  /// Fields containing separators or quotes are quoted and escaped.
  void WriteCsv(std::ostream& out) const;

 private:
  std::vector<LevelRef> levels_;
  std::vector<std::vector<MemberId>> coords_;
  std::vector<std::string> measure_names_;
  std::vector<std::vector<double>> measures_;
  std::vector<std::string> labels_;
};

/// \brief Hash index from (a subset of) a cube's coordinates to row ids.
///
/// Coordinates are encoded collision-free in mixed radix over the level
/// cardinalities using 128-bit keys, which covers any group-by set of up to
/// four 32-bit-encoded levels (the maximum arity of the schemas here) with
/// room to spare; wider encodings are rejected loudly at construction.
class CoordinateIndex {
 public:
  /// \brief Builds an index of `cube` keyed on the axes at `key_positions`.
  CoordinateIndex(const Cube& cube, std::vector<int> key_positions);

  /// \brief Rows of the indexed cube whose key equals the key formed by
  /// `probe`'s coordinates at `probe_positions` in row `row`. Empty when no
  /// match. `probe_positions` must parallel this index's key positions.
  const std::vector<int32_t>& Lookup(const Cube& probe,
                                     const std::vector<int>& probe_positions,
                                     int64_t row) const;

  int64_t DistinctKeys() const {
    return static_cast<int64_t>(buckets_.size());
  }

 private:
  using Key = unsigned __int128;
  struct KeyHash {
    size_t operator()(Key k) const {
      uint64_t lo = static_cast<uint64_t>(k);
      uint64_t hi = static_cast<uint64_t>(k >> 64);
      uint64_t h = lo * 0x9E3779B97F4A7C15ULL ^ (hi + 0x2545F4914F6CDD1DULL);
      h ^= h >> 29;
      return static_cast<size_t>(h);
    }
  };

  Key EncodeRow(const Cube& cube, const std::vector<int>& positions,
                int64_t row) const;

  std::vector<int> key_positions_;
  std::vector<Key> radix_;  // multiplier per key position
  std::unordered_map<Key, std::vector<int32_t>, KeyHash> buckets_;
  static const std::vector<int32_t> kEmpty;
};

}  // namespace assess

#endif  // ASSESS_OLAP_CUBE_H_
