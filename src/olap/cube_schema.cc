#include "olap/cube_schema.h"

namespace assess {

std::string_view AggOpToString(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "sum";
    case AggOp::kAvg:
      return "avg";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kCount:
      return "count";
  }
  return "?";
}

int CubeSchema::AddHierarchy(std::shared_ptr<Hierarchy> hierarchy) {
  int index = static_cast<int>(hierarchies_.size());
  hierarchies_.push_back(std::move(hierarchy));
  return index;
}

int CubeSchema::AddMeasure(MeasureDef measure) {
  int index = static_cast<int>(measures_.size());
  measures_.push_back(std::move(measure));
  return index;
}

Result<int> CubeSchema::HierarchyOfLevel(std::string_view level_name) const {
  for (int h = 0; h < hierarchy_count(); ++h) {
    if (hierarchies_[h]->HasLevel(level_name)) return h;
  }
  return Status::NotFound("no level '" + std::string(level_name) +
                          "' in cube schema '" + name_ + "'");
}

Result<int> CubeSchema::MeasureIndex(std::string_view measure_name) const {
  for (int m = 0; m < measure_count(); ++m) {
    if (measures_[m].name == measure_name) return m;
  }
  return Status::NotFound("no measure '" + std::string(measure_name) +
                          "' in cube schema '" + name_ + "'");
}

bool CubeSchema::HasMeasure(std::string_view measure_name) const {
  return MeasureIndex(measure_name).ok();
}

std::vector<std::string> CubeSchema::MeasureNames() const {
  std::vector<std::string> names;
  names.reserve(measures_.size());
  for (const MeasureDef& m : measures_) names.push_back(m.name);
  return names;
}

}  // namespace assess
