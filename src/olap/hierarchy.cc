#include "olap/hierarchy.h"

#include <limits>

namespace assess {

int Hierarchy::AddLevel(std::string level_name) {
  int index = static_cast<int>(levels_.size());
  level_index_.emplace(level_name, index);
  levels_.push_back(Level{std::move(level_name), {}, {}, {}, {}});
  return index;
}

Result<int> Hierarchy::LevelIndex(std::string_view level_name) const {
  auto it = level_index_.find(std::string(level_name));
  if (it == level_index_.end()) {
    return Status::NotFound("no level '" + std::string(level_name) +
                            "' in hierarchy '" + name_ + "'");
  }
  return it->second;
}

bool Hierarchy::HasLevel(std::string_view level_name) const {
  return level_index_.count(std::string(level_name)) > 0;
}

MemberId Hierarchy::AddMember(int level, std::string_view member) {
  Level& l = levels_[level];
  auto it = l.member_index.find(std::string(member));
  if (it != l.member_index.end()) return it->second;
  MemberId id = static_cast<MemberId>(l.members.size());
  l.members.emplace_back(member);
  l.member_index.emplace(std::string(member), id);
  l.parent.push_back(kInvalidMember);
  return id;
}

Result<MemberId> Hierarchy::MemberIdOf(int level,
                                       std::string_view member) const {
  const Level& l = levels_[level];
  auto it = l.member_index.find(std::string(member));
  if (it == l.member_index.end()) {
    return Status::NotFound("no member '" + std::string(member) +
                            "' in level '" + l.name + "' of hierarchy '" +
                            name_ + "'");
  }
  return it->second;
}

void Hierarchy::SetParent(int fine_level, MemberId child, MemberId parent) {
  levels_[fine_level].parent[child] = parent;
}

MemberId Hierarchy::RollUpMember(int from_level, MemberId member,
                                 int to_level) const {
  MemberId current = member;
  for (int l = from_level; l < to_level; ++l) {
    if (current == kInvalidMember) return kInvalidMember;
    current = levels_[l].parent[current];
  }
  return current;
}

void Hierarchy::SetProperty(int level, std::string_view property,
                            std::string_view member, double value) {
  Level& l = levels_[level];
  MemberId id = AddMember(level, member);
  auto [it, inserted] = l.properties.try_emplace(std::string(property));
  std::vector<double>& column = it->second;
  if (column.size() < l.members.size()) {
    column.resize(l.members.size(),
                  std::numeric_limits<double>::quiet_NaN());
  }
  column[id] = value;
}

bool Hierarchy::HasProperty(int level, std::string_view property) const {
  return levels_[level].properties.count(std::string(property)) > 0;
}

Result<const std::vector<double>*> Hierarchy::PropertyColumn(
    int level, std::string_view property) const {
  const Level& l = levels_[level];
  auto it = l.properties.find(std::string(property));
  if (it == l.properties.end()) {
    return Status::NotFound("no property '" + std::string(property) +
                            "' on level '" + l.name + "' of hierarchy '" +
                            name_ + "'");
  }
  // Members added after the last SetProperty call lack slots; the column is
  // lazily right-sized here (const because values are unchanged: nulls).
  if (it->second.size() < l.members.size()) {
    const_cast<std::vector<double>&>(it->second)
        .resize(l.members.size(), std::numeric_limits<double>::quiet_NaN());
  }
  return &it->second;
}

Status Hierarchy::Validate() const {
  for (size_t l = 0; l + 1 < levels_.size(); ++l) {
    const Level& level = levels_[l];
    for (size_t m = 0; m < level.members.size(); ++m) {
      if (level.parent[m] == kInvalidMember) {
        return Status::Internal("member '" + level.members[m] + "' of level '" +
                                level.name + "' in hierarchy '" + name_ +
                                "' has no parent");
      }
    }
  }
  return Status::OK();
}

}  // namespace assess
