#ifndef ASSESS_OLAP_CUBE_SCHEMA_H_
#define ASSESS_OLAP_CUBE_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "olap/hierarchy.h"

namespace assess {

/// \brief Aggregation operator attached to a measure (op(m) in Def. 2.1).
enum class AggOp {
  kSum,
  kAvg,
  kMin,
  kMax,
  kCount,
};

std::string_view AggOpToString(AggOp op);

/// \brief A measure of a cube schema: a name plus its aggregation operator.
struct MeasureDef {
  std::string name;
  AggOp op = AggOp::kSum;
};

/// \brief Cube schema C = (H, M) per Definition 2.1: a set of hierarchies
/// plus a tuple of measures.
///
/// Hierarchies are shared (shared_ptr) so that a target cube and a benchmark
/// over the same schema reference identical member dictionaries, which is
/// what makes coordinate-equality joins meaningful.
class CubeSchema {
 public:
  explicit CubeSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// \brief Registers a hierarchy; returns its index.
  int AddHierarchy(std::shared_ptr<Hierarchy> hierarchy);

  /// \brief Registers a measure; returns its index.
  int AddMeasure(MeasureDef measure);

  int hierarchy_count() const { return static_cast<int>(hierarchies_.size()); }
  int measure_count() const { return static_cast<int>(measures_.size()); }

  const Hierarchy& hierarchy(int i) const { return *hierarchies_[i]; }
  const std::shared_ptr<Hierarchy>& hierarchy_ptr(int i) const {
    return hierarchies_[i];
  }
  const MeasureDef& measure(int i) const { return measures_[i]; }

  /// \brief Index of the hierarchy containing a level with this name.
  /// Level names are assumed globally unique across hierarchies (true for
  /// both the SALES and SSB schemas, and checked at registration).
  Result<int> HierarchyOfLevel(std::string_view level_name) const;

  Result<int> MeasureIndex(std::string_view measure_name) const;
  bool HasMeasure(std::string_view measure_name) const;

  /// \brief Names of all measures, in schema order.
  std::vector<std::string> MeasureNames() const;

 private:
  std::string name_;
  std::vector<std::shared_ptr<Hierarchy>> hierarchies_;
  std::vector<MeasureDef> measures_;
};

}  // namespace assess

#endif  // ASSESS_OLAP_CUBE_SCHEMA_H_
