#include "olap/cube.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <numeric>
#include <sstream>

#include "common/str_util.h"

namespace assess {

bool IsNullMeasure(double v) { return std::isnan(v); }

Cube::Cube(std::vector<LevelRef> levels, std::vector<std::string> measure_names)
    : levels_(std::move(levels)),
      coords_(levels_.size()),
      measure_names_(std::move(measure_names)),
      measures_(measure_names_.size()) {}

Cube Cube::FromColumns(std::vector<LevelRef> levels,
                       std::vector<std::vector<MemberId>> coord_columns,
                       std::vector<std::string> measure_names,
                       std::vector<std::vector<double>> measure_columns) {
  Cube cube;
  cube.levels_ = std::move(levels);
  cube.coords_ = std::move(coord_columns);
  cube.measure_names_ = std::move(measure_names);
  cube.measures_ = std::move(measure_columns);
  return cube;
}

Result<int> Cube::LevelPosition(std::string_view level_name) const {
  for (int i = 0; i < level_count(); ++i) {
    if (levels_[i].name() == level_name) return i;
  }
  return Status::NotFound("no axis '" + std::string(level_name) +
                          "' in this cube");
}

Result<int> Cube::MeasureIndex(std::string_view name) const {
  for (int i = 0; i < measure_count(); ++i) {
    if (measure_names_[i] == name) return i;
  }
  return Status::NotFound("no measure '" + std::string(name) +
                          "' in this cube");
}

int Cube::AddMeasureColumn(std::string name) {
  int index = static_cast<int>(measure_names_.size());
  measure_names_.push_back(std::move(name));
  measures_.emplace_back(NumRows(), kNullMeasure);
  return index;
}

void Cube::AddRow(const std::vector<MemberId>& coords,
                  const std::vector<double>& measures) {
  for (size_t i = 0; i < coords_.size(); ++i) coords_[i].push_back(coords[i]);
  for (size_t i = 0; i < measures_.size(); ++i) {
    measures_[i].push_back(i < measures.size() ? measures[i] : kNullMeasure);
  }
  if (!labels_.empty()) labels_.emplace_back();
}

void Cube::SortByCoordinates() {
  int64_t n = NumRows();
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int64_t a, int64_t b) {
    for (const auto& col : coords_) {
      if (col[a] != col[b]) return col[a] < col[b];
    }
    return false;
  });
  auto permute = [&order, n](auto& col) {
    using Col = std::remove_reference_t<decltype(col)>;
    Col next(col.size());
    for (int64_t i = 0; i < n; ++i) next[i] = col[order[i]];
    col = std::move(next);
  };
  for (auto& col : coords_) permute(col);
  for (auto& col : measures_) permute(col);
  if (!labels_.empty()) permute(labels_);
}

std::string Cube::ToString(int64_t max_rows) const {
  std::ostringstream out;
  for (int i = 0; i < level_count(); ++i) {
    if (i > 0) out << " | ";
    out << levels_[i].name();
  }
  for (int i = 0; i < measure_count(); ++i) {
    out << " | " << measure_names_[i];
  }
  if (!labels_.empty()) out << " | label";
  out << "\n";
  int64_t n = std::min<int64_t>(NumRows(), max_rows);
  for (int64_t r = 0; r < n; ++r) {
    for (int i = 0; i < level_count(); ++i) {
      if (i > 0) out << " | ";
      out << CoordName(r, i);
    }
    for (int i = 0; i < measure_count(); ++i) {
      double v = MeasureAt(r, i);
      out << " | " << (IsNullMeasure(v) ? "null" : FormatNumber(v));
    }
    if (!labels_.empty()) out << " | " << labels_[r];
    out << "\n";
  }
  if (NumRows() > n) {
    out << "... (" << (NumRows() - n) << " more cells)\n";
  }
  return out.str();
}

namespace {

// Quotes a CSV field when needed (RFC 4180 style).
void WriteCsvField(std::ostream& out, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void Cube::WriteCsv(std::ostream& out) const {
  bool first = true;
  auto sep = [&out, &first]() {
    if (!first) out << ',';
    first = false;
  };
  for (const LevelRef& level : levels_) {
    sep();
    WriteCsvField(out, level.name());
  }
  for (const std::string& name : measure_names_) {
    sep();
    WriteCsvField(out, name);
  }
  if (!labels_.empty()) {
    sep();
    out << "label";
  }
  out << '\n';
  for (int64_t r = 0; r < NumRows(); ++r) {
    first = true;
    for (int i = 0; i < level_count(); ++i) {
      sep();
      WriteCsvField(out, CoordName(r, i));
    }
    for (int m = 0; m < measure_count(); ++m) {
      sep();
      double v = MeasureAt(r, m);
      if (!IsNullMeasure(v)) out << FormatNumber(v);
    }
    if (!labels_.empty()) {
      sep();
      WriteCsvField(out, labels_[r]);
    }
    out << '\n';
  }
}

// ---------------------------------------------------------------------------
// CoordinateIndex
// ---------------------------------------------------------------------------

const std::vector<int32_t> CoordinateIndex::kEmpty;

CoordinateIndex::CoordinateIndex(const Cube& cube,
                                 std::vector<int> key_positions)
    : key_positions_(std::move(key_positions)) {
  // Mixed-radix multipliers from level cardinalities: the encoding is a
  // bijection from coordinates to integers, so bucket keys never collide.
  radix_.resize(key_positions_.size());
  Key factor = 1;
  const Key kLimit = Key(1) << 120;
  for (size_t i = 0; i < key_positions_.size(); ++i) {
    radix_[i] = factor;
    Key card =
        static_cast<Key>(cube.level(key_positions_[i]).cardinality()) + 1;
    if (card != 0 && factor > kLimit / card) {
      // > 2^120 distinct coordinates cannot arise from the supported
      // schemas; fail loudly rather than risk silent key wraparound.
      std::abort();
    }
    factor *= card;
  }
  for (int64_t row = 0; row < cube.NumRows(); ++row) {
    buckets_[EncodeRow(cube, key_positions_, row)].push_back(
        static_cast<int32_t>(row));
  }
}

CoordinateIndex::Key CoordinateIndex::EncodeRow(
    const Cube& cube, const std::vector<int>& positions, int64_t row) const {
  Key key = 0;
  for (size_t i = 0; i < positions.size(); ++i) {
    key += radix_[i] *
           (static_cast<Key>(cube.CoordAt(row, positions[i])) + 1);
  }
  return key;
}

const std::vector<int32_t>& CoordinateIndex::Lookup(
    const Cube& probe, const std::vector<int>& probe_positions,
    int64_t row) const {
  auto it = buckets_.find(EncodeRow(probe, probe_positions, row));
  return it == buckets_.end() ? kEmpty : it->second;
}

}  // namespace assess
