#ifndef ASSESS_OLAP_CUBE_QUERY_H_
#define ASSESS_OLAP_CUBE_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "olap/cube_schema.h"
#include "olap/group_by_set.h"

namespace assess {

/// \brief Comparison operator of a selection predicate.
enum class PredicateOp {
  kEquals,   ///< level = 'member'
  kIn,       ///< level in ('a', 'b', ...)
  kBetween,  ///< level between 'a' and 'b' (lexicographic on member names,
             ///< which is chronological for the ISO date members used here)
};

/// \brief A selection predicate over one level of one hierarchy (the p_i of
/// Definition 2.6). Members are referenced by name; resolution to member ids
/// happens at execution time against the bound hierarchy.
struct Predicate {
  int hierarchy = 0;
  int level = 0;
  PredicateOp op = PredicateOp::kEquals;
  std::vector<std::string> members;  // 1 for =, n for IN, 2 for BETWEEN

  /// \brief Renders as surface syntax, e.g. "country = 'Italy'".
  std::string ToString(const CubeSchema& schema) const;
};

/// \brief A cube query q = (C0, G, P, M) per Definition 2.6.
///
/// `cube_name` names the detailed cube in the StarDatabase; `measures`
/// holds schema measure indexes. The result of executing a CubeQuery is a
/// derived Cube (the `get` logical operator, Section 4.2).
struct CubeQuery {
  std::string cube_name;
  GroupBySet group_by;
  std::vector<Predicate> predicates;
  std::vector<int> measures;

  /// \brief Optional alias for the derived cube; measures of an aliased
  /// cube are exposed as "<alias>.<measure>" after a join (the
  /// "-> benchmark" renaming of Section 4.2).
  std::string alias;

  /// \brief Builds a query from names, validating against `schema`.
  static Result<CubeQuery> Make(const CubeSchema& schema,
                                std::string cube_name,
                                const std::vector<std::string>& by_levels,
                                std::vector<Predicate> predicates,
                                const std::vector<std::string>& measure_names);

  /// \brief Renders as "[(SALES, <product, country>, {type = '...'}, "
  /// "<quantity>)]" for logging and plan explanation.
  std::string ToString(const CubeSchema& schema) const;
};

}  // namespace assess

#endif  // ASSESS_OLAP_CUBE_QUERY_H_
