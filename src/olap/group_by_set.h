#ifndef ASSESS_OLAP_GROUP_BY_SET_H_
#define ASSESS_OLAP_GROUP_BY_SET_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "olap/cube_schema.h"

namespace assess {

/// \brief Group-by set per Definition 2.3: at most one level per hierarchy.
///
/// Represented as one optional level index per hierarchy of the schema;
/// std::nullopt means the hierarchy is fully aggregated ("ALL"), the
/// implicit convention of the multidimensional model.
class GroupBySet {
 public:
  GroupBySet() = default;
  explicit GroupBySet(int hierarchy_count)
      : levels_(hierarchy_count, std::nullopt) {}

  /// \brief Builds a group-by set from level names against `schema`
  /// (e.g. {"product", "country"}). Rejects unknown levels and two levels
  /// from the same hierarchy.
  static Result<GroupBySet> FromLevelNames(
      const CubeSchema& schema, const std::vector<std::string>& level_names);

  int hierarchy_count() const { return static_cast<int>(levels_.size()); }

  void SetLevel(int hierarchy, int level) { levels_[hierarchy] = level; }
  void ClearLevel(int hierarchy) { levels_[hierarchy] = std::nullopt; }

  bool HasHierarchy(int hierarchy) const {
    return levels_[hierarchy].has_value();
  }
  int LevelOf(int hierarchy) const { return *levels_[hierarchy]; }

  /// \brief Number of hierarchies present (the coordinate arity).
  int Arity() const;

  /// \brief True when this group-by set is finer-or-equal than `other` in
  /// the ⪰_H partial order induced by the roll-up orders: every hierarchy
  /// present in `other` is present here at a finer-or-equal level.
  /// Coordinates of `this` then roll up to coordinates of `other`.
  bool RollsUpTo(const GroupBySet& other, const CubeSchema& schema) const;

  friend bool operator==(const GroupBySet& a, const GroupBySet& b) {
    return a.levels_ == b.levels_;
  }

  /// \brief Renders as "⟨product, country⟩" style (ASCII: "<...>").
  std::string ToString(const CubeSchema& schema) const;

 private:
  std::vector<std::optional<int>> levels_;
};

}  // namespace assess

#endif  // ASSESS_OLAP_GROUP_BY_SET_H_
