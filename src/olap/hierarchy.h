#ifndef ASSESS_OLAP_HIERARCHY_H_
#define ASSESS_OLAP_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace assess {

/// \brief Dictionary-encoded member identifier within one level's domain.
using MemberId = int32_t;
inline constexpr MemberId kInvalidMember = -1;

/// \brief A linear hierarchy h = (L, ⪰, ≥) per Definition 2.1 of the paper.
///
/// Levels are stored finest-first: level 0 is the top of the roll-up order
/// (e.g. `date`), the last level the coarsest (e.g. `year`). Each level has
/// a dictionary of members (Dom(l)); the part-of partial order ≥ is stored
/// as one parent array per adjacent level pair, so that every member of a
/// finer level maps to exactly one member of each coarser level.
///
/// Hierarchies are built once (AddLevel / AddMember / linking) and then used
/// immutably by the query engine; they are shared between cubes via
/// shared_ptr in CubeSchema.
class Hierarchy {
 public:
  explicit Hierarchy(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// \brief Marks this as the temporal hierarchy (required by past
  /// benchmarks, which roll the time level back over its member order).
  /// Member names of temporal levels must sort chronologically (ISO dates).
  void set_temporal(bool temporal) { temporal_ = temporal; }
  bool temporal() const { return temporal_; }

  /// \brief Appends a level coarser than all existing ones. Returns its
  /// index. Level names must be unique within the hierarchy.
  int AddLevel(std::string level_name);

  int level_count() const { return static_cast<int>(levels_.size()); }
  const std::string& level_name(int level) const {
    return levels_[level].name;
  }

  /// \brief Index of `level_name`, or error when unknown.
  Result<int> LevelIndex(std::string_view level_name) const;
  bool HasLevel(std::string_view level_name) const;

  /// \brief Number of members in Dom(level).
  int32_t LevelCardinality(int level) const {
    return static_cast<int32_t>(levels_[level].members.size());
  }

  /// \brief Interns `member` in Dom(level), returning its id (idempotent).
  MemberId AddMember(int level, std::string_view member);

  /// \brief Id of `member` in Dom(level), or error when unknown.
  Result<MemberId> MemberIdOf(int level, std::string_view member) const;

  const std::string& MemberName(int level, MemberId id) const {
    return levels_[level].members[id];
  }

  /// \brief Declares child ≥ parent between adjacent levels
  /// (`fine_level` and `fine_level + 1`). Overwrites any previous parent.
  void SetParent(int fine_level, MemberId child, MemberId parent);

  /// \brief rup: rolls `member` at `from_level` up to `to_level`
  /// (from_level <= to_level in index order, i.e. from finer to coarser).
  /// Returns kInvalidMember when a link is missing.
  MemberId RollUpMember(int from_level, MemberId member, int to_level) const;

  /// \brief Validates that every member of every non-coarsest level has a
  /// parent (the "exactly one member u'" condition of Definition 2.1).
  Status Validate() const;

  // -- Descriptive properties (Section 8 future work) --------------------
  //
  // A property attaches a numeric value to every member of a level (e.g.
  // the population of a country), enabling statements like per-capita
  // comparisons via property(country, population) in using clauses.
  // Unset members hold the null measure value.

  /// \brief Sets `property` of `member` at `level` (defining the property
  /// on first use).
  void SetProperty(int level, std::string_view property,
                   std::string_view member, double value);

  bool HasProperty(int level, std::string_view property) const;

  /// \brief Per-member values of `property` at `level`, indexed by member
  /// id (null for unset members). Errors when the property is unknown.
  Result<const std::vector<double>*> PropertyColumn(
      int level, std::string_view property) const;

 private:
  struct Level {
    std::string name;
    std::vector<std::string> members;
    std::unordered_map<std::string, MemberId> member_index;
    // parent[m] = id at the next coarser level; empty for the coarsest level.
    std::vector<MemberId> parent;
    // property name -> per-member values (null for unset members).
    std::unordered_map<std::string, std::vector<double>> properties;
  };

  std::string name_;
  bool temporal_ = false;
  std::vector<Level> levels_;
  std::unordered_map<std::string, int> level_index_;
};

}  // namespace assess

#endif  // ASSESS_OLAP_HIERARCHY_H_
