#include "olap/group_by_set.h"

#include "common/str_util.h"

namespace assess {

Result<GroupBySet> GroupBySet::FromLevelNames(
    const CubeSchema& schema, const std::vector<std::string>& level_names) {
  GroupBySet gbs(schema.hierarchy_count());
  for (const std::string& name : level_names) {
    ASSESS_ASSIGN_OR_RETURN(int h, schema.HierarchyOfLevel(name));
    if (gbs.HasHierarchy(h)) {
      return Status::InvalidArgument(
          "group-by set has two levels from hierarchy '" +
          schema.hierarchy(h).name() + "'");
    }
    ASSESS_ASSIGN_OR_RETURN(int l, schema.hierarchy(h).LevelIndex(name));
    gbs.SetLevel(h, l);
  }
  return gbs;
}

int GroupBySet::Arity() const {
  int n = 0;
  for (const auto& l : levels_) {
    if (l.has_value()) ++n;
  }
  return n;
}

bool GroupBySet::RollsUpTo(const GroupBySet& other,
                           const CubeSchema& schema) const {
  (void)schema;
  if (levels_.size() != other.levels_.size()) return false;
  for (size_t h = 0; h < levels_.size(); ++h) {
    if (!other.levels_[h].has_value()) continue;  // other aggregates h fully.
    if (!levels_[h].has_value()) return false;    // this is coarser on h.
    // Finer levels have smaller indexes (finest-first storage).
    if (*levels_[h] > *other.levels_[h]) return false;
  }
  return true;
}

std::string GroupBySet::ToString(const CubeSchema& schema) const {
  std::vector<std::string> names;
  for (size_t h = 0; h < levels_.size(); ++h) {
    if (levels_[h].has_value()) {
      names.push_back(
          schema.hierarchy(static_cast<int>(h)).level_name(*levels_[h]));
    }
  }
  std::string out = "<";
  out += Join(names, ", ");
  out += ">";
  return out;
}

}  // namespace assess
