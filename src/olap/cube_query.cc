#include "olap/cube_query.h"

#include <sstream>

#include "common/str_util.h"

namespace assess {

std::string Predicate::ToString(const CubeSchema& schema) const {
  const std::string& level_name = schema.hierarchy(hierarchy).level_name(level);
  std::ostringstream out;
  switch (op) {
    case PredicateOp::kEquals:
      out << level_name << " = '" << members[0] << "'";
      break;
    case PredicateOp::kIn: {
      std::vector<std::string> quoted;
      quoted.reserve(members.size());
      for (const std::string& m : members) quoted.push_back("'" + m + "'");
      out << level_name << " in (" << Join(quoted, ", ") << ")";
      break;
    }
    case PredicateOp::kBetween:
      out << level_name << " between '" << members[0] << "' and '"
          << members[1] << "'";
      break;
  }
  return out.str();
}

Result<CubeQuery> CubeQuery::Make(const CubeSchema& schema,
                                  std::string cube_name,
                                  const std::vector<std::string>& by_levels,
                                  std::vector<Predicate> predicates,
                                  const std::vector<std::string>& measure_names) {
  CubeQuery q;
  q.cube_name = std::move(cube_name);
  ASSESS_ASSIGN_OR_RETURN(q.group_by,
                          GroupBySet::FromLevelNames(schema, by_levels));
  q.predicates = std::move(predicates);
  for (const std::string& m : measure_names) {
    ASSESS_ASSIGN_OR_RETURN(int idx, schema.MeasureIndex(m));
    q.measures.push_back(idx);
  }
  return q;
}

std::string CubeQuery::ToString(const CubeSchema& schema) const {
  std::ostringstream out;
  out << "[(" << cube_name << ", " << group_by.ToString(schema) << ", {";
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) out << ", ";
    out << predicates[i].ToString(schema);
  }
  out << "}, <";
  for (size_t i = 0; i < measures.size(); ++i) {
    if (i > 0) out << ", ";
    out << schema.measure(static_cast<int>(measures[i])).name;
  }
  out << ">)]";
  if (!alias.empty()) out << " -> " << alias;
  return out.str();
}

}  // namespace assess
