#include "functions/builtin_functions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "functions/function_registry.h"
#include "olap/cube.h"

namespace assess {

namespace {

Status ExpectInputs(const std::vector<std::span<const double>>& inputs,
                    size_t n, const char* name) {
  if (inputs.size() != n) {
    return Status::InvalidArgument(std::string(name) + " expects " +
                                   std::to_string(n) + " input column(s)");
  }
  return Status::OK();
}

Status MinMaxNorm(const std::vector<std::span<const double>>& inputs,
                  std::span<double> out) {
  ASSESS_RETURN_NOT_OK(ExpectInputs(inputs, 1, "minMaxNorm"));
  const auto& a = inputs[0];
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : a) {
    if (IsNullMeasure(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double range = hi - lo;
  for (size_t i = 0; i < a.size(); ++i) {
    if (IsNullMeasure(a[i])) {
      out[i] = kNullMeasure;
    } else if (range == 0.0) {
      // Degenerate distribution: everything maps to the midpoint.
      out[i] = 0.5;
    } else {
      out[i] = (a[i] - lo) / range;
    }
  }
  return Status::OK();
}

Status ZScore(const std::vector<std::span<const double>>& inputs,
              std::span<double> out) {
  ASSESS_RETURN_NOT_OK(ExpectInputs(inputs, 1, "zscore"));
  const auto& a = inputs[0];
  double sum = 0.0;
  int64_t n = 0;
  for (double v : a) {
    if (IsNullMeasure(v)) continue;
    sum += v;
    ++n;
  }
  if (n == 0) {
    std::fill(out.begin(), out.end(), kNullMeasure);
    return Status::OK();
  }
  double mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (double v : a) {
    if (IsNullMeasure(v)) continue;
    ss += (v - mean) * (v - mean);
  }
  double stddev = std::sqrt(ss / static_cast<double>(n));
  for (size_t i = 0; i < a.size(); ++i) {
    if (IsNullMeasure(a[i])) {
      out[i] = kNullMeasure;
    } else if (stddev == 0.0) {
      out[i] = 0.0;
    } else {
      out[i] = (a[i] - mean) / stddev;
    }
  }
  return Status::OK();
}

Status PercOfTotal(const std::vector<std::span<const double>>& inputs,
                   std::span<double> out) {
  if (inputs.empty() || inputs.size() > 2) {
    return Status::InvalidArgument(
        "percOfTotal expects 1 or 2 input column(s)");
  }
  const auto& a = inputs[0];
  // Single-argument form: each value against the total of its own column.
  const auto& b = inputs.size() == 2 ? inputs[1] : inputs[0];
  double total = 0.0;
  for (double v : b) {
    if (!IsNullMeasure(v)) total += v;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (IsNullMeasure(a[i]) || total == 0.0) {
      out[i] = kNullMeasure;
    } else {
      out[i] = a[i] / total;
    }
  }
  return Status::OK();
}

Status Rank(const std::vector<std::span<const double>>& inputs,
            std::span<double> out) {
  ASSESS_RETURN_NOT_OK(ExpectInputs(inputs, 1, "rank"));
  const auto& a = inputs[0];
  std::vector<size_t> order;
  order.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (!IsNullMeasure(a[i])) order.push_back(i);
  }
  std::sort(order.begin(), order.end(),
            [&a](size_t x, size_t y) { return a[x] > a[y]; });
  std::fill(out.begin(), out.end(), kNullMeasure);
  // Competition ranking: ties share the rank of their first occurrence.
  for (size_t pos = 0; pos < order.size(); ++pos) {
    if (pos > 0 && a[order[pos]] == a[order[pos - 1]]) {
      out[order[pos]] = out[order[pos - 1]];
    } else {
      out[order[pos]] = static_cast<double>(pos + 1);
    }
  }
  return Status::OK();
}

Status PercentileRank(const std::vector<std::span<const double>>& inputs,
                      std::span<double> out) {
  ASSESS_RETURN_NOT_OK(Rank(inputs, out));
  int64_t n = 0;
  for (double v : inputs[0]) {
    if (!IsNullMeasure(v)) ++n;
  }
  for (double& v : out) {
    if (!IsNullMeasure(v) && n > 0) v /= static_cast<double>(n);
  }
  return Status::OK();
}

void RegisterCell(FunctionRegistry* registry, const char* name, int arity,
                  CellFn fn, const char* doc) {
  FunctionDef def;
  def.name = name;
  def.kind = FunctionKind::kCell;
  def.arity = arity;
  def.cell = std::move(fn);
  def.doc = doc;
  // Builtins are registered into a fresh registry: collision is impossible.
  Status st = registry->Register(std::move(def));
  (void)st;
}

void RegisterHolistic(FunctionRegistry* registry, const char* name, int arity,
                      HolisticFn fn, const char* doc) {
  FunctionDef def;
  def.name = name;
  def.kind = FunctionKind::kHolistic;
  def.arity = arity;
  def.holistic = std::move(fn);
  def.doc = doc;
  Status st = registry->Register(std::move(def));
  (void)st;
}

}  // namespace

void RegisterBuiltinFunctions(FunctionRegistry* registry) {
  RegisterCell(
      registry, "difference", 2,
      [](std::span<const double> a) { return a[0] - a[1]; },
      "difference(a, b) = a - b");
  RegisterCell(
      registry, "absoluteDifference", 2,
      [](std::span<const double> a) { return std::fabs(a[0] - a[1]); },
      "absoluteDifference(a, b) = |a - b|");
  RegisterCell(
      registry, "ratio", 2,
      [](std::span<const double> a) {
        return a[1] == 0.0 ? kNullMeasure : a[0] / a[1];
      },
      "ratio(a, b) = a / b");
  RegisterCell(
      registry, "percentage", 2,
      [](std::span<const double> a) {
        return a[1] == 0.0 ? kNullMeasure : 100.0 * a[0] / a[1];
      },
      "percentage(a, b) = 100 * a / b");
  RegisterCell(
      registry, "normalizedDifference", 2,
      [](std::span<const double> a) {
        return a[1] == 0.0 ? kNullMeasure : (a[0] - a[1]) / a[1];
      },
      "normalizedDifference(a, b) = (a - b) / b");
  RegisterCell(
      registry, "identity", 1,
      [](std::span<const double> a) { return a[0]; }, "identity(a) = a");
  RegisterCell(
      registry, "neg", 1, [](std::span<const double> a) { return -a[0]; },
      "neg(a) = -a");
  RegisterCell(
      registry, "abs", 1,
      [](std::span<const double> a) { return std::fabs(a[0]); },
      "abs(a) = |a|");

  RegisterHolistic(registry, "minMaxNorm", 1, MinMaxNorm,
                   "minMaxNorm(a) = (a - min a) / (max a - min a)");
  RegisterHolistic(registry, "zscore", 1, ZScore,
                   "zscore(a) = (a - mean a) / stddev a");
  RegisterHolistic(registry, "percOfTotal", -1, PercOfTotal,
                   "percOfTotal(a[, b]) = a / sum(b); sum(a) when b omitted");
  RegisterHolistic(registry, "rank", 1, Rank,
                   "rank(a): 1-based descending competition rank");
  RegisterHolistic(registry, "percentileRank", 1, PercentileRank,
                   "percentileRank(a): rank(a) / count");
}

}  // namespace assess
