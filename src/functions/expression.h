#ifndef ASSESS_FUNCTIONS_EXPRESSION_H_
#define ASSESS_FUNCTIONS_EXPRESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "functions/function_registry.h"
#include "olap/cube.h"

namespace assess {

/// \brief A nestable using-clause expression (Section 3.2): a functional
/// composition of library functions over measures, benchmark measures and
/// numeric constants, e.g. minMaxNorm(difference(storeSales, 1000)).
struct FuncExpr {
  enum class Kind {
    kCall,        ///< name(args...)
    kMeasureRef,  ///< a measure name, possibly dotted ("benchmark.quantity")
    kNumber,      ///< a numeric literal
  };

  Kind kind = Kind::kNumber;
  std::string name;  // function name (kCall) or measure name (kMeasureRef)
  double number = 0.0;
  std::vector<FuncExpr> args;

  static FuncExpr Call(std::string fn, std::vector<FuncExpr> arguments);
  static FuncExpr Measure(std::string measure);
  static FuncExpr Number(double value);

  /// \brief Renders in surface syntax, e.g. "ratio(quantity, 1000)".
  std::string ToString() const;

  friend bool operator==(const FuncExpr& a, const FuncExpr& b);
};

/// \brief Applies `expr` to `cube` by decomposing it into a chain of
/// cell-transforms (⊟) and H-transforms (⊡), one per function call, exactly
/// as the semantics of Section 4.3 prescribes. Each call appends a measure
/// column named after its function (disambiguated when reused); numeric
/// literals become constant columns on demand.
///
/// Returns the name of the measure holding the outermost expression's value
/// (the comparison measure m_Δ). A bare measure reference adds no columns.
Result<std::string> ApplyExpression(const FuncExpr& expr,
                                    const FunctionRegistry& registry,
                                    Cube* cube);

}  // namespace assess

#endif  // ASSESS_FUNCTIONS_EXPRESSION_H_
