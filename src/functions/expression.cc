#include "functions/expression.h"

#include "common/str_util.h"

namespace assess {

FuncExpr FuncExpr::Call(std::string fn, std::vector<FuncExpr> arguments) {
  FuncExpr e;
  e.kind = Kind::kCall;
  e.name = std::move(fn);
  e.args = std::move(arguments);
  return e;
}

FuncExpr FuncExpr::Measure(std::string measure) {
  FuncExpr e;
  e.kind = Kind::kMeasureRef;
  e.name = std::move(measure);
  return e;
}

FuncExpr FuncExpr::Number(double value) {
  FuncExpr e;
  e.kind = Kind::kNumber;
  e.number = value;
  return e;
}

std::string FuncExpr::ToString() const {
  switch (kind) {
    case Kind::kNumber:
      return FormatNumber(number);
    case Kind::kMeasureRef:
      return name;
    case Kind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i].ToString();
      }
      return out + ")";
    }
  }
  return "";
}

bool operator==(const FuncExpr& a, const FuncExpr& b) {
  return a.kind == b.kind && a.name == b.name && a.number == b.number &&
         a.args == b.args;
}

namespace {

// Picks an unused measure-column name derived from `base`.
std::string UniqueName(const Cube& cube, const std::string& base) {
  if (!cube.MeasureIndex(base).ok()) return base;
  for (int i = 2;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (!cube.MeasureIndex(candidate).ok()) return candidate;
  }
}

// Recursively applies `expr`, returning the name of the measure holding its
// value.
Result<std::string> Apply(const FuncExpr& expr,
                          const FunctionRegistry& registry, Cube* cube) {
  switch (expr.kind) {
    case FuncExpr::Kind::kMeasureRef: {
      ASSESS_RETURN_NOT_OK(cube->MeasureIndex(expr.name).status());
      return expr.name;
    }
    case FuncExpr::Kind::kNumber: {
      std::string name = "$" + FormatNumber(expr.number);
      if (!cube->MeasureIndex(name).ok()) {
        AddConstantMeasure(cube, name, expr.number);
      }
      return name;
    }
    case FuncExpr::Kind::kCall: {
      ASSESS_ASSIGN_OR_RETURN(const FunctionDef* def,
                              registry.Find(expr.name));
      if (def->arity >= 0 &&
          def->arity != static_cast<int>(expr.args.size())) {
        return Status::InvalidArgument(
            "function '" + def->name + "' expects " +
            std::to_string(def->arity) + " argument(s), got " +
            std::to_string(expr.args.size()));
      }
      std::vector<std::string> inputs;
      inputs.reserve(expr.args.size());
      for (const FuncExpr& arg : expr.args) {
        ASSESS_ASSIGN_OR_RETURN(std::string input,
                                Apply(arg, registry, cube));
        inputs.push_back(std::move(input));
      }
      std::string out_name = UniqueName(*cube, def->name);
      if (def->kind == FunctionKind::kCell) {
        ASSESS_RETURN_NOT_OK(CellTransform(cube, out_name, inputs, def->cell));
      } else {
        ASSESS_RETURN_NOT_OK(
            HTransform(cube, out_name, inputs, def->holistic));
      }
      return out_name;
    }
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace

Result<std::string> ApplyExpression(const FuncExpr& expr,
                                    const FunctionRegistry& registry,
                                    Cube* cube) {
  return Apply(expr, registry, cube);
}

}  // namespace assess
