#ifndef ASSESS_FUNCTIONS_FUNCTION_REGISTRY_H_
#define ASSESS_FUNCTIONS_FUNCTION_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/operators.h"
#include "common/result.h"

namespace assess {

/// \brief Kind of a library function (Section 3.2): cell functions apply
/// per cell (⊟); holistic functions need the whole cube (⊡).
enum class FunctionKind {
  kCell,
  kHolistic,
};

/// \brief A registered comparison/transformation function.
struct FunctionDef {
  std::string name;
  FunctionKind kind = FunctionKind::kCell;
  /// Number of arguments; -1 for variadic.
  int arity = 2;
  CellFn cell;
  HolisticFn holistic;
  std::string doc;
};

/// \brief The library of comparison/transformation functions available in
/// using clauses (all with signature δ per Section 3.2), keyed by
/// case-insensitive name.
///
/// Default() returns a registry preloaded with the builtins (difference,
/// ratio, minMaxNorm, percOfTotal, zscore, ...); users can register more.
class FunctionRegistry {
 public:
  /// \brief A registry preloaded with all builtin functions.
  static FunctionRegistry Default();

  /// \brief Registers `def`; fails on duplicate names.
  Status Register(FunctionDef def);

  Result<const FunctionDef*> Find(std::string_view name) const;
  bool Contains(std::string_view name) const;

  /// \brief Sorted names of all registered functions.
  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, FunctionDef> functions_;
};

}  // namespace assess

#endif  // ASSESS_FUNCTIONS_FUNCTION_REGISTRY_H_
