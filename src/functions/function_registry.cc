#include "functions/function_registry.h"

#include <algorithm>

#include "common/str_util.h"
#include "functions/builtin_functions.h"

namespace assess {

FunctionRegistry FunctionRegistry::Default() {
  FunctionRegistry registry;
  RegisterBuiltinFunctions(&registry);
  return registry;
}

Status FunctionRegistry::Register(FunctionDef def) {
  std::string key = ToLower(def.name);
  auto [it, inserted] = functions_.emplace(std::move(key), std::move(def));
  if (!inserted) {
    return Status::AlreadyExists("function '" + it->second.name +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<const FunctionDef*> FunctionRegistry::Find(
    std::string_view name) const {
  auto it = functions_.find(ToLower(name));
  if (it == functions_.end()) {
    return Status::NotFound("no function '" + std::string(name) +
                            "' in the library");
  }
  return &it->second;
}

bool FunctionRegistry::Contains(std::string_view name) const {
  return functions_.count(ToLower(name)) > 0;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [key, def] : functions_) names.push_back(def.name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace assess
