#ifndef ASSESS_FUNCTIONS_BUILTIN_FUNCTIONS_H_
#define ASSESS_FUNCTIONS_BUILTIN_FUNCTIONS_H_

namespace assess {

class FunctionRegistry;

/// \brief Registers the builtin comparison/transformation library into
/// `registry`.
///
/// Cell functions (per-cell, ⊟-compatible):
///  - difference(a, b)            a - b
///  - absoluteDifference(a, b)    |a - b|
///  - ratio(a, b)                 a / b           (null when b == 0)
///  - percentage(a, b)            100 * a / b     (null when b == 0)
///  - normalizedDifference(a, b)  (a - b) / b     (null when b == 0)
///  - identity(a)                 a
///  - neg(a)                      -a
///  - abs(a)                      |a|
///
/// Holistic functions (whole-cube, ⊡-compatible):
///  - minMaxNorm(a)        (a - min a) / (max a - min a)
///  - zscore(a)            (a - mean a) / stddev a
///  - percOfTotal(a, b)    a / sum(b)   (Example 4.3 of the paper)
///  - rank(a)              1-based rank of a, descending (ties share rank)
///  - percentileRank(a)    rank normalized into (0, 1]
void RegisterBuiltinFunctions(FunctionRegistry* registry);

}  // namespace assess

#endif  // ASSESS_FUNCTIONS_BUILTIN_FUNCTIONS_H_
