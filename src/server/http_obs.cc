#include "server/http_obs.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "server/protocol.h"

namespace assess {
namespace {

// Prebuilt error responses: the error path writes these literals straight
// to the socket and allocates nothing.
constexpr char kBadRequest[] =
    "HTTP/1.0 400 Bad Request\r\n"
    "Content-Type: text/plain\r\n"
    "Content-Length: 12\r\n"
    "Connection: close\r\n"
    "\r\n"
    "bad request\n";
constexpr char kNotFound[] =
    "HTTP/1.0 404 Not Found\r\n"
    "Content-Type: text/plain\r\n"
    "Content-Length: 10\r\n"
    "Connection: close\r\n"
    "\r\n"
    "not found\n";
constexpr char kDraining[] =
    "HTTP/1.0 503 Service Unavailable\r\n"
    "Content-Type: text/plain\r\n"
    "Content-Length: 9\r\n"
    "Connection: close\r\n"
    "\r\n"
    "draining\n";
constexpr char kHealthy[] =
    "HTTP/1.0 200 OK\r\n"
    "Content-Type: text/plain\r\n"
    "Content-Length: 3\r\n"
    "Connection: close\r\n"
    "\r\n"
    "ok\n";

bool SendAll(int fd, const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

void SendStatic(int fd, const char* response, size_t len) {
  SendAll(fd, response, len);
}

void SendBody(int fd, const char* content_type, const std::string& body) {
  char header[160];
  int n = std::snprintf(header, sizeof(header),
                        "HTTP/1.0 200 OK\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n"
                        "\r\n",
                        content_type, body.size());
  if (n <= 0) return;
  if (!SendAll(fd, header, static_cast<size_t>(n))) return;
  SendAll(fd, body.data(), body.size());
}

}  // namespace

HttpObsServer::HttpObsServer(HttpObsOptions options, Handlers handlers)
    : options_(std::move(options)), handlers_(std::move(handlers)) {}

HttpObsServer::~HttpObsServer() { Stop(); }

Status HttpObsServer::Start() {
  if (started_) return Status::InvalidArgument("http listener already started");
  ASSESS_ASSIGN_OR_RETURN(
      ListenSocket listener,
      ListenOn(options_.host, options_.port, options_.listen_backlog));
  listen_fd_ = listener.fd;
  port_ = listener.port;
  started_ = true;
  thread_ = std::thread(&HttpObsServer::Serve, this);
  return Status::OK();
}

void HttpObsServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
}

void HttpObsServer::Serve() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    timeval recv_timeout{};
    recv_timeout.tv_sec = options_.recv_timeout_ms / 1000;
    recv_timeout.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
                 sizeof(recv_timeout));
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    HandleConnection(fd);
    CloseSocket(fd);
  }
}

void HttpObsServer::HandleConnection(int fd) {
  // Read until the end of the headers, a fixed cap, or the deadline. The
  // buffer is on the stack; only the request line is ever parsed.
  char buf[8192];
  const size_t cap = options_.max_request_bytes < sizeof(buf)
                         ? options_.max_request_bytes
                         : sizeof(buf);
  size_t have = 0;
  bool complete = false;
  while (have < cap) {
    ssize_t n = ::recv(fd, buf + have, cap - have, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      requests_.fetch_add(1, std::memory_order_relaxed);
      SendStatic(fd, kBadRequest, sizeof(kBadRequest) - 1);
      return;  // timeout or error mid-request
    }
    if (n == 0) break;
    have += static_cast<size_t>(n);
    for (size_t i = 3; i < have; ++i) {
      if (buf[i - 3] == '\r' && buf[i - 2] == '\n' && buf[i - 1] == '\r' &&
          buf[i] == '\n') {
        complete = true;
        break;
      }
    }
    if (complete) break;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!complete) {
    SendStatic(fd, kBadRequest, sizeof(kBadRequest) - 1);
    return;
  }

  // Request line: "GET <path> HTTP/1.x". Anything else is malformed.
  const char* line_end = static_cast<const char*>(std::memchr(buf, '\r', have));
  const size_t line_len = static_cast<size_t>(line_end - buf);
  if (line_len < 14 || std::memcmp(buf, "GET ", 4) != 0) {
    SendStatic(fd, kBadRequest, sizeof(kBadRequest) - 1);
    return;
  }
  const char* path = buf + 4;
  const char* path_end =
      static_cast<const char*>(std::memchr(path, ' ', line_len - 4));
  if (path_end == nullptr ||
      std::memcmp(path_end + 1, "HTTP/1.", 7) != 0) {
    SendStatic(fd, kBadRequest, sizeof(kBadRequest) - 1);
    return;
  }
  const size_t path_len = static_cast<size_t>(path_end - path);

  auto is = [&](const char* route) {
    return path_len == std::strlen(route) &&
           std::memcmp(path, route, path_len) == 0;
  };
  if (is("/healthz")) {
    const bool healthy = handlers_.healthy ? handlers_.healthy() : true;
    if (healthy) {
      SendStatic(fd, kHealthy, sizeof(kHealthy) - 1);
    } else {
      SendStatic(fd, kDraining, sizeof(kDraining) - 1);
    }
    return;
  }
  if (is("/metrics") && handlers_.metrics) {
    SendBody(fd, "text/plain; version=0.0.4", handlers_.metrics());
    return;
  }
  if (is("/workload") && handlers_.workload) {
    SendBody(fd, "application/json", handlers_.workload());
    return;
  }
  if (is("/traces") && handlers_.traces) {
    SendBody(fd, "application/json", handlers_.traces());
    return;
  }
  SendStatic(fd, kNotFound, sizeof(kNotFound) - 1);
}

}  // namespace assess
