#ifndef ASSESS_SERVER_PROTOCOL_H_
#define ASSESS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "ingest/ingest.h"

namespace assess {

/// \brief The assessd wire protocol: a length-prefixed framed request /
/// response exchange over TCP, shared by the server (src/server/assessd.h)
/// and the client library (src/client/assess_client.h).
///
/// Frame layout (all on-wire integers little-endian):
///
///   frame := length(u32 LE) | type(u8) | payload(length - 1 bytes)
///          | crc32c(u32 LE)
///
/// `length` counts the type byte plus the payload, so a valid frame has
/// length >= 1; frames whose length exceeds the configured maximum
/// (kDefaultMaxFrameBytes unless overridden) are rejected with
/// kFrameTooLarge without reading the payload — the peer cannot make the
/// receiver allocate unboundedly. The trailer is the CRC32C of the type
/// byte plus the payload; a mismatch surfaces as a typed kCorruptFrame
/// error instead of a garbled result, so bit flips anywhere between the
/// peers are detected, not silently decoded. (The length prefix is not
/// covered: a corrupted length either trips the cap, fails the shifted
/// CRC check, or leaves the receiver waiting — which the client-side read
/// deadline converts into a retryable kTimeout.)
///
/// Exchange model: strict request/response per connection. The client sends
/// one request frame and reads exactly one response frame before sending the
/// next; the server serves many connections concurrently but at most one
/// in-flight request per connection.
///
///   request  kQuery  payload = request_id(u64 LE) | statement (UTF-8 text)
///            kStats  payload empty; server answers with kStatsReply
///            kPing   payload empty; liveness probe
///            kFailpoint payload = failpoint spec (common/failpoint.h);
///                     admin frame, refused unless the server allows it
///            kMetrics payload empty; admin frame answered with the
///                     Prometheus-style text exposition of the process
///                     metrics registry plus this server's own series
///            kExplainAnalyze payload = request_id(u64 LE) | statement;
///                     executes like kQuery but under a trace, answering
///                     with the rendered EXPLAIN ANALYZE text (never
///                     deduplicated or replayed — each run re-measures)
///   request  kIngest payload = request_id(u64 LE) | cube_len(u16 LE) |
///                     cube name | format(u8, IngestFormat) | flags(u8,
///                     bit0 = auto-insert members) | row text (CSV/JSONL).
///                     Streams rows into the served database; refused with
///                     kNotSupported unless the server was started with an
///                     ingest-enabled (mutable) database. The request id is
///                     the same idempotency key kQuery uses: a retried
///                     ingest replays its stored reply instead of appending
///                     the rows twice.
///   response kResult payload = SerializeAssessResult bytes
///            kError  payload = SerializeStatus bytes (typed code + message)
///            kStatsReply payload = ServerStats::Serialize bytes
///            kPong   payload empty
///            kFailpointReply payload = armed-failpoint listing (text)
///            kMetricsReply payload = metrics exposition (text)
///            kExplainReply payload = EXPLAIN ANALYZE rendering (text)
///            kIngestReply payload = IngestStats::Serialize bytes
///
/// The kQuery request id is the client's idempotency key: a nonzero id
/// identifies one logical request across retries and reconnections, and the
/// server replays the stored response for an id it has already answered
/// instead of executing again. Id 0 opts out.
///
/// Malformed traffic (length 0, oversized length, unknown type, truncated
/// frame, CRC mismatch, garbage) terminates only the offending connection:
/// the server answers with a typed kError frame when the stream is still
/// framable and closes the socket, leaving every other connection serving.
enum class FrameType : uint8_t {
  kQuery = 0x01,
  kStats = 0x02,
  kPing = 0x03,
  kFailpoint = 0x04,
  kMetrics = 0x05,
  kExplainAnalyze = 0x06,
  kIngest = 0x07,
  kWorkload = 0x08,  ///< payload empty; answered with kWorkloadReply (the
                     ///< server's workload-profile + MV-advisor report)
  kResult = 0x11,
  kError = 0x12,
  kStatsReply = 0x13,
  kPong = 0x14,
  kFailpointReply = 0x15,
  kMetricsReply = 0x16,
  kExplainReply = 0x17,
  kIngestReply = 0x18,
  kWorkloadReply = 0x19,  ///< payload = workload report (text)
};

/// Wire versioning of the trace-id extension: a frame whose type byte has
/// this bit set carries a u64 LE trace id as the first 8 payload bytes
/// (inside the length and the CRC trailer, so framing and integrity are
/// unchanged). Decoders that predate the extension reject the flagged type
/// byte as an unknown frame type and close only that connection — exactly
/// the contract for traffic from a newer peer — while new decoders strip
/// the flag, extract the id into Frame::trace_id, and hand the payload on
/// unchanged. A trace id of 0 means "untraced" and is sent without the flag,
/// so old servers and new clients interoperate whenever tracing is off.
inline constexpr uint8_t kFrameTraceIdFlag = 0x80;

/// Frames larger than this are protocol violations by default; both sides
/// take the cap as a parameter so deployments can raise it.
inline constexpr size_t kDefaultMaxFrameBytes = size_t{16} << 20;  // 16 MiB

/// The port assessd binds when none is given (0 picks an ephemeral port).
inline constexpr uint16_t kDefaultPort = 7117;

/// \brief One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
  /// The trace id carried by the kFrameTraceIdFlag extension; 0 when the
  /// frame was untraced.
  uint64_t trace_id = 0;
};

/// \brief Builds the full wire bytes of one frame — length prefix, type,
/// payload and CRC32C trailer. Shared by WriteFrame and by tests that need
/// to splice valid (or deliberately damaged) frames onto a raw socket.
/// A nonzero `trace_id` sets kFrameTraceIdFlag on the type byte and
/// prefixes the payload with the u64 LE id.
std::string EncodeFrame(FrameType type, std::string_view payload,
                        uint64_t trace_id = 0);

/// \brief Writes one frame to `fd`, looping over partial sends and EINTR.
/// Uses MSG_NOSIGNAL, so writing to a dead peer yields kUnavailable rather
/// than SIGPIPE; a socket send deadline (SO_SNDTIMEO) that expires yields
/// kTimeout. A nonzero `trace_id` is carried via kFrameTraceIdFlag.
Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  uint64_t trace_id = 0);

/// \brief Reads one frame from `fd` into `*out`.
///
/// Returns kUnavailable("connection closed") on a clean close at a frame
/// boundary, kUnavailable("...mid-frame...") when the peer vanished partway
/// through a frame, kTimeout when a socket receive deadline (SO_RCVTIMEO)
/// expires, kFrameTooLarge when the announced length exceeds
/// `max_frame_bytes`, kCorruptFrame when the CRC32C trailer does not match
/// the received bytes, and kInvalidArgument when the stream is otherwise
/// unframable (length 0, unknown frame type). On every non-OK return except
/// kTimeout the stream is untrustworthy and the caller should close it.
Status ReadFrame(int fd, size_t max_frame_bytes, Frame* out);

/// \brief Encodes a kQuery payload: the idempotency request id followed by
/// the statement text.
std::string EncodeQueryPayload(uint64_t request_id,
                               std::string_view statement);

/// \brief Splits a kQuery payload into id and statement (a view into
/// `payload`, which must outlive it).
Status DecodeQueryPayload(std::string_view payload, uint64_t* request_id,
                          std::string_view* statement);

/// \brief Encodes a kIngest payload: request_id(u64 LE) | cube_len(u16 LE) |
/// cube name | format(u8) | flags(u8, bit0 = auto-insert members) | row text.
std::string EncodeIngestPayload(uint64_t request_id, std::string_view cube,
                                IngestFormat format, uint8_t flags,
                                std::string_view text);

/// Flag bits carried in the kIngest flags byte.
inline constexpr uint8_t kIngestFlagAutoInsert = 0x01;

/// \brief Splits a kIngest payload; `cube` and `text` view into `payload`,
/// which must outlive them. kInvalidArgument on truncation or an unknown
/// format byte.
Status DecodeIngestPayload(std::string_view payload, uint64_t* request_id,
                           std::string_view* cube, IngestFormat* format,
                           uint8_t* flags, std::string_view* text);

/// \brief Opens a listening TCP socket on host:port (port 0 = ephemeral).
/// Returns the fd and the actually bound port.
struct ListenSocket {
  int fd = -1;
  uint16_t port = 0;
};
Result<ListenSocket> ListenOn(const std::string& host, uint16_t port,
                              int backlog);

/// \brief Connects to host:port; returns the connected fd. A positive
/// `timeout_ms` bounds the TCP handshake (a dead-but-routable host
/// otherwise blocks in connect(2) indefinitely) and fails with kTimeout;
/// <= 0 keeps the OS default blocking behavior.
Result<int> ConnectTo(const std::string& host, uint16_t port,
                      int64_t timeout_ms = 0);

/// \brief Closes `fd` if open (EINTR-safe, idempotent with fd < 0).
void CloseSocket(int fd);

/// \brief The server-side counters a kStats request returns: request
/// outcomes, backpressure state, client-observed latency percentiles and
/// the shared result cache's counters. All values are a point-in-time
/// snapshot.
struct ServerStats {
  uint64_t total_requests = 0;     ///< query frames admitted or rejected
  uint64_t ok_responses = 0;       ///< kResult responses sent
  uint64_t error_responses = 0;    ///< kError responses (excluding below)
  uint64_t rejected_overload = 0;  ///< admission-control rejections
  uint64_t timeouts = 0;           ///< per-request deadline violations
  uint64_t queued = 0;             ///< requests waiting for a worker
  uint64_t in_flight = 0;          ///< requests executing right now
  uint64_t connections = 0;        ///< open client connections
  uint64_t worker_threads = 0;     ///< size of the worker pool
  double p50_ms = 0.0;             ///< request latency percentiles from the
  double p90_ms = 0.0;             ///< server's histogram (queue wait +
  double p99_ms = 0.0;             ///< execution + serialization)
  uint64_t cache_lookups = 0;      ///< shared result cache counters
  uint64_t cache_exact_hits = 0;
  uint64_t cache_subsumption_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  uint64_t pool_workers = 0;      ///< shared task pool: worker threads
  uint64_t pool_queue_depth = 0;  ///< scan jobs with unclaimed morsels
  uint64_t morsels_scanned = 0;   ///< morsels aggregated, all sessions
  uint64_t morsels_skipped = 0;   ///< morsels pruned by zone maps
  // v3: observability counters. The latency percentiles above are estimated
  // from a fixed-bucket histogram over the server's whole lifetime (not a
  // sliding window); latency_samples is that histogram's total count.
  uint64_t latency_samples = 0;  ///< requests measured into the histogram
  uint64_t slow_queries = 0;     ///< queries over --slow-query-ms
  uint64_t traces_sampled = 0;   ///< queries executed under a trace
  uint64_t trace_spans = 0;      ///< spans recorded across those traces
  // v4: ingestion counters (zero on a read-only server).
  uint64_t ingest_rows = 0;     ///< fact rows appended via kIngest
  uint64_t ingest_batches = 0;  ///< epoch-stamped commits those rows made
  uint64_t cache_epoch_invalidations = 0;  ///< stale-epoch entries swept
  // v5: durability counters (zero on a server without --data-dir).
  uint64_t wal_appends = 0;     ///< WAL records appended
  uint64_t wal_fsyncs = 0;      ///< fsync(2) calls the WAL issued (group
                                ///< commit makes this < appends under load)
  uint64_t wal_bytes = 0;       ///< framed WAL bytes written
  uint64_t checkpoints = 0;     ///< checkpoints published this run
  uint64_t recovery_replayed_records = 0;  ///< WAL records startup replayed
  uint64_t recovery_truncated_bytes = 0;   ///< torn-tail bytes dropped
  // v6: multi-query optimization counters (zero when --mqo-window-us is 0).
  uint64_t mqo_batches = 0;        ///< micro-batch flushes holding >= 2 queries
  uint64_t mqo_queries_batched = 0;  ///< queries flushed in such batches
  uint64_t mqo_shared_scans = 0;     ///< shared-scan group executions
  uint64_t mqo_queries_piggybacked = 0;  ///< queries answered by a batch-mate's
                                         ///< scan instead of their own
  // v7: workload-intelligence counters.
  uint64_t workload_fingerprints = 0;  ///< live profiled query fingerprints
  uint64_t workload_evictions = 0;     ///< fingerprints evicted by the LRU cap
  uint64_t http_requests = 0;          ///< requests the observability HTTP
                                       ///< listener has served
  uint64_t trace_ids_received = 0;     ///< frames carrying a client trace id

  double cache_hit_rate() const {
    return cache_lookups > 0
               ? static_cast<double>(cache_exact_hits +
                                     cache_subsumption_hits) /
                     static_cast<double>(cache_lookups)
               : 0.0;
  }

  std::string Serialize() const;
  static Result<ServerStats> Deserialize(std::string_view data);

  /// \brief Multi-line human-readable rendering (the CLI's \stats output).
  std::string ToString() const;
};

}  // namespace assess

#endif  // ASSESS_SERVER_PROTOCOL_H_
