// assessd: serves a star database to remote assess sessions over TCP.
//
//   assessd [--sales | --ssb [--sf X]] [--host H] [--port P] [--workers N]
//           [--engine-threads N] [--queue N] [--timeout-ms N] [--cache-mb N]
//           [--max-frame-mb N] [--failpoints SPEC] [--failpoint-admin]
//           [--slow-query-ms N] [--trace-sample X]
//           [--http-port P] [--workload-profile on|off]
//           [--mqo-window-us N] [--mqo-max-batch N]
//           [--ingest] [--ingest-auto-insert] [--ingest-max-errors N]
//           [--data-dir DIR] [--fsync-mode none|batch|group]
//           [--checkpoint-wal-mb N]
//
// Loads the database once, then serves the framed protocol of
// server/protocol.h until SIGINT/SIGTERM, which trigger a graceful drain
// (in-flight and queued requests complete, new ones are rejected). Connect
// with `assess_client` or `assess_cli --connect host:port`.
//
// With --data-dir, the database lives in DIR across restarts: the first
// boot seals the generated database as checkpoint 1, every ingested batch
// is write-ahead-logged and fsynced before its receipt, and a restart
// recovers the newest checkpoint plus the WAL tail — so an acknowledged
// batch survives a crash (kill -9 included).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "server/assessd.h"
#include "ssb/sales_generator.h"
#include "ssb/ssb_generator.h"
#include "wal/durability.h"

namespace {

// Signal handlers may only touch lock-free state; the main thread sleeps in
// sigwait-style polling on this flag and runs the actual drain.
volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--sales | --ssb] [--sf X] [--host H] [--port P]\n"
      "          [--workers N] [--engine-threads N] [--queue N]\n"
      "          [--timeout-ms N] [--cache-mb N] [--max-frame-mb N]\n"
      "          [--failpoints SPEC] [--failpoint-admin]\n"
      "          [--slow-query-ms N] [--trace-sample X]\n"
      "          [--http-port P] [--workload-profile on|off]\n"
      "          [--mqo-window-us N] [--mqo-max-batch N]\n"
      "          [--ingest] [--ingest-auto-insert] [--ingest-max-errors N]\n"
      "          [--data-dir DIR] [--fsync-mode none|batch|group]\n"
      "          [--checkpoint-wal-mb N]\n"
      "Serves the SALES (default) or SSB database on H:P (default "
      "127.0.0.1:%u).\n"
      "--engine-threads caps how many shared-pool workers one query's scan\n"
      "may occupy (default: the pool's own parallelism).\n"
      "--failpoints arms fault-injection points at startup (see\n"
      "common/failpoint.h for the spec grammar); --failpoint-admin lets\n"
      "clients arm them at runtime via the kFailpoint frame. Both need a\n"
      "build with ASSESS_FAILPOINTS=ON.\n"
      "--slow-query-ms dumps the span tree of queries at or over N ms to\n"
      "stderr (needs ASSESS_TRACING=ON); --trace-sample X traces only that\n"
      "fraction of queries (deterministic, default 1).\n"
      "--http-port serves the read-only observability endpoint on\n"
      "127.0.0.1:P (/metrics Prometheus exposition, /healthz drain-aware\n"
      "health, /workload profile + MV-advisor report, /traces recent span\n"
      "trees); 0 binds an ephemeral port. Off without the flag.\n"
      "--workload-profile=off disables the per-fingerprint workload\n"
      "profiler (kill switch; default on).\n"
      "--mqo-window-us holds admitted queries for N microseconds so\n"
      "concurrent statements sharing a cube, selection and fact epoch run\n"
      "as one fused shared scan (multi-query optimization). 0 (default)\n"
      "disables it; a few hundred µs batches concurrent clients without\n"
      "denting interactive latency. --mqo-max-batch flushes a window early\n"
      "once N queries are pending (default 16). Responses are bit-identical\n"
      "with MQO on or off.\n"
      "--ingest accepts kIngest row streams (the server is read-only\n"
      "without it); --ingest-auto-insert lets streamed rows add new\n"
      "dimension members; --ingest-max-errors tolerates N malformed rows\n"
      "per load before aborting it (default 0).\n"
      "--data-dir makes ingestion durable: batches are write-ahead-logged\n"
      "and fsynced before their receipts, and a restart recovers the\n"
      "newest checkpoint plus the WAL tail. --fsync-mode picks how commits\n"
      "sync (group = coalesced fsync, default; batch = one fsync per\n"
      "commit; none = no sync, crash may lose acknowledged batches).\n"
      "--checkpoint-wal-mb snapshots the database once that much WAL\n"
      "accumulated (default 128, 0 = only at shutdown).\n",
      argv0, assess::kDefaultPort);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool use_ssb = false;
  bool ingest_enabled = false;
  double scale_factor = 0.02;
  std::string data_dir;
  assess::DurabilityOptions durability_options;
  assess::ServerOptions options;
  options.port = assess::kDefaultPort;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--ssb") {
      use_ssb = true;
    } else if (arg == "--sales") {
      use_ssb = false;
    } else if (arg == "--sf") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      scale_factor = std::atof(v);
    } else if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.worker_threads = std::atoi(v);
    } else if (arg == "--engine-threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.engine.threads = std::atoi(v);
    } else if (arg == "--queue") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_queue = std::atoi(v);
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.request_timeout_ms = std::atoll(v);
    } else if (arg == "--cache-mb") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.engine.cache.budget_bytes =
          static_cast<size_t>(std::atoll(v)) << 20;
    } else if (arg == "--max-frame-mb") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_frame_bytes = static_cast<size_t>(std::atoll(v)) << 20;
    } else if (arg == "--failpoints") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      assess::Status armed =
          assess::FailpointRegistry::Instance().ArmFromString(v);
      if (!armed.ok()) {
        std::fprintf(stderr, "assessd: --failpoints: %s\n",
                     armed.ToString().c_str());
        return 2;
      }
    } else if (arg == "--failpoint-admin") {
      options.allow_failpoint_admin = true;
    } else if (arg == "--slow-query-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.slow_query_ms = std::atoll(v);
    } else if (arg == "--trace-sample") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.trace_sample = std::atof(v);
    } else if (arg == "--http-port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.http_port = std::atoi(v);
    } else if (arg == "--workload-profile") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "on") == 0) {
        options.workload_profile = true;
      } else if (std::strcmp(v, "off") == 0) {
        options.workload_profile = false;
      } else {
        std::fprintf(stderr,
                     "assessd: --workload-profile wants 'on' or 'off'\n");
        return 2;
      }
    } else if (arg == "--mqo-window-us") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.mqo_window_us = std::atoll(v);
    } else if (arg == "--mqo-max-batch") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.mqo_max_batch = std::atoi(v);
    } else if (arg == "--ingest") {
      ingest_enabled = true;
    } else if (arg == "--ingest-auto-insert") {
      options.ingest.auto_insert_members = true;
    } else if (arg == "--ingest-max-errors") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.ingest.max_errors = std::atoll(v);
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      data_dir = v;
    } else if (arg == "--fsync-mode") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      auto mode = assess::ParseFsyncMode(v);
      if (!mode.ok()) {
        std::fprintf(stderr, "assessd: --fsync-mode: %s\n",
                     mode.status().ToString().c_str());
        return 2;
      }
      durability_options.wal.fsync_mode = *mode;
    } else if (arg == "--checkpoint-wal-mb") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      durability_options.checkpoint_wal_bytes = std::atoll(v) << 20;
    } else {
      return Usage(argv[0]);
    }
  }

  auto bootstrap =
      [&]() -> assess::Result<std::unique_ptr<assess::StarDatabase>> {
    if (use_ssb) {
      assess::SsbConfig config;
      config.scale_factor = scale_factor;
      return assess::BuildSsbDatabase(config);
    }
    return assess::BuildSalesDatabase(assess::SalesConfig{});
  };

  std::unique_ptr<assess::StarDatabase> owned_db;
  std::unique_ptr<assess::DurabilityManager> durability;
  assess::StarDatabase* db = nullptr;
  if (!data_dir.empty()) {
    auto opened =
        assess::DurabilityManager::Open(data_dir, durability_options,
                                        bootstrap);
    if (!opened.ok()) {
      std::fprintf(stderr, "assessd: cannot open data dir '%s': %s\n",
                   data_dir.c_str(), opened.status().ToString().c_str());
      return 1;
    }
    durability = std::move(opened).value();
    db = durability->db();
    const assess::RecoveryInfo& rec = durability->recovery();
    if (rec.fresh_start) {
      std::fprintf(stderr,
                   "assessd: data dir '%s' initialized (checkpoint 1, "
                   "fsync %s)\n",
                   data_dir.c_str(),
                   std::string(FsyncModeToString(durability->fsync_mode()))
                       .c_str());
    } else {
      std::fprintf(stderr,
                   "assessd: recovered from '%s': checkpoint %llu (LSN "
                   "%llu), %llu WAL records replayed\n",
                   data_dir.c_str(),
                   static_cast<unsigned long long>(rec.checkpoint_seq),
                   static_cast<unsigned long long>(rec.checkpoint_lsn),
                   static_cast<unsigned long long>(rec.replayed_records));
      if (rec.tail_truncated) {
        std::fprintf(stderr, "assessd: warning: %s\n", rec.tail_note.c_str());
      }
    }
    options.durability = durability.get();
  } else {
    auto built = bootstrap();
    if (!built.ok()) {
      std::fprintf(stderr, "cannot build database: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    owned_db = std::move(built).value();
    db = owned_db.get();
  }
  std::fprintf(stderr, "assessd: %s database ready%s\n",
               use_ssb ? "SSB" : "SALES",
               data_dir.empty() ? "" : " (durable)");

  if (ingest_enabled) {
    options.mutable_db = db;
    std::fprintf(stderr, "assessd: ingest enabled%s\n",
                 options.ingest.auto_insert_members ? " (auto-insert)" : "");
  }

  assess::AssessServer server(db, options);
  assess::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "assessd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "assessd: listening on %s:%u\n", options.host.c_str(),
               server.port());
  if (options.http_port >= 0) {
    std::fprintf(stderr,
                 "assessd: observability http on 127.0.0.1:%u "
                 "(/metrics /healthz /workload /traces)\n",
                 server.http_port());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    // nanosleep returns early (EINTR) when a signal lands; re-check then.
    struct timespec tick = {1, 0};
    nanosleep(&tick, nullptr);
  }

  std::fprintf(stderr, "assessd: draining...\n");
  server.Stop();
  if (durability != nullptr) {
    // A shutdown checkpoint makes the next boot instant (nothing to
    // replay); a failure is harmless — the WAL still covers everything.
    assess::Status cp = durability->Checkpoint();
    if (!cp.ok()) {
      std::fprintf(stderr, "assessd: shutdown checkpoint failed: %s\n",
                   cp.ToString().c_str());
    }
  }
  std::fprintf(stderr, "assessd: stopped\n");
  return 0;
}
