#include "server/assessd.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>

#include "assess/explain_analyze.h"
#include "assess/wire_format.h"
#include "common/failpoint.h"
#include "common/task_pool.h"
#include "ingest/ingestor.h"
#include "server/http_obs.h"
#include "wal/durability.h"

namespace assess {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// Blocked response writes (peer stopped reading with a full socket buffer)
/// abort with kUnavailable after this long instead of wedging a reader
/// thread forever; see Stop()'s drain sequencing.
constexpr int kSendTimeoutSeconds = 10;

/// Status-returning wrapper around a failpoint site, for use where the
/// enclosing function does not itself return Status (reader/worker loops).
Status FailpointStatus(const char* name) {
  ASSESS_FAILPOINT(name);
  return Status::OK();
}

/// Canonical rendering of a trace id everywhere it is surfaced (slow-query
/// log, error replies, \analyze output, /traces) — one format, greppable.
std::string TraceIdHex(uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

void JsonEscapeInto(std::string* out, const std::string& in) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

struct AssessServer::Connection {
  int fd = -1;
  std::unique_ptr<AssessSession> session;
  std::thread reader;
  std::atomic<bool> done{false};
};

struct AssessServer::Request {
  Connection* conn = nullptr;
  /// The statement text — or, for an ingest request, the raw row text.
  std::string statement;
  uint64_t request_id = 0;  ///< client idempotency key; 0 = none
  bool explain = false;     ///< kExplainAnalyze: trace + render, no dedup
  bool ingest = false;      ///< kIngest: stream `statement` as rows
  std::string ingest_cube;
  IngestFormat ingest_format = IngestFormat::kCsv;
  bool ingest_auto_insert = false;
  /// Client-generated trace id from the frame header (0 = untraced). Stamped
  /// into the root span, the slow-query log, error replies and \analyze
  /// output, so the client's view joins to the server's.
  uint64_t trace_id = 0;
  Clock::time_point admitted;
  /// Set by the MQO collector when this request rode a shared scan
  /// ("mqo: shared scan with N queries"). Surfaced by EXPLAIN ANALYZE only;
  /// kResult payloads are never touched, so batched responses stay
  /// bit-identical to unbatched ones.
  std::string mqo_note;
  std::promise<std::pair<FrameType, std::string>> response;
};

AssessServer::AssessServer(const StarDatabase* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      trace_sampler_(options_.trace_sample, options_.trace_seed) {}

AssessServer::~AssessServer() { Stop(); }

Status AssessServer::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (started_) return Status::InvalidArgument("server already started");
    started_ = true;
  }
  if (options_.engine.use_result_cache && !options_.engine.shared_cache) {
    options_.engine.shared_cache =
        std::make_shared<CubeResultCache>(options_.engine.cache);
  }
  // One scan pool for every session this server hosts: per-connection
  // engines then derive their intra-query parallelism from this fixed
  // worker set instead of each sizing itself to the whole machine, so N
  // concurrent sessions cannot oversubscribe into N × cores scan threads.
  if (!options_.engine.pool) options_.engine.pool = TaskPool::Shared();
  // Workload profiling: every session's engine (and the MQO collector's)
  // records into this server's profile store. The kill switch only
  // disables recording — the store, \workload and /workload stay wired so
  // an operator sees an explicitly empty profile, not a missing feature.
  profiler_.set_enabled(options_.workload_profile);
  options_.engine.profiler = &profiler_;
  // The MQO collector shares the sessions' cache and pool (installed just
  // above), so its shared scans seed exactly the entries sessions look up.
  if (options_.mqo_window_us > 0) {
    MqoOptions mqo_options;
    mqo_options.window_us = options_.mqo_window_us;
    mqo_options.max_batch = std::max(2, options_.mqo_max_batch);
    MqoCollector::Hooks hooks;
    hooks.enqueue = [this](void* token, const std::string& note) {
      auto* request = static_cast<Request*>(token);
      request->mqo_note = note;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        // No stopping_/max_queue check: the request was admitted before it
        // entered the collector, and its reader is blocked on the promise —
        // dropping it here would wedge that reader forever.
        queue_.push_back(request);
      }
      queue_cv_.notify_one();
    };
    hooks.reject = [this](void* token, const Status& status) {
      auto* request = static_cast<Request*>(token);
      error_responses_.fetch_add(1, std::memory_order_relaxed);
      request->response.set_value(
          {FrameType::kError, SerializeStatus(status)});
    };
    mqo_ = std::make_unique<MqoCollector>(db_, options_.engine, mqo_options,
                                          std::move(hooks));
  }
  int workers = options_.worker_threads;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  if (options_.max_queue < 0) options_.max_queue = 0;

  ASSESS_ASSIGN_OR_RETURN(
      ListenSocket listener,
      ListenOn(options_.host, options_.port, options_.listen_backlog));
  listen_fd_ = listener.fd;
  port_ = listener.port;

  // Observability HTTP listener (own acceptor thread, read-only). Stopped
  // at the very END of Stop(), so /healthz answers 503 all through the
  // drain instead of refusing connections while requests still finish.
  if (options_.http_port >= 0) {
    HttpObsOptions http_options;
    http_options.host = options_.host;
    http_options.port = static_cast<uint16_t>(options_.http_port);
    HttpObsServer::Handlers handlers;
    handlers.metrics = [this] { return RenderMetrics(); };
    handlers.healthy = [this] {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      return !stopping_;
    };
    handlers.workload = [this] { return profiler_.BuildReport().ToJson(); };
    handlers.traces = [this] { return RenderTracesJson(); };
    http_ = std::make_unique<HttpObsServer>(std::move(http_options),
                                            std::move(handlers));
    Status http_started = http_->Start();
    if (!http_started.ok()) {
      http_.reset();
      CloseSocket(listen_fd_);
      listen_fd_ = -1;
      return http_started.WithContext("observability http listener");
    }
  }

  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(&AssessServer::WorkerLoop, this);
  }
  acceptor_ = std::thread(&AssessServer::AcceptLoop, this);
  return Status::OK();
}

void AssessServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  // 1. Stop admitting queries (under the queue mutex, so no request can
  //    slip past the drain wait below).
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  // 2. Stop accepting connections.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  // 2b. Flush the MQO window. Every request the collector holds was
  //     admitted and has a reader blocked on its promise, so the final
  //     flush hands each one to the worker queue (shared scans skipped) —
  //     before the drain below, which must observe them. New submissions
  //     are already impossible: stopping_ fails the admission check, and
  //     Submit itself returns false once the collector stops.
  if (mqo_ != nullptr) mqo_->Stop();
  // 3. Drain: every queued and in-flight request completes.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  // 3b. Graceful drain flushes the WAL: even under --fsync-mode none,
  //     every batch committed before the drain is durable at exit.
  if (options_.durability != nullptr) {
    Status flushed = options_.durability->Flush();
    if (!flushed.ok()) {
      std::fprintf(stderr, "[assessd] WAL flush on drain failed: %s\n",
                   flushed.ToString().c_str());
    }
  }
  // 4. Unblock readers parked in recv while letting their final response
  //    writes flush (SHUT_RD only; blocked writes bail out via the send
  //    timeout set at accept time).
  std::vector<std::unique_ptr<Connection>> retiring;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->done.load()) ::shutdown(conn->fd, SHUT_RD);
    }
    retiring.swap(connections_);
  }
  // 5. Join readers and release their sockets — outside conn_mutex_, since
  //    a reader answering a late kStats takes that mutex inside Snapshot().
  for (const auto& conn : retiring) {
    if (conn->reader.joinable()) conn->reader.join();
    CloseSocket(conn->fd);
  }
  retiring.clear();
  // 6. Retire the worker pool.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    workers_exit_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // 7. Retire the observability listener last: through the whole drain
  //    above, /healthz kept answering 503 so orchestrators saw "alive but
  //    not ready" rather than connection refused.
  if (http_ != nullptr) http_->Stop();
}

uint16_t AssessServer::http_port() const {
  return http_ != nullptr ? http_->port() : 0;
}

void AssessServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or fatal: stop accepting
    }
    if (ASSESS_FAILPOINT_TRIGGERED("server.accept")) {
      // Simulates the peer vanishing between connect and service: the
      // client sees a reset, not a typed error.
      CloseSocket(fd);
      continue;
    }
    ReapFinishedConnections();

    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval send_timeout{};
    send_timeout.tv_sec = kSendTimeoutSeconds;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));

    size_t open = 0;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (const auto& conn : connections_) {
        if (!conn->done.load()) ++open;
      }
    }
    bool stopping;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      stopping = stopping_;
    }
    if (stopping || open >= static_cast<size_t>(options_.max_connections)) {
      WriteFrame(fd, FrameType::kError,
                 SerializeStatus(Status::Unavailable(
                     stopping ? "server shutting down"
                              : "too many connections")));
      CloseSocket(fd);
      continue;
    }

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->session = std::make_unique<AssessSession>(db_, options_.engine);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->reader = std::thread(&AssessServer::ReaderLoop, this, raw);
  }
}

void AssessServer::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  auto finished = [](const std::unique_ptr<Connection>& conn) {
    return conn->done.load();
  };
  for (const auto& conn : connections_) {
    if (finished(conn)) {
      if (conn->reader.joinable()) conn->reader.join();
      CloseSocket(conn->fd);
    }
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(), finished),
      connections_.end());
}

void AssessServer::ReaderLoop(Connection* conn) {
  while (true) {
    Frame frame;
    Status read = ReadFrame(conn->fd, options_.max_frame_bytes, &frame);
    if (read.ok()) read = FailpointStatus("server.read_frame");
    if (!read.ok()) {
      // Framing-level failures (bad length, unknown type, oversized frame,
      // failed CRC) get one typed error before the close, so the peer can
      // tell a protocol problem from a vanished server; torn connections
      // just close.
      if (read.code() == StatusCode::kInvalidArgument ||
          read.code() == StatusCode::kFrameTooLarge ||
          read.code() == StatusCode::kCorruptFrame) {
        WriteFrame(conn->fd, FrameType::kError, SerializeStatus(read));
      }
      break;
    }
    if (frame.trace_id != 0) {
      trace_ids_received_.fetch_add(1, std::memory_order_relaxed);
    }
    if (frame.type == FrameType::kPing) {
      if (!WriteFrame(conn->fd, FrameType::kPong, {}).ok()) break;
      continue;
    }
    if (frame.type == FrameType::kWorkload) {
      if (!WriteFrame(conn->fd, FrameType::kWorkloadReply, RenderWorkload())
               .ok()) {
        break;
      }
      continue;
    }
    if (frame.type == FrameType::kStats) {
      if (!WriteFrame(conn->fd, FrameType::kStatsReply,
                      Snapshot().Serialize())
               .ok()) {
        break;
      }
      continue;
    }
    if (frame.type == FrameType::kMetrics) {
      if (!WriteFrame(conn->fd, FrameType::kMetricsReply, RenderMetrics())
               .ok()) {
        break;
      }
      continue;
    }
    if (frame.type == FrameType::kFailpoint) {
      // Fault-injection admin: arm/disarm by spec string, reply with the
      // registry listing. Off by default — only servers started with
      // failpoint admin enabled honour it.
      Status armed = Status::NotSupported(
          "failpoint admin is disabled on this server");
      if (options_.allow_failpoint_admin) {
        armed = FailpointRegistry::Instance().ArmFromString(frame.payload);
      }
      Status written =
          armed.ok() ? WriteFrame(conn->fd, FrameType::kFailpointReply,
                                  FailpointRegistry::Instance().Describe())
                     : WriteFrame(conn->fd, FrameType::kError,
                                  SerializeStatus(armed));
      if (!written.ok()) break;
      continue;
    }
    if (frame.type != FrameType::kQuery &&
        frame.type != FrameType::kExplainAnalyze &&
        frame.type != FrameType::kIngest) {
      WriteFrame(conn->fd, FrameType::kError,
                 SerializeStatus(Status::InvalidArgument(
                     "unexpected frame type for a request")));
      break;
    }
    const bool explain = frame.type == FrameType::kExplainAnalyze;
    const bool ingest = frame.type == FrameType::kIngest;

    total_requests_.fetch_add(1, std::memory_order_relaxed);
    uint64_t request_id = 0;
    std::string_view statement;
    std::string_view ingest_cube;
    IngestFormat ingest_format = IngestFormat::kCsv;
    uint8_t ingest_flags = 0;
    Status decoded =
        ingest ? DecodeIngestPayload(frame.payload, &request_id, &ingest_cube,
                                     &ingest_format, &ingest_flags, &statement)
               : DecodeQueryPayload(frame.payload, &request_id, &statement);
    if (!decoded.ok()) {
      if (!WriteFrame(conn->fd, FrameType::kError, SerializeStatus(decoded))
               .ok()) {
        break;
      }
      continue;
    }

    // Retry dedup: a retried request (same nonzero id, after a reconnect or
    // a corrupted response) replays its stored response instead of
    // executing twice. For ingest this is the at-most-once guarantee — a
    // retried ingest must never append its rows a second time. EXPLAIN
    // ANALYZE is never deduplicated — each run re-measures.
    FrameType replay_type = FrameType::kError;
    std::string replay_payload;
    if (!explain && request_id != 0 &&
        FindDeduped(request_id, &replay_type, &replay_payload)) {
      if (!WriteFrame(conn->fd, replay_type, replay_payload).ok()) break;
      continue;
    }

    Request request;
    request.conn = conn;
    request.statement = std::string(statement);
    request.request_id = request_id;
    request.explain = explain;
    request.ingest = ingest;
    request.ingest_cube = std::string(ingest_cube);
    request.ingest_format = ingest_format;
    request.ingest_auto_insert = (ingest_flags & kIngestFlagAutoInsert) != 0;
    request.trace_id = frame.trace_id;
    request.admitted = Clock::now();
    auto response = request.response.get_future();

    Status rejected = Status::OK();
    bool submitted = false;
    if (mqo_ != nullptr && !ingest) {
      // MQO path: the collector holds the request for the micro-batch
      // window, runs shared scans, then hands it to the worker queue via
      // the enqueue hook. Admission is checked first — requests held by the
      // collector count against the queue bound — but Submit itself runs
      // outside queue_mutex_, which the enqueue hook takes.
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (stopping_) {
          rejected = Status::Unavailable("server shutting down");
        } else if (queue_.size() + static_cast<size_t>(std::max<int64_t>(
                                       0, mqo_->pending())) >=
                   static_cast<size_t>(options_.max_queue)) {
          rejected =
              Status::Unavailable("server overloaded: request queue full");
        }
      }
      if (rejected.ok()) {
        submitted = mqo_->Submit(&request, request.statement);
        // false = the collector stopped between the admission check and
        // here; fall through to the direct path, which re-checks stopping_.
      }
    }
    if (rejected.ok() && !submitted) {
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (stopping_) {
          rejected = Status::Unavailable("server shutting down");
        } else if (queue_.size() >= static_cast<size_t>(options_.max_queue)) {
          rejected =
              Status::Unavailable("server overloaded: request queue full");
        } else {
          queue_.push_back(&request);
        }
      }
      if (rejected.ok()) queue_cv_.notify_one();
    }
    if (!rejected.ok()) {
      if (rejected.message().find("overloaded") != std::string::npos) {
        rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      } else {
        error_responses_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!WriteFrame(conn->fd, FrameType::kError, SerializeStatus(rejected))
               .ok()) {
        break;
      }
      continue;
    }

    // Strict request/response: wait for the worker, then write. The request
    // lives on this stack frame, so the wait must be unconditional.
    auto [type, payload] = response.get();
    RecordLatency(ElapsedMs(request.admitted));
    Status written = FailpointStatus("server.write_frame");
    if (written.ok()) written = WriteFrame(conn->fd, type, payload);
    if (!written.ok()) break;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true);
}

void AssessServer::WorkerLoop() {
  while (true) {
    Request* request = nullptr;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || workers_exit_; });
      if (queue_.empty()) return;  // workers_exit_ and nothing left to drain
      request = queue_.front();
      queue_.pop_front();
      ++in_flight_;
    }
    auto response = ExecuteRequest(request);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
    // Fulfilled only after in_flight_ dropped: a request whose response is
    // ready is no longer in flight, so a stats probe right after a reply
    // never sees a phantom in-flight request. Last touch of `request` — the
    // reader owns it and may free it once the future resolves.
    request->response.set_value(std::move(response));
  }
}

std::pair<FrameType, std::string> AssessServer::ExecuteRequest(
    Request* request) {
  const int64_t timeout_ms = options_.request_timeout_ms;
  auto overdue = [&] {
    return timeout_ms > 0 && ElapsedMs(request->admitted) >
                                 static_cast<double>(timeout_ms);
  };
  auto timeout_status = [&](const char* where) {
    char msg[96];
    std::snprintf(msg, sizeof(msg), "request exceeded %lld ms deadline %s",
                  static_cast<long long>(timeout_ms), where);
    return Status::Timeout(msg);
  };

  FrameType type = FrameType::kError;
  std::string payload;
  StatusCode error_code = StatusCode::kOk;
  auto fail = [&](const Status& status) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    error_code = status.code();
    // A traced request's error reply carries the trace id, so a client
    // seeing the failure can quote the exact server-side story to chase.
    payload = SerializeStatus(
        request->trace_id != 0
            ? status.WithContext("trace " + TraceIdHex(request->trace_id))
            : status);
  };

  Status dequeued = FailpointStatus("server.worker_dequeue");
  if (overdue()) {
    // Spent its whole budget waiting for a worker; do not execute at all.
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    error_code = StatusCode::kTimeout;
    payload = SerializeStatus(timeout_status("while queued"));
  } else if (!dequeued.ok()) {
    fail(dequeued);
  } else if (request->ingest) {
    if (options_.pre_execute_hook) options_.pre_execute_hook();
    Status injected = FailpointStatus("server.session_execute");
    Result<IngestStats> ingested = [&]() -> Result<IngestStats> {
      if (!injected.ok()) return {injected};
      if (options_.mutable_db == nullptr) {
        return Status::NotSupported(
            "this server is read-only; start assessd with --ingest to "
            "accept row streams");
      }
      IngestOptions opts = options_.ingest;
      opts.format = request->ingest_format;
      // The wire flag can only narrow the server's policy, never widen it:
      // a client cannot force member auto-insert onto a server that forbids
      // it, but may opt out of it for one load.
      opts.auto_insert_members =
          opts.auto_insert_members && request->ingest_auto_insert;
      // Write-ahead durability: each batch is logged + fsynced inside
      // CommitBatch, before its epoch publishes — so by the time the
      // kIngestReply receipt below reaches the client, every row it
      // acknowledges survives a crash.
      opts.durability = options_.durability;
      Ingestor ingestor(options_.mutable_db, options_.engine.shared_cache,
                        opts);
      return ingestor.IngestText(request->ingest_cube, request->statement);
    }();
    if (overdue()) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      error_code = StatusCode::kTimeout;
      payload = SerializeStatus(timeout_status("during execution"));
    } else if (!ingested.ok()) {
      fail(ingested.status());
    } else {
      ingest_rows_.fetch_add(ingested->rows_ingested,
                             std::memory_order_relaxed);
      ingest_batches_.fetch_add(ingested->batches, std::memory_order_relaxed);
      type = FrameType::kIngestReply;
      payload = ingested->Serialize();
      ok_responses_.fetch_add(1, std::memory_order_relaxed);
      // Checkpoint trigger — after IngestText returned, so no ingest mutex
      // is held here (Checkpoint takes them all). A failed checkpoint never
      // fails the request: the WAL still covers everything.
      if (options_.durability != nullptr &&
          options_.durability->ShouldCheckpoint()) {
        Status cp = options_.durability->Checkpoint();
        if (!cp.ok()) {
          std::fprintf(stderr, "[assessd] checkpoint failed: %s\n",
                       cp.ToString().c_str());
        }
      }
    }
  } else if (request->explain) {
    if (options_.pre_execute_hook) options_.pre_execute_hook();
    Status injected = FailpointStatus("server.session_execute");
    Result<std::string> rendered =
        injected.ok() ? ExplainAnalyzeStatement(*request->conn->session,
                                                request->statement)
                      : Result<std::string>(injected);
    if (overdue()) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      error_code = StatusCode::kTimeout;
      payload = SerializeStatus(timeout_status("during execution"));
    } else if (!rendered.ok()) {
      fail(rendered.status());
    } else {
      traces_sampled_.fetch_add(1, std::memory_order_relaxed);
      type = FrameType::kExplainReply;
      payload = *std::move(rendered);
      // Surface MQO participation: "\analyze" shows that this statement's
      // scan was shared and how many queries co-executed on it.
      if (!request->mqo_note.empty()) {
        payload += "\n";
        payload += request->mqo_note;
      }
      if (request->trace_id != 0) {
        payload += "\ntrace: " + TraceIdHex(request->trace_id) + "\n";
      }
      ok_responses_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    if (options_.pre_execute_hook) options_.pre_execute_hook();
    Status injected = FailpointStatus("server.session_execute");
    // Slow-query log: trace sampled queries so the dump can show where a
    // slow one spent its time. Off (the default) records no spans at all.
    const bool traced = kTracingCompiledIn && options_.slow_query_ms >= 0 &&
                        SampleTrace();
    TraceContext trace;
    const Clock::time_point exec_start = Clock::now();
    Result<AssessResult> result = [&]() -> Result<AssessResult> {
      if (!injected.ok()) return {injected};
      TraceContext::Scope scope(traced ? &trace : nullptr);
      Span span("query");
      // Root the span tree under the client's trace id: the id the client
      // generated is the id /traces and the slow-query log report.
      if (span.active() && request->trace_id != 0) {
        span.AddString("trace_id", TraceIdHex(request->trace_id));
      }
      return request->conn->session->Query(request->statement);
    }();
    if (overdue()) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      error_code = StatusCode::kTimeout;
      payload = SerializeStatus(timeout_status("during execution"));
    } else if (!result.ok()) {
      fail(result.status());
    } else {
      {
        TraceContext::Scope scope(traced ? &trace : nullptr);
        Span span("wire.serialize");
        payload = SerializeAssessResult(*result);
        span.AddInt("bytes", static_cast<int64_t>(payload.size()));
      }
      if (payload.size() + 1 > options_.max_frame_bytes) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "result of %zu bytes exceeds the %zu byte frame limit",
                      payload.size(), options_.max_frame_bytes);
        fail(Status::FrameTooLarge(msg));
      } else {
        type = FrameType::kResult;
        ok_responses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (traced) {
      traces_sampled_.fetch_add(1, std::memory_order_relaxed);
      trace_spans_.fetch_add(trace.span_count(), std::memory_order_relaxed);
      const double exec_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - exec_start)
              .count();
      if (exec_ms >= static_cast<double>(options_.slow_query_ms)) {
        slow_queries_.fetch_add(1, std::memory_order_relaxed);
        EmitSlowQuery(request->request_id, request->trace_id,
                      request->statement, exec_ms, trace);
      }
      RecordTrace(request->trace_id, request->statement, exec_ms, trace);
    }
  }

  // Only deterministic outcomes enter the dedup store: results and errors
  // that re-derive identically from the statement. Transient conditions
  // (kUnavailable, kTimeout, injected faults, kInternal) must re-execute on
  // retry, so they are never replayed. Ingest replies are always stored —
  // they are the receipt whose replay makes a retried ingest append-once.
  if (!request->explain && request->request_id != 0) {
    bool deterministic = type == FrameType::kResult ||
                         type == FrameType::kIngestReply ||
                         error_code == StatusCode::kInvalidArgument ||
                         error_code == StatusCode::kNotFound ||
                         error_code == StatusCode::kNotSupported ||
                         error_code == StatusCode::kOutOfRange ||
                         error_code == StatusCode::kAlreadyExists ||
                         error_code == StatusCode::kFrameTooLarge;
    if (deterministic) StoreDeduped(request->request_id, type, payload);
  }
  return {type, std::move(payload)};
}

bool AssessServer::FindDeduped(uint64_t request_id, FrameType* type,
                               std::string* payload) {
  if (options_.dedup_entries == 0) return false;
  std::lock_guard<std::mutex> lock(dedup_mutex_);
  auto it = dedup_map_.find(request_id);
  if (it == dedup_map_.end()) return false;
  *type = it->second.first;
  *payload = it->second.second;
  return true;
}

void AssessServer::StoreDeduped(uint64_t request_id, FrameType type,
                                const std::string& payload) {
  if (options_.dedup_entries == 0) return;
  std::lock_guard<std::mutex> lock(dedup_mutex_);
  auto [it, inserted] = dedup_map_.try_emplace(request_id, type, payload);
  if (!inserted) return;  // first stored response wins; retries replay it
  dedup_fifo_.push_back(request_id);
  dedup_bytes_held_ += payload.size();
  // FIFO eviction past the entry cap; the byte cap keeps at least the
  // newest entry so one huge response cannot disable dedup entirely.
  while (dedup_fifo_.size() > options_.dedup_entries ||
         (dedup_bytes_held_ > options_.dedup_bytes &&
          dedup_fifo_.size() > 1)) {
    uint64_t oldest = dedup_fifo_.front();
    dedup_fifo_.pop_front();
    auto old = dedup_map_.find(oldest);
    if (old != dedup_map_.end()) {
      dedup_bytes_held_ -= old->second.second.size();
      dedup_map_.erase(old);
    }
  }
}

void AssessServer::RecordLatency(double ms) { latency_hist_.Observe(ms); }

bool AssessServer::SampleTrace() {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  return trace_sampler_.Sample();
}

void AssessServer::EmitSlowQuery(uint64_t request_id, uint64_t trace_id,
                                 const std::string& statement, double ms,
                                 const TraceContext& trace) {
  // The sink sits behind a failpoint so chaos tests can make it fail or
  // stall: the response is already produced, so a broken sink only moves a
  // counter — it can never corrupt a result or wedge the session.
  Status emit = FailpointStatus("trace.emit");
  if (!emit.ok()) {
    trace_emit_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::string tree = trace.ToTreeString();
  char prefix[160];
  std::snprintf(prefix, sizeof(prefix),
                "[assessd] slow query request=%llu trace=%s (%.3f ms): ",
                static_cast<unsigned long long>(request_id),
                TraceIdHex(trace_id).c_str(), ms);
  std::string line = prefix;
  line += statement;
  line += "\n";
  line += tree;
  if (options_.slow_query_sink) {
    options_.slow_query_sink(line);
    return;
  }
  std::fprintf(stderr, "%s", line.c_str());
}

void AssessServer::RecordTrace(uint64_t trace_id, const std::string& statement,
                               double ms, const TraceContext& trace) {
  // One ring entry per sampled query: enough identity to join the entry
  // with the client-side trace id and the slow-query log, plus the full
  // span tree in Chrome trace_event form for chrome://tracing / Perfetto.
  std::string entry = "{\"trace_id\":\"";
  entry += TraceIdHex(trace_id);
  entry += "\",\"duration_ms\":";
  char num[48];
  std::snprintf(num, sizeof(num), "%.3f", ms);
  entry += num;
  entry += ",\"statement\":\"";
  JsonEscapeInto(&entry, statement);
  entry += "\",\"trace\":";
  entry += trace.ToChromeTrace();
  entry += "}";
  std::lock_guard<std::mutex> lock(ring_mutex_);
  trace_ring_.push_back(std::move(entry));
  while (trace_ring_.size() > options_.trace_ring_entries) {
    trace_ring_.pop_front();
  }
}

std::string AssessServer::RenderTracesJson() const {
  std::string out = "{\"traces\":[";
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    bool first = true;
    for (const std::string& entry : trace_ring_) {
      if (!first) out += ",";
      first = false;
      out += entry;
    }
  }
  out += "]}";
  return out;
}

std::string AssessServer::RenderWorkload() const {
  return profiler_.BuildReport().ToText();
}

ServerStats AssessServer::Snapshot() const {
  ServerStats stats;
  stats.total_requests = total_requests_.load(std::memory_order_relaxed);
  stats.ok_responses = ok_responses_.load(std::memory_order_relaxed);
  stats.error_responses = error_responses_.load(std::memory_order_relaxed);
  stats.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.worker_threads = workers_.size();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.queued = queue_.size();
    stats.in_flight = static_cast<uint64_t>(in_flight_);
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->done.load()) ++stats.connections;
    }
  }
  stats.p50_ms = latency_hist_.Quantile(0.50);
  stats.p90_ms = latency_hist_.Quantile(0.90);
  stats.p99_ms = latency_hist_.Quantile(0.99);
  stats.latency_samples = latency_hist_.Count();
  stats.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  stats.traces_sampled = traces_sampled_.load(std::memory_order_relaxed);
  stats.trace_spans = trace_spans_.load(std::memory_order_relaxed);
  stats.ingest_rows = ingest_rows_.load(std::memory_order_relaxed);
  stats.ingest_batches = ingest_batches_.load(std::memory_order_relaxed);
  if (options_.engine.shared_cache) {
    CacheStats cache = options_.engine.shared_cache->stats();
    stats.cache_lookups = cache.lookups;
    stats.cache_exact_hits = cache.exact_hits;
    stats.cache_subsumption_hits = cache.subsumption_hits;
    stats.cache_misses = cache.misses;
    stats.cache_entries = cache.entries;
    stats.cache_bytes = cache.bytes_resident;
    stats.cache_epoch_invalidations = cache.epoch_invalidations;
  }
  if (options_.engine.pool) {
    TaskPoolStats pool = options_.engine.pool->stats();
    stats.pool_workers = pool.workers;
    stats.pool_queue_depth = pool.queue_depth;
    stats.morsels_scanned = pool.morsels_scanned;
    stats.morsels_skipped = pool.morsels_skipped;
  }
  if (mqo_ != nullptr) {
    const MqoStats mqo = mqo_->stats();
    stats.mqo_batches = mqo.batches;
    stats.mqo_queries_batched = mqo.queries_batched;
    stats.mqo_shared_scans = mqo.shared_scans;
    stats.mqo_queries_piggybacked = mqo.queries_piggybacked;
  }
  if (options_.durability != nullptr) {
    const WalStats wal = options_.durability->wal_stats();
    stats.wal_appends = wal.appends;
    stats.wal_fsyncs = wal.fsyncs;
    stats.wal_bytes = wal.bytes_written;
    stats.checkpoints = options_.durability->checkpoints();
    const RecoveryInfo& rec = options_.durability->recovery();
    stats.recovery_replayed_records = rec.replayed_records;
    stats.recovery_truncated_bytes = rec.truncated_bytes;
  }
  stats.workload_fingerprints = profiler_.fingerprints();
  stats.workload_evictions = profiler_.evicted_fingerprints();
  stats.http_requests = http_ != nullptr ? http_->requests() : 0;
  stats.trace_ids_received = trace_ids_received_.load(std::memory_order_relaxed);
  return stats;
}

std::string AssessServer::RenderMetrics() const {
  std::string out = MetricsRegistry::Instance().RenderPrometheus();
  AppendHistogramExposition(
      &out, "assessd_request_latency_ms",
      "Request latency from admission to response readiness (ms)",
      latency_hist_);
  auto counter = [&out](const char* name, const char* help, uint64_t value) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "# HELP %s %s\n# TYPE %s counter\n%s %llu\n", name, help,
                  name, name, static_cast<unsigned long long>(value));
    out += buf;
  };
  counter("assessd_requests_total", "Query frames admitted or rejected",
          total_requests_.load(std::memory_order_relaxed));
  counter("assessd_responses_ok_total", "kResult responses sent",
          ok_responses_.load(std::memory_order_relaxed));
  counter("assessd_responses_error_total", "kError responses sent",
          error_responses_.load(std::memory_order_relaxed));
  counter("assessd_rejected_overload_total", "Admission-control rejections",
          rejected_overload_.load(std::memory_order_relaxed));
  counter("assessd_timeouts_total", "Per-request deadline violations",
          timeouts_.load(std::memory_order_relaxed));
  counter("assessd_slow_queries_total",
          "Queries at or over the slow-query threshold",
          slow_queries_.load(std::memory_order_relaxed));
  counter("assessd_traces_sampled_total", "Queries executed under a trace",
          traces_sampled_.load(std::memory_order_relaxed));
  counter("assessd_trace_spans_total", "Spans recorded across sampled traces",
          trace_spans_.load(std::memory_order_relaxed));
  counter("assessd_trace_emit_failures_total",
          "Slow-query dumps dropped by a failing sink",
          trace_emit_failures_.load(std::memory_order_relaxed));
  if (mqo_ != nullptr) {
    const MqoStats mqo = mqo_->stats();
    counter("assessd_mqo_batches_total",
            "MQO micro-batch flushes holding at least two queries",
            mqo.batches);
    counter("assessd_mqo_queries_batched_total",
            "Queries flushed in multi-query MQO batches", mqo.queries_batched);
    counter("assessd_mqo_shared_scans_total",
            "Shared-scan group executions", mqo.shared_scans);
    counter("assessd_mqo_queries_piggybacked_total",
            "Queries answered by a batch-mate's shared scan",
            mqo.queries_piggybacked);
  }
  counter("assessd_http_requests_total",
          "Observability HTTP requests served, error responses included",
          http_ != nullptr ? http_->requests() : 0);
  counter("assessd_trace_ids_received_total",
          "Query frames carrying a client-generated trace id",
          trace_ids_received_.load(std::memory_order_relaxed));
  counter("assessd_workload_queries_total",
          "Queries folded into the workload profile",
          profiler_.total_queries());
  counter("assessd_workload_evictions_total",
          "Workload fingerprints evicted by the LRU cap",
          profiler_.evicted_fingerprints());
  counter("assessd_workload_dropped_samples_total",
          "Workload samples dropped by the obs.profile failpoint",
          profiler_.dropped_samples());
  {
    const char* name = "assessd_workload_fingerprints";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "# HELP %s Distinct query fingerprints currently profiled\n"
                  "# TYPE %s gauge\n%s %llu\n",
                  name, name, name,
                  static_cast<unsigned long long>(profiler_.fingerprints()));
    out += buf;
  }
  return out;
}

}  // namespace assess
