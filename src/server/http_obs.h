#ifndef ASSESS_SERVER_HTTP_OBS_H_
#define ASSESS_SERVER_HTTP_OBS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/result.h"

namespace assess {

/// \brief Options of the observability HTTP listener.
struct HttpObsOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one from port().
  uint16_t port = 0;
  int listen_backlog = 16;
  /// A request (line + headers) larger than this is answered 400.
  size_t max_request_bytes = 8192;
  /// Receive deadline per connection, so one stalled scraper cannot wedge
  /// the (single) serving thread.
  int recv_timeout_ms = 2000;
};

/// \brief A deliberately minimal HTTP/1.0 observability endpoint for
/// assessd: one acceptor thread, one connection served at a time,
/// read-only GETs, connection closed after every response.
///
///   GET /metrics   -> Prometheus text exposition (scrape target)
///   GET /healthz   -> 200 "ok" while serving, 503 once draining
///   GET /workload  -> workload profile + MV-advisor report (JSON)
///   GET /traces    -> ring buffer of recent sampled span trees (JSON,
///                     entries carry Chrome trace_event payloads)
///
/// This is not a general web server: no keep-alive, no TLS, no request
/// bodies, no chunking. The error path (malformed request, unknown path,
/// oversized request) writes a prebuilt static response — it allocates
/// nothing, so a malformed-traffic flood cannot pressure the allocator of
/// a serving process.
class HttpObsServer {
 public:
  /// Content callbacks, invoked on the serving thread per request. They
  /// must be safe to call at any time between Start() and Stop() — the
  /// assessd wiring points them at snapshot-style renderers.
  struct Handlers {
    std::function<std::string()> metrics;   ///< text/plain; version=0.0.4
    std::function<bool()> healthy;          ///< false => /healthz is 503
    std::function<std::string()> workload;  ///< application/json
    std::function<std::string()> traces;    ///< application/json
  };

  HttpObsServer(HttpObsOptions options, Handlers handlers);
  ~HttpObsServer();

  HttpObsServer(const HttpObsServer&) = delete;
  HttpObsServer& operator=(const HttpObsServer&) = delete;

  /// \brief Binds and starts the serving thread.
  Status Start();

  /// \brief Stops accepting, joins the serving thread. Idempotent.
  void Stop();

  /// \brief The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// \brief Requests served since Start(), error responses included.
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  HttpObsOptions options_;
  Handlers handlers_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<uint64_t> requests_{0};
};

}  // namespace assess

#endif  // ASSESS_SERVER_HTTP_OBS_H_
