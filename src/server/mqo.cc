#include "server/mqo.h"

#include <map>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "assess/parser.h"
#include "assess/planner.h"
#include "assess/subplans.h"
#include "cache/cube_cache.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "storage/star_schema.h"

namespace assess {

namespace {

/// Shared scans compile one lane-table set per consumer; beyond this arity
/// the fused kernels bail to hash aggregation anyway, so such subplans are
/// simply left out of grouping and execute solo.
constexpr int kMaxSharedArity = 16;

std::string SharedScanNote(size_t co_executing) {
  return "mqo: shared scan with " + std::to_string(co_executing) + " queries";
}

}  // namespace

MqoCollector::MqoCollector(const StarDatabase* db, const EngineOptions& engine,
                           MqoOptions options, Hooks hooks)
    : db_(db),
      engine_(db, engine),
      options_(options),
      hooks_(std::move(hooks)),
      functions_(FunctionRegistry::Default()),
      labelings_(LabelingRegistry::Default()),
      batch_size_hist_(MetricsRegistry::Instance().GetHistogram(
          "assessd_mqo_batch_size", Histogram::ExponentialBounds(1.0, 2.0, 8),
          "Requests per MQO micro-batch flush")) {
  thread_ = std::thread([this] { Run(); });
}

MqoCollector::~MqoCollector() { Stop(); }

Result<std::vector<MqoCollector::PlannedGet>> MqoCollector::PlanStatement(
    const std::string& statement) {
  // The same shared schema lock sessions plan under: dimension growth from
  // an ingest commit must not race name resolution or epoch stamping.
  std::shared_lock<std::shared_mutex> lock(db_->schema_mutex());
  ASSESS_ASSIGN_OR_RETURN(AssessStatement stmt, ParseAssessStatement(statement));
  ASSESS_ASSIGN_OR_RETURN(
      AnalyzedStatement analyzed,
      Analyze(stmt, *db_, functions_, labelings_, analyzer_options_));
  const PlanKind plan = BestPlan(analyzed);
  ASSESS_ASSIGN_OR_RETURN(std::vector<CubeQuery> gets,
                          PlannedGetSubplans(analyzed, plan));
  std::vector<PlannedGet> planned;
  planned.reserve(gets.size());
  for (CubeQuery& query : gets) {
    if (query.group_by.Arity() > kMaxSharedArity) continue;
    auto bound = db_->Find(query.cube_name);
    if (!bound.ok()) continue;
    PlannedGet get;
    get.canon = CanonicalizeQuery(query);
    // Group identity: one cube, one canonical predicate conjunction, one
    // fact epoch. Queries planned against different epochs would scan
    // different committed prefixes and must never share.
    get.canon.epoch = (*bound.value()).facts().epoch();
    get.fingerprint = FingerprintKey(get.canon);
    get.group_key = get.canon.cube_name;
    get.group_key.push_back('\0');
    for (const Predicate& p : get.canon.predicates) {
      get.group_key += PredicateKey(p);
    }
    get.group_key.push_back('\0');
    get.group_key += std::to_string(get.canon.epoch);
    get.query = std::move(query);
    planned.push_back(std::move(get));
  }
  return planned;
}

bool MqoCollector::Submit(void* token, const std::string& statement) {
  // Plan before taking the collector lock: parsing and analysis are
  // read-only over shared registries and the (schema-locked) database, so
  // reader threads plan concurrently. A statement that fails to plan is
  // still held — it flushes ungrouped and produces its own typed error from
  // the session, exactly as it would unbatched.
  Held held;
  held.token = token;
  auto planned = PlanStatement(statement);
  if (planned.ok()) held.gets = std::move(planned.value());
  held.arrived = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return false;
    held_.push_back(std::move(held));
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
  return true;
}

void MqoCollector::Run() {
  const auto window = std::chrono::microseconds(options_.window_us);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (held_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !held_.empty(); });
      continue;
    }
    const auto deadline = held_.front().arrived + window;
    if (static_cast<int>(held_.size()) < options_.max_batch &&
        std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline, [this, deadline] {
        return stop_ ||
               static_cast<int>(held_.size()) >= options_.max_batch ||
               std::chrono::steady_clock::now() >= deadline;
      });
      continue;  // re-evaluate: stop, ripeness, or a spurious wake
    }
    std::vector<Held> batch = std::move(held_);
    held_.clear();
    lock.unlock();
    ProcessBatch(std::move(batch), /*shared_scans_allowed=*/true);
    lock.lock();
  }
}

void MqoCollector::ProcessBatch(std::vector<Held> batch,
                                bool shared_scans_allowed) {
  if (batch.empty()) return;
  Span span("mqo.batch");
  span.AddInt("requests", static_cast<int64_t>(batch.size()));
  batch_size_hist_->Observe(static_cast<double>(batch.size()));
  if (batch.size() >= 2) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    queries_batched_.fetch_add(batch.size(), std::memory_order_relaxed);
  }

  // Per-request outcome, decided group by group. A request whose group's
  // shared scan fails is rejected once; its remaining subplans drop out of
  // later groups (its session will never run them).
  std::vector<Status> verdict(batch.size(), Status::OK());
  std::vector<std::string> note(batch.size());

  if (shared_scans_allowed && batch.size() >= 2) {
    // Group subplans by (cube, predicate conjunction, epoch), preserving
    // submission order within and across groups.
    struct Member {
      size_t held;
      size_t get;
    };
    std::vector<std::string> group_order;
    std::unordered_map<std::string, std::vector<Member>> groups;
    for (size_t i = 0; i < batch.size(); ++i) {
      for (size_t g = 0; g < batch[i].gets.size(); ++g) {
        auto [it, fresh] =
            groups.try_emplace(batch[i].gets[g].group_key);
        if (fresh) group_order.push_back(batch[i].gets[g].group_key);
        it->second.push_back(Member{i, g});
      }
    }

    // Execution reads schemas and fact snapshots; hold the shared schema
    // lock like any session would. Released before hooks run.
    std::shared_lock<std::shared_mutex> schema_lock(db_->schema_mutex());
    const std::shared_ptr<CubeResultCache>& cache = engine_.result_cache();
    for (const std::string& key : group_order) {
      const std::vector<Member>& members = groups[key];
      if (members.size() < 2) continue;

      // Serial-trajectory consumer selection, in submission order — the
      // same answers the queries would get running one after another
      // against the shared cache:
      //  - an exact duplicate of an earlier consumer single-flights,
      //  - a subplan the cache already answers drops out,
      //  - a subplan a finer earlier consumer subsumes piggybacks (its
      //    session re-aggregates the consumer's seeded result),
      //  - everything else becomes a consumer of the shared scan.
      std::vector<CubeQuery> queries;
      std::vector<const CanonicalQuery*> consumer_canons;
      std::unordered_set<std::string> consumer_fps;
      std::vector<Member> participants;  // consumers + piggybackers
      std::vector<const CanonicalQuery*> rider_canons;
      size_t piggybacked = 0;
      const CubeSchema* schema = nullptr;
      {
        auto bound = db_->Find(batch[members[0].held]
                                   .gets[members[0].get]
                                   .canon.cube_name);
        if (!bound.ok()) continue;
        schema = &(*bound.value()).schema();
      }
      for (const Member& m : members) {
        if (!verdict[m.held].ok()) continue;  // already failed elsewhere
        const PlannedGet& get = batch[m.held].gets[m.get];
        if (consumer_fps.count(get.fingerprint)) {
          ++piggybacked;
          participants.push_back(m);
          rider_canons.push_back(&get.canon);
          continue;
        }
        if (cache != nullptr && cache->Contains(get.fingerprint)) continue;
        bool subsumed = false;
        for (const CanonicalQuery* canon : consumer_canons) {
          if (EntryAnswersQuery(*schema, get.canon, *canon)) {
            subsumed = true;
            break;
          }
        }
        if (subsumed) {
          ++piggybacked;
          participants.push_back(m);
          rider_canons.push_back(&get.canon);
          continue;
        }
        consumer_fps.insert(get.fingerprint);
        consumer_canons.push_back(&get.canon);
        queries.push_back(get.query);
        participants.push_back(m);
      }
      // A shared scan only pays when at least two queries ride one pass.
      if (queries.empty() || participants.size() < 2) continue;

      const uint64_t epoch =
          batch[members[0].held].gets[members[0].get].canon.epoch;
      Span scan_span("mqo.shared_scan");
      scan_span.AddString("cube", schema->name());
      scan_span.AddInt("queries", static_cast<int64_t>(queries.size()));
      scan_span.AddInt("piggybacked", static_cast<int64_t>(piggybacked));
      auto result = [&]() -> Result<std::vector<Cube>> {
        ASSESS_FAILPOINT("mqo.batch");
        return engine_.ExecuteSharedScan(queries, epoch);
      }();
      if (result.ok()) {
        shared_scans_.fetch_add(1, std::memory_order_relaxed);
        queries_piggybacked_.fetch_add(piggybacked,
                                       std::memory_order_relaxed);
        // The rider's own Execute() will land as a cache hit; the workload
        // profile still credits it as MQO demand on its lattice node.
        if (WorkloadProfiler* profiler = engine_.profiler()) {
          for (const CanonicalQuery* canon : rider_canons) {
            profiler->RecordPiggyback(*schema, *canon);
          }
        }
        const std::string group_note = SharedScanNote(participants.size());
        for (const Member& m : participants) {
          if (note[m.held].empty()) note[m.held] = group_note;
        }
      } else if (result.status().code() == StatusCode::kUnavailable) {
        // An ingest raced the window: the epoch the batch planned against
        // is gone. Degrade silently — every member executes unbatched.
        continue;
      } else {
        // The scan itself died (storage fault, injected failure): fail
        // exactly the requests that were riding it, with the typed status.
        // Other groups — and batch-mates outside this group — are fine.
        for (const Member& m : participants) {
          if (verdict[m.held].ok()) verdict[m.held] = result.status();
        }
      }
    }
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    if (verdict[i].ok()) {
      hooks_.enqueue(batch[i].token, note[i]);
    } else {
      hooks_.reject(batch[i].token, verdict[i]);
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
  }
}

MqoStats MqoCollector::stats() const {
  MqoStats stats;
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.queries_batched = queries_batched_.load(std::memory_order_relaxed);
  stats.shared_scans = shared_scans_.load(std::memory_order_relaxed);
  stats.queries_piggybacked =
      queries_piggybacked_.load(std::memory_order_relaxed);
  return stats;
}

void MqoCollector::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::vector<Held> rest;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rest = std::move(held_);
    held_.clear();
  }
  // The drain flush: held requests were admitted and carry live promises,
  // so they must reach the worker queue even mid-shutdown. Shared scans are
  // skipped — shutdown never waits on a fact scan.
  ProcessBatch(std::move(rest), /*shared_scans_allowed=*/false);
}

}  // namespace assess
