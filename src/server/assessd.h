#ifndef ASSESS_SERVER_ASSESSD_H_
#define ASSESS_SERVER_ASSESSD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "assess/session.h"
#include "ingest/ingest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "server/mqo.h"
#include "server/protocol.h"
#include "storage/star_schema.h"

namespace assess {

class DurabilityManager;
class HttpObsServer;

/// \brief Tuning knobs of an AssessServer.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one from port() after
  /// Start() (the way the loopback tests and benches run many servers).
  uint16_t port = 0;
  /// Size of the execution worker pool; <= 0 means one per hardware thread.
  int worker_threads = 0;
  /// Admission control: at most this many requests may wait for a worker;
  /// further queries are rejected immediately with kUnavailable ("server
  /// overloaded") instead of building an unbounded backlog.
  int max_queue = 128;
  /// Connections beyond this are greeted with kUnavailable and closed.
  int max_connections = 256;
  int listen_backlog = 64;
  /// Per-request wall-clock budget, measured from admission (enqueue) to
  /// response readiness. Requests that overstay — waiting or executing —
  /// are answered with kTimeout. <= 0 disables the deadline.
  int64_t request_timeout_ms = 30'000;
  /// Protocol frame cap for this server (requests and responses).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Retry dedup: completed responses are remembered by their client
  /// request id so a retried (reconnected) request replays its stored
  /// response instead of executing again. Bounded FIFO; 0 disables.
  size_t dedup_entries = 1024;
  /// Byte cap on the stored dedup responses (oldest evicted past it).
  size_t dedup_bytes = size_t{32} << 20;
  /// Whether kFailpoint admin frames may arm/disarm fault injection on
  /// this server. Off by default: chaos testing is opt-in
  /// (`assessd --failpoint-admin`).
  bool allow_failpoint_admin = false;
  /// Slow-query log: sampled queries whose execution takes at least this
  /// many milliseconds get their span tree dumped to stderr. < 0 (default)
  /// disables the log and the per-query tracing behind it; 0 logs every
  /// sampled query. No-op when tracing is compiled out.
  int64_t slow_query_ms = -1;
  /// Fraction of queries traced when the slow-query log is on, in [0, 1].
  /// The sampler is deterministic under `trace_seed`, so a given rate and
  /// seed always trace the same request sequence.
  double trace_sample = 1.0;
  uint64_t trace_seed = 1;
  /// Test hook for the slow-query log: when set, the formatted log line is
  /// handed here instead of being printed to stderr — the way the
  /// end-to-end trace-correlation test reads the line back.
  std::function<void(const std::string&)> slow_query_sink;
  /// How many recent sampled span trees the /traces ring buffer keeps.
  size_t trace_ring_entries = 32;
  /// Observability HTTP listener (assessd --http-port): serves /metrics,
  /// /healthz, /workload and /traces on `host`. < 0 (the default) disables
  /// it; 0 binds an ephemeral port readable from http_port().
  int http_port = -1;
  /// Workload profiling kill switch (assessd --workload-profile=off):
  /// when false, queries are not recorded into the workload profile and
  /// \workload / /workload report an empty profile.
  bool workload_profile = true;
  /// Multi-query optimization: queries are held for this micro-batch window
  /// (measured from the oldest held request) so concurrent statements whose
  /// planned `get` subplans share a cube, predicate conjunction and fact
  /// epoch execute as one fused shared scan that pre-seeds the result cache.
  /// 0 (the default) disables the collector entirely — every request goes
  /// straight to the worker queue. Useful values on a busy server are a few
  /// hundred µs: enough for concurrent clients to land in one window, well
  /// below interactive latency budgets. Responses are bit-identical either
  /// way.
  int64_t mqo_window_us = 0;
  /// A window flushes early once this many requests are pending.
  int mqo_max_batch = 16;
  /// Engine configuration for the per-connection sessions. When the result
  /// cache is enabled and no shared_cache is given, Start() creates one, so
  /// all connections pool warm results by construction. Likewise, when no
  /// scan pool is given, Start() installs the process-wide TaskPool::Shared()
  /// — every session then schedules its morsels on one fixed worker set, and
  /// `engine.threads <= 0` caps each query at that pool's parallelism rather
  /// than at hardware_concurrency (N sessions share the cores instead of
  /// each assuming it owns them all).
  EngineOptions engine;
  /// Ingestion: when set (to the same database passed to the constructor,
  /// but mutable), kIngest frames stream rows into it; when null (the
  /// default) the server is read-only and refuses them with kNotSupported.
  StarDatabase* mutable_db = nullptr;
  /// Server-side ingestion policy (format is taken per-request from the
  /// frame; the wire's auto-insert flag is honoured only when
  /// `ingest.auto_insert_members` also allows it).
  IngestOptions ingest;
  /// Durability (assessd --data-dir): when set, every kIngest batch is
  /// write-ahead-logged and made durable *before* its kIngestReply receipt,
  /// a checkpoint is taken after any ingest that pushed the WAL past its
  /// threshold, and graceful drain flushes the log. Borrowed, must outlive
  /// the server; it typically also owns the database `mutable_db` points
  /// to. Null = no durability (the in-memory default).
  DurabilityManager* durability = nullptr;
  /// Test-only: runs at the start of each query's execution, inside the
  /// worker, before the session is consulted. Lets tests make execution
  /// arbitrarily slow to exercise admission control and timeouts.
  std::function<void()> pre_execute_hook;
};

/// \brief assessd: a concurrent TCP server exposing one StarDatabase to many
/// remote assess sessions over the framed protocol of server/protocol.h.
///
/// Threading model — one acceptor, one reader per connection, a bounded
/// worker pool:
///
///   - The acceptor thread accepts sockets and spawns a reader thread per
///     connection, each owning a private AssessSession. All sessions share
///     the server's EngineOptions::shared_cache, so any connection's warm
///     results serve every other connection (the PR-1 cache finally used as
///     designed).
///   - Readers parse frames, answer control frames (kPing, kStats) inline,
///     and submit kQuery frames to the bounded request queue. Strict
///     request/response per connection: a reader waits for the response and
///     writes it before reading the next frame, so a session is never used
///     by two threads at once.
///   - Workers pop requests, enforce the wall-clock deadline, execute via
///     the connection's session and hand the serialized response back to
///     the reader.
///
/// Backpressure is explicit: a full queue rejects with kUnavailable rather
/// than queueing unboundedly, and the queue bound plus strict per-connection
/// request/response cap memory at (connections + queue) outstanding frames.
///
/// Shutdown (Stop(), also run by the destructor) is a graceful drain: stop
/// accepting connections and admitting queries, let queued and in-flight
/// requests complete and their responses flush, then close connections and
/// join all threads. The assessd daemon wires SIGINT/SIGTERM to Stop().
class AssessServer {
 public:
  /// \brief `db` must outlive the server and stay immutable while serving
  /// (the same contract the shared cache already imposes).
  AssessServer(const StarDatabase* db, ServerOptions options);
  ~AssessServer();

  AssessServer(const AssessServer&) = delete;
  AssessServer& operator=(const AssessServer&) = delete;

  /// \brief Binds, then starts the acceptor and the worker pool.
  Status Start();

  /// \brief Graceful drain; idempotent and safe to call concurrently with
  /// serving traffic.
  void Stop();

  /// \brief The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// \brief The observability HTTP listener's bound port (0 when disabled).
  uint16_t http_port() const;

  /// \brief Point-in-time server statistics (what kStats returns).
  ServerStats Snapshot() const;

  /// \brief Prometheus-style text exposition (what kMetrics returns): the
  /// process metrics registry plus this server's own series — the request
  /// latency histogram and the request/trace counters.
  std::string RenderMetrics() const;

  /// \brief The workload-profile + MV-advisor report (what kWorkload and
  /// the REPL's \workload return).
  std::string RenderWorkload() const;

  /// \brief The /traces payload: recent sampled span trees, newest last,
  /// each entry carrying its trace id and a Chrome trace_event object.
  std::string RenderTracesJson() const;

  /// \brief This server's workload profile (shared by all its sessions).
  WorkloadProfiler& profiler() { return profiler_; }

 private:
  struct Connection;
  struct Request;

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WorkerLoop();

  /// Executes one admitted request; the worker loop fulfils the promise
  /// with the returned (frame type, payload) after leaving the in-flight
  /// count. Deterministic outcomes of requests carrying a nonzero id are
  /// stored for retry dedup.
  std::pair<FrameType, std::string> ExecuteRequest(Request* request);

  /// Retry dedup: the stored response for `request_id`, if any.
  bool FindDeduped(uint64_t request_id, FrameType* type,
                   std::string* payload);
  void StoreDeduped(uint64_t request_id, FrameType type,
                    const std::string& payload);

  void RecordLatency(double ms);
  void ReapFinishedConnections();

  /// Deterministic sampling decision for one query (trace_mutex_).
  bool SampleTrace();
  /// Dumps a slow query's span tree — prefixed with the request id and the
  /// client trace id so the line joins to retries and /traces — to stderr
  /// (or the slow_query_sink test hook), behind the "trace.emit" failpoint:
  /// a failing sink only moves a counter, never the response.
  void EmitSlowQuery(uint64_t request_id, uint64_t trace_id,
                     const std::string& statement, double ms,
                     const TraceContext& trace);
  /// Appends one completed sampled trace to the /traces ring buffer.
  void RecordTrace(uint64_t trace_id, const std::string& statement, double ms,
                   const TraceContext& trace);

  const StarDatabase* db_;
  ServerOptions options_;

  /// The MQO micro-batch collector (null when mqo_window_us <= 0). Created
  /// in Start() after the shared cache and pool are installed — its engine
  /// must share both — and stopped in Stop() between the acceptor join and
  /// the drain wait, so its final flush lands in the queue the drain
  /// observes.
  std::unique_ptr<MqoCollector> mqo_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Connections (guarded by conn_mutex_). Readers mark themselves done;
  // the acceptor reaps finished ones so long-lived servers do not grow.
  mutable std::mutex conn_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  // Request queue (guarded by queue_mutex_). stopping_ is flipped under the
  // same mutex so admission and drain cannot race.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;   // workers: work available / exiting
  std::condition_variable drain_cv_;   // Stop(): queue empty and idle
  std::deque<Request*> queue_;
  bool stopping_ = false;
  bool workers_exit_ = false;
  int in_flight_ = 0;

  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mutex_;

  // Retry dedup store (guarded by dedup_mutex_): completed responses keyed
  // by client request id, evicted FIFO past the entry and byte caps.
  mutable std::mutex dedup_mutex_;
  std::unordered_map<uint64_t, std::pair<FrameType, std::string>> dedup_map_;
  std::deque<uint64_t> dedup_fifo_;
  size_t dedup_bytes_held_ = 0;

  // Monotonic counters.
  std::atomic<uint64_t> total_requests_{0};
  std::atomic<uint64_t> ok_responses_{0};
  std::atomic<uint64_t> error_responses_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> ingest_rows_{0};
  std::atomic<uint64_t> ingest_batches_{0};

  // Request latency histogram: lock-free Observe, whole-lifetime
  // percentiles (replaces the old sliding-window array + sort).
  Histogram latency_hist_{Histogram::LatencyBoundsMs()};

  // Slow-query tracing. The sampler's Rng is stateful, hence the mutex;
  // the counters feed the v3 stats fields.
  std::mutex trace_mutex_;
  TraceSampler trace_sampler_;
  std::atomic<uint64_t> slow_queries_{0};
  std::atomic<uint64_t> traces_sampled_{0};
  std::atomic<uint64_t> trace_spans_{0};
  std::atomic<uint64_t> trace_emit_failures_{0};

  // Workload intelligence: this server's profile store (every session's
  // engine records into it; Start() points options_.engine.profiler here),
  // the observability HTTP listener, the /traces ring and the count of
  // frames that carried a client trace id.
  WorkloadProfiler profiler_;
  std::unique_ptr<HttpObsServer> http_;
  mutable std::mutex ring_mutex_;
  std::deque<std::string> trace_ring_;  // rendered JSON entries, newest last
  std::atomic<uint64_t> trace_ids_received_{0};
};

}  // namespace assess

#endif  // ASSESS_SERVER_ASSESSD_H_
