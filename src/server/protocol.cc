#include "server/protocol.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace assess {
namespace {

Status SendAll(int fd, const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send failed: ") +
                                 std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. `*eof` is set when the peer closed cleanly
/// before the first byte (only meaningful on a non-OK return).
Status RecvAll(int fd, char* data, size_t len, bool* eof) {
  *eof = false;
  size_t read = 0;
  while (read < len) {
    ssize_t n = ::recv(fd, data + read, len - read, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv failed: ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      *eof = read == 0;
      return Status::Unavailable(read == 0 ? "connection closed"
                                           : "connection closed mid-frame");
    }
    read += static_cast<size_t>(n);
  }
  return Status::OK();
}

void PutU32Le(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32Le(const char* in) {
  return static_cast<uint32_t>(static_cast<uint8_t>(in[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(in[3])) << 24;
}

bool IsKnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kQuery:
    case FrameType::kStats:
    case FrameType::kPing:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kStatsReply:
    case FrameType::kPong:
      return true;
  }
  return false;
}

}  // namespace

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() + 1 > UINT32_MAX) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::string buf;
  buf.reserve(5 + payload.size());
  char header[5];
  PutU32Le(header, static_cast<uint32_t>(payload.size() + 1));
  header[4] = static_cast<char>(type);
  buf.append(header, 5);
  buf.append(payload.data(), payload.size());
  return SendAll(fd, buf.data(), buf.size());
}

Status ReadFrame(int fd, size_t max_frame_bytes, Frame* out) {
  char header[5];
  bool eof = false;
  ASSESS_RETURN_NOT_OK(RecvAll(fd, header, 4, &eof));
  uint32_t length = GetU32Le(header);
  if (length == 0) {
    return Status::InvalidArgument("frame with zero length");
  }
  if (length > max_frame_bytes) {
    char msg[64];
    std::snprintf(msg, sizeof(msg), "frame of %u bytes exceeds limit %zu",
                  length, max_frame_bytes);
    return Status::InvalidArgument(msg);
  }
  ASSESS_RETURN_NOT_OK(RecvAll(fd, header + 4, 1, &eof));
  uint8_t type = static_cast<uint8_t>(header[4]);
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument("unknown frame type");
  }
  out->type = static_cast<FrameType>(type);
  out->payload.resize(length - 1);
  if (length > 1) {
    ASSESS_RETURN_NOT_OK(RecvAll(fd, out->payload.data(), length - 1, &eof));
  }
  return Status::OK();
}

Result<ListenSocket> ListenOn(const std::string& host, uint16_t port,
                              int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket failed: ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseSocket(fd);
    return Status::InvalidArgument("cannot parse listen address '" + host +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Unavailable(std::string("bind failed: ") +
                                    std::strerror(errno));
    CloseSocket(fd);
    return st;
  }
  if (::listen(fd, backlog) < 0) {
    Status st = Status::Unavailable(std::string("listen failed: ") +
                                    std::strerror(errno));
    CloseSocket(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    Status st = Status::Unavailable(std::string("getsockname failed: ") +
                                    std::strerror(errno));
    CloseSocket(fd);
    return st;
  }
  return ListenSocket{fd, ntohs(bound.sin_port)};
}

Result<int> ConnectTo(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  char port_text[8];
  std::snprintf(port_text, sizeof(port_text), "%u", port);
  int rc = ::getaddrinfo(host.c_str(), port_text, &hints, &resolved);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve '" + host +
                               "': " + gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for '" + host + "'");
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(resolved);
      return fd;
    }
    last = Status::Unavailable("connect to " + host + ":" + port_text +
                               " failed: " + std::strerror(errno));
    CloseSocket(fd);
  }
  ::freeaddrinfo(resolved);
  return last;
}

void CloseSocket(int fd) {
  if (fd < 0) return;
  while (::close(fd) < 0 && errno == EINTR) {
  }
}

// ---------------------------------------------------------------------------
// ServerStats
// ---------------------------------------------------------------------------

namespace {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = std::bit_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

struct StatsReader {
  std::string_view data;
  size_t pos = 0;

  Status GetVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos >= data.size()) {
        return Status::InvalidArgument("stats: truncated varint");
      }
      uint8_t byte = static_cast<uint8_t>(data[pos++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return Status::OK();
      }
    }
    return Status::InvalidArgument("stats: varint too long");
  }

  Status GetDouble(double* out) {
    if (data.size() - pos < 8) {
      return Status::InvalidArgument("stats: truncated double");
    }
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i]))
              << (8 * i);
    }
    pos += 8;
    *out = std::bit_cast<double>(bits);
    return Status::OK();
  }
};

}  // namespace

std::string ServerStats::Serialize() const {
  std::string out;
  out.push_back('T');  // stats magic
  out.push_back(0x01);
  for (uint64_t v : {total_requests, ok_responses, error_responses,
                     rejected_overload, timeouts, queued, in_flight,
                     connections, worker_threads}) {
    PutVarint(&out, v);
  }
  PutDouble(&out, p50_ms);
  PutDouble(&out, p90_ms);
  PutDouble(&out, p99_ms);
  for (uint64_t v : {cache_lookups, cache_exact_hits, cache_subsumption_hits,
                     cache_misses, cache_entries, cache_bytes}) {
    PutVarint(&out, v);
  }
  return out;
}

Result<ServerStats> ServerStats::Deserialize(std::string_view data) {
  StatsReader reader{data};
  if (data.size() < 2 || data[0] != 'T' || data[1] != 0x01) {
    return Status::InvalidArgument("stats: bad magic");
  }
  reader.pos = 2;
  ServerStats stats;
  uint64_t* ints[] = {&stats.total_requests,    &stats.ok_responses,
                      &stats.error_responses,   &stats.rejected_overload,
                      &stats.timeouts,          &stats.queued,
                      &stats.in_flight,         &stats.connections,
                      &stats.worker_threads};
  for (uint64_t* slot : ints) {
    ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
  }
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&stats.p50_ms));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&stats.p90_ms));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&stats.p99_ms));
  uint64_t* cache_ints[] = {&stats.cache_lookups, &stats.cache_exact_hits,
                            &stats.cache_subsumption_hits,
                            &stats.cache_misses,  &stats.cache_entries,
                            &stats.cache_bytes};
  for (uint64_t* slot : cache_ints) {
    ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
  }
  if (reader.pos != data.size()) {
    return Status::InvalidArgument("stats: trailing bytes");
  }
  return stats;
}

std::string ServerStats::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "requests: %llu total, %llu ok, %llu errors, %llu overload-rejected, "
      "%llu timeouts\n"
      "load: %llu queued, %llu in flight, %llu connections, %llu workers\n"
      "latency: p50 %.3f ms, p90 %.3f ms, p99 %.3f ms\n"
      "cache: %llu lookups, %llu exact hits, %llu subsumption hits, "
      "%llu misses (hit rate %.1f%%)\n"
      "       %llu entries, %.1f MiB resident",
      static_cast<unsigned long long>(total_requests),
      static_cast<unsigned long long>(ok_responses),
      static_cast<unsigned long long>(error_responses),
      static_cast<unsigned long long>(rejected_overload),
      static_cast<unsigned long long>(timeouts),
      static_cast<unsigned long long>(queued),
      static_cast<unsigned long long>(in_flight),
      static_cast<unsigned long long>(connections),
      static_cast<unsigned long long>(worker_threads), p50_ms, p90_ms, p99_ms,
      static_cast<unsigned long long>(cache_lookups),
      static_cast<unsigned long long>(cache_exact_hits),
      static_cast<unsigned long long>(cache_subsumption_hits),
      static_cast<unsigned long long>(cache_misses), 100.0 * cache_hit_rate(),
      static_cast<unsigned long long>(cache_entries),
      cache_bytes / (1024.0 * 1024.0));
  return buf;
}

}  // namespace assess
