#include "server/protocol.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "common/failpoint.h"

namespace assess {
namespace {

Status SendAll(int fd, const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("send deadline exceeded");
      }
      return Status::Unavailable(std::string("send failed: ") +
                                 std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. `*eof` is set when the peer closed cleanly
/// before the first byte (only meaningful on a non-OK return).
Status RecvAll(int fd, char* data, size_t len, bool* eof) {
  *eof = false;
  size_t read = 0;
  while (read < len) {
    ssize_t n = ::recv(fd, data + read, len - read, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("recv deadline exceeded");
      }
      return Status::Unavailable(std::string("recv failed: ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      *eof = read == 0;
      return Status::Unavailable(read == 0 ? "connection closed"
                                           : "connection closed mid-frame");
    }
    read += static_cast<size_t>(n);
  }
  return Status::OK();
}

void PutU32Le(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32Le(const char* in) {
  return static_cast<uint32_t>(static_cast<uint8_t>(in[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(in[3])) << 24;
}

bool IsKnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kQuery:
    case FrameType::kStats:
    case FrameType::kPing:
    case FrameType::kFailpoint:
    case FrameType::kMetrics:
    case FrameType::kExplainAnalyze:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kStatsReply:
    case FrameType::kPong:
    case FrameType::kFailpointReply:
    case FrameType::kMetricsReply:
    case FrameType::kExplainReply:
    case FrameType::kIngest:
    case FrameType::kIngestReply:
    case FrameType::kWorkload:
    case FrameType::kWorkloadReply:
      return true;
  }
  return false;
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload,
                        uint64_t trace_id) {
  std::string buf;
  const size_t id_bytes = trace_id != 0 ? 8 : 0;
  buf.reserve(9 + id_bytes + payload.size());
  char header[5];
  PutU32Le(header, static_cast<uint32_t>(payload.size() + id_bytes + 1));
  header[4] = static_cast<char>(static_cast<uint8_t>(type) |
                                (trace_id != 0 ? kFrameTraceIdFlag : 0));
  buf.append(header, 5);
  for (size_t i = 0; i < id_bytes; ++i) {
    buf.push_back(static_cast<char>((trace_id >> (8 * i)) & 0xFF));
  }
  buf.append(payload.data(), payload.size());
  // The trailer covers type + payload; the length prefix stays outside so
  // that a corrupted body is *detected* rather than desynchronizing the
  // stream (see the header comment).
  char trailer[4];
  PutU32Le(trailer, Crc32c(buf.data() + 4, buf.size() - 4));
  buf.append(trailer, 4);
  return buf;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  uint64_t trace_id) {
  if (payload.size() + 9 > UINT32_MAX) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::string buf = EncodeFrame(type, payload, trace_id);
  // Fault injection: flip bytes past the length prefix of an outgoing
  // frame, so the receiver's CRC check must catch it.
  ASSESS_FAILPOINT_CORRUPT("net.write_frame", &buf, 4);
  return SendAll(fd, buf.data(), buf.size());
}

Status ReadFrame(int fd, size_t max_frame_bytes, Frame* out) {
  char header[5];
  bool eof = false;
  ASSESS_RETURN_NOT_OK(RecvAll(fd, header, 4, &eof));
  uint32_t length = GetU32Le(header);
  if (length == 0) {
    return Status::InvalidArgument("frame with zero length");
  }
  if (length > max_frame_bytes) {
    char msg[64];
    std::snprintf(msg, sizeof(msg), "frame of %u bytes exceeds limit %zu",
                  length, max_frame_bytes);
    return Status::FrameTooLarge(msg);
  }
  ASSESS_RETURN_NOT_OK(RecvAll(fd, header + 4, 1, &eof));
  uint8_t type = static_cast<uint8_t>(header[4]);
  out->payload.resize(length - 1);
  if (length > 1) {
    ASSESS_RETURN_NOT_OK(RecvAll(fd, out->payload.data(), length - 1, &eof));
  }
  char trailer[4];
  ASSESS_RETURN_NOT_OK(RecvAll(fd, trailer, 4, &eof));
  uint32_t crc = Crc32cExtend(Crc32c(header + 4, 1), out->payload.data(),
                              out->payload.size());
  if (crc != GetU32Le(trailer)) {
    return Status::CorruptFrame("frame failed its CRC32C integrity check");
  }
  // Type validation after the CRC: a flipped type byte is corruption, not a
  // protocol violation by the peer.
  out->trace_id = 0;
  if ((type & kFrameTraceIdFlag) != 0) {
    const uint8_t base = type & static_cast<uint8_t>(~kFrameTraceIdFlag);
    if (!IsKnownFrameType(base)) {
      return Status::InvalidArgument("unknown frame type");
    }
    if (out->payload.size() < 8) {
      return Status::InvalidArgument("traced frame too short for its id");
    }
    uint64_t id = 0;
    for (int i = 0; i < 8; ++i) {
      id |= static_cast<uint64_t>(static_cast<uint8_t>(out->payload[i]))
            << (8 * i);
    }
    out->trace_id = id;
    out->payload.erase(0, 8);
    out->type = static_cast<FrameType>(base);
    return Status::OK();
  }
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument("unknown frame type");
  }
  out->type = static_cast<FrameType>(type);
  return Status::OK();
}

std::string EncodeQueryPayload(uint64_t request_id,
                               std::string_view statement) {
  std::string payload;
  payload.reserve(8 + statement.size());
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<char>((request_id >> (8 * i)) & 0xFF));
  }
  payload.append(statement.data(), statement.size());
  return payload;
}

Status DecodeQueryPayload(std::string_view payload, uint64_t* request_id,
                          std::string_view* statement) {
  if (payload.size() < 8) {
    return Status::InvalidArgument(
        "query frame too short for its request id");
  }
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<uint64_t>(static_cast<uint8_t>(payload[i])) << (8 * i);
  }
  *request_id = id;
  *statement = payload.substr(8);
  return Status::OK();
}

std::string EncodeIngestPayload(uint64_t request_id, std::string_view cube,
                                IngestFormat format, uint8_t flags,
                                std::string_view text) {
  std::string payload;
  payload.reserve(12 + cube.size() + text.size());
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<char>((request_id >> (8 * i)) & 0xFF));
  }
  uint16_t cube_len = static_cast<uint16_t>(cube.size());
  payload.push_back(static_cast<char>(cube_len & 0xFF));
  payload.push_back(static_cast<char>((cube_len >> 8) & 0xFF));
  payload.append(cube.data(), cube.size());
  payload.push_back(static_cast<char>(format));
  payload.push_back(static_cast<char>(flags));
  payload.append(text.data(), text.size());
  return payload;
}

Status DecodeIngestPayload(std::string_view payload, uint64_t* request_id,
                           std::string_view* cube, IngestFormat* format,
                           uint8_t* flags, std::string_view* text) {
  if (payload.size() < 10) {
    return Status::InvalidArgument("ingest frame too short for its header");
  }
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<uint64_t>(static_cast<uint8_t>(payload[i])) << (8 * i);
  }
  size_t cube_len = static_cast<size_t>(static_cast<uint8_t>(payload[8])) |
                    static_cast<size_t>(static_cast<uint8_t>(payload[9])) << 8;
  if (payload.size() < 12 + cube_len) {
    return Status::InvalidArgument("ingest frame truncated in its cube name");
  }
  uint8_t format_byte = static_cast<uint8_t>(payload[10 + cube_len]);
  if (format_byte != static_cast<uint8_t>(IngestFormat::kCsv) &&
      format_byte != static_cast<uint8_t>(IngestFormat::kJsonl)) {
    return Status::InvalidArgument("ingest frame has an unknown format byte");
  }
  *request_id = id;
  *cube = payload.substr(10, cube_len);
  *format = static_cast<IngestFormat>(format_byte);
  *flags = static_cast<uint8_t>(payload[11 + cube_len]);
  *text = payload.substr(12 + cube_len);
  return Status::OK();
}

Result<ListenSocket> ListenOn(const std::string& host, uint16_t port,
                              int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket failed: ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseSocket(fd);
    return Status::InvalidArgument("cannot parse listen address '" + host +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Unavailable(std::string("bind failed: ") +
                                    std::strerror(errno));
    CloseSocket(fd);
    return st;
  }
  if (::listen(fd, backlog) < 0) {
    Status st = Status::Unavailable(std::string("listen failed: ") +
                                    std::strerror(errno));
    CloseSocket(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    Status st = Status::Unavailable(std::string("getsockname failed: ") +
                                    std::strerror(errno));
    CloseSocket(fd);
    return st;
  }
  return ListenSocket{fd, ntohs(bound.sin_port)};
}

namespace {

/// Bounded TCP handshake: non-blocking connect, poll for writability, then
/// SO_ERROR to read the handshake's outcome. Returns kTimeout when the
/// deadline expires first.
Status ConnectWithDeadline(int fd, const sockaddr* addr, socklen_t addrlen,
                           int64_t timeout_ms) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Unavailable(std::string("fcntl failed: ") +
                               std::strerror(errno));
  }
  int rc = ::connect(fd, addr, addrlen);
  if (rc < 0 && errno != EINPROGRESS) {
    return Status::Unavailable(std::string("connect failed: ") +
                               std::strerror(errno));
  }
  if (rc < 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int ready;
    do {
      ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      return Status::Unavailable(std::string("poll failed: ") +
                                 std::strerror(errno));
    }
    if (ready == 0) {
      char msg[64];
      std::snprintf(msg, sizeof(msg), "connect timed out after %lld ms",
                    static_cast<long long>(timeout_ms));
      return Status::Timeout(msg);
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      return Status::Unavailable(std::string("connect failed: ") +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::Unavailable(std::string("fcntl failed: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<int> ConnectTo(const std::string& host, uint16_t port,
                      int64_t timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  char port_text[8];
  std::snprintf(port_text, sizeof(port_text), "%u", port);
  int rc = ::getaddrinfo(host.c_str(), port_text, &hints, &resolved);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve '" + host +
                               "': " + gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for '" + host + "'");
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    Status connected;
    if (timeout_ms > 0) {
      connected = ConnectWithDeadline(fd, ai->ai_addr, ai->ai_addrlen,
                                      timeout_ms);
    } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      connected = Status::Unavailable(std::string("connect failed: ") +
                                      std::strerror(errno));
    }
    if (connected.ok()) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(resolved);
      return fd;
    }
    last = connected.WithContext("connect to " + host + ":" + port_text);
    CloseSocket(fd);
  }
  ::freeaddrinfo(resolved);
  return last;
}

void CloseSocket(int fd) {
  if (fd < 0) return;
  while (::close(fd) < 0 && errno == EINTR) {
  }
}

// ---------------------------------------------------------------------------
// ServerStats
// ---------------------------------------------------------------------------

namespace {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = std::bit_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

struct StatsReader {
  std::string_view data;
  size_t pos = 0;

  Status GetVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos >= data.size()) {
        return Status::InvalidArgument("stats: truncated varint");
      }
      uint8_t byte = static_cast<uint8_t>(data[pos++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return Status::OK();
      }
    }
    return Status::InvalidArgument("stats: varint too long");
  }

  Status GetDouble(double* out) {
    if (data.size() - pos < 8) {
      return Status::InvalidArgument("stats: truncated double");
    }
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i]))
              << (8 * i);
    }
    pos += 8;
    *out = std::bit_cast<double>(bits);
    return Status::OK();
  }
};

}  // namespace

std::string ServerStats::Serialize() const {
  std::string out;
  out.push_back('T');  // stats magic
  out.push_back(0x07);  // v7: appends workload counters after v6's MQO
  for (uint64_t v : {total_requests, ok_responses, error_responses,
                     rejected_overload, timeouts, queued, in_flight,
                     connections, worker_threads}) {
    PutVarint(&out, v);
  }
  PutDouble(&out, p50_ms);
  PutDouble(&out, p90_ms);
  PutDouble(&out, p99_ms);
  for (uint64_t v : {cache_lookups, cache_exact_hits, cache_subsumption_hits,
                     cache_misses, cache_entries, cache_bytes}) {
    PutVarint(&out, v);
  }
  for (uint64_t v :
       {pool_workers, pool_queue_depth, morsels_scanned, morsels_skipped}) {
    PutVarint(&out, v);
  }
  for (uint64_t v :
       {latency_samples, slow_queries, traces_sampled, trace_spans}) {
    PutVarint(&out, v);
  }
  for (uint64_t v :
       {ingest_rows, ingest_batches, cache_epoch_invalidations}) {
    PutVarint(&out, v);
  }
  for (uint64_t v : {wal_appends, wal_fsyncs, wal_bytes, checkpoints,
                     recovery_replayed_records, recovery_truncated_bytes}) {
    PutVarint(&out, v);
  }
  for (uint64_t v : {mqo_batches, mqo_queries_batched, mqo_shared_scans,
                     mqo_queries_piggybacked}) {
    PutVarint(&out, v);
  }
  for (uint64_t v : {workload_fingerprints, workload_evictions, http_requests,
                     trace_ids_received}) {
    PutVarint(&out, v);
  }
  return out;
}

Result<ServerStats> ServerStats::Deserialize(std::string_view data) {
  StatsReader reader{data};
  // Older payloads decode with the newer counters left at zero; each version
  // appends its field group after the previous one's, so one pass reads
  // every layout.
  if (data.size() < 2 || data[0] != 'T' || data[1] < 0x02 || data[1] > 0x07) {
    return Status::InvalidArgument("stats: bad magic");
  }
  const uint8_t version = static_cast<uint8_t>(data[1]);
  reader.pos = 2;
  ServerStats stats;
  uint64_t* ints[] = {&stats.total_requests,    &stats.ok_responses,
                      &stats.error_responses,   &stats.rejected_overload,
                      &stats.timeouts,          &stats.queued,
                      &stats.in_flight,         &stats.connections,
                      &stats.worker_threads};
  for (uint64_t* slot : ints) {
    ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
  }
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&stats.p50_ms));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&stats.p90_ms));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&stats.p99_ms));
  uint64_t* cache_ints[] = {&stats.cache_lookups, &stats.cache_exact_hits,
                            &stats.cache_subsumption_hits,
                            &stats.cache_misses,  &stats.cache_entries,
                            &stats.cache_bytes};
  for (uint64_t* slot : cache_ints) {
    ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
  }
  uint64_t* pool_ints[] = {&stats.pool_workers, &stats.pool_queue_depth,
                           &stats.morsels_scanned, &stats.morsels_skipped};
  for (uint64_t* slot : pool_ints) {
    ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
  }
  if (version >= 0x03) {
    uint64_t* obs_ints[] = {&stats.latency_samples, &stats.slow_queries,
                            &stats.traces_sampled, &stats.trace_spans};
    for (uint64_t* slot : obs_ints) {
      ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
    }
  }
  if (version >= 0x04) {
    uint64_t* ingest_ints[] = {&stats.ingest_rows, &stats.ingest_batches,
                               &stats.cache_epoch_invalidations};
    for (uint64_t* slot : ingest_ints) {
      ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
    }
  }
  if (version >= 0x05) {
    uint64_t* wal_ints[] = {&stats.wal_appends, &stats.wal_fsyncs,
                            &stats.wal_bytes, &stats.checkpoints,
                            &stats.recovery_replayed_records,
                            &stats.recovery_truncated_bytes};
    for (uint64_t* slot : wal_ints) {
      ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
    }
  }
  if (version >= 0x06) {
    uint64_t* mqo_ints[] = {&stats.mqo_batches, &stats.mqo_queries_batched,
                            &stats.mqo_shared_scans,
                            &stats.mqo_queries_piggybacked};
    for (uint64_t* slot : mqo_ints) {
      ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
    }
  }
  if (version >= 0x07) {
    uint64_t* workload_ints[] = {&stats.workload_fingerprints,
                                 &stats.workload_evictions,
                                 &stats.http_requests,
                                 &stats.trace_ids_received};
    for (uint64_t* slot : workload_ints) {
      ASSESS_RETURN_NOT_OK(reader.GetVarint(slot));
    }
  }
  if (reader.pos != data.size()) {
    return Status::InvalidArgument("stats: trailing bytes");
  }
  return stats;
}

std::string ServerStats::ToString() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "requests: %llu total, %llu ok, %llu errors, %llu overload-rejected, "
      "%llu timeouts\n"
      "load: %llu queued, %llu in flight, %llu connections, %llu workers\n"
      "latency: p50 %.3f ms, p90 %.3f ms, p99 %.3f ms\n"
      "cache: %llu lookups, %llu exact hits, %llu subsumption hits, "
      "%llu misses (hit rate %.1f%%)\n"
      "       %llu entries, %.1f MiB resident\n"
      "engine: %llu pool workers, %llu scan jobs queued; morsels %llu "
      "scanned, %llu skipped by zone maps\n"
      "obs: %llu latency samples, %llu slow queries, %llu traces "
      "(%llu spans)\n"
      "ingest: %llu rows in %llu batches; %llu stale-epoch cache entries "
      "swept\n"
      "wal: %llu appends, %llu fsyncs, %.1f MiB written; %llu checkpoints; "
      "recovery replayed %llu records, dropped %llu torn bytes\n"
      "mqo: %llu batches (%llu queries), %llu shared scans, "
      "%llu piggybacked\n"
      "workload: %llu fingerprints profiled, %llu evicted; %llu http "
      "requests, %llu traced frames",
      static_cast<unsigned long long>(total_requests),
      static_cast<unsigned long long>(ok_responses),
      static_cast<unsigned long long>(error_responses),
      static_cast<unsigned long long>(rejected_overload),
      static_cast<unsigned long long>(timeouts),
      static_cast<unsigned long long>(queued),
      static_cast<unsigned long long>(in_flight),
      static_cast<unsigned long long>(connections),
      static_cast<unsigned long long>(worker_threads), p50_ms, p90_ms, p99_ms,
      static_cast<unsigned long long>(cache_lookups),
      static_cast<unsigned long long>(cache_exact_hits),
      static_cast<unsigned long long>(cache_subsumption_hits),
      static_cast<unsigned long long>(cache_misses), 100.0 * cache_hit_rate(),
      static_cast<unsigned long long>(cache_entries),
      cache_bytes / (1024.0 * 1024.0),
      static_cast<unsigned long long>(pool_workers),
      static_cast<unsigned long long>(pool_queue_depth),
      static_cast<unsigned long long>(morsels_scanned),
      static_cast<unsigned long long>(morsels_skipped),
      static_cast<unsigned long long>(latency_samples),
      static_cast<unsigned long long>(slow_queries),
      static_cast<unsigned long long>(traces_sampled),
      static_cast<unsigned long long>(trace_spans),
      static_cast<unsigned long long>(ingest_rows),
      static_cast<unsigned long long>(ingest_batches),
      static_cast<unsigned long long>(cache_epoch_invalidations),
      static_cast<unsigned long long>(wal_appends),
      static_cast<unsigned long long>(wal_fsyncs),
      wal_bytes / (1024.0 * 1024.0),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(recovery_replayed_records),
      static_cast<unsigned long long>(recovery_truncated_bytes),
      static_cast<unsigned long long>(mqo_batches),
      static_cast<unsigned long long>(mqo_queries_batched),
      static_cast<unsigned long long>(mqo_shared_scans),
      static_cast<unsigned long long>(mqo_queries_piggybacked),
      static_cast<unsigned long long>(workload_fingerprints),
      static_cast<unsigned long long>(workload_evictions),
      static_cast<unsigned long long>(http_requests),
      static_cast<unsigned long long>(trace_ids_received));
  return buf;
}

}  // namespace assess
