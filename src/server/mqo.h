#ifndef ASSESS_SERVER_MQO_H_
#define ASSESS_SERVER_MQO_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "assess/analyzer.h"
#include "cache/query_fingerprint.h"
#include "common/result.h"
#include "functions/function_registry.h"
#include "labeling/label_function.h"
#include "olap/cube_query.h"
#include "storage/star_query_engine.h"

namespace assess {

class Histogram;

/// \brief Micro-batch window knobs of the server's multi-query optimizer.
struct MqoOptions {
  /// How long the collector may hold the oldest admitted request before the
  /// window flushes. 0 disables batching entirely (requests bypass the
  /// collector); the useful range on a busy server is a few hundred µs —
  /// enough for concurrent clients to land in one window, far below
  /// interactive latency budgets.
  int64_t window_us = 0;
  /// Flush early once this many requests are pending, regardless of age.
  int max_batch = 16;
};

/// \brief Monotonic counters of the collector (each independently atomic).
struct MqoStats {
  uint64_t batches = 0;             ///< flushes that held >= 2 requests
  uint64_t queries_batched = 0;     ///< requests flushed in such batches
  uint64_t shared_scans = 0;        ///< shared-scan group executions
  uint64_t queries_piggybacked = 0; ///< batch members answered by a
                                    ///< batch-mate's scan instead of their own
};

/// \brief The server's multi-query optimizer: a micro-batch collector that
/// holds admitted statements for a configurable window, groups their planned
/// `get` subplans by canonical fingerprint into shared-scan groups — exact
/// duplicates single-flighted, same-selection/different-group-by queries
/// sharing one fused scan, coarser queries subsumed by a batch-mate's finer
/// result — executes one fused morsel scan per group, and hands every
/// request back to the normal worker path with the shared result cache
/// pre-seeded. Because each session still executes its own statement and the
/// seeded entries are keyed exactly as the solo path would key them, batched
/// responses are bit-identical to unbatched execution.
///
/// Epoch correctness: every subplan is stamped with its cube's fact epoch at
/// submit time, the epoch is part of the group key, and the shared scan
/// re-checks it — a batch never mixes queries planned against different
/// table contents, and an ingest racing the window silently degrades the
/// group to unbatched execution.
class MqoCollector {
 public:
  /// How flushed requests leave the collector. Both hooks are invoked from
  /// the collector thread (or the thread calling Stop) with no collector
  /// lock held; `enqueue` must accept requests even while the server is
  /// draining — a held request was already admitted, and abandoning its
  /// promise would wedge the reader. Exactly one hook fires per submitted
  /// request.
  struct Hooks {
    /// Hand the request to the worker queue. `note` is non-empty when the
    /// request rode a shared scan ("mqo: shared scan with N queries") —
    /// EXPLAIN ANALYZE surfaces it; query payloads never change.
    std::function<void(void* token, const std::string& note)> enqueue;
    /// Fail the request with a typed error (a shared scan for its group
    /// died). Other groups in the batch are unaffected.
    std::function<void(void* token, const Status& status)> reject;
  };

  /// `db` and `engine` mirror what server sessions use: the engine MUST
  /// share the sessions' result cache and task pool, or pre-seeding feeds
  /// the wrong cache and scans fight the sessions for cores.
  MqoCollector(const StarDatabase* db, const EngineOptions& engine,
               MqoOptions options, Hooks hooks);
  ~MqoCollector();

  /// \brief Plans `statement` (parse → analyze → best plan → get subplans,
  /// under the database's shared schema lock) and holds `token` for the
  /// current window. Returns false once the collector has stopped — the
  /// caller then owns the request again and must admit it through the
  /// normal path. Thread-safe; called from reader threads. Must NOT be
  /// called while holding locks the enqueue/reject hooks take.
  bool Submit(void* token, const std::string& statement);

  /// \brief Requests submitted but not yet handed back — the server counts
  /// these against its queue bound during admission.
  int64_t pending() const { return pending_.load(std::memory_order_relaxed); }

  MqoStats stats() const;

  /// \brief Final flush: every held request is handed back via the hooks —
  /// shared scans are skipped so shutdown never waits on a fact scan — then
  /// the collector thread is joined. After Stop, Submit returns false.
  /// Idempotent.
  void Stop();

 private:
  /// One planned `get` of a held statement, with its grouping identity.
  struct PlannedGet {
    CubeQuery query;
    CanonicalQuery canon;     // epoch stamped from submit-time fact epoch
    std::string fingerprint;  // FingerprintKey(canon)
    std::string group_key;    // cube \0 predicate-conjunction key \0 epoch
  };

  struct Held {
    void* token = nullptr;
    std::vector<PlannedGet> gets;  // empty when the statement didn't plan
    std::chrono::steady_clock::time_point arrived;
  };

  void Run();
  /// Groups, optionally executes shared scans, and dispatches every Held
  /// through exactly one hook. Called without `mutex_` held.
  void ProcessBatch(std::vector<Held> batch, bool shared_scans_allowed);
  Result<std::vector<PlannedGet>> PlanStatement(const std::string& statement);

  const StarDatabase* db_;
  StarQueryEngine engine_;
  MqoOptions options_;
  Hooks hooks_;
  FunctionRegistry functions_;
  LabelingRegistry labelings_;
  AnalyzerOptions analyzer_options_;
  Histogram* batch_size_hist_;  // registry-owned

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Held> held_;
  bool stop_ = false;
  std::thread thread_;

  std::atomic<int64_t> pending_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> queries_batched_{0};
  std::atomic<uint64_t> shared_scans_{0};
  std::atomic<uint64_t> queries_piggybacked_{0};
};

}  // namespace assess

#endif  // ASSESS_SERVER_MQO_H_
