#include "assess/lexer.h"

#include <cctype>
#include <charconv>

#include "common/str_util.h"

namespace assess {

std::string_view TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kNumber:
      return "number";
    case TokenType::kString:
      return "string";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBrace:
      return "'{'";
    case TokenType::kRBrace:
      return "'}'";
    case TokenType::kLBracket:
      return "'['";
    case TokenType::kRBracket:
      return "']'";
    case TokenType::kComma:
      return "','";
    case TokenType::kColon:
      return "':'";
    case TokenType::kEquals:
      return "'='";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kEnd:
      return "end of statement";
  }
  return "?";
}

bool Token::IsKeyword(std::string_view keyword) const {
  return type == TokenType::kIdent && EqualsIgnoreCase(text, keyword);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      token.type = TokenType::kIdent;
      token.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        // A '.' directly followed by a non-digit ends the number (so
        // "B.m" never mis-lexes, though identifiers cannot start with a
        // digit anyway).
        if (input[i] == '.' && (i + 1 >= n ||
                                !std::isdigit(static_cast<unsigned char>(
                                    input[i + 1])))) {
          break;
        }
        ++i;
      }
      std::string_view text = input.substr(start, i - start);
      double value = 0.0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::InvalidArgument("malformed number '" +
                                       std::string(text) + "' at offset " +
                                       std::to_string(start));
      }
      token.type = TokenType::kNumber;
      token.number = value;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      while (i < n && input[i] != '\'') ++i;
      if (i >= n) {
        return Status::InvalidArgument("unterminated string at offset " +
                                       std::to_string(start - 1));
      }
      token.type = TokenType::kString;
      token.text = std::string(input.substr(start, i - start));
      ++i;  // closing quote
      tokens.push_back(std::move(token));
      continue;
    }
    switch (c) {
      case '(':
        token.type = TokenType::kLParen;
        break;
      case ')':
        token.type = TokenType::kRParen;
        break;
      case '{':
        token.type = TokenType::kLBrace;
        break;
      case '}':
        token.type = TokenType::kRBrace;
        break;
      case '[':
        token.type = TokenType::kLBracket;
        break;
      case ']':
        token.type = TokenType::kRBracket;
        break;
      case ',':
        token.type = TokenType::kComma;
        break;
      case ':':
        token.type = TokenType::kColon;
        break;
      case '=':
        token.type = TokenType::kEquals;
        break;
      case '*':
        token.type = TokenType::kStar;
        break;
      case '.':
        token.type = TokenType::kDot;
        break;
      case '-':
        token.type = TokenType::kMinus;
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(i));
    }
    ++i;
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace assess
