#include "assess/analyzer.h"

#include <algorithm>

#include "common/str_util.h"

namespace assess {

namespace {

// Resolves surface predicates against `schema` into engine predicates.
Result<std::vector<Predicate>> ResolvePredicates(
    const CubeSchema& schema, const std::vector<PredicateSpec>& specs) {
  std::vector<Predicate> out;
  out.reserve(specs.size());
  for (const PredicateSpec& spec : specs) {
    Predicate p;
    ASSESS_ASSIGN_OR_RETURN(p.hierarchy, schema.HierarchyOfLevel(spec.level));
    ASSESS_ASSIGN_OR_RETURN(p.level,
                            schema.hierarchy(p.hierarchy).LevelIndex(spec.level));
    p.op = spec.op;
    p.members = spec.members;
    // Validate member names eagerly for =/IN so errors carry statement
    // context instead of surfacing mid-execution.
    if (p.op != PredicateOp::kBetween) {
      for (const std::string& member : p.members) {
        ASSESS_RETURN_NOT_OK(schema.hierarchy(p.hierarchy)
                                 .MemberIdOf(p.level, member)
                                 .status());
      }
    }
    out.push_back(std::move(p));
  }
  return out;
}

// Builds the default comparison expression difference(m, <benchmark>).
FuncExpr DefaultUsing(const AnalyzedStatement& analyzed) {
  std::vector<FuncExpr> args;
  args.push_back(FuncExpr::Measure(analyzed.measure));
  if (analyzed.type == BenchmarkType::kConstant) {
    args.push_back(FuncExpr::Number(analyzed.constant));
  } else {
    args.push_back(FuncExpr::Measure(analyzed.benchmark_measure_name));
  }
  return FuncExpr::Call("difference", std::move(args));
}

// Validates that every function mentioned by `expr` exists with a matching
// arity, and every measure reference is resolvable later (plain measure,
// benchmark.<m>, or a numeric constant).
bool IsPropertyCall(const FuncExpr& expr) {
  return expr.kind == FuncExpr::Kind::kCall &&
         EqualsIgnoreCase(expr.name, "property");
}

Status ValidateUsing(const FuncExpr& expr, const FunctionRegistry& functions) {
  if (expr.kind != FuncExpr::Kind::kCall) return Status::OK();
  if (IsPropertyCall(expr)) {
    // property(<level>, <name>): both arguments are bare identifiers, not
    // measures; resolution happens against the schema below.
    if (expr.args.size() != 2 ||
        expr.args[0].kind != FuncExpr::Kind::kMeasureRef ||
        expr.args[1].kind != FuncExpr::Kind::kMeasureRef) {
      return Status::InvalidArgument(
          "property(...) expects a level name and a property name");
    }
    return Status::OK();
  }
  ASSESS_ASSIGN_OR_RETURN(const FunctionDef* def, functions.Find(expr.name));
  if (def->arity >= 0 && def->arity != static_cast<int>(expr.args.size())) {
    return Status::InvalidArgument(
        "function '" + def->name + "' expects " + std::to_string(def->arity) +
        " argument(s), got " + std::to_string(expr.args.size()));
  }
  for (const FuncExpr& arg : expr.args) {
    ASSESS_RETURN_NOT_OK(ValidateUsing(arg, functions));
  }
  return Status::OK();
}

void CollectMeasureRefs(const FuncExpr& expr,
                        std::vector<std::string>* refs) {
  if (expr.kind == FuncExpr::Kind::kMeasureRef) {
    refs->push_back(expr.name);
  } else if (expr.kind == FuncExpr::Kind::kCall && !IsPropertyCall(expr)) {
    // property(...) arguments are level/property names, not measures.
    for (const FuncExpr& arg : expr.args) CollectMeasureRefs(arg, refs);
  }
}

// Validates every property(level, name) reference: the level must be a
// by-clause level (so each result cell has a coordinate to look the value
// up with) and the property must exist on its hierarchy.
Status ValidatePropertyRefs(const FuncExpr& expr, const CubeSchema& schema,
                            const std::vector<std::string>& by_levels) {
  if (expr.kind != FuncExpr::Kind::kCall) return Status::OK();
  if (IsPropertyCall(expr)) {
    const std::string& level_name = expr.args[0].name;
    const std::string& property = expr.args[1].name;
    if (std::find(by_levels.begin(), by_levels.end(), level_name) ==
        by_levels.end()) {
      return Status::InvalidArgument(
          "property(" + level_name + ", " + property +
          "): the level must appear in the by clause");
    }
    ASSESS_ASSIGN_OR_RETURN(int h, schema.HierarchyOfLevel(level_name));
    ASSESS_ASSIGN_OR_RETURN(int l, schema.hierarchy(h).LevelIndex(level_name));
    if (!schema.hierarchy(h).HasProperty(l, property)) {
      return Status::NotFound("no property '" + property + "' on level '" +
                              level_name + "'");
    }
    return Status::OK();
  }
  for (const FuncExpr& arg : expr.args) {
    ASSESS_RETURN_NOT_OK(ValidatePropertyRefs(arg, schema, by_levels));
  }
  return Status::OK();
}

void AddMeasureOnce(std::vector<int>* measures, int index) {
  if (std::find(measures->begin(), measures->end(), index) ==
      measures->end()) {
    measures->push_back(index);
  }
}

// Derived-measure support (case (5) of the paper's introduction, e.g.
// profit = storeSales - storeCost): every measure the using clause
// references beyond m is added to the target get, and every benchmark.<x>
// reference to the benchmark get, so the comparison has all its inputs.
Status WidenFetchedMeasures(AnalyzedStatement* analyzed,
                            const StarDatabase& db) {
  const CubeSchema& schema = *analyzed->schema;
  std::vector<std::string> refs;
  CollectMeasureRefs(analyzed->using_expr, &refs);
  for (const std::string& ref : refs) {
    if (StartsWith(ref, "benchmark.")) {
      std::string name = ref.substr(10);
      switch (analyzed->type) {
        case BenchmarkType::kNone:
        case BenchmarkType::kConstant:
          return Status::InvalidArgument(
              "'" + ref + "': constant benchmarks have no benchmark cube");
        case BenchmarkType::kPast:
          if (name != analyzed->measure) {
            return Status::InvalidArgument(
                "'" + ref + "': past benchmarks only forecast the assessed "
                "measure '" + analyzed->measure + "'");
          }
          break;
        case BenchmarkType::kExternal: {
          ASSESS_ASSIGN_OR_RETURN(const BoundCube* ext,
                                  db.Find(analyzed->benchmark.cube_name));
          ASSESS_ASSIGN_OR_RETURN(int idx,
                                  ext->schema().MeasureIndex(name));
          AddMeasureOnce(&analyzed->benchmark.measures, idx);
          break;
        }
        case BenchmarkType::kSibling:
        case BenchmarkType::kAncestor: {
          ASSESS_ASSIGN_OR_RETURN(int idx, schema.MeasureIndex(name));
          AddMeasureOnce(&analyzed->benchmark.measures, idx);
          break;
        }
      }
    } else {
      ASSESS_ASSIGN_OR_RETURN(int idx, schema.MeasureIndex(ref));
      AddMeasureOnce(&analyzed->target.measures, idx);
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::string>> PredecessorMembers(const Hierarchy& hierarchy,
                                                    int level,
                                                    const std::string& member,
                                                    int k) {
  int32_t card = hierarchy.LevelCardinality(level);
  std::vector<std::string> all;
  all.reserve(card);
  for (MemberId id = 0; id < card; ++id) {
    all.push_back(hierarchy.MemberName(level, id));
  }
  std::sort(all.begin(), all.end());
  auto it = std::lower_bound(all.begin(), all.end(), member);
  if (it == all.end() || *it != member) {
    return Status::NotFound("no member '" + member + "' in level '" +
                            hierarchy.level_name(level) + "'");
  }
  int64_t index = it - all.begin();
  if (index < k) {
    return Status::InvalidArgument(
        "level '" + hierarchy.level_name(level) + "' has only " +
        std::to_string(index) + " member(s) before '" + member +
        "', but past " + std::to_string(k) + " was requested");
  }
  return std::vector<std::string>(all.begin() + (index - k),
                                  all.begin() + index);
}

Result<AnalyzedStatement> Analyze(const AssessStatement& stmt,
                                  const StarDatabase& db,
                                  const FunctionRegistry& functions,
                                  const LabelingRegistry& labelings,
                                  const AnalyzerOptions& options) {
  AnalyzedStatement analyzed;
  analyzed.stmt = stmt;
  analyzed.star = stmt.star;
  analyzed.forecast = options.forecast;

  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bound, db.Find(stmt.cube));
  analyzed.schema = bound->schema_ptr();
  const CubeSchema& schema = *analyzed.schema;

  // -- Target cube query ---------------------------------------------------
  ASSESS_ASSIGN_OR_RETURN(analyzed.measure_index,
                          schema.MeasureIndex(stmt.measure));
  analyzed.measure = stmt.measure;
  analyzed.target.cube_name = stmt.cube;
  ASSESS_ASSIGN_OR_RETURN(
      analyzed.target.group_by,
      GroupBySet::FromLevelNames(schema, stmt.by_levels));
  ASSESS_ASSIGN_OR_RETURN(analyzed.target.predicates,
                          ResolvePredicates(schema, stmt.for_predicates));
  analyzed.target.measures = {analyzed.measure_index};

  // -- Benchmark -------------------------------------------------------
  analyzed.type = stmt.against.type == BenchmarkType::kNone
                      ? BenchmarkType::kConstant
                      : stmt.against.type;
  switch (stmt.against.type) {
    case BenchmarkType::kNone:
      // "Directly assess the measure value": dummy all-zero benchmark.
      analyzed.constant = 0.0;
      analyzed.benchmark_measure_name = "benchmark";
      break;
    case BenchmarkType::kConstant:
      analyzed.constant = stmt.against.constant;
      analyzed.benchmark_measure_name = "benchmark";
      break;
    case BenchmarkType::kExternal: {
      ASSESS_ASSIGN_OR_RETURN(const BoundCube* ext,
                              db.Find(stmt.against.external_cube));
      const CubeSchema& ext_schema = ext->schema();
      ASSESS_RETURN_NOT_OK(
          ext_schema.MeasureIndex(stmt.against.external_measure).status());
      analyzed.external_measure = stmt.against.external_measure;
      analyzed.benchmark.cube_name = stmt.against.external_cube;
      analyzed.benchmark.alias = "benchmark";
      // Joinability (Definition 3.1): the benchmark must support the same
      // group-by set; with reconciled hierarchies this means every by-level
      // must exist in the external schema.
      Result<GroupBySet> gbs =
          GroupBySet::FromLevelNames(ext_schema, stmt.by_levels);
      if (!gbs.ok()) {
        return Status::InvalidArgument(
            "cubes are not joinable: " + gbs.status().message());
      }
      analyzed.benchmark.group_by = std::move(gbs).value();
      ASSESS_ASSIGN_OR_RETURN(
          analyzed.benchmark.predicates,
          ResolvePredicates(ext_schema, stmt.for_predicates));
      ASSESS_ASSIGN_OR_RETURN(
          int ext_measure, ext_schema.MeasureIndex(analyzed.external_measure));
      analyzed.benchmark.measures = {ext_measure};
      analyzed.benchmark_measure_name =
          "benchmark." + analyzed.external_measure;
      analyzed.join_levels = stmt.by_levels;
      break;
    }
    case BenchmarkType::kSibling: {
      analyzed.sibling_level = stmt.against.sibling_level;
      analyzed.sibling_sib = stmt.against.sibling_member;
      if (std::find(stmt.by_levels.begin(), stmt.by_levels.end(),
                    analyzed.sibling_level) == stmt.by_levels.end()) {
        return Status::InvalidArgument(
            "sibling level '" + analyzed.sibling_level +
            "' must appear in the by clause");
      }
      // The for clause must slice the sibling level on a single member.
      const PredicateSpec* slice = nullptr;
      for (const PredicateSpec& p : stmt.for_predicates) {
        if (p.level == analyzed.sibling_level &&
            p.op == PredicateOp::kEquals) {
          slice = &p;
          break;
        }
      }
      if (slice == nullptr) {
        return Status::InvalidArgument(
            "sibling benchmarks need a for predicate '" +
            analyzed.sibling_level + " = <member>' slicing the target");
      }
      analyzed.sibling_member = slice->members[0];
      if (analyzed.sibling_member == analyzed.sibling_sib) {
        return Status::InvalidArgument(
            "sibling member must differ from the target slice '" +
            analyzed.sibling_member + "'");
      }
      // Validate u_sib exists.
      ASSESS_ASSIGN_OR_RETURN(int h,
                              schema.HierarchyOfLevel(analyzed.sibling_level));
      ASSESS_ASSIGN_OR_RETURN(
          int l, schema.hierarchy(h).LevelIndex(analyzed.sibling_level));
      ASSESS_RETURN_NOT_OK(
          schema.hierarchy(h).MemberIdOf(l, analyzed.sibling_sib).status());
      // Benchmark query: P_B = P \ {l_s = u} ∪ {l_s = u_sib}.
      analyzed.benchmark = analyzed.target;
      analyzed.benchmark.alias = "benchmark";
      for (Predicate& p : analyzed.benchmark.predicates) {
        if (p.hierarchy == h && p.level == l &&
            p.op == PredicateOp::kEquals &&
            p.members[0] == analyzed.sibling_member) {
          p.members[0] = analyzed.sibling_sib;
        }
      }
      analyzed.benchmark_measure_name = "benchmark." + analyzed.measure;
      for (const std::string& level : stmt.by_levels) {
        if (level != analyzed.sibling_level) {
          analyzed.join_levels.push_back(level);
        }
      }
      break;
    }
    case BenchmarkType::kPast: {
      analyzed.past_k = stmt.against.past_k;
      // Find the temporal slice: an equality for-predicate on a level of a
      // temporal hierarchy that also appears in the by clause.
      const PredicateSpec* slice = nullptr;
      int h = -1;
      int l = -1;
      for (const PredicateSpec& p : stmt.for_predicates) {
        if (p.op != PredicateOp::kEquals) continue;
        Result<int> hr = schema.HierarchyOfLevel(p.level);
        if (!hr.ok()) continue;
        if (!schema.hierarchy(*hr).temporal()) continue;
        if (std::find(stmt.by_levels.begin(), stmt.by_levels.end(), p.level) ==
            stmt.by_levels.end()) {
          continue;
        }
        slice = &p;
        h = *hr;
        ASSESS_ASSIGN_OR_RETURN(l, schema.hierarchy(h).LevelIndex(p.level));
        break;
      }
      if (slice == nullptr) {
        return Status::InvalidArgument(
            "past benchmarks need a for predicate slicing a temporal level "
            "that appears in the by clause");
      }
      analyzed.time_level = slice->level;
      analyzed.time_member = slice->members[0];
      ASSESS_ASSIGN_OR_RETURN(
          analyzed.past_members,
          PredecessorMembers(schema.hierarchy(h), l, analyzed.time_member,
                             analyzed.past_k));
      // Benchmark query: P_B = P \ {l_t = u} ∪ {l_t in {u_1..u_k}}.
      analyzed.benchmark = analyzed.target;
      analyzed.benchmark.alias = "benchmark";
      for (Predicate& p : analyzed.benchmark.predicates) {
        if (p.hierarchy == h && p.level == l && p.op == PredicateOp::kEquals &&
            p.members[0] == analyzed.time_member) {
          p.op = PredicateOp::kIn;
          p.members = analyzed.past_members;
        }
      }
      analyzed.benchmark_measure_name = "benchmark." + analyzed.measure;
      for (const std::string& level : stmt.by_levels) {
        if (level != analyzed.time_level) {
          analyzed.join_levels.push_back(level);
        }
      }
      break;
    }
    case BenchmarkType::kAncestor: {
      analyzed.ancestor_level = stmt.against.ancestor_level;
      ASSESS_ASSIGN_OR_RETURN(int h,
                              schema.HierarchyOfLevel(analyzed.ancestor_level));
      const Hierarchy& hier = schema.hierarchy(h);
      ASSESS_ASSIGN_OR_RETURN(int la, hier.LevelIndex(analyzed.ancestor_level));
      // The for clause must slice a finer level of the same hierarchy that
      // also appears in the by clause; its member is compared against its
      // l_a ancestor.
      const PredicateSpec* slice = nullptr;
      int l = -1;
      for (const PredicateSpec& p : stmt.for_predicates) {
        if (p.op != PredicateOp::kEquals) continue;
        if (!hier.HasLevel(p.level)) continue;
        ASSESS_ASSIGN_OR_RETURN(int pl, hier.LevelIndex(p.level));
        if (pl >= la) continue;  // must be strictly finer than l_a
        if (std::find(stmt.by_levels.begin(), stmt.by_levels.end(), p.level) ==
            stmt.by_levels.end()) {
          continue;
        }
        slice = &p;
        l = pl;
        break;
      }
      if (slice == nullptr) {
        return Status::InvalidArgument(
            "ancestor benchmarks need a for predicate slicing a level of "
            "hierarchy '" +
            hier.name() + "' finer than '" + analyzed.ancestor_level +
            "' and present in the by clause");
      }
      analyzed.sliced_level = slice->level;
      analyzed.sliced_member = slice->members[0];
      ASSESS_ASSIGN_OR_RETURN(MemberId u,
                              hier.MemberIdOf(l, analyzed.sliced_member));
      MemberId anc = hier.RollUpMember(l, u, la);
      if (anc == kInvalidMember) {
        return Status::Internal("member '" + analyzed.sliced_member +
                                "' has no ancestor at level '" +
                                analyzed.ancestor_level + "'");
      }
      analyzed.ancestor_member = hier.MemberName(la, anc);
      // Benchmark query: group-by with l replaced by l_a, predicate
      // l = u replaced by l_a = rup(u).
      analyzed.benchmark = analyzed.target;
      analyzed.benchmark.alias = "benchmark";
      analyzed.benchmark.group_by.SetLevel(h, la);
      for (Predicate& p : analyzed.benchmark.predicates) {
        if (p.hierarchy == h && p.level == l && p.op == PredicateOp::kEquals &&
            p.members[0] == analyzed.sliced_member) {
          p.level = la;
          p.members[0] = analyzed.ancestor_member;
        }
      }
      analyzed.benchmark_measure_name = "benchmark." + analyzed.measure;
      for (const std::string& level : stmt.by_levels) {
        if (level != analyzed.sliced_level) {
          analyzed.join_levels.push_back(level);
        }
      }
      break;
    }
  }

  // -- Comparison ------------------------------------------------------
  if (stmt.using_expr.has_value()) {
    ASSESS_RETURN_NOT_OK(ValidateUsing(*stmt.using_expr, functions));
    analyzed.using_expr = *stmt.using_expr;
  } else {
    analyzed.using_expr = DefaultUsing(analyzed);
  }
  ASSESS_RETURN_NOT_OK(WidenFetchedMeasures(&analyzed, db));
  ASSESS_RETURN_NOT_OK(
      ValidatePropertyRefs(analyzed.using_expr, schema, stmt.by_levels));

  // -- Labeling ----------------------------------------------------------
  if (stmt.labels.is_inline) {
    ASSESS_ASSIGN_OR_RETURN(RangeLabeling ranges,
                            RangeLabeling::Make(stmt.labels.ranges));
    analyzed.label_function =
        std::make_shared<RangeLabeling>(std::move(ranges));
  } else {
    ASSESS_ASSIGN_OR_RETURN(analyzed.label_function,
                            labelings.Find(stmt.labels.named));
  }
  return analyzed;
}

}  // namespace assess
