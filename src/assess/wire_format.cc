#include "assess/wire_format.h"

#include <bit>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "olap/hierarchy.h"

namespace assess {
namespace {

constexpr char kResultMagic = 'A';
constexpr char kStatusMagic = 'S';
constexpr uint8_t kVersion = 0x01;

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutFixed64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutDouble(std::string* out, double v) {
  PutFixed64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s.data(), s.size());
}

/// Bounds-checked sequential reader over the serialized bytes. Every Get
/// returns a Status on truncation or malformed input; counts are validated
/// against the remaining byte budget before any allocation, so hostile
/// length prefixes cannot trigger huge reserves.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  Status GetByte(uint8_t* out) {
    if (remaining() < 1) return Truncated("byte");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status GetVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) return Truncated("varint");
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return Status::OK();
      }
    }
    return Status::InvalidArgument("wire: varint longer than 10 bytes");
  }

  /// A varint that counts elements each at least `unit_bytes` wide; anything
  /// that could not fit in the remaining bytes is rejected up front.
  Status GetCount(size_t unit_bytes, uint64_t* out) {
    ASSESS_RETURN_NOT_OK(GetVarint(out));
    if (unit_bytes == 0) unit_bytes = 1;
    if (*out > remaining() / unit_bytes) {
      return Status::InvalidArgument("wire: count exceeds payload size");
    }
    return Status::OK();
  }

  Status GetDouble(double* out) {
    if (remaining() < 8) return Truncated("double");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = std::bit_cast<double>(v);
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint64_t len = 0;
    ASSESS_RETURN_NOT_OK(GetVarint(&len));
    if (len > remaining()) return Truncated("string");
    out->assign(data_.data() + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::InvalidArgument(std::string("wire: truncated ") + what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Cube
// ---------------------------------------------------------------------------

void SerializeCube(const Cube& cube, std::string* out) {
  const int n_levels = cube.level_count();
  const int64_t n_rows = cube.NumRows();
  PutVarint(out, static_cast<uint64_t>(n_levels));

  // Per-level local dictionaries: member names indexed by first appearance,
  // so only the members actually present in the result travel.
  std::vector<std::vector<uint32_t>> local_ids(n_levels);
  for (int l = 0; l < n_levels; ++l) {
    const LevelRef& level = cube.level(l);
    PutString(out, level.hierarchy->name());
    PutString(out, level.name());
    std::unordered_map<MemberId, uint32_t> to_local;
    std::vector<MemberId> dict;
    local_ids[l].reserve(static_cast<size_t>(n_rows));
    for (int64_t r = 0; r < n_rows; ++r) {
      MemberId id = cube.CoordAt(r, l);
      auto [it, inserted] =
          to_local.emplace(id, static_cast<uint32_t>(dict.size()));
      if (inserted) dict.push_back(id);
      local_ids[l].push_back(it->second);
    }
    PutVarint(out, dict.size());
    for (MemberId id : dict) {
      PutString(out, level.hierarchy->MemberName(level.level, id));
    }
  }

  PutVarint(out, static_cast<uint64_t>(n_rows));
  for (int l = 0; l < n_levels; ++l) {
    for (uint32_t id : local_ids[l]) PutVarint(out, id);
  }

  PutVarint(out, static_cast<uint64_t>(cube.measure_count()));
  for (int m = 0; m < cube.measure_count(); ++m) {
    PutString(out, cube.measure_name(m));
  }
  for (int m = 0; m < cube.measure_count(); ++m) {
    for (int64_t r = 0; r < n_rows; ++r) {
      PutDouble(out, cube.MeasureAt(r, m));
    }
  }

  const bool labels = !cube.labels().empty();
  out->push_back(labels ? 1 : 0);
  if (labels) {
    for (const std::string& label : cube.labels()) PutString(out, label);
  }
}

Result<Cube> DeserializeCube(WireReader* reader) {
  uint64_t n_levels = 0;
  ASSESS_RETURN_NOT_OK(reader->GetCount(2, &n_levels));

  std::vector<LevelRef> levels;
  std::vector<uint64_t> dict_sizes;
  levels.reserve(n_levels);
  for (uint64_t l = 0; l < n_levels; ++l) {
    std::string hierarchy_name, level_name;
    ASSESS_RETURN_NOT_OK(reader->GetString(&hierarchy_name));
    ASSESS_RETURN_NOT_OK(reader->GetString(&level_name));
    // Each axis becomes a fresh single-level hierarchy carrying exactly the
    // dictionary that traveled; see the header comment for why roll-up
    // structure above the result does not.
    auto hierarchy = std::make_shared<Hierarchy>(std::move(hierarchy_name));
    int level_index = hierarchy->AddLevel(std::move(level_name));
    uint64_t dict_size = 0;
    ASSESS_RETURN_NOT_OK(reader->GetCount(1, &dict_size));
    for (uint64_t d = 0; d < dict_size; ++d) {
      std::string member;
      ASSESS_RETURN_NOT_OK(reader->GetString(&member));
      hierarchy->AddMember(level_index, member);
    }
    dict_sizes.push_back(dict_size);
    levels.push_back(LevelRef{std::move(hierarchy), level_index});
  }

  uint64_t n_rows = 0;
  ASSESS_RETURN_NOT_OK(reader->GetCount(n_levels == 0 ? 1 : n_levels, &n_rows));
  std::vector<std::vector<MemberId>> coords(n_levels);
  for (uint64_t l = 0; l < n_levels; ++l) {
    coords[l].reserve(static_cast<size_t>(n_rows));
    for (uint64_t r = 0; r < n_rows; ++r) {
      uint64_t id = 0;
      ASSESS_RETURN_NOT_OK(reader->GetVarint(&id));
      if (id >= dict_sizes[l]) {
        return Status::InvalidArgument(
            "wire: coordinate index out of dictionary range");
      }
      coords[l].push_back(static_cast<MemberId>(id));
    }
  }

  uint64_t n_measures = 0;
  ASSESS_RETURN_NOT_OK(reader->GetCount(1, &n_measures));
  std::vector<std::string> measure_names(n_measures);
  for (uint64_t m = 0; m < n_measures; ++m) {
    ASSESS_RETURN_NOT_OK(reader->GetString(&measure_names[m]));
  }
  if (n_measures > 0 && n_rows > reader->remaining() / (8 * n_measures)) {
    return Status::InvalidArgument("wire: measure block exceeds payload");
  }
  std::vector<std::vector<double>> measures(n_measures);
  for (uint64_t m = 0; m < n_measures; ++m) {
    measures[m].resize(static_cast<size_t>(n_rows));
    for (uint64_t r = 0; r < n_rows; ++r) {
      ASSESS_RETURN_NOT_OK(reader->GetDouble(&measures[m][r]));
    }
  }

  Cube cube = Cube::FromColumns(std::move(levels), std::move(coords),
                                std::move(measure_names), std::move(measures));

  uint8_t has_labels = 0;
  ASSESS_RETURN_NOT_OK(reader->GetByte(&has_labels));
  if (has_labels > 1) {
    return Status::InvalidArgument("wire: bad labels flag");
  }
  if (has_labels) {
    std::vector<std::string> labels(static_cast<size_t>(n_rows));
    for (uint64_t r = 0; r < n_rows; ++r) {
      ASSESS_RETURN_NOT_OK(reader->GetString(&labels[r]));
    }
    cube.SetLabels(std::move(labels));
  }
  return cube;
}

}  // namespace

// ---------------------------------------------------------------------------
// AssessResult
// ---------------------------------------------------------------------------

std::string SerializeAssessResult(const AssessResult& result) {
  std::string out;
  out.push_back(kResultMagic);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(result.plan));
  PutDouble(&out, result.timings.get_c);
  PutDouble(&out, result.timings.get_b);
  PutDouble(&out, result.timings.get_cb);
  PutDouble(&out, result.timings.transform);
  PutDouble(&out, result.timings.join);
  PutDouble(&out, result.timings.compare);
  PutDouble(&out, result.timings.label);
  PutString(&out, result.measure);
  PutString(&out, result.benchmark_measure);
  PutString(&out, result.comparison_measure);
  PutVarint(&out, result.sql.size());
  for (const std::string& sql : result.sql) PutString(&out, sql);
  SerializeCube(result.cube, &out);
  return out;
}

Result<AssessResult> DeserializeAssessResult(std::string_view data) {
  WireReader reader(data);
  uint8_t magic = 0, version = 0, plan = 0;
  ASSESS_RETURN_NOT_OK(reader.GetByte(&magic));
  ASSESS_RETURN_NOT_OK(reader.GetByte(&version));
  if (magic != static_cast<uint8_t>(kResultMagic) || version != kVersion) {
    return Status::InvalidArgument("wire: not a serialized assess result");
  }
  ASSESS_RETURN_NOT_OK(reader.GetByte(&plan));
  if (plan > static_cast<uint8_t>(PlanKind::kPOP)) {
    return Status::InvalidArgument("wire: unknown plan kind");
  }

  AssessResult result;
  result.plan = static_cast<PlanKind>(plan);
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&result.timings.get_c));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&result.timings.get_b));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&result.timings.get_cb));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&result.timings.transform));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&result.timings.join));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&result.timings.compare));
  ASSESS_RETURN_NOT_OK(reader.GetDouble(&result.timings.label));
  ASSESS_RETURN_NOT_OK(reader.GetString(&result.measure));
  ASSESS_RETURN_NOT_OK(reader.GetString(&result.benchmark_measure));
  ASSESS_RETURN_NOT_OK(reader.GetString(&result.comparison_measure));
  uint64_t n_sql = 0;
  ASSESS_RETURN_NOT_OK(reader.GetCount(1, &n_sql));
  result.sql.resize(n_sql);
  for (uint64_t i = 0; i < n_sql; ++i) {
    ASSESS_RETURN_NOT_OK(reader.GetString(&result.sql[i]));
  }
  ASSESS_ASSIGN_OR_RETURN(result.cube, DeserializeCube(&reader));
  if (!reader.exhausted()) {
    return Status::InvalidArgument("wire: trailing bytes after assess result");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

std::string SerializeStatus(const Status& status) {
  std::string out;
  out.push_back(kStatusMagic);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(status.code()));
  PutString(&out, status.message());
  return out;
}

Status DeserializeStatus(std::string_view data, Status* out) {
  WireReader reader(data);
  uint8_t magic = 0, version = 0, code = 0;
  ASSESS_RETURN_NOT_OK(reader.GetByte(&magic));
  ASSESS_RETURN_NOT_OK(reader.GetByte(&version));
  if (magic != static_cast<uint8_t>(kStatusMagic) || version != kVersion) {
    return Status::InvalidArgument("wire: not a serialized status");
  }
  ASSESS_RETURN_NOT_OK(reader.GetByte(&code));
  if (code > static_cast<uint8_t>(kMaxStatusCode)) {
    return Status::InvalidArgument("wire: unknown status code");
  }
  std::string message;
  ASSESS_RETURN_NOT_OK(reader.GetString(&message));
  if (!reader.exhausted()) {
    return Status::InvalidArgument("wire: trailing bytes after status");
  }
  *out = Status::FromCode(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

}  // namespace assess
