#include "assess/effort.h"

#include "assess/python_codegen.h"
#include "sqlgen/sql_generator.h"

namespace assess {

Result<EffortReport> MeasureFormulationEffort(const AnalyzedStatement& analyzed,
                                              const StarDatabase& db) {
  EffortReport report;
  SqlGenerator gen(analyzed.schema.get());

  // NP pushes only the get operations to SQL.
  ASSESS_ASSIGN_OR_RETURN(std::string sql_c, gen.RenderGet(analyzed.target));
  report.sql_chars = static_cast<int64_t>(sql_c.size());
  if (analyzed.type == BenchmarkType::kExternal) {
    ASSESS_ASSIGN_OR_RETURN(const BoundCube* ext,
                            db.Find(analyzed.benchmark.cube_name));
    SqlGenerator ext_gen(ext->schema_ptr().get());
    ASSESS_ASSIGN_OR_RETURN(std::string sql_b,
                            ext_gen.RenderGet(analyzed.benchmark));
    report.sql_chars += static_cast<int64_t>(sql_b.size());
  } else if (analyzed.type == BenchmarkType::kSibling ||
             analyzed.type == BenchmarkType::kPast ||
             analyzed.type == BenchmarkType::kAncestor) {
    ASSESS_ASSIGN_OR_RETURN(std::string sql_b,
                            gen.RenderGet(analyzed.benchmark));
    report.sql_chars += static_cast<int64_t>(sql_b.size());
  }

  report.python_chars =
      static_cast<int64_t>(GeneratePythonScript(analyzed).size());
  report.assess_chars =
      static_cast<int64_t>(analyzed.stmt.original_text.size());
  return report;
}

}  // namespace assess
