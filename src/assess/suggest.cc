#include "assess/suggest.h"

#include <algorithm>
#include <limits>

#include "common/str_util.h"

#include "assess/analyzer.h"
#include "assess/cost_model.h"
#include "storage/star_query_engine.h"

namespace assess {

namespace {

// Per-benchmark-type prior on expected interest: siblings are the most
// natural comparisons, then forecasts, then roll-up shares, then a bare
// zero benchmark.
double TypePrior(BenchmarkType type) {
  switch (type) {
    case BenchmarkType::kSibling:
      return 1.0;
    case BenchmarkType::kPast:
      return 0.9;
    case BenchmarkType::kAncestor:
      return 0.8;
    case BenchmarkType::kExternal:
      return 0.8;
    case BenchmarkType::kNone:
    case BenchmarkType::kConstant:
      return 0.4;
  }
  return 0.0;
}

// Candidate against clauses for a statement without one: the data-driven
// part of the suggester.
Result<std::vector<std::pair<BenchmarkClause, std::string>>>
CandidateBenchmarks(const AssessStatement& partial, const StarDatabase& db) {
  std::vector<std::pair<BenchmarkClause, std::string>> candidates;
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bound, db.Find(partial.cube));
  const CubeSchema& schema = bound->schema();
  StarQueryEngine engine(&db);

  for (const PredicateSpec& pred : partial.for_predicates) {
    if (pred.op != PredicateOp::kEquals) continue;
    if (std::find(partial.by_levels.begin(), partial.by_levels.end(),
                  pred.level) == partial.by_levels.end()) {
      continue;
    }
    Result<int> h = schema.HierarchyOfLevel(pred.level);
    if (!h.ok()) continue;
    const Hierarchy& hier = schema.hierarchy(*h);
    ASSESS_ASSIGN_OR_RETURN(int level, hier.LevelIndex(pred.level));

    if (hier.temporal()) {
      // Past benchmark over up to four predecessors.
      auto predecessors = PredecessorMembers(hier, level, pred.members[0], 1);
      if (predecessors.ok()) {
        int available = 1;
        for (int k = 4; k > 1; --k) {
          if (PredecessorMembers(hier, level, pred.members[0], k).ok()) {
            available = k;
            break;
          }
        }
        BenchmarkClause past;
        past.type = BenchmarkType::kPast;
        past.past_k = available;
        candidates.emplace_back(
            std::move(past),
            "forecast from the " + std::to_string(available) +
                " preceding " + pred.level + " slices");
      }
    } else {
      // Sibling candidates: other members of the sliced level, ranked by
      // their data support measured from the cube (one aggregate query).
      CubeQuery support;
      support.cube_name = partial.cube;
      support.group_by = GroupBySet(schema.hierarchy_count());
      support.group_by.SetLevel(*h, level);
      support.measures = {};
      for (const PredicateSpec& other : partial.for_predicates) {
        if (other.level == pred.level) continue;
        Result<int> oh = schema.HierarchyOfLevel(other.level);
        if (!oh.ok()) continue;
        Result<int> ol = schema.hierarchy(*oh).LevelIndex(other.level);
        if (!ol.ok()) continue;
        support.predicates.push_back(
            Predicate{*oh, *ol, other.op, other.members});
      }
      // Count facts per member via a count pseudo-measure: reuse measure 0
      // with the schema's operator; the ordering only needs support, so any
      // sum-like measure works.
      support.measures = {0};
      Result<Cube> distribution = engine.Execute(support);
      if (distribution.ok()) {
        std::vector<std::pair<double, std::string>> ranked;
        for (int64_t r = 0; r < distribution->NumRows(); ++r) {
          const std::string& member = distribution->CoordName(r, 0);
          if (member == pred.members[0]) continue;
          ranked.emplace_back(distribution->MeasureAt(r, 0), member);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
        int emitted = 0;
        for (const auto& [weight, member] : ranked) {
          if (++emitted > 3) break;  // top three siblings per sliced level
          BenchmarkClause sibling;
          sibling.type = BenchmarkType::kSibling;
          sibling.sibling_level = pred.level;
          sibling.sibling_member = member;
          candidates.emplace_back(std::move(sibling),
                                  "sibling slice " + pred.level + " = '" +
                                      member + "'");
        }
      }
      // Ancestor benchmark, when a coarser level exists.
      if (level + 1 < hier.level_count()) {
        BenchmarkClause ancestor;
        ancestor.type = BenchmarkType::kAncestor;
        ancestor.ancestor_level = hier.level_name(level + 1);
        candidates.emplace_back(std::move(ancestor),
                                "share of the enclosing " +
                                    hier.level_name(level + 1));
      }
    }
  }

  // Fallback: assess the bare measure (all-zero benchmark).
  candidates.emplace_back(BenchmarkClause{},
                          "distribution of the measure itself");
  return candidates;
}

FuncExpr RatioUsing(const AssessStatement& stmt) {
  std::string benchmark_ref =
      stmt.against.type == BenchmarkType::kExternal
          ? "benchmark." + stmt.against.external_measure
          : "benchmark." + stmt.measure;
  return FuncExpr::Call("ratio", {FuncExpr::Measure(stmt.measure),
                                  FuncExpr::Measure(benchmark_ref)});
}

LabelsClause RatioBands() {
  LabelsClause labels;
  labels.is_inline = true;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  labels.ranges = {{-kInf, 0.9, true, false, "worse"},
                   {0.9, 1.1, true, true, "fine"},
                   {1.1, kInf, false, true, "better"}};
  return labels;
}

LabelsClause Quartiles() {
  LabelsClause labels;
  labels.named = "quartiles";
  return labels;
}

}  // namespace

Result<std::vector<Suggestion>> SuggestCompletions(
    const AssessStatement& partial, const StarDatabase& db,
    const FunctionRegistry& functions, const LabelingRegistry& labelings,
    int max_suggestions) {
  // Build the candidate statements: the cross product of against and
  // using/labels completions, keeping user-specified clauses untouched.
  std::vector<std::pair<AssessStatement, std::string>> candidates;
  if (partial.against.type == BenchmarkType::kNone &&
      !partial.using_expr.has_value()) {
    ASSESS_ASSIGN_OR_RETURN(auto benchmarks,
                            CandidateBenchmarks(partial, db));
    for (auto& [clause, rationale] : benchmarks) {
      AssessStatement stmt = partial;
      stmt.against = clause;
      candidates.emplace_back(std::move(stmt), rationale);
    }
  } else {
    candidates.emplace_back(partial, "as stated");
  }

  std::vector<std::pair<AssessStatement, std::string>> completed;
  for (auto& [stmt, rationale] : candidates) {
    if (!stmt.using_expr.has_value() &&
        stmt.against.type != BenchmarkType::kNone) {
      stmt.using_expr = RatioUsing(stmt);
    }
    if (!stmt.labels.is_inline && stmt.labels.named.empty()) {
      bool is_ratio = stmt.using_expr.has_value() &&
                      stmt.using_expr->kind == FuncExpr::Kind::kCall &&
                      EqualsIgnoreCase(stmt.using_expr->name, "ratio");
      stmt.labels = is_ratio ? RatioBands() : Quartiles();
    }
    completed.emplace_back(std::move(stmt), std::move(rationale));
  }

  // Analyze every candidate; rank valid ones by expected support.
  CostEstimator estimator(&db);
  std::vector<Suggestion> suggestions;
  for (auto& [stmt, rationale] : completed) {
    stmt.original_text = stmt.ToString();
    Result<AnalyzedStatement> analyzed =
        Analyze(stmt, db, functions, labelings);
    if (!analyzed.ok()) continue;
    double support = 0.0;
    Result<double> target_cells = estimator.EstimateCells(analyzed->target);
    if (target_cells.ok()) support = *target_cells;
    if (analyzed->type != BenchmarkType::kConstant &&
        analyzed->type != BenchmarkType::kNone) {
      Result<double> benchmark_cells =
          estimator.EstimateCells(analyzed->benchmark);
      if (benchmark_cells.ok()) {
        support = std::min(support, *benchmark_cells);
      }
    }
    Suggestion suggestion;
    suggestion.statement = std::move(stmt);
    suggestion.interest = TypePrior(analyzed->type) * (1.0 + support);
    suggestion.rationale = std::move(rationale);
    suggestions.push_back(std::move(suggestion));
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const Suggestion& a, const Suggestion& b) {
              return a.interest > b.interest;
            });
  if (static_cast<int>(suggestions.size()) > max_suggestions) {
    suggestions.resize(max_suggestions);
  }
  return suggestions;
}

}  // namespace assess
