#include "assess/ast.h"

#include <sstream>

#include "common/str_util.h"

namespace assess {

std::string PredicateSpec::ToString() const {
  std::ostringstream out;
  switch (op) {
    case PredicateOp::kEquals:
      out << level << " = '" << members[0] << "'";
      break;
    case PredicateOp::kIn: {
      std::vector<std::string> quoted;
      quoted.reserve(members.size());
      for (const std::string& m : members) quoted.push_back("'" + m + "'");
      out << level << " in (" << Join(quoted, ", ") << ")";
      break;
    }
    case PredicateOp::kBetween:
      out << level << " between '" << members[0] << "' and '" << members[1]
          << "'";
      break;
  }
  return out.str();
}

std::string_view BenchmarkTypeToString(BenchmarkType type) {
  switch (type) {
    case BenchmarkType::kNone:
      return "none";
    case BenchmarkType::kConstant:
      return "constant";
    case BenchmarkType::kExternal:
      return "external";
    case BenchmarkType::kSibling:
      return "sibling";
    case BenchmarkType::kPast:
      return "past";
    case BenchmarkType::kAncestor:
      return "ancestor";
  }
  return "?";
}

std::string BenchmarkClause::ToString() const {
  switch (type) {
    case BenchmarkType::kNone:
      return "";
    case BenchmarkType::kConstant:
      return FormatNumber(constant);
    case BenchmarkType::kExternal:
      return external_cube + "." + external_measure;
    case BenchmarkType::kSibling:
      return sibling_level + " = '" + sibling_member + "'";
    case BenchmarkType::kPast:
      return "past " + std::to_string(past_k);
    case BenchmarkType::kAncestor:
      return ancestor_level;
  }
  return "";
}

std::string LabelsClause::ToString() const {
  if (!is_inline) return named;
  std::string out = "{";
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (i > 0) out += ", ";
    out += ranges[i].ToString();
  }
  out += "}";
  return out;
}

std::string AssessStatement::ToString() const {
  std::ostringstream out;
  out << "with " << cube;
  if (!for_predicates.empty()) {
    out << " for ";
    for (size_t i = 0; i < for_predicates.size(); ++i) {
      if (i > 0) out << ", ";
      out << for_predicates[i].ToString();
    }
  }
  out << " by " << Join(by_levels, ", ");
  out << (star ? " assess* " : " assess ") << measure;
  if (against.type != BenchmarkType::kNone) {
    out << " against " << against.ToString();
  }
  if (using_expr.has_value()) out << " using " << using_expr->ToString();
  out << " labels " << labels.ToString();
  return out.str();
}

}  // namespace assess
