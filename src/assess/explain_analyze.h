#ifndef ASSESS_ASSESS_EXPLAIN_ANALYZE_H_
#define ASSESS_ASSESS_EXPLAIN_ANALYZE_H_

#include <optional>
#include <string>
#include <string_view>

#include "assess/session.h"
#include "common/result.h"

namespace assess {

/// \brief Output shape of ExplainAnalyzeStatement.
enum class ExplainAnalyzeFormat {
  kText,         ///< operator-annotated plan + span tree + phase totals
  kJson,         ///< the raw span tree as JSON
  kChromeTrace,  ///< Chrome trace_event JSON (chrome://tracing, Perfetto)
};

/// \brief EXPLAIN ANALYZE: executes `statement` under a fresh trace and
/// renders where the time went.
///
/// The text format prints the logical plan steps (what EXPLAIN shows),
/// the recorded span tree (what actually ran, with rows/morsels/cache
/// attributes), and the Figure 4 phase totals derived from the same spans —
/// so the CLI, `bench_fig4_breakdown`, and the paper's tables all read one
/// clock. `plan` forces a plan; by default the session's selection strategy
/// picks, exactly as a plain Query() would.
///
/// Returns kNotSupported when tracing is compiled out (ASSESS_TRACING=OFF):
/// there are no spans to report, and silently returning an empty tree would
/// read as "this query did nothing".
Result<std::string> ExplainAnalyzeStatement(
    const AssessSession& session, std::string_view statement,
    std::optional<PlanKind> plan = std::nullopt,
    ExplainAnalyzeFormat format = ExplainAnalyzeFormat::kText);

}  // namespace assess

#endif  // ASSESS_ASSESS_EXPLAIN_ANALYZE_H_
