#include "assess/explain_analyze.h"

#include <cstdio>

#include "obs/trace.h"

namespace assess {
namespace {

void AppendPhase(std::string* out, const char* name, double seconds) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  %-16s %10.3f ms\n", name,
                seconds * 1e3);
  out->append(buf);
}

}  // namespace

Result<std::string> ExplainAnalyzeStatement(const AssessSession& session,
                                            std::string_view statement,
                                            std::optional<PlanKind> plan,
                                            ExplainAnalyzeFormat format) {
  if (!kTracingCompiledIn) {
    return Status::NotSupported(
        "EXPLAIN ANALYZE needs tracing: rebuild with -DASSESS_TRACING=ON");
  }
  TraceContext trace;
  Result<AssessResult> result = [&]() -> Result<AssessResult> {
    TraceContext::Scope scope(&trace);
    Span root("query");
    return plan ? session.Query(statement, *plan) : session.Query(statement);
  }();
  ASSESS_RETURN_NOT_OK(result.status());

  if (format == ExplainAnalyzeFormat::kJson) return trace.ToJson();
  if (format == ExplainAnalyzeFormat::kChromeTrace) {
    return trace.ToChromeTrace();
  }

  std::string out;
  out.append("EXPLAIN ANALYZE (plan=")
      .append(PlanKindToString(result->plan))
      .append(", cells=")
      .append(std::to_string(result->cube.NumRows()))
      .append(")\n\nplan steps:\n");
  ASSESS_ASSIGN_OR_RETURN(std::string steps,
                          session.Explain(statement, result->plan));
  out.append(steps);
  if (!out.empty() && out.back() != '\n') out.push_back('\n');

  out.append("\nspan tree:\n").append(trace.ToTreeString());

  const StepTimings timings = StepTimingsFromTrace(trace);
  out.append("\nFigure 4 phases:\n");
  AppendPhase(&out, "query evaluation",
              timings.get_c + timings.get_b + timings.get_cb);
  AppendPhase(&out, "transformation", timings.transform + timings.join);
  AppendPhase(&out, "comparison", timings.compare);
  AppendPhase(&out, "labeling", timings.label);
  AppendPhase(&out, "total", timings.Total());
  return out;
}

}  // namespace assess
