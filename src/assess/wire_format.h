#ifndef ASSESS_ASSESS_WIRE_FORMAT_H_
#define ASSESS_ASSESS_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "assess/result_set.h"
#include "common/result.h"

namespace assess {

/// \brief Compact binary encoding of assess results and errors, the payload
/// format of the assessd network protocol (src/server/protocol.h) and of any
/// other transport that needs to ship an AssessResult between processes.
///
/// Layout principles (all multi-byte integers are LEB128 varints, doubles
/// are IEEE-754 bit patterns in fixed little-endian 8-byte form, strings are
/// varint length + raw bytes):
///
///   result   := magic 'A' | version 0x01 | plan(u8) | 7 x f64 timings
///             | str measure | str benchmark_measure | str comparison_measure
///             | varint n_sql | n_sql x str
///             | cube
///   cube     := varint n_levels
///             | n_levels x (str hierarchy | str level
///                           | varint dict_size | dict_size x str member)
///             | varint n_rows
///             | n_levels x (n_rows x varint dict_index)
///             | varint n_measures | n_measures x str name
///             | n_measures x (n_rows x f64)
///             | u8 has_labels | [n_rows x str]
///   status   := magic 'S' | version 0x01 | code(u8) | str message
///
/// Coordinate columns are re-dictionarized per level on serialization (only
/// the member names actually present travel, indexed by first appearance),
/// so the encoding is independent of the producing database's member-id
/// assignment. Deserialization rebuilds each axis as a fresh single-level
/// Hierarchy holding that dictionary: the reconstructed cube renders,
/// compares and CSV-exports identically (same coordinate names in the same
/// row order, bit-identical measures, same labels), which is the result
/// contract of Section 4.1 — roll-up structure above the result's own levels
/// does not travel, as a shipped result is a leaf for its consumer.
///
/// Every deserializer is total: arbitrary bytes (truncation, garbage,
/// hostile lengths) yield a non-OK Status, never a crash or an unbounded
/// allocation.

/// \brief Serializes `result` into the wire format above.
std::string SerializeAssessResult(const AssessResult& result);

/// \brief Parses a serialized AssessResult; `data` must be exactly one
/// encoded result.
Result<AssessResult> DeserializeAssessResult(std::string_view data);

/// \brief Serializes a (typically non-OK) status as a typed code + message.
std::string SerializeStatus(const Status& status);

/// \brief Parses a serialized Status into `*out`. The return value reports
/// whether the bytes decoded at all (Result<Status> would be ambiguous —
/// Status is Result's own error arm).
Status DeserializeStatus(std::string_view data, Status* out);

}  // namespace assess

#endif  // ASSESS_ASSESS_WIRE_FORMAT_H_
