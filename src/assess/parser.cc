#include "assess/parser.h"

#include <cmath>
#include <limits>

#include "assess/lexer.h"
#include "common/str_util.h"

namespace assess {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens, bool require_labels = true)
      : tokens_(std::move(tokens)), require_labels_(require_labels) {}

  Result<AssessStatement> Parse() {
    AssessStatement stmt;
    ASSESS_RETURN_NOT_OK(ExpectKeyword("with"));
    ASSESS_ASSIGN_OR_RETURN(stmt.cube, ExpectIdent("cube name"));
    if (Peek().IsKeyword("for")) {
      Advance();
      ASSESS_RETURN_NOT_OK(ParsePredicates(&stmt.for_predicates));
    }
    ASSESS_RETURN_NOT_OK(ExpectKeyword("by"));
    ASSESS_RETURN_NOT_OK(ParseLevelList(&stmt.by_levels));
    ASSESS_RETURN_NOT_OK(ExpectKeyword("assess"));
    if (Peek().type == TokenType::kStar) {
      Advance();
      stmt.star = true;
    }
    ASSESS_ASSIGN_OR_RETURN(stmt.measure, ExpectIdent("measure name"));
    if (Peek().IsKeyword("against")) {
      Advance();
      ASSESS_RETURN_NOT_OK(ParseBenchmark(&stmt.against));
    }
    if (Peek().IsKeyword("using")) {
      Advance();
      ASSESS_ASSIGN_OR_RETURN(FuncExpr expr, ParseFuncExpr());
      stmt.using_expr = std::move(expr);
    }
    if (Peek().IsKeyword("labels")) {
      Advance();
      ASSESS_RETURN_NOT_OK(ParseLabels(&stmt.labels));
    } else if (require_labels_) {
      return Error("expected keyword 'labels', got " + Describe(Peek()));
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after the statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().offset));
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error("expected keyword '" + std::string(keyword) + "', got " +
                   Describe(Peek()));
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected " + what + ", got " + Describe(Peek()));
    }
    return Advance().text;
  }

  Result<std::string> ExpectString(const std::string& what) {
    if (Peek().type != TokenType::kString) {
      return Error("expected " + what + " (a quoted string), got " +
                   Describe(Peek()));
    }
    return Advance().text;
  }

  Status Expect(TokenType type) {
    if (Peek().type != type) {
      return Error("expected " + std::string(TokenTypeToString(type)) +
                   ", got " + Describe(Peek()));
    }
    Advance();
    return Status::OK();
  }

  static std::string Describe(const Token& token) {
    std::string out(TokenTypeToString(token.type));
    if (token.type == TokenType::kIdent) out += " '" + token.text + "'";
    if (token.type == TokenType::kNumber) {
      out += " '" + FormatNumber(token.number) + "'";
    }
    return out;
  }

  Status ParsePredicates(std::vector<PredicateSpec>* predicates) {
    while (true) {
      PredicateSpec pred;
      ASSESS_ASSIGN_OR_RETURN(pred.level, ExpectIdent("level name"));
      if (Peek().type == TokenType::kEquals) {
        Advance();
        pred.op = PredicateOp::kEquals;
        ASSESS_ASSIGN_OR_RETURN(std::string member,
                                ExpectString("member value"));
        pred.members.push_back(std::move(member));
      } else if (Peek().IsKeyword("in")) {
        Advance();
        pred.op = PredicateOp::kIn;
        ASSESS_RETURN_NOT_OK(Expect(TokenType::kLParen));
        while (true) {
          ASSESS_ASSIGN_OR_RETURN(std::string member,
                                  ExpectString("member value"));
          pred.members.push_back(std::move(member));
          if (Peek().type != TokenType::kComma) break;
          Advance();
        }
        ASSESS_RETURN_NOT_OK(Expect(TokenType::kRParen));
      } else if (Peek().IsKeyword("between")) {
        Advance();
        pred.op = PredicateOp::kBetween;
        ASSESS_ASSIGN_OR_RETURN(std::string lo, ExpectString("lower member"));
        ASSESS_RETURN_NOT_OK(ExpectKeyword("and"));
        ASSESS_ASSIGN_OR_RETURN(std::string hi, ExpectString("upper member"));
        pred.members.push_back(std::move(lo));
        pred.members.push_back(std::move(hi));
      } else {
        return Error("expected '=', 'in' or 'between' after level '" +
                     pred.level + "'");
      }
      predicates->push_back(std::move(pred));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseLevelList(std::vector<std::string>* levels) {
    while (true) {
      ASSESS_ASSIGN_OR_RETURN(std::string level, ExpectIdent("level name"));
      levels->push_back(std::move(level));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseBenchmark(BenchmarkClause* against) {
    const Token& t = Peek();
    if (t.type == TokenType::kNumber ||
        (t.type == TokenType::kMinus &&
         Peek(1).type == TokenType::kNumber)) {
      against->type = BenchmarkType::kConstant;
      double sign = 1.0;
      if (t.type == TokenType::kMinus) {
        Advance();
        sign = -1.0;
      }
      against->constant = sign * Advance().number;
      return Status::OK();
    }
    if (t.IsKeyword("past")) {
      Advance();
      against->type = BenchmarkType::kPast;
      if (Peek().type != TokenType::kNumber) {
        return Error("expected the window length after 'past'");
      }
      double k = Advance().number;
      if (k < 1 || k != std::floor(k)) {
        return Error("'past' window must be a positive integer");
      }
      against->past_k = static_cast<int>(k);
      return Status::OK();
    }
    if (t.type == TokenType::kIdent) {
      std::string name = Advance().text;
      if (Peek().type == TokenType::kEquals) {
        Advance();
        against->type = BenchmarkType::kSibling;
        against->sibling_level = std::move(name);
        ASSESS_ASSIGN_OR_RETURN(against->sibling_member,
                                ExpectString("sibling member"));
        return Status::OK();
      }
      if (Peek().type == TokenType::kDot) {
        Advance();
        against->type = BenchmarkType::kExternal;
        against->external_cube = std::move(name);
        ASSESS_ASSIGN_OR_RETURN(against->external_measure,
                                ExpectIdent("benchmark measure"));
        return Status::OK();
      }
      // A bare level name: ancestor benchmark ("against type" compares each
      // sliced member to its ancestor in the roll-up order).
      against->type = BenchmarkType::kAncestor;
      against->ancestor_level = std::move(name);
      return Status::OK();
    }
    return Error("malformed against clause");
  }

  Result<FuncExpr> ParseFuncExpr() {
    const Token& t = Peek();
    if (t.type == TokenType::kNumber ||
        (t.type == TokenType::kMinus &&
         Peek(1).type == TokenType::kNumber)) {
      double sign = 1.0;
      if (t.type == TokenType::kMinus) {
        Advance();
        sign = -1.0;
      }
      return FuncExpr::Number(sign * Advance().number);
    }
    if (t.type != TokenType::kIdent) {
      return Error("expected a function call, measure or number, got " +
                   Describe(t));
    }
    std::string name = Advance().text;
    if (Peek().type == TokenType::kLParen) {
      Advance();
      std::vector<FuncExpr> args;
      if (Peek().type != TokenType::kRParen) {
        while (true) {
          ASSESS_ASSIGN_OR_RETURN(FuncExpr arg, ParseFuncExpr());
          args.push_back(std::move(arg));
          if (Peek().type != TokenType::kComma) break;
          Advance();
        }
      }
      ASSESS_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return FuncExpr::Call(std::move(name), std::move(args));
    }
    if (Peek().type == TokenType::kDot) {
      Advance();
      ASSESS_ASSIGN_OR_RETURN(std::string measure,
                              ExpectIdent("measure name after '.'"));
      return FuncExpr::Measure(name + "." + measure);
    }
    return FuncExpr::Measure(std::move(name));
  }

  Status ParseLabels(LabelsClause* labels) {
    if (Peek().type == TokenType::kLBrace) {
      Advance();
      labels->is_inline = true;
      while (true) {
        ASSESS_ASSIGN_OR_RETURN(LabelRange range, ParseRange());
        labels->ranges.push_back(std::move(range));
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
      return Expect(TokenType::kRBrace);
    }
    // Predeclared name; allow names like "5stars" (number + identifier).
    if (Peek().type == TokenType::kNumber &&
        Peek(1).type == TokenType::kIdent) {
      double n = Advance().number;
      labels->named = FormatNumber(n) + Advance().text;
      return Status::OK();
    }
    ASSESS_ASSIGN_OR_RETURN(labels->named,
                            ExpectIdent("labeling function name"));
    return Status::OK();
  }

  Result<double> ParseBound() {
    double sign = 1.0;
    if (Peek().type == TokenType::kMinus) {
      Advance();
      sign = -1.0;
    }
    if (Peek().IsKeyword("inf")) {
      Advance();
      return sign * std::numeric_limits<double>::infinity();
    }
    if (Peek().type != TokenType::kNumber) {
      return Error("expected a range bound (number or inf)");
    }
    return sign * Advance().number;
  }

  Result<LabelRange> ParseRange() {
    LabelRange range;
    if (Peek().type == TokenType::kLBracket) {
      range.lo_closed = true;
    } else if (Peek().type == TokenType::kLParen) {
      range.lo_closed = false;
    } else {
      return Error("expected '[' or '(' to open a labeling range");
    }
    Advance();
    ASSESS_ASSIGN_OR_RETURN(range.lo, ParseBound());
    ASSESS_RETURN_NOT_OK(Expect(TokenType::kComma));
    ASSESS_ASSIGN_OR_RETURN(range.hi, ParseBound());
    if (Peek().type == TokenType::kRBracket) {
      range.hi_closed = true;
    } else if (Peek().type == TokenType::kRParen) {
      range.hi_closed = false;
    } else {
      return Error("expected ']' or ')' to close a labeling range");
    }
    Advance();
    ASSESS_RETURN_NOT_OK(Expect(TokenType::kColon));
    // Labels are identifiers or quoted strings (e.g. '*****').
    if (Peek().type == TokenType::kIdent) {
      range.label = Advance().text;
    } else if (Peek().type == TokenType::kString) {
      range.label = Advance().text;
    } else {
      return Error("expected a label name");
    }
    return range;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool require_labels_ = true;
};

}  // namespace

Result<AssessStatement> ParseAssessStatement(std::string_view input) {
  ASSESS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  ASSESS_ASSIGN_OR_RETURN(AssessStatement stmt, parser.Parse());
  stmt.original_text = std::string(Trim(input));
  return stmt;
}

Result<AssessStatement> ParsePartialAssessStatement(std::string_view input) {
  ASSESS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens), /*require_labels=*/false);
  ASSESS_ASSIGN_OR_RETURN(AssessStatement stmt, parser.Parse());
  stmt.original_text = std::string(Trim(input));
  return stmt;
}

}  // namespace assess
