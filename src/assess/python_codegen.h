#ifndef ASSESS_ASSESS_PYTHON_CODEGEN_H_
#define ASSESS_ASSESS_PYTHON_CODEGEN_H_

#include <string>

#include "assess/analyzer.h"

namespace assess {

/// \brief Generates the Python/Pandas client script a user would have to
/// write to reproduce the statement without the assess operator, following
/// the paper's prototype architecture (Section 6): SQL pushed to the DBMS
/// (rendered separately by SqlGenerator and loaded from .sql files here),
/// post-processing in Pandas/NumPy/Scikit-learn.
///
/// This is the Python side of the formulation-effort metric of Table 1:
/// effort is the ASCII length of the code the analyst would craft by hand,
/// so the script is complete (connection handling, fetch helpers, the
/// comparison-function library, labeling, the per-intention pipeline and a
/// CLI entry point) rather than a fragment.
std::string GeneratePythonScript(const AnalyzedStatement& analyzed);

}  // namespace assess

#endif  // ASSESS_ASSESS_PYTHON_CODEGEN_H_
