#ifndef ASSESS_ASSESS_SUGGEST_H_
#define ASSESS_ASSESS_SUGGEST_H_

#include <string>
#include <vector>

#include "assess/ast.h"
#include "common/result.h"
#include "functions/function_registry.h"
#include "labeling/label_function.h"
#include "storage/star_schema.h"

namespace assess {

/// \brief A completed statement proposed for a partial one, with a score
/// estimating its expected interest for the user.
struct Suggestion {
  AssessStatement statement;
  double interest = 0.0;
  std::string rationale;
};

/// \brief Completes a partial statement — the future-work strategy of
/// Section 8 ("devise strategies for effectively completing partial assess
/// statements ... tested and ranked based on their expected interest").
///
/// Missing clauses are filled as follows:
///  - against: sibling candidates for every sliced by-level (other members
///    of the slice, ranked by their data support measured from the cube),
///    a past benchmark when a temporal slice exists, an ancestor benchmark
///    when the sliced level has coarser levels, and the constant 0
///    fallback;
///  - using: ratio and difference against the chosen benchmark;
///  - labels: quartiles for distribution-style assessments, or the
///    canonical ratio bands {[-inf,0.9) worse, [0.9,1.1] fine, (1.1,inf)
///    better} when the comparison is a ratio.
///
/// Every candidate is analyzed against the database; invalid completions
/// are dropped. Candidates are ranked by estimated assessment support (the
/// expected number of comparable cells) with a per-benchmark-type prior.
Result<std::vector<Suggestion>> SuggestCompletions(
    const AssessStatement& partial, const StarDatabase& db,
    const FunctionRegistry& functions, const LabelingRegistry& labelings,
    int max_suggestions = 5);

}  // namespace assess

#endif  // ASSESS_ASSESS_SUGGEST_H_
