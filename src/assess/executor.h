#ifndef ASSESS_ASSESS_EXECUTOR_H_
#define ASSESS_ASSESS_EXECUTOR_H_

#include <vector>

#include "assess/analyzer.h"
#include "assess/planner.h"
#include "assess/result_set.h"
#include "common/result.h"
#include "functions/function_registry.h"
#include "storage/star_query_engine.h"

namespace assess {

/// \brief Engine configuration as seen from the interactive front-ends:
/// views on, scans scheduled on the shared morsel pool (`threads <= 0`
/// derives the per-query cap from the pool's worker count; results are
/// bit-identical at every thread count, so overriding is a scheduling
/// choice, not a precision one), and the semantic result cache on. Pass
/// `shared_cache` to pool warm results across several executors/sessions
/// over the same database, and `pool` to pin scans to a private pool.
using ExecutorOptions = EngineOptions;

/// \brief Executes analyzed assess statements under a chosen plan.
///
/// The executor realizes the client/server split of the paper's prototype:
/// get/join/pivot pushed to the StarQueryEngine (the DBMS stand-in), every
/// engine result transferred to "client memory" once, all transformations,
/// comparisons and labelings executed client-side on Cube values. Each step
/// is timed into StepTimings for the Figure 4 breakdown, and the SQL the
/// plan would push is rendered into the result.
class Executor {
 public:
  Executor(const StarDatabase* db, const FunctionRegistry* functions,
           ExecutorOptions options)
      : db_(db), functions_(functions), engine_(db, options) {}

  Executor(const StarDatabase* db, const FunctionRegistry* functions,
           bool use_views = true)
      : Executor(db, functions, WithViews(use_views)) {}

  /// \brief Runs `analyzed` with plan `plan` (must be feasible for the
  /// statement's benchmark type).
  Result<AssessResult> Execute(const AnalyzedStatement& analyzed,
                               PlanKind plan) const;

  const StarQueryEngine& engine() const { return engine_; }

 private:
  static ExecutorOptions WithViews(bool use_views) {
    ExecutorOptions options;
    options.use_views = use_views;
    return options;
  }

  Result<AssessResult> ExecuteConstant(const AnalyzedStatement& analyzed) const;
  /// NP/JOP for every join-based benchmark (external, sibling, ancestor).
  Result<AssessResult> ExecuteViaJoin(const AnalyzedStatement& analyzed,
                                      PlanKind plan) const;
  Result<AssessResult> ExecuteSibling(const AnalyzedStatement& analyzed,
                                      PlanKind plan) const;
  Result<AssessResult> ExecutePast(const AnalyzedStatement& analyzed,
                                   PlanKind plan) const;

  /// Evaluates the using clause and the labeling over `result->cube`,
  /// filling the compare/label timings and the result column names.
  Status CompareAndLabel(const AnalyzedStatement& analyzed,
                         AssessResult* result) const;

  const StarDatabase* db_;
  const FunctionRegistry* functions_;
  StarQueryEngine engine_;
};

}  // namespace assess

#endif  // ASSESS_ASSESS_EXECUTOR_H_
