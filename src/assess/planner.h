#ifndef ASSESS_ASSESS_PLANNER_H_
#define ASSESS_ASSESS_PLANNER_H_

#include <string>
#include <vector>

#include "assess/analyzer.h"
#include "common/result.h"

namespace assess {

/// \brief The three execution strategies of Section 5.2. They differ in
/// which logical operators are pushed to the query engine:
///  - NP  (Naive Plan): only the get operations;
///  - JOP (Join-Optimized Plan): get + join (property P2 applied when a
///    cell-transform has to be postponed past the join);
///  - POP (Pivot-Optimized Plan): get + pivot, the join replaced via
///    property P3.
enum class PlanKind {
  kNP,
  kJOP,
  kPOP,
};

std::string_view PlanKindToString(PlanKind kind);
Result<PlanKind> PlanKindFromString(std::string_view name);

/// \brief True when `kind` can execute `analyzed` (Section 5.2: JOP needs a
/// join, so constant benchmarks are NP-only; POP needs multiple slices of
/// one cube, so only sibling and past intentions qualify).
bool IsPlanFeasible(const AnalyzedStatement& analyzed, PlanKind kind);

/// \brief All feasible plans for `analyzed`, NP first.
std::vector<PlanKind> FeasiblePlans(const AnalyzedStatement& analyzed);

/// \brief The plan the optimizer prefers: POP when feasible, else JOP, else
/// NP — the empirical ordering established in Section 6.2.
PlanKind BestPlan(const AnalyzedStatement& analyzed);

/// \brief Human-readable rendering of the logical steps a plan performs for
/// this statement, in the notation of Section 4.3 / 5.2 (get, ⋈, ⊞, ⊟, ⊡).
std::string ExplainPlan(const AnalyzedStatement& analyzed, PlanKind kind);

}  // namespace assess

#endif  // ASSESS_ASSESS_PLANNER_H_
