#ifndef ASSESS_ASSESS_RESULT_SET_H_
#define ASSESS_ASSESS_RESULT_SET_H_

#include <string>
#include <vector>

#include "assess/planner.h"
#include "obs/trace.h"
#include "olap/cube.h"

namespace assess {

/// \brief Wall-clock breakdown of one assess execution, matching the step
/// legend of Figure 4: Get C, Get B, Get C+B, Trans., Join, Comp., Label.
/// All values in seconds; steps a plan does not perform stay zero.
struct StepTimings {
  double get_c = 0.0;      ///< get the target cube (incl. client transfer)
  double get_b = 0.0;      ///< get the benchmark cube
  double get_cb = 0.0;     ///< fused get of target+benchmark (JOP/POP)
  double transform = 0.0;  ///< pivot/forecast transformations
  double join = 0.0;       ///< client-side join
  double compare = 0.0;    ///< using-clause evaluation
  double label = 0.0;      ///< labeling

  double Total() const {
    return get_c + get_b + get_cb + transform + join + compare + label;
  }

  std::string ToString() const;
};

/// \brief Derives the Figure 4 breakdown from a span tree: sums the closed
/// spans named after each phase (get_c, get_b, get_cb, transform, join,
/// compare, label), restricted to the subtree under `root` when given —
/// pass the executor's "execute" span id to scope a trace shared across
/// queries to one of them. All zeros when the trace has no phase spans
/// (e.g. tracing compiled out).
StepTimings StepTimingsFromTrace(
    const TraceContext& trace,
    TraceContext::SpanId root = TraceContext::kNoSpan);

/// \brief The result of an assess statement: for each cell, its coordinate,
/// the value of m, the benchmark measure, the comparison value and the
/// label (Section 4.1's result contract), plus execution metadata.
struct AssessResult {
  /// The final cube; `labels()` holds λ's output ("" for the null labels of
  /// assess*). Intermediate transform measures are retained for inspection.
  Cube cube;

  std::string measure;             ///< m
  std::string benchmark_measure;   ///< m_B column name
  std::string comparison_measure;  ///< m_Δ column name

  PlanKind plan = PlanKind::kNP;
  StepTimings timings;

  /// SQL statements pushed to the engine by the chosen plan, in order.
  std::vector<std::string> sql;

  /// \brief Tabular rendering restricted to the Section 4.1 contract
  /// columns (coordinate, m, m_B, m_Δ, label).
  std::string ToString(int64_t max_rows = 20) const;

  /// \brief Writes the contract columns as CSV (coordinate levels, m, m_B,
  /// m_Δ, label), for handing assessments to downstream tools.
  void WriteCsv(std::ostream& out) const;
};

}  // namespace assess

#endif  // ASSESS_ASSESS_RESULT_SET_H_
