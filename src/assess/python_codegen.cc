#include "assess/python_codegen.h"

#include <set>
#include <sstream>

#include "common/str_util.h"

namespace assess {

namespace {

// Column naming in the generated script mirrors the SQL generator: the
// benchmark measure is fetched as bc_<measure>.
std::string PyColumn(const std::string& measure_name) {
  if (StartsWith(measure_name, "benchmark.")) {
    return "bc_" + ToLower(measure_name.substr(10));
  }
  return ToLower(measure_name);
}

void CollectFunctions(const FuncExpr& expr, std::set<std::string>* used) {
  if (expr.kind == FuncExpr::Kind::kCall) {
    used->insert(ToLower(expr.name));
    for (const FuncExpr& arg : expr.args) CollectFunctions(arg, used);
  }
}

// Renders the using expression over the merged DataFrame `df`.
std::string PyExpr(const FuncExpr& expr) {
  switch (expr.kind) {
    case FuncExpr::Kind::kNumber:
      return FormatNumber(expr.number);
    case FuncExpr::Kind::kMeasureRef:
      return "df[\"" + PyColumn(expr.name) + "\"]";
    case FuncExpr::Kind::kCall: {
      std::string out = ToLower(expr.name) + "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += PyExpr(expr.args[i]);
      }
      return out + ")";
    }
  }
  return "";
}

const char* FunctionDefFor(const std::string& lower_name) {
  if (lower_name == "difference") {
    return R"(def difference(a, b):
    """Algebraic difference between the measure and its benchmark."""
    return a - b
)";
  }
  if (lower_name == "absolutedifference") {
    return R"(def absolutedifference(a, b):
    """Absolute difference between the measure and its benchmark."""
    return (a - b).abs()
)";
  }
  if (lower_name == "ratio") {
    return R"(def ratio(a, b):
    """Ratio of the measure to its benchmark (NaN on zero benchmarks)."""
    return a.divide(b).replace([np.inf, -np.inf], np.nan)
)";
  }
  if (lower_name == "percentage") {
    return R"(def percentage(a, b):
    """The measure as a percentage of its benchmark."""
    return 100.0 * a.divide(b).replace([np.inf, -np.inf], np.nan)
)";
  }
  if (lower_name == "normalizeddifference") {
    return R"(def normalizeddifference(a, b):
    """Difference normalized by the benchmark value."""
    return (a - b).divide(b).replace([np.inf, -np.inf], np.nan)
)";
  }
  if (lower_name == "minmaxnorm") {
    return R"(def minmaxnorm(a):
    """Min-max normalization of a comparison column into [0, 1]."""
    minv = a.min()
    maxv = a.max()
    if maxv == minv:
        return pd.Series(0.5, index=a.index)
    return (a - minv) / (maxv - minv)
)";
  }
  if (lower_name == "zscore") {
    return R"(def zscore(a):
    """Standard score of each comparison value."""
    std = a.std(ddof=0)
    if std == 0:
        return pd.Series(0.0, index=a.index)
    return (a - a.mean()) / std
)";
  }
  if (lower_name == "percoftotal") {
    return R"(def percoftotal(a, b):
    """Share of each cell's value over the total of column b."""
    total = b.sum()
    if total == 0:
        return pd.Series(np.nan, index=a.index)
    return a / total
)";
  }
  if (lower_name == "rank") {
    return R"(def rank(a):
    """1-based descending competition rank."""
    return a.rank(ascending=False, method="min")
)";
  }
  if (lower_name == "percentilerank") {
    return R"(def percentilerank(a):
    """Descending rank normalized into (0, 1]."""
    return a.rank(ascending=False, method="min") / a.notna().sum()
)";
  }
  if (lower_name == "identity") {
    return "def identity(a):\n    return a\n";
  }
  if (lower_name == "neg") {
    return "def neg(a):\n    return -a\n";
  }
  if (lower_name == "abs") {
    return "def abs_(a):\n    return a.abs()\n";
  }
  return "";
}

}  // namespace

std::string GeneratePythonScript(const AnalyzedStatement& analyzed) {
  std::ostringstream out;
  const bool needs_sklearn = analyzed.type == BenchmarkType::kPast;

  // ---- Imports and connection handling --------------------------------
  out << R"(import argparse
import sys

import cx_Oracle
import numpy as np
import pandas as pd
)";
  if (needs_sklearn) {
    out << "from sklearn.linear_model import LinearRegression\n";
  }
  out << R"(
ORACLE_DSN = cx_Oracle.makedsn("localhost", 1521, service_name="ssb")


def connect():
    """Opens the warehouse connection used by every query of the session."""
    return cx_Oracle.connect(user="ssb", password="ssb", dsn=ORACLE_DSN)


def fetch_dataframe(connection, sql_path):
    """Runs the SQL stored at `sql_path` and fetches it as a DataFrame."""
    with open(sql_path) as handle:
        sql = handle.read()
    cursor = connection.cursor()
    try:
        cursor.execute(sql)
        columns = [description[0].lower() for description in cursor.description]
        rows = cursor.fetchall()
    finally:
        cursor.close()
    return pd.DataFrame.from_records(rows, columns=columns)


)";

  // ---- Comparison-function library -------------------------------------
  std::set<std::string> used;
  CollectFunctions(analyzed.using_expr, &used);
  for (const std::string& name : used) {
    const char* def = FunctionDefFor(name);
    if (*def != '\0') out << def << "\n\n";
  }

  // ---- Labeling ---------------------------------------------------------
  if (analyzed.stmt.labels.is_inline) {
    out << "LABEL_RANGES = [\n";
    for (const LabelRange& r : analyzed.stmt.labels.ranges) {
      out << "    (" << FormatNumber(r.lo) << ", " << FormatNumber(r.hi)
          << ", " << (r.lo_closed ? "True" : "False") << ", "
          << (r.hi_closed ? "True" : "False") << ", \"" << r.label
          << "\"),\n";
    }
    out << "]\n\n\n";
    out << R"(def apply_labels(values):
    """Maps each comparison value onto its (lo, hi, label) range."""
    labels = pd.Series(index=values.index, dtype="object")
    for lo, hi, lo_closed, hi_closed, label in LABEL_RANGES:
        above = values >= lo if lo_closed else values > lo
        below = values <= hi if hi_closed else values < hi
        labels[above & below] = label
    uncovered = values.notna() & labels.isna()
    if uncovered.any():
        raise ValueError("comparison values not covered by any range: %s"
                         % values[uncovered].tolist())
    return labels


)";
  } else {
    out << R"(def apply_labels(values):
    """Equi-depth grouping of the comparison values (top-1 = best group)."""
    k = 4
    names = ["top-%d" % (k - g) for g in range(k)]
    return pd.qcut(values.rank(method="first"), k, labels=names)


)";
  }

  // ---- Per-intention pipeline ------------------------------------------
  const std::string measure = PyColumn(analyzed.measure);
  switch (analyzed.type) {
    case BenchmarkType::kNone:
    case BenchmarkType::kConstant:
      out << "def run(connection):\n"
          << "    df = fetch_dataframe(connection, \"target.sql\")\n"
          << "    df[\"benchmark\"] = " << FormatNumber(analyzed.constant)
          << "\n";
      break;
    case BenchmarkType::kExternal:
    case BenchmarkType::kSibling:
    case BenchmarkType::kAncestor: {
      std::vector<std::string> keys;
      for (const std::string& level : analyzed.join_levels) {
        keys.push_back("\"" + ToLower(level) + "\"");
      }
      out << "def run(connection):\n"
          << "    target = fetch_dataframe(connection, \"target.sql\")\n"
          << "    benchmark = fetch_dataframe(connection, \"benchmark.sql\")\n"
          << "    benchmark = benchmark.rename(columns={\"" << measure
          << "\": \"" << PyColumn(analyzed.benchmark_measure_name)
          << "\"})\n"
          << "    df = target.merge(benchmark[[" << Join(keys, ", ") << ", \""
          << PyColumn(analyzed.benchmark_measure_name) << "\"]],\n"
          << "                      on=[" << Join(keys, ", ") << "], how=\""
          << (analyzed.star ? "left" : "inner") << "\")\n";
      break;
    }
    case BenchmarkType::kPast: {
      std::vector<std::string> keys;
      for (const std::string& level : analyzed.join_levels) {
        keys.push_back("\"" + ToLower(level) + "\"");
      }
      out << "def forecast_next(series):\n"
          << "    \"\"\"OLS over the past window, predicting the next time "
             "slice.\"\"\"\n"
          << "    window = series.dropna()\n"
          << "    if window.empty:\n"
          << "        return np.nan\n"
          << "    x = np.arange(1, len(window) + 1).reshape(-1, 1)\n"
          << "    model = LinearRegression().fit(x, window.to_numpy())\n"
          << "    return float(model.predict([[len(series) + 1]])[0])\n"
          << "\n\n"
          << "def run(connection):\n"
          << "    target = fetch_dataframe(connection, \"target.sql\")\n"
          << "    history = fetch_dataframe(connection, \"benchmark.sql\")\n"
          << "    pivoted = history.pivot_table(index=[" << Join(keys, ", ")
          << "],\n"
          << "                                  columns=\""
          << ToLower(analyzed.time_level) << "\", values=\"" << measure
          << "\")\n"
          << "    pivoted = pivoted.reindex(columns=sorted(pivoted.columns))\n";
      if (!analyzed.star) {
        out << "    pivoted = pivoted.dropna()\n";
      }
      out << "    predicted = pivoted.apply(forecast_next, axis=1)\n"
          << "    predicted.name = \""
          << PyColumn(analyzed.benchmark_measure_name) << "\"\n"
          << "    df = target.merge(predicted.reset_index(), on=["
          << Join(keys, ", ") << "], how=\""
          << (analyzed.star ? "left" : "inner") << "\")\n";
      break;
    }
  }
  out << "    df[\"comparison\"] = " << PyExpr(analyzed.using_expr) << "\n"
      << "    df[\"label\"] = apply_labels(df[\"comparison\"])\n"
      << "    return df\n";

  // ---- Entry point -----------------------------------------------------
  out << R"(

def main():
    parser = argparse.ArgumentParser(
        description="Assess a cube measure against its benchmark.")
    parser.add_argument("--csv", help="write the assessed cells to CSV")
    args = parser.parse_args()
    connection = connect()
    try:
        result = run(connection)
    finally:
        connection.close()
    if args.csv:
        result.to_csv(args.csv, index=False)
    else:
        print(result.to_string(index=False))
    return 0


if __name__ == "__main__":
    sys.exit(main())
)";
  return out.str();
}

}  // namespace assess
