#include "assess/result_set.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "algebra/operators.h"

#include "common/str_util.h"

namespace assess {

StepTimings StepTimingsFromTrace(const TraceContext& trace,
                                 TraceContext::SpanId root) {
  StepTimings timings;
  const std::vector<SpanNode> nodes = trace.Snapshot();
  // Subtree membership: parents always precede children in the snapshot (a
  // child's id is assigned after its parent's), so one forward pass marks
  // every descendant of `root`.
  std::vector<char> in_subtree(nodes.size(),
                               root == TraceContext::kNoSpan ? 1 : 0);
  if (root != TraceContext::kNoSpan) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].id == root) {
        in_subtree[i] = 1;
      } else if (nodes[i].parent >= 0 &&
                 static_cast<size_t>(nodes[i].parent) < i &&
                 in_subtree[nodes[i].parent]) {
        in_subtree[i] = 1;
      }
    }
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!in_subtree[i] || nodes[i].duration_ns < 0) continue;
    const double seconds = nodes[i].duration_ns * 1e-9;
    const std::string& name = nodes[i].name;
    if (name == "get_c") {
      timings.get_c += seconds;
    } else if (name == "get_b") {
      timings.get_b += seconds;
    } else if (name == "get_cb") {
      timings.get_cb += seconds;
    } else if (name == "transform") {
      timings.transform += seconds;
    } else if (name == "join") {
      timings.join += seconds;
    } else if (name == "compare") {
      timings.compare += seconds;
    } else if (name == "label") {
      timings.label += seconds;
    }
  }
  return timings;
}

std::string StepTimings::ToString() const {
  std::ostringstream out;
  char buf[64];
  auto field = [&out, &buf](const char* name, double v) {
    if (v <= 0.0) return;
    std::snprintf(buf, sizeof(buf), " %s=%.3fms", name, v * 1e3);
    out << buf;
  };
  field("get_c", get_c);
  field("get_b", get_b);
  field("get_cb", get_cb);
  field("transform", transform);
  field("join", join);
  field("compare", compare);
  field("label", label);
  std::snprintf(buf, sizeof(buf), " total=%.3fms", Total() * 1e3);
  out << buf;
  return out.str();
}

void AssessResult::WriteCsv(std::ostream& out) const {
  // Project to the contract columns and reuse the cube's CSV writer.
  std::vector<std::pair<std::string, std::string>> keep;
  for (const std::string& name :
       {measure, benchmark_measure, comparison_measure}) {
    if (cube.MeasureIndex(name).ok()) keep.emplace_back(name, name);
  }
  Result<Cube> projected = ProjectMeasures(cube, keep);
  if (!projected.ok()) {
    cube.WriteCsv(out);
    return;
  }
  projected->SetLabels(cube.labels());
  projected->WriteCsv(out);
}

std::string AssessResult::ToString(int64_t max_rows) const {
  std::ostringstream out;
  std::vector<int> measure_cols;
  for (const std::string& name :
       {measure, benchmark_measure, comparison_measure}) {
    Result<int> idx = cube.MeasureIndex(name);
    if (idx.ok()) measure_cols.push_back(*idx);
  }
  for (int i = 0; i < cube.level_count(); ++i) {
    if (i > 0) out << " | ";
    out << cube.level(i).name();
  }
  for (int idx : measure_cols) {
    out << " | " << cube.measure_name(idx);
  }
  out << " | label\n";
  int64_t n = std::min<int64_t>(cube.NumRows(), max_rows);
  for (int64_t r = 0; r < n; ++r) {
    for (int i = 0; i < cube.level_count(); ++i) {
      if (i > 0) out << " | ";
      out << cube.CoordName(r, i);
    }
    for (int idx : measure_cols) {
      double v = cube.MeasureAt(r, idx);
      if (IsNullMeasure(v)) {
        out << " | null";
      } else {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out << " | " << buf;
      }
    }
    out << " | ";
    if (cube.labels().empty() || cube.labels()[r].empty()) {
      out << "null";
    } else {
      out << cube.labels()[r];
    }
    out << "\n";
  }
  if (cube.NumRows() > n) {
    out << "... (" << (cube.NumRows() - n) << " more cells)\n";
  }
  return out.str();
}

}  // namespace assess
