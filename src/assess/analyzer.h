#ifndef ASSESS_ASSESS_ANALYZER_H_
#define ASSESS_ASSESS_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "assess/ast.h"
#include "common/result.h"
#include "forecast/forecast.h"
#include "functions/function_registry.h"
#include "labeling/label_function.h"
#include "storage/star_schema.h"

namespace assess {

/// \brief A statement after semantic analysis: names resolved against the
/// database, the benchmark typed, the cube queries of the Section 4.3
/// semantics built, and the labeling function instantiated.
struct AnalyzedStatement {
  AssessStatement stmt;

  std::shared_ptr<CubeSchema> schema;
  BenchmarkType type = BenchmarkType::kConstant;
  bool star = false;

  /// The get of the target cube: [(C0, G, P, M)].
  CubeQuery target;
  std::string measure;  // m
  int measure_index = 0;

  // -- Constant benchmark (also the implicit all-zero one) --------------
  double constant = 0.0;

  /// The get of the benchmark cube (external / sibling / past), aliased
  /// "benchmark". For past, its time predicate selects the k past members.
  CubeQuery benchmark;

  // -- External ----------------------------------------------------------
  std::string external_measure;  // m_b

  // -- Sibling -----------------------------------------------------------
  std::string sibling_level;   // l_s
  std::string sibling_member;  // u (the target's slice)
  std::string sibling_sib;     // u_sib

  // -- Past --------------------------------------------------------------
  std::string time_level;                 // l_t
  std::string time_member;                // u
  std::vector<std::string> past_members;  // u_1..u_k, chronological
  int past_k = 0;
  ForecastMethod forecast = ForecastMethod::kLinearRegression;

  // -- Ancestor (future-work extension) -----------------------------------
  std::string ancestor_level;   // l_a (coarser level of the sliced hierarchy)
  std::string ancestor_member;  // rup_{l_a}(u)
  std::string sliced_level;     // l (the sliced level in the by clause)
  std::string sliced_member;    // u

  /// Levels of the partial join C ⋈_{G\l} B (all by-levels for external,
  /// G minus the sliced level for sibling/past).
  std::vector<std::string> join_levels;

  /// The comparison expression (defaulted to difference(m, benchmark) when
  /// the using clause is absent).
  FuncExpr using_expr;

  /// Name of the benchmark measure m_B in the final cube ("benchmark" for
  /// constants, "benchmark.<measure>" otherwise).
  std::string benchmark_measure_name;

  std::shared_ptr<const LabelFunction> label_function;
};

/// \brief Options controlling analysis.
struct AnalyzerOptions {
  ForecastMethod forecast = ForecastMethod::kLinearRegression;
};

/// \brief Resolves `stmt` against the database and registries, checking
/// joinability (Definition 3.1) and the well-formedness rules of Section
/// 4.1 (e.g. the sibling slice must appear in the for clause, the past
/// level must be temporal and in the group-by set).
Result<AnalyzedStatement> Analyze(const AssessStatement& stmt,
                                  const StarDatabase& db,
                                  const FunctionRegistry& functions,
                                  const LabelingRegistry& labelings,
                                  const AnalyzerOptions& options = {});

/// \brief The k members chronologically preceding `member` in Dom(level)
/// of `hierarchy` (member-name order, which is chronological for ISO date
/// members). Fails when fewer than k predecessors exist.
Result<std::vector<std::string>> PredecessorMembers(const Hierarchy& hierarchy,
                                                    int level,
                                                    const std::string& member,
                                                    int k);

}  // namespace assess

#endif  // ASSESS_ASSESS_ANALYZER_H_
