#include "assess/subplans.h"

#include <algorithm>
#include <utility>

namespace assess {

Result<CubeQuery> AllSlicesQuery(const AnalyzedStatement& analyzed,
                                 const std::string& level_name,
                                 std::vector<std::string> members) {
  CubeQuery query = analyzed.target;
  const CubeSchema& schema = *analyzed.schema;
  ASSESS_ASSIGN_OR_RETURN(int h, schema.HierarchyOfLevel(level_name));
  ASSESS_ASSIGN_OR_RETURN(int l, schema.hierarchy(h).LevelIndex(level_name));
  bool replaced = false;
  for (Predicate& p : query.predicates) {
    if (p.hierarchy == h && p.level == l && p.op == PredicateOp::kEquals) {
      p.op = PredicateOp::kIn;
      p.members = std::move(members);
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    return Status::Internal("POP: no slice predicate found on level '" +
                            level_name + "'");
  }
  return query;
}

Result<CubeQuery> SiblingPopQuery(const AnalyzedStatement& analyzed) {
  ASSESS_ASSIGN_OR_RETURN(
      CubeQuery query_all,
      AllSlicesQuery(analyzed, analyzed.sibling_level,
                     {analyzed.sibling_member, analyzed.sibling_sib}));
  // One get serves both roles, so it must carry the union of the target
  // and benchmark measures; the folded slice is renamed benchmark.<m>.
  for (int m : analyzed.benchmark.measures) {
    if (std::find(query_all.measures.begin(), query_all.measures.end(), m) ==
        query_all.measures.end()) {
      query_all.measures.push_back(m);
    }
  }
  return query_all;
}

Result<CubeQuery> PastPopQuery(const AnalyzedStatement& analyzed) {
  std::vector<std::string> all_members = analyzed.past_members;
  all_members.push_back(analyzed.time_member);
  return AllSlicesQuery(analyzed, analyzed.time_level,
                        std::move(all_members));
}

Result<std::vector<CubeQuery>> PlannedGetSubplans(
    const AnalyzedStatement& analyzed, PlanKind plan) {
  std::vector<CubeQuery> gets;
  switch (analyzed.type) {
    case BenchmarkType::kNone:
    case BenchmarkType::kConstant:
      gets.push_back(analyzed.target);
      return gets;
    case BenchmarkType::kExternal:
    case BenchmarkType::kAncestor:
      gets.push_back(analyzed.target);
      gets.push_back(analyzed.benchmark);
      return gets;
    case BenchmarkType::kSibling:
      if (plan == PlanKind::kPOP) {
        ASSESS_ASSIGN_OR_RETURN(CubeQuery all, SiblingPopQuery(analyzed));
        gets.push_back(std::move(all));
      } else {
        gets.push_back(analyzed.target);
        gets.push_back(analyzed.benchmark);
      }
      return gets;
    case BenchmarkType::kPast:
      if (plan == PlanKind::kPOP) {
        ASSESS_ASSIGN_OR_RETURN(CubeQuery all, PastPopQuery(analyzed));
        gets.push_back(std::move(all));
      } else {
        gets.push_back(analyzed.target);
        gets.push_back(analyzed.benchmark);
      }
      return gets;
  }
  return Status::Internal("unreachable benchmark type");
}

}  // namespace assess
