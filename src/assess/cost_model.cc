#include "assess/cost_model.h"

#include <algorithm>
#include <cmath>

namespace assess {

namespace {

// Fraction of Dom(level) members matched by one predicate.
double PredicateSelectivity(const Hierarchy& hierarchy,
                            const Predicate& predicate) {
  double card =
      std::max<double>(1.0, hierarchy.LevelCardinality(predicate.level));
  switch (predicate.op) {
    case PredicateOp::kEquals:
      return 1.0 / card;
    case PredicateOp::kIn:
      return std::min(1.0, static_cast<double>(predicate.members.size()) /
                               card);
    case PredicateOp::kBetween: {
      // Count matching members exactly; dictionaries are in memory and
      // levels with range predicates (months) are small.
      int64_t matched = 0;
      for (MemberId m = 0; m < hierarchy.LevelCardinality(predicate.level);
           ++m) {
        const std::string& name = hierarchy.MemberName(predicate.level, m);
        if (name >= predicate.members[0] && name <= predicate.members[1]) {
          ++matched;
        }
      }
      return static_cast<double>(matched) / card;
    }
  }
  return 1.0;
}

}  // namespace

Result<double> CostEstimator::EstimateSelectivity(
    const CubeSchema& schema,
    const std::vector<Predicate>& predicates) const {
  double selectivity = 1.0;
  for (const Predicate& p : predicates) {
    if (p.hierarchy < 0 || p.hierarchy >= schema.hierarchy_count()) {
      return Status::InvalidArgument("predicate on unknown hierarchy");
    }
    selectivity *= PredicateSelectivity(schema.hierarchy(p.hierarchy), p);
  }
  return selectivity;
}

Result<double> CostEstimator::EstimateCells(const CubeQuery& query) const {
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bound, db_->Find(query.cube_name));
  const CubeSchema& schema = bound->schema();
  ASSESS_ASSIGN_OR_RETURN(double selectivity,
                          EstimateSelectivity(schema, query.predicates));
  double rows = static_cast<double>(bound->facts().NumRows()) * selectivity;
  double space = 1.0;
  for (int h = 0; h < schema.hierarchy_count(); ++h) {
    if (!query.group_by.HasHierarchy(h)) continue;
    int level = query.group_by.LevelOf(h);
    double card = schema.hierarchy(h).LevelCardinality(level);
    // Predicates on this hierarchy shrink the populated part of the axis.
    double axis_selectivity = 1.0;
    for (const Predicate& p : query.predicates) {
      if (p.hierarchy != h) continue;
      axis_selectivity =
          std::min(axis_selectivity,
                   PredicateSelectivity(schema.hierarchy(h), p) *
                       std::max(1.0, card / std::max<double>(
                                         1.0, schema.hierarchy(h)
                                                  .LevelCardinality(p.level))));
    }
    space *= std::max(1.0, card * std::min(1.0, axis_selectivity));
  }
  // Poisson occupancy: expected distinct coordinates hit by `rows` events.
  if (space <= 0.0) return 0.0;
  return space * (1.0 - std::exp(-rows / space));
}

Result<double> CostEstimator::EstimatePlanCost(
    const AnalyzedStatement& analyzed, PlanKind plan) const {
  if (!IsPlanFeasible(analyzed, plan)) {
    return Status::NotSupported(
        std::string(PlanKindToString(plan)) + " is not feasible for " +
        std::string(BenchmarkTypeToString(analyzed.type)) + " benchmarks");
  }
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* target_cube,
                          db_->Find(analyzed.target.cube_name));
  double facts = static_cast<double>(target_cube->facts().NumRows());
  ASSESS_ASSIGN_OR_RETURN(double target_cells,
                          EstimateCells(analyzed.target));

  const CostModelWeights& w = weights_;
  double cost = 0.0;

  if (analyzed.type == BenchmarkType::kNone ||
      analyzed.type == BenchmarkType::kConstant) {
    cost += facts * w.scan_per_fact + target_cells * w.aggregate_per_group;
    cost += target_cells * w.transfer_per_cell;
    return cost;
  }

  ASSESS_ASSIGN_OR_RETURN(const BoundCube* benchmark_cube,
                          db_->Find(analyzed.benchmark.cube_name));
  double benchmark_facts =
      static_cast<double>(benchmark_cube->facts().NumRows());
  ASSESS_ASSIGN_OR_RETURN(double benchmark_cells,
                          EstimateCells(analyzed.benchmark));
  double joined_cells = std::min(target_cells, benchmark_cells);

  double transform_cells = 0.0;
  if (analyzed.type == BenchmarkType::kPast) {
    // The forecast runs once per benchmark cell group (k past points).
    transform_cells = std::max(benchmark_cells / std::max(1, analyzed.past_k),
                               joined_cells);
  }

  switch (plan) {
    case PlanKind::kNP:
      cost += facts * w.scan_per_fact + target_cells * w.aggregate_per_group;
      cost += benchmark_facts * w.scan_per_fact +
              benchmark_cells * w.aggregate_per_group;
      cost += (target_cells + benchmark_cells) * w.transfer_per_cell;
      cost += (target_cells + benchmark_cells) * w.join_per_cell;
      if (analyzed.type == BenchmarkType::kPast) {
        cost += benchmark_cells * w.pivot_per_cell;
        cost += transform_cells * w.transform_per_cell;
      }
      break;
    case PlanKind::kJOP:
      cost += facts * w.scan_per_fact + target_cells * w.aggregate_per_group;
      cost += benchmark_facts * w.scan_per_fact +
              benchmark_cells * w.aggregate_per_group;
      // The join happens engine-side; only matching rows are marshalled.
      cost += (target_cells + benchmark_cells) * w.join_per_cell;
      cost += joined_cells * w.transfer_per_cell;
      if (analyzed.type == BenchmarkType::kPast) {
        cost += transform_cells * w.transform_per_cell;
      }
      break;
    case PlanKind::kPOP: {
      // A single scan retrieves every slice at once.
      cost += facts * w.scan_per_fact;
      double all_cells = target_cells + benchmark_cells;
      cost += all_cells * w.aggregate_per_group;
      cost += all_cells * w.pivot_per_cell;
      cost += target_cells * w.transfer_per_cell;
      if (analyzed.type == BenchmarkType::kPast) {
        cost += transform_cells * w.transform_per_cell;
      }
      break;
    }
  }
  return cost;
}

Result<std::vector<PlanCost>> CostEstimator::RankPlans(
    const AnalyzedStatement& analyzed) const {
  std::vector<PlanCost> ranked;
  for (PlanKind plan : FeasiblePlans(analyzed)) {
    ASSESS_ASSIGN_OR_RETURN(double cost, EstimatePlanCost(analyzed, plan));
    ranked.push_back(PlanCost{plan, cost});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const PlanCost& a, const PlanCost& b) {
              return a.cost < b.cost;
            });
  return ranked;
}

Result<PlanKind> CostEstimator::ChoosePlan(
    const AnalyzedStatement& analyzed) const {
  ASSESS_ASSIGN_OR_RETURN(std::vector<PlanCost> ranked, RankPlans(analyzed));
  if (ranked.empty()) {
    return Status::Internal("no feasible plan");
  }
  return ranked.front().plan;
}

}  // namespace assess
