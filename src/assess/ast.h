#ifndef ASSESS_ASSESS_AST_H_
#define ASSESS_ASSESS_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "functions/expression.h"
#include "labeling/range_labeling.h"
#include "olap/cube_query.h"

namespace assess {

/// \brief A for-clause predicate in surface form (level names unresolved).
struct PredicateSpec {
  std::string level;
  PredicateOp op = PredicateOp::kEquals;
  std::vector<std::string> members;

  std::string ToString() const;
};

/// \brief The four benchmark families of Section 3.1, plus kNone for the
/// "assess the measure value directly" case (a dummy all-zero benchmark)
/// and kAncestor for the roll-up benchmark sketched in the paper's future
/// work (Section 8: "let the sales of milk be assessed against those of
/// drinks, i.e., against an ancestor of milk in the roll-up order").
enum class BenchmarkType {
  kNone,
  kConstant,
  kExternal,
  kSibling,
  kPast,
  kAncestor,
};

std::string_view BenchmarkTypeToString(BenchmarkType type);

/// \brief The against clause in surface form.
struct BenchmarkClause {
  BenchmarkType type = BenchmarkType::kNone;
  // kConstant
  double constant = 0.0;
  // kExternal: against B.m_b
  std::string external_cube;
  std::string external_measure;
  // kSibling: against l_s = 'u_sib'
  std::string sibling_level;
  std::string sibling_member;
  // kPast: against past k
  int past_k = 0;
  // kAncestor: against <coarser level of a sliced hierarchy>
  std::string ancestor_level;

  std::string ToString() const;
};

/// \brief The labels clause: either a predeclared function name or an
/// inline set of ranges.
struct LabelsClause {
  bool is_inline = false;
  std::string named;
  std::vector<LabelRange> ranges;

  std::string ToString() const;
};

/// \brief A parsed assess statement (Section 4.1):
///
///   with C0 [ for P ] by G
///   assess|assess* m [ against <benchmark> ]
///   [ using <function> ] labels λ
struct AssessStatement {
  std::string cube;
  std::vector<PredicateSpec> for_predicates;
  std::vector<std::string> by_levels;
  bool star = false;  // assess* returns non-matching cells with null labels
  std::string measure;
  BenchmarkClause against;
  std::optional<FuncExpr> using_expr;
  LabelsClause labels;

  /// The verbatim statement text, kept for the formulation-effort metric.
  std::string original_text;

  /// \brief Canonical surface rendering (independent of original_text).
  std::string ToString() const;
};

}  // namespace assess

#endif  // ASSESS_ASSESS_AST_H_
