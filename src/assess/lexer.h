#ifndef ASSESS_ASSESS_LEXER_H_
#define ASSESS_ASSESS_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace assess {

/// \brief Token kinds of the assess surface language.
enum class TokenType {
  kIdent,     // with, assess, country, benchmark, ... (keywords resolved by
              // the parser, case-insensitively)
  kNumber,    // 1000, 0.9, 1e3
  kString,    // 'Italy'
  kLParen,    // (
  kRParen,    // )
  kLBrace,    // {
  kRBrace,    // }
  kLBracket,  // [
  kRBracket,  // ]
  kComma,     // ,
  kColon,     // :
  kEquals,    // =
  kStar,      // *
  kDot,       // .
  kMinus,     // -
  kEnd,
};

std::string_view TokenTypeToString(TokenType type);

/// \brief One lexical token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier or string contents
  double number = 0.0;  // kNumber value
  size_t offset = 0;

  /// \brief Case-insensitive keyword check for identifiers.
  bool IsKeyword(std::string_view keyword) const;
};

/// \brief Tokenizes an assess statement. Comments are not part of the
/// language; whitespace (including newlines) separates tokens.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace assess

#endif  // ASSESS_ASSESS_LEXER_H_
