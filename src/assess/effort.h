#ifndef ASSESS_ASSESS_EFFORT_H_
#define ASSESS_ASSESS_EFFORT_H_

#include <cstdint>
#include <string>

#include "assess/analyzer.h"
#include "common/result.h"

namespace assess {

/// \brief Formulation effort for one statement under the ASCII-length
/// metric of Jain et al. [11] used in Table 1: the character counts of the
/// SQL and Python code the user would otherwise craft, versus the assess
/// statement itself.
struct EffortReport {
  int64_t sql_chars = 0;
  int64_t python_chars = 0;
  int64_t assess_chars = 0;

  int64_t total_chars() const { return sql_chars + python_chars; }
};

/// \brief Computes the Table 1 metric for `analyzed`. Following the paper,
/// the SQL and Python sides are taken from the code generated for the least
/// complex plan (NP): the NP get statements plus the Pandas client script.
Result<EffortReport> MeasureFormulationEffort(const AnalyzedStatement& analyzed,
                                              const StarDatabase& db);

}  // namespace assess

#endif  // ASSESS_ASSESS_EFFORT_H_
