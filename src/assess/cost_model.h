#ifndef ASSESS_ASSESS_COST_MODEL_H_
#define ASSESS_ASSESS_COST_MODEL_H_

#include <vector>

#include "assess/analyzer.h"
#include "assess/planner.h"
#include "common/result.h"
#include "storage/star_schema.h"

namespace assess {

/// \brief Tunable weights of the plan cost model, in abstract cost units
/// per row/cell. The defaults are calibrated to the relative magnitudes
/// observed on this engine (a fact-scan step is the unit; client-side
/// per-cell work is a few units because of row-wise materialization).
struct CostModelWeights {
  double scan_per_fact = 1.0;        ///< sequential fact/view scan, per row
  double aggregate_per_group = 2.0;  ///< hash-group creation, per group
  double transfer_per_cell = 1.5;    ///< DBMS-to-client marshalling
  double join_per_cell = 1.0;        ///< client join build+probe
  double pivot_per_cell = 1.2;       ///< pivot restructuring
  double transform_per_cell = 4.0;   ///< forecasting and friends
};

/// \brief An estimated plan cost, for ranking.
struct PlanCost {
  PlanKind plan = PlanKind::kNP;
  double cost = 0.0;
};

/// \brief Statistics-driven cost estimation over the catalog — the
/// cost-based optimization strategy sketched in the paper's future work
/// (Section 8), replacing the fixed POP > JOP > NP preference.
///
/// Cardinalities are estimated from dictionary sizes and fact counts with
/// the classical independence and Poisson-occupancy assumptions:
///   selectivity(l = u)      = 1 / |Dom(l)|
///   selectivity(l in S)     = |S| / |Dom(l)|
///   rows(q)                 = |C0| * Π selectivities
///   cells(q)                = space * (1 - e^{-rows/space}),
/// where space is the product of the group-by level cardinalities.
class CostEstimator {
 public:
  explicit CostEstimator(const StarDatabase* db,
                         CostModelWeights weights = CostModelWeights())
      : db_(db), weights_(weights) {}

  /// \brief Estimated fraction of detailed rows satisfying the predicates.
  Result<double> EstimateSelectivity(
      const CubeSchema& schema, const std::vector<Predicate>& predicates) const;

  /// \brief Estimated number of cells in the query's derived cube.
  Result<double> EstimateCells(const CubeQuery& query) const;

  /// \brief Estimated abstract cost of executing `analyzed` under `plan`
  /// (must be feasible).
  Result<double> EstimatePlanCost(const AnalyzedStatement& analyzed,
                                  PlanKind plan) const;

  /// \brief All feasible plans with their estimated costs, cheapest first.
  Result<std::vector<PlanCost>> RankPlans(
      const AnalyzedStatement& analyzed) const;

  /// \brief The cheapest feasible plan under the model.
  Result<PlanKind> ChoosePlan(const AnalyzedStatement& analyzed) const;

 private:
  const StarDatabase* db_;
  CostModelWeights weights_;
};

}  // namespace assess

#endif  // ASSESS_ASSESS_COST_MODEL_H_
