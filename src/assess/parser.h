#ifndef ASSESS_ASSESS_PARSER_H_
#define ASSESS_ASSESS_PARSER_H_

#include <string_view>

#include "assess/ast.h"
#include "common/result.h"

namespace assess {

/// \brief Parses one assess statement (Section 4.1 syntax):
///
///   with SALES
///   for type = 'Fresh Fruit', country = 'Italy'
///   by product, country
///   assess quantity against country = 'France'
///   using percOfTotal(difference(quantity, benchmark.quantity))
///   labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}
///
/// Keywords are case-insensitive; errors carry the source offset.
Result<AssessStatement> ParseAssessStatement(std::string_view input);

/// \brief Parses a *partial* statement: like ParseAssessStatement, but the
/// labels clause may be absent (against and using are optional already).
/// Used by the completion suggester (assess/suggest.h).
Result<AssessStatement> ParsePartialAssessStatement(std::string_view input);

}  // namespace assess

#endif  // ASSESS_ASSESS_PARSER_H_
