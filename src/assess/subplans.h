#ifndef ASSESS_ASSESS_SUBPLANS_H_
#define ASSESS_ASSESS_SUBPLANS_H_

#include <string>
#include <vector>

#include "assess/analyzer.h"
#include "assess/planner.h"
#include "common/result.h"
#include "olap/cube_query.h"

namespace assess {

/// \brief The target's query with its slice predicate on `level_name`
/// widened from `= u` to `in members` — the one get a POP plan issues to
/// fetch every slice it will pivot. Internal error when the target carries
/// no equality slice on that level.
Result<CubeQuery> AllSlicesQuery(const AnalyzedStatement& analyzed,
                                 const std::string& level_name,
                                 std::vector<std::string> members);

/// \brief The single get a sibling POP plan runs: all slices on the sibling
/// level, measures widened to the union of target and benchmark measures
/// (one get serves both roles).
Result<CubeQuery> SiblingPopQuery(const AnalyzedStatement& analyzed);

/// \brief The single get a past POP plan runs: the reference slice plus the
/// k past members on the time level.
Result<CubeQuery> PastPopQuery(const AnalyzedStatement& analyzed);

/// \brief Every `get` the executor will send to the storage engine when it
/// runs `analyzed` under `plan`, in issue order. This is the contract the
/// server's MQO collector relies on to group concurrent statements by their
/// scans before any of them executes: the queries returned here are exactly
/// the ones Executor::Execute hands to StarQueryEngine::Execute /
/// ExecuteJoined / ExecutePivoted (joined and pivoted plans decompose into
/// the same per-cube gets inside the engine).
Result<std::vector<CubeQuery>> PlannedGetSubplans(
    const AnalyzedStatement& analyzed, PlanKind plan);

}  // namespace assess

#endif  // ASSESS_ASSESS_SUBPLANS_H_
