#include "assess/planner.h"

#include <sstream>

#include "common/str_util.h"

namespace assess {

std::string_view PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kNP:
      return "NP";
    case PlanKind::kJOP:
      return "JOP";
    case PlanKind::kPOP:
      return "POP";
  }
  return "?";
}

Result<PlanKind> PlanKindFromString(std::string_view name) {
  if (EqualsIgnoreCase(name, "NP")) return PlanKind::kNP;
  if (EqualsIgnoreCase(name, "JOP")) return PlanKind::kJOP;
  if (EqualsIgnoreCase(name, "POP")) return PlanKind::kPOP;
  return Status::NotFound("no plan '" + std::string(name) +
                          "' (expected NP, JOP or POP)");
}

bool IsPlanFeasible(const AnalyzedStatement& analyzed, PlanKind kind) {
  switch (kind) {
    case PlanKind::kNP:
      return true;
    case PlanKind::kJOP:
      // No join exists for constant benchmarks.
      return analyzed.type != BenchmarkType::kConstant &&
             analyzed.type != BenchmarkType::kNone;
    case PlanKind::kPOP:
      // POP needs multiple slices of a single cube (property P3).
      return analyzed.type == BenchmarkType::kSibling ||
             analyzed.type == BenchmarkType::kPast;
  }
  return false;
}

std::vector<PlanKind> FeasiblePlans(const AnalyzedStatement& analyzed) {
  std::vector<PlanKind> plans;
  for (PlanKind kind : {PlanKind::kNP, PlanKind::kJOP, PlanKind::kPOP}) {
    if (IsPlanFeasible(analyzed, kind)) plans.push_back(kind);
  }
  return plans;
}

PlanKind BestPlan(const AnalyzedStatement& analyzed) {
  if (IsPlanFeasible(analyzed, PlanKind::kPOP)) return PlanKind::kPOP;
  if (IsPlanFeasible(analyzed, PlanKind::kJOP)) return PlanKind::kJOP;
  return PlanKind::kNP;
}

std::string ExplainPlan(const AnalyzedStatement& analyzed, PlanKind kind) {
  const CubeSchema& schema = *analyzed.schema;
  std::ostringstream out;
  out << PlanKindToString(kind) << " plan ("
      << BenchmarkTypeToString(analyzed.type) << " benchmark):\n";
  int step = 1;
  auto emit = [&out, &step](const std::string& line) {
    out << "  " << step++ << ". " << line << "\n";
  };
  std::string join_on = Join(analyzed.join_levels, ", ");

  switch (analyzed.type) {
    case BenchmarkType::kNone:
    case BenchmarkType::kConstant:
      emit("get C = " + analyzed.target.ToString(schema) + "  [engine]");
      emit("extend C with constant benchmark m_const = " +
           FormatNumber(analyzed.constant));
      break;
    case BenchmarkType::kExternal:
      if (kind == PlanKind::kJOP) {
        emit("get+join D = C \\bowtie B pushed to the engine: C = " +
             analyzed.target.ToString(schema) + ", B = " +
             analyzed.benchmark.ToString(schema));
      } else {
        emit("get C = " + analyzed.target.ToString(schema) + "  [engine]");
        emit("get B = " + analyzed.benchmark.ToString(schema) + "  [engine]");
        emit("join D = C \\bowtie_{" + join_on + "} B  [client]");
      }
      break;
    case BenchmarkType::kSibling:
      if (kind == PlanKind::kPOP) {
        emit("get+pivot (P3): one get over slices {'" +
             analyzed.sibling_member + "', '" + analyzed.sibling_sib +
             "'} of " + analyzed.sibling_level +
             ", pivoted on reference '" + analyzed.sibling_member +
             "'  [engine]");
      } else if (kind == PlanKind::kJOP) {
        emit("get+join D = C \\bowtie_{" + join_on +
             "} B pushed to the engine: C = " +
             analyzed.target.ToString(schema) + ", B = " +
             analyzed.benchmark.ToString(schema));
      } else {
        emit("get C = " + analyzed.target.ToString(schema) + "  [engine]");
        emit("get B = " + analyzed.benchmark.ToString(schema) +
             "  [engine]");
        emit("join D = C \\bowtie_{" + join_on + "} B  [client]");
      }
      break;
    case BenchmarkType::kPast:
      if (kind == PlanKind::kPOP) {
        emit("get+pivot (P3): one get over " + analyzed.time_level +
             " slices {" + Join(analyzed.past_members, ", ") + ", " +
             analyzed.time_member + "}, pivoted on reference '" +
             analyzed.time_member + "' into past_1..past_" +
             std::to_string(analyzed.past_k) + "  [engine]");
        emit("transform: " +
             std::string(ForecastMethodToString(analyzed.forecast)) +
             "(past_1..past_" + std::to_string(analyzed.past_k) + ") -> " +
             analyzed.benchmark_measure_name + "  [client]");
      } else if (kind == PlanKind::kJOP) {
        emit("get+join (P2): D = C \\bowtie_{" + join_on +
             "} B pushed to the engine, concatenating the " +
             std::to_string(analyzed.past_k) + " matched slices: C = " +
             analyzed.target.ToString(schema) + ", B = " +
             analyzed.benchmark.ToString(schema));
        emit("transform: " +
             std::string(ForecastMethodToString(analyzed.forecast)) +
             "(past_1..past_" + std::to_string(analyzed.past_k) + ") -> " +
             analyzed.benchmark_measure_name + "  [client]");
      } else {
        emit("get C = " + analyzed.target.ToString(schema) + "  [engine]");
        emit("get B = " + analyzed.benchmark.ToString(schema) +
             "  [engine]");
        emit("transform: pivot B on " + analyzed.time_level +
             " (reference '" + analyzed.past_members.back() +
             "')  [client]");
        emit("transform: " +
             std::string(ForecastMethodToString(analyzed.forecast)) +
             " over the " + std::to_string(analyzed.past_k) +
             " past values -> predicted " + analyzed.measure + "  [client]");
        emit("join D = C \\bowtie_{" + join_on + "} E  [client]");
      }
      break;
    case BenchmarkType::kAncestor:
      if (kind == PlanKind::kJOP) {
        emit("get+join D = C \\bowtie_{" + join_on +
             "} B pushed to the engine (roll-up benchmark): C = " +
             analyzed.target.ToString(schema) + ", B = " +
             analyzed.benchmark.ToString(schema));
      } else {
        emit("get C = " + analyzed.target.ToString(schema) + "  [engine]");
        emit("get B = " + analyzed.benchmark.ToString(schema) +
             "  [engine]  (ancestor '" + analyzed.ancestor_member + "')");
        emit("join D = C \\bowtie_{" + join_on + "} B  [client]");
      }
      break;
  }
  emit("compare: " + analyzed.using_expr.ToString() + "  [client]");
  emit("label: " + analyzed.label_function->ToString() + "  [client]");
  return out.str();
}

}  // namespace assess
