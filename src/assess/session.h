#ifndef ASSESS_ASSESS_SESSION_H_
#define ASSESS_ASSESS_SESSION_H_

#include <shared_mutex>
#include <string_view>

#include "assess/analyzer.h"
#include "assess/cost_model.h"
#include "assess/executor.h"
#include "assess/parser.h"
#include "assess/planner.h"
#include "assess/result_set.h"
#include "obs/trace.h"

namespace assess {

/// \brief How Query() picks among feasible plans: the fixed empirical
/// preference of Section 6.2 (POP, else JOP, else NP), or the cost model
/// of assess/cost_model.h (the future-work strategy of Section 8).
enum class PlanSelection {
  kRuleBased,
  kCostBased,
};

/// \brief The library's front door: parses, analyzes, plans and executes
/// assess statements against a StarDatabase.
///
///   StarDatabase db = ...;
///   AssessSession session(&db);
///   auto result = session.Query(
///       "with SALES by month assess storeSales labels quartiles");
///   std::cout << result->ToString();
///
/// The session owns the function and labeling registries (preloaded with
/// the builtins) so users can register their own comparison functions and
/// predeclared labelings (e.g. "5stars") before querying.
class AssessSession {
 public:
  /// \brief Configured construction: `options` controls views, the scan
  /// pool and per-query thread cap (default: the shared pool's worker
  /// count; see EngineOptions) and the semantic result cache (default:
  /// on). To share a warm cache across sessions, pass the same
  /// `options.shared_cache` to each.
  AssessSession(const StarDatabase* db, const ExecutorOptions& options)
      : db_(db),
        functions_(FunctionRegistry::Default()),
        labelings_(LabelingRegistry::Default()),
        executor_(db, &functions_, options) {}

  explicit AssessSession(const StarDatabase* db, bool use_views = true)
      : AssessSession(db, [use_views] {
          ExecutorOptions options;
          options.use_views = use_views;
          return options;
        }()) {}

  FunctionRegistry* functions() { return &functions_; }
  LabelingRegistry* labelings() { return &labelings_; }
  AnalyzerOptions* options() { return &options_; }
  const Executor& executor() const { return executor_; }

  /// \brief The engine's result cache (nullptr when disabled) and its
  /// counters, for monitoring interactive sessions.
  const std::shared_ptr<CubeResultCache>& result_cache() const {
    return executor_.engine().result_cache();
  }
  CacheStats cache_stats() const { return executor_.engine().cache_stats(); }

  void set_plan_selection(PlanSelection selection) {
    plan_selection_ = selection;
  }
  PlanSelection plan_selection() const { return plan_selection_; }

  /// \brief Parses and analyzes a statement without executing it.
  ///
  /// Every public entry point holds the database's schema mutex shared for
  /// the duration of the statement: member-stable fact appends proceed
  /// concurrently (queries see consistent epoch snapshots), while ingest
  /// batches that insert new dimension members take it exclusively.
  Result<AnalyzedStatement> Prepare(std::string_view statement) const {
    std::shared_lock<std::shared_mutex> lock(db_->schema_mutex());
    return PrepareLocked(statement);
  }

  /// \brief Executes a statement with the plan chosen by the configured
  /// selection strategy (rule-based by default).
  Result<AssessResult> Query(std::string_view statement) const {
    std::shared_lock<std::shared_mutex> lock(db_->schema_mutex());
    ASSESS_ASSIGN_OR_RETURN(AnalyzedStatement analyzed,
                            PrepareLocked(statement));
    PlanKind plan;
    {
      Span span("plan");
      plan = BestPlan(analyzed);
      if (plan_selection_ == PlanSelection::kCostBased) {
        CostEstimator estimator(db_);
        ASSESS_ASSIGN_OR_RETURN(plan, estimator.ChoosePlan(analyzed));
      }
      if (span.active()) span.AddString("chosen", PlanKindToString(plan));
    }
    return executor_.Execute(analyzed, plan);
  }

  /// \brief Feasible plans ranked by the cost model, cheapest first.
  Result<std::vector<PlanCost>> RankPlans(std::string_view statement) const {
    std::shared_lock<std::shared_mutex> lock(db_->schema_mutex());
    ASSESS_ASSIGN_OR_RETURN(AnalyzedStatement analyzed,
                            PrepareLocked(statement));
    CostEstimator estimator(db_);
    return estimator.RankPlans(analyzed);
  }

  /// \brief Executes a statement with an explicit plan.
  Result<AssessResult> Query(std::string_view statement, PlanKind plan) const {
    std::shared_lock<std::shared_mutex> lock(db_->schema_mutex());
    ASSESS_ASSIGN_OR_RETURN(AnalyzedStatement analyzed,
                            PrepareLocked(statement));
    return executor_.Execute(analyzed, plan);
  }

  /// \brief The logical steps the given plan performs for this statement.
  Result<std::string> Explain(std::string_view statement,
                              PlanKind plan) const {
    std::shared_lock<std::shared_mutex> lock(db_->schema_mutex());
    ASSESS_ASSIGN_OR_RETURN(AnalyzedStatement analyzed,
                            PrepareLocked(statement));
    if (!IsPlanFeasible(analyzed, plan)) {
      return Status::NotSupported(
          std::string(PlanKindToString(plan)) + " is not feasible for " +
          std::string(BenchmarkTypeToString(analyzed.type)) + " benchmarks");
    }
    return ExplainPlan(analyzed, plan);
  }

 private:
  Result<AnalyzedStatement> PrepareLocked(std::string_view statement) const {
    Result<AssessStatement> stmt = [&] {
      Span span("parse");
      return ParseAssessStatement(statement);
    }();
    ASSESS_RETURN_NOT_OK(stmt.status());
    Span span("analyze");
    return Analyze(*stmt, *db_, functions_, labelings_, options_);
  }

  const StarDatabase* db_;
  FunctionRegistry functions_;
  LabelingRegistry labelings_;
  AnalyzerOptions options_;
  Executor executor_;
  PlanSelection plan_selection_ = PlanSelection::kRuleBased;
};

}  // namespace assess

#endif  // ASSESS_ASSESS_SESSION_H_
