#include "assess/executor.h"

#include <algorithm>
#include <span>

#include "assess/subplans.h"

#include "algebra/operators.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "forecast/forecast.h"
#include "functions/expression.h"
#include "obs/trace.h"
#include "sqlgen/sql_generator.h"

namespace assess {

namespace {

// Times one Figure 4 phase: opens a span named after the phase and, on
// scope exit (including the early returns of ASSESS_ASSIGN_OR_RETURN),
// accumulates the elapsed wall time into the StepTimings slot. The
// Stopwatch keeps StepTimings filled when tracing is compiled out; in
// traced runs Execute() re-derives the timings from the span tree, making
// StepTimings a view over the trace.
class PhaseScope {
 public:
  PhaseScope(const char* name, double* slot) : span_(name), slot_(slot) {}
  ~PhaseScope() { *slot_ += sw_.ElapsedSeconds(); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Span span_;
  double* slot_;
  Stopwatch sw_;
};

// Names of the pivot/concat-join slots holding the k past values. The
// assessed measure's slot i is "past<i>"; any extra measures the query
// carries (derived-measure support) get suffixed names the regression
// ignores.
std::vector<std::vector<std::string>> PastSlotNames(
    int k, const CubeSchema& schema, const std::vector<int>& measures,
    const std::string& primary) {
  std::vector<std::vector<std::string>> names;
  names.reserve(k);
  for (int i = 1; i <= k; ++i) {
    std::vector<std::string> slot;
    for (int m : measures) {
      const std::string& name = schema.measure(m).name;
      slot.push_back(name == primary
                         ? "past" + std::to_string(i)
                         : "past" + std::to_string(i) + "." + name);
    }
    names.push_back(std::move(slot));
  }
  return names;
}

// Input measure names past1..pastk.
std::vector<std::string> PastInputs(int k) {
  std::vector<std::string> inputs;
  inputs.reserve(k);
  for (int i = 1; i <= k; ++i) inputs.push_back("past" + std::to_string(i));
  return inputs;
}

CellFn ForecastFn(ForecastMethod method) {
  return [method](std::span<const double> series) {
    return ForecastNext(method, series);
  };
}

// Rewrites property(level, name) calls into measure references, adding one
// column per distinct property filled from each cell's coordinate (the
// descriptive-property extension: per-capita comparisons and friends).
Result<FuncExpr> MaterializeProperties(const FuncExpr& expr, Cube* cube) {
  if (expr.kind != FuncExpr::Kind::kCall) return expr;
  if (EqualsIgnoreCase(expr.name, "property") && expr.args.size() == 2 &&
      expr.args[0].kind == FuncExpr::Kind::kMeasureRef &&
      expr.args[1].kind == FuncExpr::Kind::kMeasureRef) {
    const std::string& level_name = expr.args[0].name;
    const std::string& property = expr.args[1].name;
    std::string column_name = level_name + "." + property;
    if (!cube->MeasureIndex(column_name).ok()) {
      ASSESS_ASSIGN_OR_RETURN(int pos, cube->LevelPosition(level_name));
      const LevelRef& level = cube->level(pos);
      ASSESS_ASSIGN_OR_RETURN(
          const std::vector<double>* values,
          level.hierarchy->PropertyColumn(level.level, property));
      int idx = cube->AddMeasureColumn(column_name);
      for (int64_t r = 0; r < cube->NumRows(); ++r) {
        cube->SetMeasure(r, idx, (*values)[cube->CoordAt(r, pos)]);
      }
    }
    return FuncExpr::Measure(std::move(column_name));
  }
  FuncExpr rewritten = expr;
  rewritten.args.clear();
  for (const FuncExpr& arg : expr.args) {
    ASSESS_ASSIGN_OR_RETURN(FuncExpr child, MaterializeProperties(arg, cube));
    rewritten.args.push_back(std::move(child));
  }
  return rewritten;
}

}  // namespace

Status Executor::CompareAndLabel(const AnalyzedStatement& analyzed,
                                 AssessResult* result) const {
  Cube* cube = &result->cube;
  {
    PhaseScope phase("compare", &result->timings.compare);
    if (analyzed.type == BenchmarkType::kConstant) {
      AddConstantMeasure(cube, analyzed.benchmark_measure_name,
                         analyzed.constant);
    }
    ASSESS_ASSIGN_OR_RETURN(FuncExpr comparison_expr,
                            MaterializeProperties(analyzed.using_expr, cube));
    ASSESS_ASSIGN_OR_RETURN(
        result->comparison_measure,
        ApplyExpression(comparison_expr, *functions_, cube));
  }

  {
    PhaseScope phase("label", &result->timings.label);
    ASSESS_ASSIGN_OR_RETURN(int cmp_idx,
                            cube->MeasureIndex(result->comparison_measure));
    const std::vector<double>& comparison = cube->measure_column(cmp_idx);
    std::vector<std::string> labels;
    ASSESS_RETURN_NOT_OK(analyzed.label_function->Apply(
        std::span<const double>(comparison.data(), comparison.size()),
        &labels));
    cube->SetLabels(std::move(labels));
  }

  result->measure = analyzed.measure;
  result->benchmark_measure = analyzed.benchmark_measure_name;
  return Status::OK();
}

Result<AssessResult> Executor::Execute(const AnalyzedStatement& analyzed,
                                       PlanKind plan) const {
  if (!IsPlanFeasible(analyzed, plan)) {
    return Status::NotSupported(
        std::string(PlanKindToString(plan)) + " is not feasible for " +
        std::string(BenchmarkTypeToString(analyzed.type)) + " benchmarks");
  }
  Span span("execute");
  if (span.active()) {
    span.AddString("plan", PlanKindToString(plan));
    span.AddString("benchmark", BenchmarkTypeToString(analyzed.type));
  }
  Result<AssessResult> result = [&]() -> Result<AssessResult> {
    switch (analyzed.type) {
      case BenchmarkType::kNone:
      case BenchmarkType::kConstant:
        return ExecuteConstant(analyzed);
      case BenchmarkType::kExternal:
      case BenchmarkType::kAncestor:
        return ExecuteViaJoin(analyzed, plan);
      case BenchmarkType::kSibling:
        return ExecuteSibling(analyzed, plan);
      case BenchmarkType::kPast:
        return ExecutePast(analyzed, plan);
    }
    return Status::Internal("unreachable benchmark type");
  }();
  if (span.active() && result.ok()) {
    span.AddInt("rows", result->cube.NumRows());
    // StepTimings as a view over the trace: in traced runs the Figure 4
    // breakdown is the per-phase span durations under this execute span.
    result->timings = StepTimingsFromTrace(*span.context(), span.id());
  }
  return result;
}

Result<AssessResult> Executor::ExecuteConstant(
    const AnalyzedStatement& analyzed) const {
  AssessResult result;
  result.plan = PlanKind::kNP;
  SqlGenerator gen(analyzed.schema.get());

  {
    PhaseScope phase("get_c", &result.timings.get_c);
    ASSESS_ASSIGN_OR_RETURN(Cube engine_cube,
                            engine_.Execute(analyzed.target));
    result.cube = TransferToClient(engine_cube);
  }
  ASSESS_ASSIGN_OR_RETURN(std::string sql, gen.RenderGet(analyzed.target));
  result.sql.push_back(std::move(sql));

  ASSESS_RETURN_NOT_OK(CompareAndLabel(analyzed, &result));
  return result;
}

// NP and JOP are structurally identical for every join-based benchmark
// (external, sibling, ancestor): two gets joined on analyzed.join_levels,
// either client-side (NP) or fused in the engine (JOP). The benchmark's SQL
// renders against its own schema, which differs for external benchmarks.
Result<AssessResult> Executor::ExecuteViaJoin(const AnalyzedStatement& analyzed,
                                              PlanKind plan) const {
  AssessResult result;
  result.plan = plan;
  SqlGenerator gen(analyzed.schema.get());
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* benchmark_cube,
                          db_->Find(analyzed.benchmark.cube_name));
  SqlGenerator benchmark_gen(benchmark_cube->schema_ptr().get());

  if (plan == PlanKind::kJOP) {
    {
      PhaseScope phase("get_cb", &result.timings.get_cb);
      ASSESS_ASSIGN_OR_RETURN(
          Cube joined,
          engine_.ExecuteJoined(analyzed.target, analyzed.benchmark,
                                analyzed.join_levels, analyzed.star));
      result.cube = TransferToClient(joined);
    }
    ASSESS_ASSIGN_OR_RETURN(
        std::string sql,
        gen.RenderJoin(analyzed.target, benchmark_gen, analyzed.benchmark,
                       analyzed.join_levels, analyzed.star));
    result.sql.push_back(std::move(sql));
  } else {
    Cube target;
    {
      PhaseScope phase("get_c", &result.timings.get_c);
      ASSESS_ASSIGN_OR_RETURN(Cube c, engine_.Execute(analyzed.target));
      target = TransferToClient(c);
    }
    ASSESS_ASSIGN_OR_RETURN(std::string sql_c, gen.RenderGet(analyzed.target));
    result.sql.push_back(std::move(sql_c));

    Cube benchmark;
    {
      PhaseScope phase("get_b", &result.timings.get_b);
      ASSESS_ASSIGN_OR_RETURN(Cube b, engine_.Execute(analyzed.benchmark));
      benchmark = TransferToClient(b);
    }
    ASSESS_ASSIGN_OR_RETURN(std::string sql_b,
                            benchmark_gen.RenderGet(analyzed.benchmark));
    result.sql.push_back(std::move(sql_b));

    {
      PhaseScope phase("join", &result.timings.join);
      ASSESS_ASSIGN_OR_RETURN(
          result.cube, JoinCubes(target, benchmark, analyzed.join_levels,
                                 "benchmark", analyzed.star));
    }
  }

  ASSESS_RETURN_NOT_OK(CompareAndLabel(analyzed, &result));
  return result;
}

Result<AssessResult> Executor::ExecuteSibling(
    const AnalyzedStatement& analyzed, PlanKind plan) const {
  AssessResult result;
  result.plan = plan;
  SqlGenerator gen(analyzed.schema.get());

  if (plan == PlanKind::kPOP) {
    ASSESS_ASSIGN_OR_RETURN(CubeQuery query_all, SiblingPopQuery(analyzed));
    PivotSpec spec;
    spec.level = analyzed.sibling_level;
    spec.reference_member = analyzed.sibling_member;
    spec.other_members = {analyzed.sibling_sib};
    spec.measure_names.push_back({});
    for (int m : query_all.measures) {
      spec.measure_names[0].push_back("benchmark." +
                                      analyzed.schema->measure(m).name);
    }
    spec.require_complete = !analyzed.star;

    {
      PhaseScope phase("get_cb", &result.timings.get_cb);
      ASSESS_ASSIGN_OR_RETURN(Cube pivoted,
                              engine_.ExecutePivoted(query_all, spec));
      result.cube = TransferToClient(pivoted);
    }
    ASSESS_ASSIGN_OR_RETURN(
        std::string sql,
        gen.RenderPivot(query_all, spec.level, spec.reference_member,
                        spec.other_members, spec.require_complete));
    result.sql.push_back(std::move(sql));
  } else {
    return ExecuteViaJoin(analyzed, plan);
  }

  ASSESS_RETURN_NOT_OK(CompareAndLabel(analyzed, &result));
  return result;
}

Result<AssessResult> Executor::ExecutePast(const AnalyzedStatement& analyzed,
                                           PlanKind plan) const {
  AssessResult result;
  result.plan = plan;
  SqlGenerator gen(analyzed.schema.get());
  const int k = analyzed.past_k;

  if (plan == PlanKind::kPOP) {
    ASSESS_ASSIGN_OR_RETURN(CubeQuery query_all, PastPopQuery(analyzed));
    PivotSpec spec;
    spec.level = analyzed.time_level;
    spec.reference_member = analyzed.time_member;
    spec.other_members = analyzed.past_members;
    spec.measure_names = PastSlotNames(k, *analyzed.schema,
                                       query_all.measures, analyzed.measure);
    spec.require_complete = !analyzed.star;

    {
      PhaseScope phase("get_cb", &result.timings.get_cb);
      ASSESS_ASSIGN_OR_RETURN(Cube pivoted,
                              engine_.ExecutePivoted(query_all, spec));
      result.cube = TransferToClient(pivoted);
    }
    ASSESS_ASSIGN_OR_RETURN(
        std::string sql,
        gen.RenderPivot(query_all, spec.level, spec.reference_member,
                        spec.other_members, spec.require_complete));
    result.sql.push_back(std::move(sql));

    {
      PhaseScope phase("transform", &result.timings.transform);
      ASSESS_RETURN_NOT_OK(CellTransform(
          &result.cube, analyzed.benchmark_measure_name, PastInputs(k),
          ForecastFn(analyzed.forecast), /*null_propagates=*/false));
    }
  } else if (plan == PlanKind::kJOP) {
    {
      PhaseScope phase("get_cb", &result.timings.get_cb);
      ASSESS_ASSIGN_OR_RETURN(
          Cube joined,
          engine_.ExecuteConcatJoined(
              analyzed.target, analyzed.benchmark, analyzed.join_levels,
              analyzed.time_level, k,
              PastSlotNames(k, *analyzed.schema, analyzed.benchmark.measures,
                            analyzed.measure),
              !analyzed.star));
      result.cube = TransferToClient(joined);
    }
    ASSESS_ASSIGN_OR_RETURN(
        std::string sql,
        gen.RenderJoin(analyzed.target, gen, analyzed.benchmark,
                       analyzed.join_levels, analyzed.star));
    result.sql.push_back(std::move(sql));

    {
      PhaseScope phase("transform", &result.timings.transform);
      ASSESS_RETURN_NOT_OK(CellTransform(
          &result.cube, analyzed.benchmark_measure_name, PastInputs(k),
          ForecastFn(analyzed.forecast), /*null_propagates=*/false));
    }
  } else {
    Cube target;
    {
      PhaseScope phase("get_c", &result.timings.get_c);
      ASSESS_ASSIGN_OR_RETURN(Cube c, engine_.Execute(analyzed.target));
      target = TransferToClient(c);
    }
    ASSESS_ASSIGN_OR_RETURN(std::string sql_c, gen.RenderGet(analyzed.target));
    result.sql.push_back(std::move(sql_c));

    Cube benchmark;
    {
      PhaseScope phase("get_b", &result.timings.get_b);
      ASSESS_ASSIGN_OR_RETURN(Cube b, engine_.Execute(analyzed.benchmark));
      benchmark = TransferToClient(b);
    }
    ASSESS_ASSIGN_OR_RETURN(std::string sql_b,
                            gen.RenderGet(analyzed.benchmark));
    result.sql.push_back(std::move(sql_b));

    // Transformation: pivot the k past slices into measures (the reference
    // slice is the latest past member, whose own value is the k-th point),
    // forecast, and project the prediction into the benchmark measure m.
    Cube predicted;
    {
      PhaseScope phase("transform", &result.timings.transform);
      std::vector<std::string> others(analyzed.past_members.begin(),
                                      analyzed.past_members.end() - 1);
      // require_complete keeps plans equivalent: under assess, every plan
      // keeps exactly the cells with a full k-slice history. (Under assess*
      // POP can forecast from partial histories that NP lacks a pivot row
      // for; both degrade to nulls rather than errors.)
      ASSESS_ASSIGN_OR_RETURN(
          Cube pivoted,
          PivotCube(benchmark, analyzed.time_level,
                    analyzed.past_members.back(), others,
                    PastSlotNames(k - 1, *analyzed.schema,
                                  analyzed.benchmark.measures,
                                  analyzed.measure),
                    /*require_complete=*/!analyzed.star));
      // Chronological inputs: past1..past_{k-1} then the reference slice's m.
      std::vector<std::string> inputs = PastInputs(k - 1);
      inputs.push_back(analyzed.measure);
      ASSESS_RETURN_NOT_OK(CellTransform(&pivoted, "predicted", inputs,
                                         ForecastFn(analyzed.forecast),
                                         /*null_propagates=*/false));
      ASSESS_ASSIGN_OR_RETURN(
          predicted, ProjectMeasures(pivoted, {{"predicted",
                                                analyzed.measure}}));
    }

    {
      PhaseScope phase("join", &result.timings.join);
      ASSESS_ASSIGN_OR_RETURN(
          result.cube, JoinCubes(target, predicted, analyzed.join_levels,
                                 "benchmark", analyzed.star));
    }
  }

  ASSESS_RETURN_NOT_OK(CompareAndLabel(analyzed, &result));
  return result;
}

}  // namespace assess
