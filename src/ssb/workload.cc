#include "ssb/workload.h"

#include <cstdlib>

namespace assess {

std::vector<WorkloadStatement> SsbWorkload() {
  return {
      {"Constant",
       "with SSB by part "
       "assess revenue against 4000000 "
       "using ratio(revenue, 4000000) "
       "labels {[0, 0.5): low, [0.5, 1.5]: ok, (1.5, inf): high}"},
      {"External",
       "with SSB by customer "
       "assess revenue against BUDGET.plannedRevenue "
       "using normalizedDifference(revenue, benchmark.plannedRevenue) "
       "labels {[-inf, -0.1): behind, [-0.1, 0.1]: onTrack, (0.1, inf): "
       "ahead}"},
      {"Sibling",
       "with SSB for s_region = 'ASIA' by customer, s_region "
       "assess quantity against s_region = 'AMERICA' "
       "using percOfTotal(difference(quantity, benchmark.quantity), "
       "quantity) "
       "labels {[-inf, -0.0001): bad, [-0.0001, 0.0001]: ok, (0.0001, inf]: "
       "good}"},
      {"Past",
       "with SSB for month = '1998-06' by month, supplier "
       "assess revenue against past 4 "
       "using ratio(revenue, benchmark.revenue) "
       "labels {[-inf, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}"},
  };
}

std::vector<SsbScalePoint> SsbScaleSeries(double base_sf) {
  return {
      {"SSB1", base_sf},
      {"SSB10", base_sf * 10.0},
      {"SSB100", base_sf * 100.0},
  };
}

double BaseScaleFactorFromEnv(double fallback) {
  const char* env = std::getenv("ASSESS_SSB_BASE_SF");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  double value = std::strtod(env, &end);
  if (end == env || value <= 0.0) return fallback;
  return value;
}

}  // namespace assess
