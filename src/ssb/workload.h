#ifndef ASSESS_SSB_WORKLOAD_H_
#define ASSESS_SSB_WORKLOAD_H_

#include <string>
#include <vector>

namespace assess {

/// \brief One intention of the experimental workload (Section 6): a named
/// assess statement over the SSB cube.
struct WorkloadStatement {
  std::string name;  // Constant | External | Sibling | Past
  std::string text;
};

/// \brief The four assess statements of the paper's experiments — one per
/// benchmark type — phrased against the SSB schema of BuildSsbDatabase().
/// The by/for clauses are fixed across scale factors, so target-cube
/// cardinality scales with the detailed cube exactly as in Table 2.
std::vector<WorkloadStatement> SsbWorkload();

/// \brief The scale series used by the benchmarks: name and scale factor,
/// preserving the paper's 1:10:100 ratio around `base_sf` (the paper's
/// SSB1/SSB10/SSB100 rescaled to this machine; see DESIGN.md).
struct SsbScalePoint {
  std::string name;
  double scale_factor;
};
std::vector<SsbScalePoint> SsbScaleSeries(double base_sf);

/// \brief Reads the base scale factor from ASSESS_SSB_BASE_SF (default
/// `fallback`), so the harness can be rescaled without recompiling.
double BaseScaleFactorFromEnv(double fallback);

}  // namespace assess

#endif  // ASSESS_SSB_WORKLOAD_H_
