#include "ssb/sales_generator.h"

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"

namespace assess {

namespace {

struct ProductDef {
  const char* name;
  const char* type;
  const char* category;
  double unit_price;
};
constexpr ProductDef kProducts[] = {
    {"Apple", "Fresh Fruit", "Fruit", 2.0},
    {"Pear", "Fresh Fruit", "Fruit", 2.5},
    {"Lemon", "Fresh Fruit", "Fruit", 1.5},
    {"Banana", "Fresh Fruit", "Fruit", 1.8},
    {"Orange", "Fresh Fruit", "Fruit", 2.2},
    {"Raisin", "Dried Fruit", "Fruit", 4.0},
    {"Fig", "Dried Fruit", "Fruit", 5.0},
    {"milk", "Dairy", "Food", 1.2},
    {"yogurt", "Dairy", "Food", 1.6},
    {"butter", "Dairy", "Food", 3.2},
    {"cheese", "Dairy", "Food", 6.5},
    {"ice-cream", "Dairy", "Food", 4.5},
    {"juice", "Beverages", "Drink", 2.8},
    {"soda", "Beverages", "Drink", 1.9},
    {"water", "Beverages", "Drink", 0.9},
    {"bread", "Baked Goods", "Food", 2.1},
    {"croissant", "Baked Goods", "Food", 1.4},
    {"cake", "Baked Goods", "Food", 8.0},
};

struct StoreDef {
  const char* name;
  const char* city;
  const char* country;
};
constexpr StoreDef kStores[] = {
    {"SmartMart", "Rome", "Italy"},
    {"MegaStore", "Milan", "Italy"},
    {"CityMarket", "Naples", "Italy"},
    {"PetitPrix", "Paris", "France"},
    {"GrandMarche", "Lyon", "France"},
    {"BonCoin", "Marseille", "France"},
    {"ElMercado", "Madrid", "Spain"},
    {"SuperTienda", "Barcelona", "Spain"},
    {"KaufHaus", "Berlin", "Germany"},
    {"BilligMarkt", "Munich", "Germany"},
    {"AgoraShop", "Athens", "Greece"},
};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

std::string Pad2(int n) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d", n % 100);
  return buf;
}

}  // namespace

Result<std::unique_ptr<StarDatabase>> BuildSalesDatabase(
    const SalesConfig& config) {
  Rng rng(config.seed);

  auto h_date = std::make_shared<Hierarchy>("Date");
  h_date->set_temporal(true);
  h_date->AddLevel("date");
  h_date->AddLevel("month");
  h_date->AddLevel("year");
  DimensionTable dates("date", h_date);
  for (int year = 1996; year <= 1997; ++year) {
    MemberId year_id = h_date->AddMember(2, std::to_string(year));
    for (int month = 1; month <= 12; ++month) {
      std::string month_name = std::to_string(year) + "-" + Pad2(month);
      MemberId month_id = h_date->AddMember(1, month_name);
      h_date->SetParent(1, month_id, year_id);
      for (int day = 1; day <= DaysInMonth(year, month); ++day) {
        MemberId date_id = h_date->AddMember(0, month_name + "-" + Pad2(day));
        h_date->SetParent(0, date_id, month_id);
        dates.AddRow({date_id, month_id, year_id});
      }
    }
  }

  auto h_customer = std::make_shared<Hierarchy>("Customer");
  h_customer->AddLevel("customer");
  h_customer->AddLevel("gender");
  DimensionTable customers("customer", h_customer);
  MemberId male = h_customer->AddMember(1, "male");
  MemberId female = h_customer->AddMember(1, "female");
  constexpr int kCustomers = 200;
  for (int i = 0; i < kCustomers; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "Customer#%03d", i + 1);
    MemberId customer = h_customer->AddMember(0, buf);
    MemberId gender = (rng.Uniform(2) == 0) ? male : female;
    h_customer->SetParent(0, customer, gender);
    customers.AddRow({customer, gender});
  }

  auto h_product = std::make_shared<Hierarchy>("Product");
  h_product->AddLevel("product");
  h_product->AddLevel("type");
  h_product->AddLevel("category");
  DimensionTable products("product", h_product);
  const int n_products = static_cast<int>(std::size(kProducts));
  for (int i = 0; i < n_products; ++i) {
    MemberId category = h_product->AddMember(2, kProducts[i].category);
    MemberId type = h_product->AddMember(1, kProducts[i].type);
    h_product->SetParent(1, type, category);
    MemberId product = h_product->AddMember(0, kProducts[i].name);
    h_product->SetParent(0, product, type);
    products.AddRow({product, type, category});
  }

  auto h_store = std::make_shared<Hierarchy>("Store");
  h_store->AddLevel("store");
  h_store->AddLevel("city");
  h_store->AddLevel("country");
  DimensionTable stores("store", h_store);
  const int n_stores = static_cast<int>(std::size(kStores));
  for (int i = 0; i < n_stores; ++i) {
    MemberId country = h_store->AddMember(2, kStores[i].country);
    MemberId city = h_store->AddMember(1, kStores[i].city);
    h_store->SetParent(1, city, country);
    MemberId store = h_store->AddMember(0, kStores[i].name);
    h_store->SetParent(0, store, city);
    stores.AddRow({store, city, country});
  }

  // Descriptive properties: country populations (millions), enabling
  // per-capita statements via property(country, population).
  struct CountryPop { const char* name; double millions; };
  constexpr CountryPop kPopulations[] = {
      {"Italy", 59.0},  {"France", 68.0}, {"Spain", 48.0},
      {"Germany", 84.0}, {"Greece", 10.0},
  };
  for (const CountryPop& cp : kPopulations) {
    h_store->SetProperty(2, "population", cp.name, cp.millions);
  }

  auto schema = std::make_shared<CubeSchema>("SALES");
  schema->AddHierarchy(h_date);
  schema->AddHierarchy(h_customer);
  schema->AddHierarchy(h_product);
  schema->AddHierarchy(h_store);
  schema->AddMeasure({"quantity", AggOp::kSum});
  schema->AddMeasure({"storeSales", AggOp::kSum});
  schema->AddMeasure({"storeCost", AggOp::kSum});

  FactTable facts("SALES", 4, 3);
  facts.Reserve(config.facts);
  const int32_t n_dates = static_cast<int32_t>(dates.NumRows());
  std::vector<int32_t> fks(4);
  std::vector<double> measures(3);
  for (int64_t i = 0; i < config.facts; ++i) {
    fks[0] = static_cast<int32_t>(rng.Uniform(n_dates));
    fks[1] = static_cast<int32_t>(rng.Uniform(kCustomers));
    fks[2] = static_cast<int32_t>(rng.Skewed(n_products));
    fks[3] = static_cast<int32_t>(rng.Uniform(n_stores));
    double quantity = 1.0 + static_cast<double>(rng.Uniform(20));
    // Mild per-store seasonality so past benchmarks have signal to fit.
    double season =
        1.0 + 0.15 * static_cast<double>((fks[0] / 30 + fks[3]) % 7) / 7.0;
    double sales = quantity * kProducts[fks[2]].unit_price * season;
    measures[0] = quantity;
    measures[1] = sales;
    measures[2] = sales * (0.55 + 0.25 * rng.NextDouble());
    facts.AddRow(fks, measures);
  }

  auto db = std::make_unique<StarDatabase>();
  std::vector<DimensionTable> dims = {dates, customers, products, stores};
  auto bound =
      std::make_unique<BoundCube>(schema, std::move(dims), std::move(facts));
  ASSESS_RETURN_NOT_OK(bound->Validate());
  ASSESS_RETURN_NOT_OK(db->Register("SALES", std::move(bound)));
  return db;
}

}  // namespace assess
