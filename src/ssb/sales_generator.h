#ifndef ASSESS_SSB_SALES_GENERATOR_H_
#define ASSESS_SSB_SALES_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "storage/star_schema.h"

namespace assess {

/// \brief Configuration for the SALES cube generator — the FoodMart-style
/// running example of the paper (Example 2.2):
///
///   Date:     date ⪰ month ⪰ year         (1996-1997)
///   Customer: customer ⪰ gender
///   Product:  product ⪰ type ⪰ category   (milk, Apple, Fresh Fruit, ...)
///   Store:    store ⪰ city ⪰ country      (SmartMart, Italy, France, ...)
///   Measures: quantity, storeSales, storeCost (sums)
///
/// The product and store vocabularies include every member the paper's
/// examples mention (milk, Fresh Fruit with Apple/Pear/Lemon, Italy and
/// France slices, the SmartMart store), so all of Example 4.1's statements
/// run verbatim against it.
struct SalesConfig {
  int64_t facts = 100000;
  uint64_t seed = 7;
};

/// \brief Generates the SALES database (cube "SALES"), deterministic in
/// the seed.
Result<std::unique_ptr<StarDatabase>> BuildSalesDatabase(
    const SalesConfig& config);

}  // namespace assess

#endif  // ASSESS_SSB_SALES_GENERATOR_H_
