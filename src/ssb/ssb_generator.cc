#include "ssb/ssb_generator.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"

namespace assess {

namespace {

// The SSB dbgen nation vocabulary: 25 nations in 5 regions.
struct Nation {
  const char* name;
  const char* region;
};
constexpr Nation kNations[] = {
    {"ALGERIA", "AFRICA"},       {"ETHIOPIA", "AFRICA"},
    {"KENYA", "AFRICA"},         {"MOROCCO", "AFRICA"},
    {"MOZAMBIQUE", "AFRICA"},    {"ARGENTINA", "AMERICA"},
    {"BRAZIL", "AMERICA"},       {"CANADA", "AMERICA"},
    {"PERU", "AMERICA"},         {"UNITED STATES", "AMERICA"},
    {"CHINA", "ASIA"},           {"INDIA", "ASIA"},
    {"INDONESIA", "ASIA"},       {"JAPAN", "ASIA"},
    {"VIETNAM", "ASIA"},         {"FRANCE", "EUROPE"},
    {"GERMANY", "EUROPE"},       {"ROMANIA", "EUROPE"},
    {"RUSSIA", "EUROPE"},        {"UNITED KINGDOM", "EUROPE"},
    {"EGYPT", "MIDDLE EAST"},    {"IRAN", "MIDDLE EAST"},
    {"IRAQ", "MIDDLE EAST"},     {"JORDAN", "MIDDLE EAST"},
    {"SAUDI ARABIA", "MIDDLE EAST"},
};
constexpr int kNationCount = 25;
constexpr int kCitiesPerNation = 10;

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

std::string PadNumber(int64_t n, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*lld", width,
                static_cast<long long>(n));
  return buf;
}

// SSB-style city members: first 9 characters of the nation plus a digit.
std::string CityName(int nation, int city_in_nation) {
  std::string prefix(kNations[nation].name);
  prefix.resize(9, ' ');
  return prefix + std::to_string(city_in_nation);
}

// Builds the Date hierarchy/dimension: a real 1992-1998 calendar.
void BuildDateDimension(const std::shared_ptr<Hierarchy>& hier,
                        DimensionTable* dim) {
  int l_date = 0, l_month = 1, l_year = 2;
  for (int year = 1992; year <= 1998; ++year) {
    std::string year_name = std::to_string(year);
    MemberId year_id = hier->AddMember(l_year, year_name);
    for (int month = 1; month <= 12; ++month) {
      std::string month_name = year_name + "-" + PadNumber(month, 2);
      MemberId month_id = hier->AddMember(l_month, month_name);
      hier->SetParent(l_month, month_id, year_id);
      for (int day = 1; day <= DaysInMonth(year, month); ++day) {
        std::string date_name = month_name + "-" + PadNumber(day, 2);
        MemberId date_id = hier->AddMember(l_date, date_name);
        hier->SetParent(l_date, date_id, month_id);
        dim->AddRow({date_id, month_id, year_id});
      }
    }
  }
}

// Builds a geography-style dimension (customer/supplier): `count` bottom
// members mapped into the 250 SSB cities.
void BuildGeoDimension(const std::shared_ptr<Hierarchy>& hier,
                       DimensionTable* dim, const std::string& member_prefix,
                       int64_t count, Rng* rng) {
  int l_bottom = 0, l_city = 1, l_nation = 2, l_region = 3;
  // Regions / nations / cities first, so ids are stable across scales.
  std::vector<MemberId> region_ids;
  std::vector<MemberId> nation_ids(kNationCount);
  std::vector<MemberId> city_ids(kNationCount * kCitiesPerNation);
  for (int n = 0; n < kNationCount; ++n) {
    MemberId region = hier->AddMember(l_region, kNations[n].region);
    MemberId nation = hier->AddMember(l_nation, kNations[n].name);
    hier->SetParent(l_nation, nation, region);
    nation_ids[n] = nation;
    for (int c = 0; c < kCitiesPerNation; ++c) {
      MemberId city = hier->AddMember(l_city, CityName(n, c));
      hier->SetParent(l_city, city, nation);
      city_ids[n * kCitiesPerNation + c] = city;
    }
  }
  for (int64_t i = 0; i < count; ++i) {
    MemberId bottom =
        hier->AddMember(l_bottom, member_prefix + PadNumber(i + 1, 9));
    int city_index =
        static_cast<int>(rng->Uniform(kNationCount * kCitiesPerNation));
    MemberId city = city_ids[city_index];
    hier->SetParent(l_bottom, bottom, city);
    MemberId nation = nation_ids[city_index / kCitiesPerNation];
    MemberId region = hier->RollUpMember(l_nation, nation, l_region);
    dim->AddRow({bottom, city, nation, region});
  }
}

// Builds the Part dimension: parts -> 1000 brands -> 25 categories ->
// 5 manufacturers.
void BuildPartDimension(const std::shared_ptr<Hierarchy>& hier,
                        DimensionTable* dim, int64_t count, Rng* rng) {
  int l_part = 0, l_brand = 1, l_category = 2, l_mfgr = 3;
  constexpr int kMfgrs = 5;
  constexpr int kCategoriesPerMfgr = 5;
  constexpr int kBrandsPerCategory = 40;
  std::vector<MemberId> brand_ids;
  for (int m = 0; m < kMfgrs; ++m) {
    MemberId mfgr = hier->AddMember(l_mfgr, "MFGR#" + std::to_string(m + 1));
    for (int c = 0; c < kCategoriesPerMfgr; ++c) {
      MemberId category = hier->AddMember(
          l_category, "MFGR#" + std::to_string(m + 1) + std::to_string(c + 1));
      hier->SetParent(l_category, category, mfgr);
      for (int b = 0; b < kBrandsPerCategory; ++b) {
        MemberId brand = hier->AddMember(
            l_brand, "MFGR#" + std::to_string(m + 1) + std::to_string(c + 1) +
                         PadNumber(b + 1, 2));
        hier->SetParent(l_brand, brand, category);
        brand_ids.push_back(brand);
      }
    }
  }
  for (int64_t i = 0; i < count; ++i) {
    MemberId part = hier->AddMember(l_part, "Part#" + PadNumber(i + 1, 9));
    MemberId brand = brand_ids[rng->Uniform(brand_ids.size())];
    hier->SetParent(l_part, part, brand);
    MemberId category = hier->RollUpMember(l_brand, brand, l_category);
    MemberId mfgr = hier->RollUpMember(l_category, category, l_mfgr);
    dim->AddRow({part, brand, category, mfgr});
  }
}

struct SsbShape {
  int64_t facts;
  int64_t customers;
  int64_t parts;
  int64_t suppliers;
};

SsbShape ShapeFor(double sf) {
  SsbShape shape;
  shape.facts = static_cast<int64_t>(6000000.0 * sf);
  shape.customers = std::max<int64_t>(150, static_cast<int64_t>(30000.0 * sf));
  shape.parts = std::max<int64_t>(500, static_cast<int64_t>(200000.0 * sf));
  shape.suppliers = std::max<int64_t>(40, static_cast<int64_t>(2000.0 * sf));
  return shape;
}

// Shared hierarchy construction for SSB-shaped cubes (SSB and BUDGET).
struct SsbHierarchies {
  std::shared_ptr<Hierarchy> date;
  std::shared_ptr<Hierarchy> customer;
  std::shared_ptr<Hierarchy> part;
  std::shared_ptr<Hierarchy> supplier;
};

SsbHierarchies MakeHierarchies() {
  SsbHierarchies h;
  h.date = std::make_shared<Hierarchy>("Date");
  h.date->set_temporal(true);
  h.date->AddLevel("date");
  h.date->AddLevel("month");
  h.date->AddLevel("year");
  h.customer = std::make_shared<Hierarchy>("Customer");
  h.customer->AddLevel("customer");
  h.customer->AddLevel("c_city");
  h.customer->AddLevel("c_nation");
  h.customer->AddLevel("c_region");
  h.part = std::make_shared<Hierarchy>("Part");
  h.part->AddLevel("part");
  h.part->AddLevel("brand");
  h.part->AddLevel("category");
  h.part->AddLevel("mfgr");
  h.supplier = std::make_shared<Hierarchy>("Supplier");
  h.supplier->AddLevel("supplier");
  h.supplier->AddLevel("s_city");
  h.supplier->AddLevel("s_nation");
  h.supplier->AddLevel("s_region");
  return h;
}

}  // namespace

int64_t SsbFactCount(double scale_factor) {
  return ShapeFor(scale_factor).facts;
}

Result<std::unique_ptr<StarDatabase>> BuildSsbDatabase(
    const SsbConfig& config) {
  if (config.scale_factor <= 0.0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  SsbShape shape = ShapeFor(config.scale_factor);
  Rng rng(config.seed);

  SsbHierarchies h = MakeHierarchies();

  // Dimension tables (shared content between SSB and BUDGET).
  DimensionTable dates("date", h.date);
  BuildDateDimension(h.date, &dates);
  DimensionTable customers("customer", h.customer);
  BuildGeoDimension(h.customer, &customers, "Customer#", shape.customers,
                    &rng);
  DimensionTable parts("part", h.part);
  BuildPartDimension(h.part, &parts, shape.parts, &rng);
  DimensionTable suppliers("supplier", h.supplier);
  BuildGeoDimension(h.supplier, &suppliers, "Supplier#", shape.suppliers,
                    &rng);

  auto schema = std::make_shared<CubeSchema>("SSB");
  schema->AddHierarchy(h.date);
  schema->AddHierarchy(h.customer);
  schema->AddHierarchy(h.part);
  schema->AddHierarchy(h.supplier);
  schema->AddMeasure({"quantity", AggOp::kSum});
  schema->AddMeasure({"revenue", AggOp::kSum});
  schema->AddMeasure({"supplycost", AggOp::kSum});

  const int32_t n_dates = static_cast<int32_t>(dates.NumRows());
  auto generate_facts = [&](FactTable* facts, int64_t rows, bool budget,
                            Rng* gen) {
    facts->Reserve(rows);
    std::vector<int32_t> fks(4);
    std::vector<double> measures(budget ? 1 : 3);
    for (int64_t i = 0; i < rows; ++i) {
      fks[0] = static_cast<int32_t>(gen->Uniform(n_dates));
      fks[1] = static_cast<int32_t>(gen->Uniform(shape.customers));
      if (budget && fks[1] % 5 == 0) {
        // One customer in five has no budget lines, so the external join
        // genuinely drops (assess) or null-labels (assess*) target cells.
        fks[1] = static_cast<int32_t>((fks[1] + 1) % shape.customers);
        if (fks[1] % 5 == 0) fks[1] += 1;
      }
      fks[2] = static_cast<int32_t>(gen->Skewed(shape.parts));
      fks[3] = static_cast<int32_t>(gen->Uniform(shape.suppliers));
      double quantity = 1.0 + static_cast<double>(gen->Uniform(50));
      double price = 1000.0 + static_cast<double>(fks[2] % 9000);
      double discount = static_cast<double>(gen->Uniform(11)) / 100.0;
      double revenue = quantity * price * (1.0 - discount);
      if (budget) {
        // Planned revenue: the expected value with planning noise.
        measures[0] = revenue * (0.9 + 0.2 * gen->NextDouble());
      } else {
        measures[0] = quantity;
        measures[1] = revenue;
        measures[2] = revenue * (0.55 + 0.2 * gen->NextDouble());
      }
      facts->AddRow(fks, measures);
    }
  };

  auto db = std::make_unique<StarDatabase>();

  {
    FactTable facts("SSB", 4, 3);
    generate_facts(&facts, shape.facts, /*budget=*/false, &rng);
    std::vector<DimensionTable> dims = {dates, customers, parts, suppliers};
    auto bound = std::make_unique<BoundCube>(schema, std::move(dims),
                                             std::move(facts));
    ASSESS_RETURN_NOT_OK(db->Register("SSB", std::move(bound)));
  }

  if (config.include_budget) {
    auto budget_schema = std::make_shared<CubeSchema>("BUDGET");
    budget_schema->AddHierarchy(h.date);
    budget_schema->AddHierarchy(h.customer);
    budget_schema->AddHierarchy(h.part);
    budget_schema->AddHierarchy(h.supplier);
    budget_schema->AddMeasure({"plannedRevenue", AggOp::kSum});
    Rng budget_rng(config.seed ^ 0xB0D6E7ULL);
    FactTable facts("BUDGET", 4, 1);
    generate_facts(&facts, shape.facts / 2, /*budget=*/true, &budget_rng);
    std::vector<DimensionTable> dims = {dates, customers, parts, suppliers};
    auto bound = std::make_unique<BoundCube>(budget_schema, std::move(dims),
                                             std::move(facts));
    ASSESS_RETURN_NOT_OK(db->Register("BUDGET", std::move(bound)));
  }

  return db;
}

}  // namespace assess
