#ifndef ASSESS_SSB_SSB_GENERATOR_H_
#define ASSESS_SSB_SSB_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "storage/star_schema.h"

namespace assess {

/// \brief Configuration of the Star Schema Benchmark generator.
///
/// At scale factor 1 the fact table has 6,000,000 lineorders over four
/// dimensions, the shape used by the paper's experiments (Section 6):
///   Date:     date ⪰ month ⪰ year           (2556 / 84 / 7, years 1992-98)
///   Customer: customer ⪰ c_city ⪰ c_nation ⪰ c_region   (30000·SF / 250 / 25 / 5)
///   Part:     part ⪰ brand ⪰ category ⪰ mfgr (200000·SF / 1000 / 25 / 5)
///   Supplier: supplier ⪰ s_city ⪰ s_nation ⪰ s_region   (2000·SF / 250 / 25 / 5)
/// Measures: quantity, revenue, supplycost (all sums).
///
/// Nation and region members follow the SSB dbgen vocabulary (25 nations in
/// 5 regions, cities named "<nation prefix><digit>"); dates are a real
/// 1992-1998 calendar so month members sort chronologically.
struct SsbConfig {
  /// SF 1 = 6e6 lineorders. The paper uses SF 1/10/100; this machine's RAM
  /// hosts a proportionally rescaled 1:10:100 series (see DESIGN.md).
  double scale_factor = 0.1;
  uint64_t seed = 42;
  /// Also generate the BUDGET cube (same hierarchies, measure
  /// plannedRevenue, half the fact density) used as the external benchmark.
  bool include_budget = true;
};

/// \brief Generates the SSB database: cube "SSB" (and "BUDGET" when
/// configured). Deterministic in (scale_factor, seed).
Result<std::unique_ptr<StarDatabase>> BuildSsbDatabase(const SsbConfig& config);

/// \brief Number of lineorders at the given scale factor.
int64_t SsbFactCount(double scale_factor);

}  // namespace assess

#endif  // ASSESS_SSB_SSB_GENERATOR_H_
