#ifndef ASSESS_OBS_METRICS_H_
#define ASSESS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace assess {

/// \brief Process-wide metrics: lock-cheap counters, gauges and fixed-bucket
/// histograms, plus a registry that renders them in Prometheus text
/// exposition format (served by assessd's kMetrics admin frame).
///
/// Hot-path updates are single relaxed atomic RMWs — no locks, no
/// allocation — so instrumented code can update metrics from scan workers.
/// Reads (exposition, quantiles) take unsynchronized snapshots; a dump taken
/// while writers run may be off by in-flight updates, which is the standard
/// monitoring trade-off.

/// \brief Monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Gauge: a value that can go up and down.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram with atomic bucket counters.
///
/// `bounds` are the inclusive upper edges of the finite buckets (must be
/// strictly increasing); one implicit +Inf bucket catches the rest. This
/// replaces assessd's sliding-window percentile array: O(1) lock-free
/// Observe, bounded memory forever, and quantiles over the *entire* history
/// rather than the last N samples. Quantile() interpolates linearly within
/// the winning bucket, so its error is bounded by the bucket width.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// \brief `count` buckets with bounds first, first*growth, first*growth².
  static std::vector<double> ExponentialBounds(double first, double growth,
                                               int count);

  /// \brief The registry-wide default latency layout: 0.25 ms to ~2 min in
  /// 20 doubling buckets (sub-ms resolution where interactive queries live).
  static std::vector<double> LatencyBoundsMs() {
    return ExponentialBounds(0.25, 2.0, 20);
  }

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;

  /// \brief Estimated q-quantile (q in [0,1]) with linear interpolation
  /// inside the winning bucket; 0 when empty. Values in the +Inf bucket
  /// clamp to the last finite bound.
  double Quantile(double q) const;

  /// \brief Bucket counts including the final +Inf bucket
  /// (size() == bounds().size() + 1).
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_bits_;  // CAS-updated double
};

/// \brief Process-wide registry. Metrics are created on first use and live
/// for the process lifetime, so callers may cache the returned pointers and
/// update them without further registry involvement.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// Returns the metric registered under `name`, creating it on first call.
  /// A name identifies one metric of one kind; asking for an existing name
  /// with a different kind returns nullptr.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help = "");

  /// \brief Prometheus text exposition: `# HELP`/`# TYPE` plus one sample
  /// line per counter/gauge and `_bucket{le=...}`/`_sum`/`_count` series per
  /// histogram. Metrics are emitted in name order (deterministic).
  std::string RenderPrometheus() const;

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;  // ordered => deterministic render
};

/// \brief Appends one histogram in Prometheus exposition format under
/// `name` (exposed so assessd can render its per-server latency histogram
/// alongside the process registry).
void AppendHistogramExposition(std::string* out, const std::string& name,
                               const std::string& help, const Histogram& hist);

}  // namespace assess

#endif  // ASSESS_OBS_METRICS_H_
