#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace assess {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return std::string(buf);
}

std::string FormatUint(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return std::string(buf);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_bits_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBounds(double first, double growth,
                                                 int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double edge = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= growth;
  }
  return bounds;
}

void Histogram::Observe(double value) {
  // First bucket whose inclusive upper edge admits the value (lower_bound:
  // a value equal to an edge lands in that edge's bucket); +Inf otherwise.
  size_t bucket = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(expected, expected + value,
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::Sum() const {
  return sum_bits_.load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample, 1-based; ceil keeps p100 inside the data.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  double cum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (rank <= next) {
      if (i == bounds_.size()) {
        return bounds_.empty() ? 0.0 : bounds_.back();  // +Inf bucket clamps
      }
      const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = (rank - cum) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    cum = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.help = help;
  entry.counter = std::make_unique<Counter>();
  Counter* out = entry.counter.get();
  metrics_.emplace(name, std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.help = help;
  entry.gauge = std::make_unique<Gauge>();
  Gauge* out = entry.gauge.get();
  metrics_.emplace(name, std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == Kind::kHistogram ? it->second.histogram.get()
                                               : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.help = help;
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = entry.histogram.get();
  metrics_.emplace(name, std::move(entry));
  return out;
}

void AppendHistogramExposition(std::string* out, const std::string& name,
                               const std::string& help,
                               const Histogram& hist) {
  if (!help.empty()) {
    out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  }
  out->append("# TYPE ").append(name).append(" histogram\n");
  const std::vector<uint64_t> counts = hist.BucketCounts();
  const std::vector<double>& bounds = hist.bounds();
  uint64_t cum = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    cum += counts[i];
    out->append(name)
        .append("_bucket{le=\"")
        .append(FormatDouble(bounds[i]))
        .append("\"} ")
        .append(FormatUint(cum))
        .append("\n");
  }
  cum += counts[bounds.size()];
  out->append(name).append("_bucket{le=\"+Inf\"} ").append(FormatUint(cum));
  out->append("\n");
  out->append(name).append("_sum ").append(FormatDouble(hist.Sum()));
  out->append("\n");
  out->append(name).append("_count ").append(FormatUint(hist.Count()));
  out->append("\n");
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        if (!entry.help.empty()) {
          out.append("# HELP ").append(name).append(" ").append(entry.help);
          out.append("\n");
        }
        out.append("# TYPE ").append(name).append(" counter\n");
        out.append(name).append(" ").append(
            FormatUint(entry.counter->Value()));
        out.append("\n");
        break;
      case Kind::kGauge: {
        if (!entry.help.empty()) {
          out.append("# HELP ").append(name).append(" ").append(entry.help);
          out.append("\n");
        }
        out.append("# TYPE ").append(name).append(" gauge\n");
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64, entry.gauge->Value());
        out.append(name).append(" ").append(buf).append("\n");
        break;
      }
      case Kind::kHistogram:
        AppendHistogramExposition(&out, name, entry.help, *entry.histogram);
        break;
    }
  }
  return out;
}

}  // namespace assess
