#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace assess {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendAttrValueJson(std::string* out, const TraceAttr& attr) {
  char buf[64];
  switch (attr.kind) {
    case TraceAttr::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%" PRId64, attr.int_value);
      out->append(buf);
      break;
    case TraceAttr::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%.17g", attr.double_value);
      out->append(buf);
      break;
    case TraceAttr::Kind::kString:
      out->push_back('"');
      AppendJsonEscaped(out, attr.string_value);
      out->push_back('"');
      break;
  }
}

void AppendAttrsJson(std::string* out, const std::vector<TraceAttr>& attrs) {
  out->push_back('{');
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->push_back('"');
    AppendJsonEscaped(out, attrs[i].key);
    out->append("\":");
    AppendAttrValueJson(out, attrs[i]);
  }
  out->push_back('}');
}

/// Renders an attribute value for the text tree (unquoted strings).
void AppendAttrValueText(std::string* out, const TraceAttr& attr) {
  char buf[64];
  switch (attr.kind) {
    case TraceAttr::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%" PRId64, attr.int_value);
      out->append(buf);
      break;
    case TraceAttr::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", attr.double_value);
      out->append(buf);
      break;
    case TraceAttr::Kind::kString:
      out->append(attr.string_value);
      break;
  }
}

}  // namespace

TraceContext::TraceContext() : epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceContext::Now() const {
  if (now_fn_) return now_fn_();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int32_t TraceContext::ThreadIndexLocked() {
  auto [it, inserted] = thread_index_.emplace(
      std::this_thread::get_id(), static_cast<int32_t>(thread_index_.size()));
  (void)inserted;
  return it->second;
}

TraceContext::SpanId TraceContext::StartSpan(std::string_view name,
                                             SpanId parent) {
  // Read the clock outside the lock so contended traces don't serialize
  // timestamp acquisition; span start order in the vector may then differ
  // from timestamp order across threads, which every consumer tolerates.
  const int64_t now = Now();
  std::lock_guard<std::mutex> lock(mutex_);
  SpanNode node;
  node.id = static_cast<SpanId>(nodes_.size());
  node.parent = parent;
  node.name.assign(name.data(), name.size());
  node.thread = ThreadIndexLocked();
  node.start_ns = now;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void TraceContext::EndSpan(SpanId id) {
  const int64_t now = Now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return;
  nodes_[id].duration_ns = now - nodes_[id].start_ns;
}

void TraceContext::AddInt(SpanId id, std::string_view key, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return;
  TraceAttr attr;
  attr.key.assign(key.data(), key.size());
  attr.kind = TraceAttr::Kind::kInt;
  attr.int_value = value;
  nodes_[id].attrs.push_back(std::move(attr));
}

void TraceContext::AddDouble(SpanId id, std::string_view key, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return;
  TraceAttr attr;
  attr.key.assign(key.data(), key.size());
  attr.kind = TraceAttr::Kind::kDouble;
  attr.double_value = value;
  nodes_[id].attrs.push_back(std::move(attr));
}

void TraceContext::AddString(SpanId id, std::string_view key,
                             std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return;
  TraceAttr attr;
  attr.key.assign(key.data(), key.size());
  attr.kind = TraceAttr::Kind::kString;
  attr.string_value.assign(value.data(), value.size());
  nodes_[id].attrs.push_back(std::move(attr));
}

size_t TraceContext::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nodes_.size();
}

std::vector<SpanNode> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nodes_;
}

double TraceContext::SpanSeconds(std::string_view name, SpanId root) const {
  std::vector<SpanNode> nodes = Snapshot();
  // in_subtree[i]: node i is `root` or a descendant of it. Parents always
  // precede children in the vector (a child's id is assigned after its
  // parent's), so one forward pass suffices.
  std::vector<char> in_subtree(nodes.size(), root == kNoSpan ? 1 : 0);
  if (root != kNoSpan) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].id == root) {
        in_subtree[i] = 1;
      } else if (nodes[i].parent >= 0 &&
                 static_cast<size_t>(nodes[i].parent) < i &&
                 in_subtree[nodes[i].parent]) {
        in_subtree[i] = 1;
      }
    }
  }
  double total = 0.0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!in_subtree[i] || nodes[i].duration_ns < 0) continue;
    if (nodes[i].name == name) total += nodes[i].duration_ns * 1e-9;
  }
  return total;
}

std::string TraceContext::ToJson() const {
  std::vector<SpanNode> nodes = Snapshot();
  std::string out = "{\"trace\":{\"spans\":[";
  char buf[160];
  for (size_t i = 0; i < nodes.size(); ++i) {
    const SpanNode& node = nodes[i];
    if (i > 0) out.push_back(',');
    out.append("{\"id\":");
    std::snprintf(buf, sizeof(buf),
                  "%d,\"parent\":%d,\"name\":", node.id, node.parent);
    out.append(buf);
    out.push_back('"');
    AppendJsonEscaped(&out, node.name);
    out.push_back('"');
    std::snprintf(buf, sizeof(buf),
                  ",\"thread\":%d,\"start_ns\":%" PRId64
                  ",\"duration_ns\":%" PRId64 ",\"attrs\":",
                  node.thread, node.start_ns, node.duration_ns);
    out.append(buf);
    AppendAttrsJson(&out, node.attrs);
    out.push_back('}');
  }
  out.append("]}}");
  return out;
}

std::string TraceContext::ToChromeTrace() const {
  std::vector<SpanNode> nodes = Snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const SpanNode& node : nodes) {
    if (node.duration_ns < 0) continue;  // open spans have no complete event
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    AppendJsonEscaped(&out, node.name);
    // ph "X": complete event; ts/dur are microseconds.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%d,\"args\":",
                  node.start_ns / 1e3, node.duration_ns / 1e3, node.thread);
    out.append(buf);
    AppendAttrsJson(&out, node.attrs);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string TraceContext::ToTreeString() const {
  std::vector<SpanNode> nodes = Snapshot();
  // Children of each node, in recording order.
  std::vector<std::vector<int32_t>> children(nodes.size());
  std::vector<int32_t> roots;
  for (const SpanNode& node : nodes) {
    if (node.parent >= 0 && static_cast<size_t>(node.parent) < nodes.size()) {
      children[node.parent].push_back(node.id);
    } else {
      roots.push_back(node.id);
    }
  }
  std::string out;
  // Iterative DFS, preserving sibling order.
  std::vector<std::pair<int32_t, int>> stack;  // (id, depth), pushed reversed
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  char buf[64];
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const SpanNode& node = nodes[id];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out.append(node.name);
    if (node.duration_ns >= 0) {
      std::snprintf(buf, sizeof(buf), " %.3fms", node.duration_ns / 1e6);
      out.append(buf);
    } else {
      out.append(" (open)");
    }
    if (node.thread != 0) {
      std::snprintf(buf, sizeof(buf), " t%d", node.thread);
      out.append(buf);
    }
    if (!node.attrs.empty()) {
      out.append(" {");
      for (size_t i = 0; i < node.attrs.size(); ++i) {
        if (i > 0) out.append(", ");
        out.append(node.attrs[i].key);
        out.push_back('=');
        AppendAttrValueText(&out, node.attrs[i]);
      }
      out.push_back('}');
    }
    out.push_back('\n');
    const auto& kids = children[id];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

void TraceContext::SetClockForTest(std::function<int64_t()> now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_fn_ = std::move(now_ns);
}

}  // namespace assess
