#ifndef ASSESS_OBS_TRACE_H_
#define ASSESS_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace assess {

/// \brief Span-tree tracing: the per-query observability layer.
///
/// A TraceContext is one query's trace: a tree of timed spans, each with a
/// name, wall time, the thread that recorded it and typed attributes (rows
/// scanned, morsels skipped, cache outcome, plan kind, bytes on wire). The
/// tree serializes as JSON, as Chrome `trace_event` format (load the output
/// in chrome://tracing or Perfetto), and as an indented text tree (the
/// EXPLAIN ANALYZE rendering).
///
/// Instrumentation sites do not thread the context explicitly. A caller
/// installs a trace on its thread with TraceContext::Scope; every `Span`
/// opened underneath attaches to the thread-local current span:
///
///   TraceContext trace;
///   {
///     TraceContext::Scope scope(&trace);
///     auto result = session.Query(statement);   // spans land in `trace`
///   }
///   std::cout << trace.ToTreeString();
///
/// Crossing threads is explicit: capture TraceContext::CurrentBinding() on
/// the submitting thread and install it on the worker with BindScope (the
/// TaskPool does this per job), so pool-side spans parent correctly under
/// the caller's span. Span recording is mutex-protected inside the context;
/// a trace may be appended to from many threads at once.
///
/// Cost model: with no trace installed, a Span is one thread-local load and
/// a branch. With the CMake option ASSESS_TRACING=OFF every Span/Scope site
/// compiles out entirely (the classes stay so call sites build unchanged),
/// mirroring the failpoint design. The runtime knob is sampling: components
/// that auto-create traces (the assessd slow-query log) gate creation
/// through a deterministic TraceSampler.

/// \brief True when tracing sites are compiled in (ASSESS_TRACING=ON).
#ifdef ASSESS_TRACING_ENABLED
inline constexpr bool kTracingCompiledIn = true;
#else
inline constexpr bool kTracingCompiledIn = false;
#endif

/// \brief One typed span attribute.
struct TraceAttr {
  enum class Kind { kInt, kDouble, kString };
  std::string key;
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

/// \brief One recorded span. `duration_ns` is -1 while the span is open.
struct SpanNode {
  int32_t id = 0;
  int32_t parent = -1;
  std::string name;
  int32_t thread = 0;    ///< small per-trace thread index, 0 = first seen
  int64_t start_ns = 0;  ///< since the trace epoch
  int64_t duration_ns = -1;
  std::vector<TraceAttr> attrs;
};

class TraceContext;

namespace obs_internal {
/// Thread-local cursor: the trace (if any) installed on this thread and the
/// innermost open span. Reading it is the whole cost of an untraced Span.
struct ThreadTraceState {
  TraceContext* ctx = nullptr;
  int32_t span = -1;
};
inline thread_local ThreadTraceState g_trace_state;
}  // namespace obs_internal

/// \brief One query's span tree. Thread-safe for concurrent span recording;
/// create one per traced query and keep it alive until every thread that
/// might record into it has finished (the TaskPool guarantees this for scan
/// jobs: RunMorsels does not return while a worker is still draining).
class TraceContext {
 public:
  using SpanId = int32_t;
  static constexpr SpanId kNoSpan = -1;

  TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// \brief Opens a span. `parent` may be kNoSpan for a root.
  SpanId StartSpan(std::string_view name, SpanId parent);

  /// \brief Closes a span, fixing its duration.
  void EndSpan(SpanId id);

  void AddInt(SpanId id, std::string_view key, int64_t value);
  void AddDouble(SpanId id, std::string_view key, double value);
  void AddString(SpanId id, std::string_view key, std::string_view value);

  /// \brief Number of spans recorded so far.
  size_t span_count() const;

  /// \brief Point-in-time copy of all recorded spans.
  std::vector<SpanNode> Snapshot() const;

  /// \brief Sum of the durations of all *closed* spans named `name`,
  /// in seconds, restricted to the subtree under `root` when given.
  double SpanSeconds(std::string_view name, SpanId root = kNoSpan) const;

  /// \brief JSON rendering: {"trace":{"spans":[...]}}.
  std::string ToJson() const;

  /// \brief Chrome trace_event rendering ({"traceEvents":[...]}); open the
  /// output in chrome://tracing or Perfetto.
  std::string ToChromeTrace() const;

  /// \brief Indented text tree with millisecond durations and attributes
  /// (the EXPLAIN ANALYZE body).
  std::string ToTreeString() const;

  /// \brief Test hook: replaces the monotonic clock with `now_ns` so span
  /// times — and therefore the serialized forms — are deterministic.
  void SetClockForTest(std::function<int64_t()> now_ns);

  // -- thread-local plumbing ------------------------------------------------

  /// \brief A (context, parent span) pair capturable on one thread and
  /// installable on another, so cross-thread work parents correctly.
  struct Binding {
    TraceContext* ctx = nullptr;
    SpanId parent = kNoSpan;
  };

  /// \brief The trace installed on this thread, or nullptr.
  static TraceContext* Current() {
#ifdef ASSESS_TRACING_ENABLED
    return obs_internal::g_trace_state.ctx;
#else
    return nullptr;
#endif
  }

  /// \brief The innermost open span on this thread (kNoSpan when none).
  static SpanId CurrentSpan() {
#ifdef ASSESS_TRACING_ENABLED
    return obs_internal::g_trace_state.span;
#else
    return kNoSpan;
#endif
  }

  /// \brief Captures this thread's trace position for another thread.
  static Binding CurrentBinding() {
#ifdef ASSESS_TRACING_ENABLED
    return Binding{obs_internal::g_trace_state.ctx,
                   obs_internal::g_trace_state.span};
#else
    return Binding{};
#endif
  }

  /// \brief RAII: installs `ctx` as this thread's trace (spans root at the
  /// top level); restores the previous state on destruction.
  class Scope {
   public:
    explicit Scope(TraceContext* ctx) {
#ifdef ASSESS_TRACING_ENABLED
      prev_ = obs_internal::g_trace_state;
      obs_internal::g_trace_state = {ctx, kNoSpan};
#else
      (void)ctx;
#endif
    }
    ~Scope() {
#ifdef ASSESS_TRACING_ENABLED
      obs_internal::g_trace_state = prev_;
#endif
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
#ifdef ASSESS_TRACING_ENABLED
    obs_internal::ThreadTraceState prev_;
#endif
  };

  /// \brief RAII: installs a captured Binding on this thread (pool workers).
  /// A default-constructed binding is a no-op.
  class BindScope {
   public:
    explicit BindScope(const Binding& binding) {
#ifdef ASSESS_TRACING_ENABLED
      prev_ = obs_internal::g_trace_state;
      obs_internal::g_trace_state = {binding.ctx, binding.parent};
#else
      (void)binding;
#endif
    }
    ~BindScope() {
#ifdef ASSESS_TRACING_ENABLED
      obs_internal::g_trace_state = prev_;
#endif
    }
    BindScope(const BindScope&) = delete;
    BindScope& operator=(const BindScope&) = delete;

   private:
#ifdef ASSESS_TRACING_ENABLED
    obs_internal::ThreadTraceState prev_;
#endif
  };

 private:
  int64_t Now() const;
  int32_t ThreadIndexLocked();

  mutable std::mutex mutex_;
  std::vector<SpanNode> nodes_;
  std::unordered_map<std::thread::id, int32_t> thread_index_;
  std::function<int64_t()> now_fn_;  ///< test clock; empty = steady_clock
  std::chrono::steady_clock::time_point epoch_;
};

/// \brief RAII span scope. Records into the thread's current trace (no-op
/// when none is installed) and makes itself the current span for its
/// lifetime, so nested Spans become children automatically.
class Span {
 public:
  explicit Span(const char* name) {
#ifdef ASSESS_TRACING_ENABLED
    auto& state = obs_internal::g_trace_state;
    if (state.ctx == nullptr) return;
    ctx_ = state.ctx;
    prev_ = state.span;
    id_ = ctx_->StartSpan(name, prev_);
    state.span = id_;
#else
    (void)name;
#endif
  }

  ~Span() {
#ifdef ASSESS_TRACING_ENABLED
    if (ctx_ == nullptr) return;
    ctx_->EndSpan(id_);
    obs_internal::g_trace_state.span = prev_;
#endif
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void AddInt(const char* key, int64_t value) {
#ifdef ASSESS_TRACING_ENABLED
    if (ctx_ != nullptr) ctx_->AddInt(id_, key, value);
#else
    (void)key;
    (void)value;
#endif
  }
  void AddDouble(const char* key, double value) {
#ifdef ASSESS_TRACING_ENABLED
    if (ctx_ != nullptr) ctx_->AddDouble(id_, key, value);
#else
    (void)key;
    (void)value;
#endif
  }
  void AddString(const char* key, std::string_view value) {
#ifdef ASSESS_TRACING_ENABLED
    if (ctx_ != nullptr) ctx_->AddString(id_, key, value);
#else
    (void)key;
    (void)value;
#endif
  }

  bool active() const {
#ifdef ASSESS_TRACING_ENABLED
    return ctx_ != nullptr;
#else
    return false;
#endif
  }
  TraceContext* context() const {
#ifdef ASSESS_TRACING_ENABLED
    return ctx_;
#else
    return nullptr;
#endif
  }
  TraceContext::SpanId id() const {
#ifdef ASSESS_TRACING_ENABLED
    return id_;
#else
    return TraceContext::kNoSpan;
#endif
  }

 private:
#ifdef ASSESS_TRACING_ENABLED
  TraceContext* ctx_ = nullptr;
  TraceContext::SpanId id_ = TraceContext::kNoSpan;
  TraceContext::SpanId prev_ = TraceContext::kNoSpan;
#endif
};

/// \brief Deterministic trace sampler: the runtime cost knob for components
/// that auto-create traces. A fixed seed yields a fixed decision sequence,
/// so sampled workloads are reproducible (and testable) run over run.
class TraceSampler {
 public:
  /// `rate` in [0, 1]: 1 samples everything, 0 nothing.
  TraceSampler(double rate, uint64_t seed) : rate_(rate), rng_(seed) {}

  bool Sample() {
    if (rate_ >= 1.0) return true;
    if (rate_ <= 0.0) return false;
    return rng_.NextDouble() < rate_;
  }

 private:
  double rate_;
  Rng rng_;
};

}  // namespace assess

#endif  // ASSESS_OBS_TRACE_H_
