#ifndef ASSESS_OBS_WORKLOAD_PROFILER_H_
#define ASSESS_OBS_WORKLOAD_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/query_fingerprint.h"
#include "obs/metrics.h"
#include "olap/cube_schema.h"
#include "olap/group_by_set.h"

namespace assess {

/// \brief Workload intelligence: a process-wide profile of the queries a
/// server (or local session) actually executes, aggregated over the cube
/// lattice into a materialized-view advisor report.
///
/// Three layers:
///
///   - WorkloadProfiler: a sharded store keyed by the *epoch-less* canonical
///     query fingerprint (cache/query_fingerprint.h with epoch forced to 0,
///     so one logical query aggregates across ingest epochs). Per
///     fingerprint it records execution counts, latency / rows-scanned /
///     morsels-skipped histograms, cache outcomes and MQO piggyback counts,
///     plus the query's lattice node. Hot-path updates are relaxed atomics;
///     the shard mutex is held only for the map lookup and LRU bump.
///     Memory is bounded by an LRU cap with an explicit
///     `evicted_fingerprints` counter — eviction is visible, never silent.
///
///   - LatticeHeat: rolls per-fingerprint stats up the roll-up lattice of
///     one cube. A query's *candidate node* is the finest level it touches
///     per hierarchy (group-by or selection) — exactly the applicability
///     condition of storage/materialized_view.h, so a view materialized at
///     a candidate node is guaranteed to answer the queries that heated it.
///
///   - The greedy advisor (Harinarayan–Rajaraman–Ullman style lattice
///     selection over the observed candidate set): repeatedly picks the
///     node whose materialization saves the most scanned rows across the
///     profiled workload, charging later picks only the remaining benefit.
///     Surfaced as a *report* — top-N recommended MVs with estimated row
///     counts and expected scan savings — not as automatic materialization.
///
/// The profiler is independent of ASSESS_TRACING (it profiles identities
/// and counters, not spans); the `obs.profile` failpoint makes RecordQuery
/// drop samples so chaos tests can prove a broken profiler only moves the
/// dropped-samples counter, never a query result.

/// \brief How one profiled get was answered (mirrors the engine's
/// CacheOutcome without dragging storage/ headers into obs/).
enum class WorkloadOutcome {
  kBypass,          ///< result cache disabled for this engine
  kMiss,            ///< computed by scan (fact table or view)
  kExactHit,        ///< served from an identical cached result
  kSubsumptionHit,  ///< re-aggregated from a finer cached result
};

struct WorkloadProfilerOptions {
  /// Number of independent shards (map + LRU + mutex each). More shards
  /// mean less contention between concurrent sessions.
  int shards = 8;
  /// Process-wide fingerprint cap (split evenly across shards). The least
  /// recently touched fingerprint is evicted past it, and every eviction
  /// increments evicted_fingerprints().
  size_t max_fingerprints = 4096;
  /// Entries listed in the report, hottest first.
  int top_queries = 10;
  /// Lattice nodes listed in the report's heat section.
  int top_nodes = 8;
  /// Views the greedy advisor may recommend.
  int max_recommendations = 3;
};

/// \brief One fingerprint's aggregated profile, copied out of the store.
struct WorkloadEntrySnapshot {
  std::string cube;
  std::string display;  ///< canonical rendering, e.g. "SALES <month> {...}"
  std::string lattice;  ///< candidate node, e.g. "<date, country>"
  /// Candidate lattice node: per hierarchy, the finest level the query
  /// touches (group-by or predicate), -1 for ALL (hierarchy untouched).
  std::vector<int> node;
  uint64_t executions = 0;
  uint64_t exact_hits = 0;
  uint64_t subsumption_hits = 0;
  uint64_t misses = 0;
  uint64_t piggybacked = 0;  ///< answered by an MQO batch-mate's shared scan
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t rows_scanned = 0;     ///< total rows the scans touched
  uint64_t morsels_skipped = 0;  ///< total morsels zone maps pruned
};

/// \brief Aggregated heat of one candidate lattice node: the demand a view
/// materialized there could absorb.
struct LatticeHeatNode {
  std::string cube;
  std::string node;  ///< rendered, e.g. "<date, country>"
  std::vector<int> levels;
  uint64_t fingerprints = 0;  ///< distinct profiled queries it answers
  uint64_t executions = 0;    ///< their summed execution counts
  int64_t estimated_rows = 0; ///< product of level cardinalities, capped at
                              ///< the cube's fact rows
};

/// \brief One greedy recommendation: materialize `cube` at `level_names`.
struct MvRecommendation {
  std::string cube;
  std::string node;  ///< rendered node
  /// Level names of the node, directly consumable by
  /// StarQueryEngine::MaterializeView.
  std::vector<std::string> level_names;
  int64_t estimated_rows = 0;
  uint64_t queries_covered = 0;     ///< distinct fingerprints answered
  uint64_t executions_covered = 0;  ///< their summed execution counts
  /// Expected rows *not* scanned per profiled window: for each covered
  /// query, executions × (current answer cost − view rows), where cost is
  /// the fact table until an earlier recommendation already covers it.
  double expected_scan_savings = 0.0;
};

/// \brief The advisor report: profile totals, hottest fingerprints, lattice
/// heat, and the greedy view selection.
struct WorkloadReport {
  uint64_t fingerprints = 0;          ///< live entries across all shards
  uint64_t evicted_fingerprints = 0;  ///< LRU evictions so far
  uint64_t total_queries = 0;         ///< executions profiled (not evicted-
                                      ///< adjusted: counts every record)
  uint64_t piggybacked = 0;           ///< MQO piggybacks profiled
  uint64_t dropped_samples = 0;       ///< samples lost to obs.profile
  std::vector<WorkloadEntrySnapshot> top;
  std::vector<LatticeHeatNode> heat;
  std::vector<MvRecommendation> recommendations;

  /// \brief Multi-line human rendering (kWorkloadReply, `\workload`).
  std::string ToText() const;
  /// \brief JSON rendering (the HTTP /workload endpoint).
  std::string ToJson() const;
};

/// \brief The lattice aggregation + greedy scoring over one cube, exposed
/// separately so tests can oracle-check the roll-up on synthetic shapes.
class LatticeHeat {
 public:
  /// What the advisor needs to know about a cube, captured at record time
  /// so report building never touches the database.
  struct CubeShape {
    std::string cube;
    int64_t fact_rows = 0;
    /// level_names[h][l] / level_cardinality[h][l] for hierarchy h.
    std::vector<std::vector<std::string>> level_names;
    std::vector<std::vector<int64_t>> level_cardinality;
  };

  explicit LatticeHeat(CubeShape shape) : shape_(std::move(shape)) {}

  /// \brief Adds one profiled fingerprint whose candidate node is `node`
  /// (-1 = ALL per hierarchy), executed `executions` times.
  void Add(const std::vector<int>& node, uint64_t executions);

  /// \brief True when a view materialized at `view` answers a query whose
  /// candidate node is `query`: every hierarchy the query touches is
  /// present in the view at a finer-or-equal level (level 0 is finest).
  static bool Covers(const std::vector<int>& view,
                     const std::vector<int>& query);

  /// \brief Estimated rows of a view at `node`: the product of its level
  /// cardinalities, capped at the cube's fact rows.
  int64_t EstimatedRows(const std::vector<int>& node) const;

  /// \brief Renders a node as "<date, country>" from the shape's names.
  std::string Render(const std::vector<int>& node) const;

  /// \brief Level names of `node` (MaterializeView's input form).
  std::vector<std::string> LevelNames(const std::vector<int>& node) const;

  /// \brief The roll-up: every observed candidate node, with the
  /// fingerprints/executions of *all* observed queries it covers (its own
  /// plus every coarser query it could answer), hottest first.
  std::vector<LatticeHeatNode> Nodes() const;

  /// \brief Classic greedy lattice selection over the observed candidate
  /// set: picks up to `max_recommendations` nodes by descending remaining
  /// scan savings; stops early once no node saves anything.
  std::vector<MvRecommendation> Greedy(int max_recommendations) const;

  const CubeShape& shape() const { return shape_; }

 private:
  struct Observed {
    uint64_t fingerprints = 0;
    uint64_t executions = 0;
  };

  CubeShape shape_;
  std::map<std::vector<int>, Observed> observed_;  // ordered => deterministic
};

/// \brief The sharded profile store. Thread-safe; one instance is shared by
/// every session of a server (and by the MQO collector).
class WorkloadProfiler {
 public:
  explicit WorkloadProfiler(WorkloadProfilerOptions options = {});

  /// \brief The process-wide instance local (in-process) front-ends share.
  /// assessd servers own their instance instead, so tests hosting several
  /// servers in one process keep their profiles apart.
  static WorkloadProfiler& Process();

  /// Kill switch (--workload-profile=off): when disabled, RecordQuery and
  /// RecordPiggyback return immediately without touching the store.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief What RecordQuery tells the caller, for the EXPLAIN ANALYZE
  /// surface ("lattice node <d1, d2>, seen N× this window"). count == 0
  /// means the sample was not recorded (disabled or failpoint-dropped).
  struct Seen {
    uint64_t count = 0;
    std::string lattice;
  };

  /// \brief Records one executed get. `canon` is the canonicalized query
  /// (its epoch is ignored — the profile key is epoch-less); `fact_rows`
  /// is the cube's committed row count at execution time, feeding the
  /// advisor's cost model. Behind the `obs.profile` failpoint: a triggered
  /// site drops the sample into dropped_samples() and nothing else.
  Seen RecordQuery(const CubeSchema& schema, const CanonicalQuery& canon,
                   WorkloadOutcome outcome, double latency_ms,
                   uint64_t rows_scanned, uint64_t morsels_skipped,
                   int64_t fact_rows);

  /// \brief Records that one query was answered by an MQO batch-mate's
  /// shared scan instead of its own execution.
  void RecordPiggyback(const CubeSchema& schema, const CanonicalQuery& canon);

  uint64_t fingerprints() const;  ///< live entries across all shards
  uint64_t evicted_fingerprints() const {
    return evicted_.load(std::memory_order_relaxed);
  }
  uint64_t total_queries() const {
    return total_queries_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_samples() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// \brief Builds the full report: totals, hottest fingerprints, lattice
  /// heat and greedy recommendations, all from a point-in-time copy.
  WorkloadReport BuildReport() const;

  const WorkloadProfilerOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string cube;
    std::string display;
    std::string lattice;
    std::vector<int> node;
    std::atomic<uint64_t> executions{0};
    std::atomic<uint64_t> exact_hits{0};
    std::atomic<uint64_t> subsumption_hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> piggybacked{0};
    std::atomic<uint64_t> rows_scanned{0};
    std::atomic<uint64_t> morsels_skipped{0};
    Histogram latency_ms{Histogram::LatencyBoundsMs()};
    Histogram rows_hist{Histogram::ExponentialBounds(4096, 4.0, 12)};
    Histogram skip_hist{Histogram::ExponentialBounds(1, 4.0, 12)};
    std::list<std::string>::iterator lru;  // guarded by the shard mutex
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries;
    std::list<std::string> order;  // front = most recently touched
  };

  /// Finds or creates the entry for `key`, bumping its LRU position and
  /// evicting past the shard cap. The returned shared_ptr keeps the entry
  /// alive even if a concurrent insert evicts it mid-update.
  std::shared_ptr<Entry> Touch(const std::string& key,
                               const CubeSchema& schema,
                               const CanonicalQuery& canon);
  void RememberCube(const CubeSchema& schema, const std::string& cube,
                    int64_t fact_rows);

  WorkloadProfilerOptions options_;
  size_t shard_cap_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Cube shapes for the advisor, captured on first sight (cardinalities
  /// from the live schema; fact rows refreshed on every record).
  mutable std::mutex cube_mutex_;
  std::map<std::string, LatticeHeat::CubeShape> cubes_;

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> evicted_{0};
  std::atomic<uint64_t> total_queries_{0};
  std::atomic<uint64_t> total_piggybacked_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// \brief The candidate lattice node of one canonical query: per hierarchy,
/// the finest level touched by its group-by or predicates, -1 for ALL.
/// Matches RollupAnswersQuery's applicability condition, so a view at this
/// node always answers the query.
std::vector<int> CandidateNode(const CubeSchema& schema,
                               const CanonicalQuery& canon);

}  // namespace assess

#endif  // ASSESS_OBS_WORKLOAD_PROFILER_H_
