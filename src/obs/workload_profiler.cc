#include "obs/workload_profiler.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <functional>

#include "common/failpoint.h"

namespace assess {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string DisplayQuery(const CubeSchema& schema,
                         const CanonicalQuery& canon) {
  std::string out = canon.cube_name;
  out += " ";
  out += canon.group_by.ToString(schema);
  if (!canon.predicates.empty()) {
    out += " {";
    for (size_t i = 0; i < canon.predicates.size(); ++i) {
      if (i > 0) out += ", ";
      out += canon.predicates[i].ToString(schema);
    }
    out += "}";
  }
  return out;
}

}  // namespace

std::vector<int> CandidateNode(const CubeSchema& schema,
                               const CanonicalQuery& canon) {
  std::vector<int> node(schema.hierarchy_count(), -1);
  for (int h = 0; h < schema.hierarchy_count(); ++h) {
    if (canon.group_by.HasHierarchy(h)) node[h] = canon.group_by.LevelOf(h);
  }
  for (const Predicate& p : canon.predicates) {
    if (p.hierarchy < 0 || p.hierarchy >= schema.hierarchy_count()) continue;
    node[p.hierarchy] = node[p.hierarchy] < 0
                            ? p.level
                            : std::min(node[p.hierarchy], p.level);
  }
  return node;
}

// ---------------------------------------------------------------------------
// LatticeHeat
// ---------------------------------------------------------------------------

void LatticeHeat::Add(const std::vector<int>& node, uint64_t executions) {
  Observed& obs = observed_[node];
  obs.fingerprints += 1;
  obs.executions += executions;
}

bool LatticeHeat::Covers(const std::vector<int>& view,
                         const std::vector<int>& query) {
  if (view.size() != query.size()) return false;
  for (size_t h = 0; h < query.size(); ++h) {
    if (query[h] < 0) continue;  // ALL: any view level aggregates to it
    if (view[h] < 0 || view[h] > query[h]) return false;
  }
  return true;
}

int64_t LatticeHeat::EstimatedRows(const std::vector<int>& node) const {
  // Product of level cardinalities over present hierarchies — the classic
  // independence estimate — capped at the fact rows (a view can never hold
  // more rows than the table it aggregates).
  int64_t rows = 1;
  for (size_t h = 0; h < node.size(); ++h) {
    if (node[h] < 0) continue;
    if (h >= shape_.level_cardinality.size() ||
        node[h] >= static_cast<int>(shape_.level_cardinality[h].size())) {
      continue;
    }
    int64_t card = std::max<int64_t>(1, shape_.level_cardinality[h][node[h]]);
    if (shape_.fact_rows > 0 && rows > shape_.fact_rows / card) {
      return shape_.fact_rows;  // overflow-safe cap
    }
    rows *= card;
  }
  if (shape_.fact_rows > 0) rows = std::min(rows, shape_.fact_rows);
  return rows;
}

std::string LatticeHeat::Render(const std::vector<int>& node) const {
  std::string out = "<";
  bool first = true;
  for (size_t h = 0; h < node.size(); ++h) {
    if (node[h] < 0) continue;
    if (!first) out += ", ";
    first = false;
    if (h < shape_.level_names.size() &&
        node[h] < static_cast<int>(shape_.level_names[h].size())) {
      out += shape_.level_names[h][node[h]];
    } else {
      AppendF(&out, "h%zu:l%d", h, node[h]);
    }
  }
  out += ">";
  return out;
}

std::vector<std::string> LatticeHeat::LevelNames(
    const std::vector<int>& node) const {
  std::vector<std::string> names;
  for (size_t h = 0; h < node.size(); ++h) {
    if (node[h] < 0) continue;
    if (h < shape_.level_names.size() &&
        node[h] < static_cast<int>(shape_.level_names[h].size())) {
      names.push_back(shape_.level_names[h][node[h]]);
    }
  }
  return names;
}

std::vector<LatticeHeatNode> LatticeHeat::Nodes() const {
  std::vector<LatticeHeatNode> out;
  out.reserve(observed_.size());
  for (const auto& [node, self] : observed_) {
    LatticeHeatNode heat;
    heat.cube = shape_.cube;
    heat.node = Render(node);
    heat.levels = node;
    heat.estimated_rows = EstimatedRows(node);
    // The roll-up: this node absorbs every observed query it covers — its
    // own plus all coarser ones a view here could answer.
    for (const auto& [other, obs] : observed_) {
      if (!Covers(node, other)) continue;
      heat.fingerprints += obs.fingerprints;
      heat.executions += obs.executions;
    }
    out.push_back(std::move(heat));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const LatticeHeatNode& a, const LatticeHeatNode& b) {
                     if (a.executions != b.executions) {
                       return a.executions > b.executions;
                     }
                     return a.estimated_rows < b.estimated_rows;
                   });
  return out;
}

std::vector<MvRecommendation> LatticeHeat::Greedy(
    int max_recommendations) const {
  std::vector<MvRecommendation> out;
  if (shape_.fact_rows <= 0 || observed_.empty()) return out;

  // Cost of answering each observed query right now: the fact table, until
  // a selected view covers it.
  struct QueryDemand {
    const std::vector<int>* node;
    uint64_t fingerprints;
    uint64_t executions;
    double cost;
  };
  std::vector<QueryDemand> demand;
  demand.reserve(observed_.size());
  for (const auto& [node, obs] : observed_) {
    demand.push_back(QueryDemand{&node, obs.fingerprints, obs.executions,
                                 static_cast<double>(shape_.fact_rows)});
  }

  std::vector<const std::vector<int>*> chosen;
  for (int round = 0; round < max_recommendations; ++round) {
    const std::vector<int>* best = nullptr;
    double best_benefit = 0.0;
    MvRecommendation best_rec;
    for (const auto& [candidate, obs] : observed_) {
      bool already = false;
      for (const std::vector<int>* c : chosen) {
        if (*c == candidate) already = true;
      }
      if (already) continue;
      const double view_rows =
          static_cast<double>(EstimatedRows(candidate));
      double benefit = 0.0;
      uint64_t queries = 0;
      uint64_t executions = 0;
      for (const QueryDemand& q : demand) {
        if (!Covers(candidate, *q.node)) continue;
        queries += q.fingerprints;
        executions += q.executions;
        if (q.cost > view_rows) {
          benefit += static_cast<double>(q.executions) * (q.cost - view_rows);
        }
      }
      if (best == nullptr || benefit > best_benefit) {
        best = &candidate;
        best_benefit = benefit;
        best_rec.cube = shape_.cube;
        best_rec.node = Render(candidate);
        best_rec.level_names = LevelNames(candidate);
        best_rec.estimated_rows = static_cast<int64_t>(view_rows);
        best_rec.queries_covered = queries;
        best_rec.executions_covered = executions;
        best_rec.expected_scan_savings = benefit;
      }
    }
    // A pick that saves nothing ends the selection: every remaining node is
    // at least as expensive as what already answers its queries.
    if (best == nullptr || best_benefit <= 0.0) break;
    chosen.push_back(best);
    out.push_back(std::move(best_rec));
    const double view_rows =
        static_cast<double>(EstimatedRows(*best));
    for (QueryDemand& q : demand) {
      if (Covers(*best, *q.node)) q.cost = std::min(q.cost, view_rows);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// WorkloadProfiler
// ---------------------------------------------------------------------------

WorkloadProfiler::WorkloadProfiler(WorkloadProfilerOptions options)
    : options_(options) {
  options_.shards = std::max(1, options_.shards);
  options_.max_fingerprints = std::max<size_t>(
      options_.max_fingerprints, static_cast<size_t>(options_.shards));
  shard_cap_ = options_.max_fingerprints / options_.shards;
  shards_.reserve(options_.shards);
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

WorkloadProfiler& WorkloadProfiler::Process() {
  static WorkloadProfiler* instance = new WorkloadProfiler();
  return *instance;
}

void WorkloadProfiler::RememberCube(const CubeSchema& schema,
                                    const std::string& cube,
                                    int64_t fact_rows) {
  std::lock_guard<std::mutex> lock(cube_mutex_);
  auto [it, fresh] = cubes_.try_emplace(cube);
  if (fresh) {
    it->second.cube = cube;
    it->second.level_names.resize(schema.hierarchy_count());
    it->second.level_cardinality.resize(schema.hierarchy_count());
    for (int h = 0; h < schema.hierarchy_count(); ++h) {
      const Hierarchy& hier = schema.hierarchy(h);
      for (int l = 0; l < hier.level_count(); ++l) {
        it->second.level_names[h].push_back(hier.level_name(l));
        it->second.level_cardinality[h].push_back(hier.LevelCardinality(l));
      }
    }
  }
  if (fact_rows > 0) it->second.fact_rows = fact_rows;
}

std::shared_ptr<WorkloadProfiler::Entry> WorkloadProfiler::Touch(
    const std::string& key, const CubeSchema& schema,
    const CanonicalQuery& canon) {
  Shard& shard =
      *shards_[std::hash<std::string>{}(key) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // LRU bump: splice is O(1) and invalidates nothing.
    shard.order.splice(shard.order.begin(), shard.order, it->second->lru);
    return it->second;
  }
  auto entry = std::make_shared<Entry>();
  entry->cube = canon.cube_name;
  entry->display = DisplayQuery(schema, canon);
  entry->node = CandidateNode(schema, canon);
  {
    std::string lattice = "<";
    bool first = true;
    for (int h = 0; h < schema.hierarchy_count(); ++h) {
      if (entry->node[h] < 0) continue;
      if (!first) lattice += ", ";
      first = false;
      lattice += schema.hierarchy(h).level_name(entry->node[h]);
    }
    lattice += ">";
    entry->lattice = std::move(lattice);
  }
  shard.order.push_front(key);
  entry->lru = shard.order.begin();
  shard.entries.emplace(key, entry);
  while (shard.entries.size() > shard_cap_ && shard.order.size() > 1) {
    const std::string& victim = shard.order.back();
    shard.entries.erase(victim);
    shard.order.pop_back();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

WorkloadProfiler::Seen WorkloadProfiler::RecordQuery(
    const CubeSchema& schema, const CanonicalQuery& canon,
    WorkloadOutcome outcome, double latency_ms, uint64_t rows_scanned,
    uint64_t morsels_skipped, int64_t fact_rows) {
  Seen seen;
  if (!enabled()) return seen;
  // Chaos site: a "failing" profiler drops the sample and moves a counter —
  // it can never fail the query that was being profiled.
  if (ASSESS_FAILPOINT_TRIGGERED("obs.profile")) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return seen;
  }
  CanonicalQuery keyed = canon;
  keyed.epoch = 0;  // epoch-less: one profile row per logical query
  const std::string key = FingerprintKey(keyed);
  std::shared_ptr<Entry> entry = Touch(key, schema, keyed);
  seen.count = entry->executions.fetch_add(1, std::memory_order_relaxed) + 1;
  seen.lattice = entry->lattice;
  switch (outcome) {
    case WorkloadOutcome::kExactHit:
      entry->exact_hits.fetch_add(1, std::memory_order_relaxed);
      break;
    case WorkloadOutcome::kSubsumptionHit:
      entry->subsumption_hits.fetch_add(1, std::memory_order_relaxed);
      break;
    case WorkloadOutcome::kMiss:
    case WorkloadOutcome::kBypass:
      entry->misses.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  entry->rows_scanned.fetch_add(rows_scanned, std::memory_order_relaxed);
  entry->morsels_skipped.fetch_add(morsels_skipped,
                                   std::memory_order_relaxed);
  entry->latency_ms.Observe(latency_ms);
  entry->rows_hist.Observe(static_cast<double>(rows_scanned));
  entry->skip_hist.Observe(static_cast<double>(morsels_skipped));
  total_queries_.fetch_add(1, std::memory_order_relaxed);
  RememberCube(schema, canon.cube_name, fact_rows);
  return seen;
}

void WorkloadProfiler::RecordPiggyback(const CubeSchema& schema,
                                       const CanonicalQuery& canon) {
  if (!enabled()) return;
  if (ASSESS_FAILPOINT_TRIGGERED("obs.profile")) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  CanonicalQuery keyed = canon;
  keyed.epoch = 0;
  const std::string key = FingerprintKey(keyed);
  std::shared_ptr<Entry> entry = Touch(key, schema, keyed);
  entry->piggybacked.fetch_add(1, std::memory_order_relaxed);
  total_piggybacked_.fetch_add(1, std::memory_order_relaxed);
  RememberCube(schema, canon.cube_name, /*fact_rows=*/0);
}

uint64_t WorkloadProfiler::fingerprints() const {
  uint64_t live = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    live += shard->entries.size();
  }
  return live;
}

WorkloadReport WorkloadProfiler::BuildReport() const {
  WorkloadReport report;
  report.evicted_fingerprints = evicted_fingerprints();
  report.total_queries = total_queries();
  report.piggybacked = total_piggybacked_.load(std::memory_order_relaxed);
  report.dropped_samples = dropped_samples();

  std::vector<WorkloadEntrySnapshot> all;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, entry] : shard->entries) {
      WorkloadEntrySnapshot snap;
      snap.cube = entry->cube;
      snap.display = entry->display;
      snap.lattice = entry->lattice;
      snap.node = entry->node;
      snap.executions = entry->executions.load(std::memory_order_relaxed);
      snap.exact_hits = entry->exact_hits.load(std::memory_order_relaxed);
      snap.subsumption_hits =
          entry->subsumption_hits.load(std::memory_order_relaxed);
      snap.misses = entry->misses.load(std::memory_order_relaxed);
      snap.piggybacked = entry->piggybacked.load(std::memory_order_relaxed);
      snap.p50_ms = entry->latency_ms.Quantile(0.50);
      snap.p99_ms = entry->latency_ms.Quantile(0.99);
      snap.rows_scanned = entry->rows_scanned.load(std::memory_order_relaxed);
      snap.morsels_skipped =
          entry->morsels_skipped.load(std::memory_order_relaxed);
      all.push_back(std::move(snap));
    }
  }
  report.fingerprints = all.size();

  // Deterministic order: hottest first, display text as the tiebreak.
  std::sort(all.begin(), all.end(),
            [](const WorkloadEntrySnapshot& a,
               const WorkloadEntrySnapshot& b) {
              if (a.executions != b.executions) {
                return a.executions > b.executions;
              }
              return a.display < b.display;
            });

  // Lattice heat + greedy advisor per cube.
  std::map<std::string, LatticeHeat::CubeShape> shapes;
  {
    std::lock_guard<std::mutex> lock(cube_mutex_);
    shapes = cubes_;
  }
  std::map<std::string, LatticeHeat> heats;
  for (const auto& [cube, shape] : shapes) {
    heats.emplace(cube, LatticeHeat(shape));
  }
  for (const WorkloadEntrySnapshot& snap : all) {
    auto it = heats.find(snap.cube);
    if (it == heats.end()) continue;
    // Demand weight = executions + piggybacks: a piggybacked query's scan
    // was someone else's, but its demand on the lattice node is real.
    it->second.Add(snap.node, snap.executions + snap.piggybacked);
  }
  for (const auto& [cube, heat] : heats) {
    std::vector<LatticeHeatNode> nodes = heat.Nodes();
    report.heat.insert(report.heat.end(), nodes.begin(), nodes.end());
    std::vector<MvRecommendation> recs =
        heat.Greedy(options_.max_recommendations);
    report.recommendations.insert(report.recommendations.end(), recs.begin(),
                                  recs.end());
  }
  std::stable_sort(report.heat.begin(), report.heat.end(),
                   [](const LatticeHeatNode& a, const LatticeHeatNode& b) {
                     return a.executions > b.executions;
                   });
  if (static_cast<int>(report.heat.size()) > options_.top_nodes) {
    report.heat.resize(options_.top_nodes);
  }
  std::stable_sort(
      report.recommendations.begin(), report.recommendations.end(),
      [](const MvRecommendation& a, const MvRecommendation& b) {
        return a.expected_scan_savings > b.expected_scan_savings;
      });
  if (static_cast<int>(report.recommendations.size()) >
      options_.max_recommendations) {
    report.recommendations.resize(options_.max_recommendations);
  }

  if (static_cast<int>(all.size()) > options_.top_queries) {
    all.resize(options_.top_queries);
  }
  report.top = std::move(all);
  return report;
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

std::string WorkloadReport::ToText() const {
  std::string out;
  AppendF(&out,
          "workload profile: %llu fingerprints live, %llu evicted; "
          "%llu queries profiled, %llu piggybacked, %llu samples dropped\n",
          static_cast<unsigned long long>(fingerprints),
          static_cast<unsigned long long>(evicted_fingerprints),
          static_cast<unsigned long long>(total_queries),
          static_cast<unsigned long long>(piggybacked),
          static_cast<unsigned long long>(dropped_samples));
  if (top.empty()) {
    out += "(no queries profiled yet)\n";
    return out;
  }
  out += "top queries:\n";
  for (const WorkloadEntrySnapshot& e : top) {
    AppendF(&out,
            "  %6llux  %s  lattice %s  p50 %.3f ms  p99 %.3f ms  "
            "%llu exact / %llu subsumed / %llu miss / %llu piggybacked\n",
            static_cast<unsigned long long>(e.executions), e.display.c_str(),
            e.lattice.c_str(), e.p50_ms, e.p99_ms,
            static_cast<unsigned long long>(e.exact_hits),
            static_cast<unsigned long long>(e.subsumption_hits),
            static_cast<unsigned long long>(e.misses),
            static_cast<unsigned long long>(e.piggybacked));
  }
  if (!heat.empty()) {
    out += "lattice heat (demand answerable per candidate node):\n";
    for (const LatticeHeatNode& n : heat) {
      AppendF(&out,
              "  %s %s  ~%lld rows  %llu fingerprints  %llu executions\n",
              n.cube.c_str(), n.node.c_str(),
              static_cast<long long>(n.estimated_rows),
              static_cast<unsigned long long>(n.fingerprints),
              static_cast<unsigned long long>(n.executions));
    }
  }
  if (recommendations.empty()) {
    out += "recommended views: none (no materialization would save scans)\n";
  } else {
    out += "recommended views (greedy lattice selection):\n";
    for (size_t i = 0; i < recommendations.size(); ++i) {
      const MvRecommendation& r = recommendations[i];
      AppendF(&out,
              "  %zu. %s at %s: ~%lld rows, covers %llu queries "
              "(%llu executions), saves ~%.3g scanned rows\n",
              i + 1, r.cube.c_str(), r.node.c_str(),
              static_cast<long long>(r.estimated_rows),
              static_cast<unsigned long long>(r.queries_covered),
              static_cast<unsigned long long>(r.executions_covered),
              r.expected_scan_savings);
    }
  }
  return out;
}

std::string WorkloadReport::ToJson() const {
  std::string out = "{";
  AppendF(&out,
          "\"fingerprints\": %llu, \"evicted_fingerprints\": %llu, "
          "\"total_queries\": %llu, \"piggybacked\": %llu, "
          "\"dropped_samples\": %llu, \"top\": [",
          static_cast<unsigned long long>(fingerprints),
          static_cast<unsigned long long>(evicted_fingerprints),
          static_cast<unsigned long long>(total_queries),
          static_cast<unsigned long long>(piggybacked),
          static_cast<unsigned long long>(dropped_samples));
  for (size_t i = 0; i < top.size(); ++i) {
    const WorkloadEntrySnapshot& e = top[i];
    if (i > 0) out += ", ";
    AppendF(&out,
            "{\"cube\": \"%s\", \"query\": \"%s\", \"lattice\": \"%s\", "
            "\"executions\": %llu, \"exact_hits\": %llu, "
            "\"subsumption_hits\": %llu, \"misses\": %llu, "
            "\"piggybacked\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"rows_scanned\": %llu, \"morsels_skipped\": %llu}",
            JsonEscape(e.cube).c_str(), JsonEscape(e.display).c_str(),
            JsonEscape(e.lattice).c_str(),
            static_cast<unsigned long long>(e.executions),
            static_cast<unsigned long long>(e.exact_hits),
            static_cast<unsigned long long>(e.subsumption_hits),
            static_cast<unsigned long long>(e.misses),
            static_cast<unsigned long long>(e.piggybacked), e.p50_ms,
            e.p99_ms, static_cast<unsigned long long>(e.rows_scanned),
            static_cast<unsigned long long>(e.morsels_skipped));
  }
  out += "], \"lattice_heat\": [";
  for (size_t i = 0; i < heat.size(); ++i) {
    const LatticeHeatNode& n = heat[i];
    if (i > 0) out += ", ";
    AppendF(&out,
            "{\"cube\": \"%s\", \"node\": \"%s\", \"fingerprints\": %llu, "
            "\"executions\": %llu, \"estimated_rows\": %lld}",
            JsonEscape(n.cube).c_str(), JsonEscape(n.node).c_str(),
            static_cast<unsigned long long>(n.fingerprints),
            static_cast<unsigned long long>(n.executions),
            static_cast<long long>(n.estimated_rows));
  }
  out += "], \"recommendations\": [";
  for (size_t i = 0; i < recommendations.size(); ++i) {
    const MvRecommendation& r = recommendations[i];
    if (i > 0) out += ", ";
    AppendF(&out,
            "{\"cube\": \"%s\", \"node\": \"%s\", \"levels\": [",
            JsonEscape(r.cube).c_str(), JsonEscape(r.node).c_str());
    for (size_t l = 0; l < r.level_names.size(); ++l) {
      if (l > 0) out += ", ";
      AppendF(&out, "\"%s\"", JsonEscape(r.level_names[l]).c_str());
    }
    AppendF(&out,
            "], \"estimated_rows\": %lld, \"queries_covered\": %llu, "
            "\"executions_covered\": %llu, "
            "\"expected_scan_savings\": %.1f}",
            static_cast<long long>(r.estimated_rows),
            static_cast<unsigned long long>(r.queries_covered),
            static_cast<unsigned long long>(r.executions_covered),
            r.expected_scan_savings);
  }
  out += "]}";
  return out;
}

}  // namespace assess
