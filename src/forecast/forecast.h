#ifndef ASSESS_FORECAST_FORECAST_H_
#define ASSESS_FORECAST_FORECAST_H_

#include <span>
#include <string>

#include "common/result.h"

namespace assess {

/// \brief Forecasting methods for past benchmarks (Section 3.1): the
/// benchmark cube carries the value "predicted based on a number of past
/// time slices" for each cell.
enum class ForecastMethod {
  kLinearRegression,      ///< OLS on (t=1..k), predict t=k+1 (the default,
                          ///< matching the paper's regression transform)
  kMovingAverage,         ///< mean of the k past values
  kExponentialSmoothing,  ///< simple exponential smoothing, alpha = 0.5
};

Result<ForecastMethod> ForecastMethodFromString(std::string_view name);
std::string_view ForecastMethodToString(ForecastMethod method);

/// \brief Fits ordinary least squares y = a + b·t over t = 1..n on `series`
/// and returns the prediction at t = n+1. Null entries are skipped (their
/// time index is kept, so gaps do not distort the slope). Returns null when
/// fewer than one point exists.
double LinearRegressionNext(std::span<const double> series);

/// \brief Mean of the non-null entries of `series` (null when all null).
double MovingAverageNext(std::span<const double> series);

/// \brief Simple exponential smoothing over the non-null entries; the
/// smoothed statistic after the last observation is the one-step forecast.
double ExponentialSmoothingNext(std::span<const double> series, double alpha);

/// \brief Dispatches on `method`.
double ForecastNext(ForecastMethod method, std::span<const double> series);

}  // namespace assess

#endif  // ASSESS_FORECAST_FORECAST_H_
