#include "forecast/forecast.h"

#include "common/str_util.h"
#include "olap/cube.h"

namespace assess {

Result<ForecastMethod> ForecastMethodFromString(std::string_view name) {
  if (EqualsIgnoreCase(name, "regression") ||
      EqualsIgnoreCase(name, "linear_regression")) {
    return ForecastMethod::kLinearRegression;
  }
  if (EqualsIgnoreCase(name, "moving_average")) {
    return ForecastMethod::kMovingAverage;
  }
  if (EqualsIgnoreCase(name, "exponential_smoothing")) {
    return ForecastMethod::kExponentialSmoothing;
  }
  return Status::NotFound("no forecast method '" + std::string(name) + "'");
}

std::string_view ForecastMethodToString(ForecastMethod method) {
  switch (method) {
    case ForecastMethod::kLinearRegression:
      return "regression";
    case ForecastMethod::kMovingAverage:
      return "moving_average";
    case ForecastMethod::kExponentialSmoothing:
      return "exponential_smoothing";
  }
  return "?";
}

double LinearRegressionNext(std::span<const double> series) {
  // OLS with x = 1..n (null entries keep their slot in time but do not
  // contribute to the fit).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int64_t n = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    double y = series[i];
    if (IsNullMeasure(y)) continue;
    double x = static_cast<double>(i + 1);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n == 0) return kNullMeasure;
  if (n == 1) return sy;  // a constant is the best one-point fit
  double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return sy / static_cast<double>(n);
  double b = (static_cast<double>(n) * sxy - sx * sy) / denom;
  double a = (sy - b * sx) / static_cast<double>(n);
  return a + b * static_cast<double>(series.size() + 1);
}

double MovingAverageNext(std::span<const double> series) {
  double sum = 0.0;
  int64_t n = 0;
  for (double v : series) {
    if (IsNullMeasure(v)) continue;
    sum += v;
    ++n;
  }
  return n == 0 ? kNullMeasure : sum / static_cast<double>(n);
}

double ExponentialSmoothingNext(std::span<const double> series, double alpha) {
  double level = kNullMeasure;
  for (double v : series) {
    if (IsNullMeasure(v)) continue;
    level = IsNullMeasure(level) ? v : alpha * v + (1.0 - alpha) * level;
  }
  return level;
}

double ForecastNext(ForecastMethod method, std::span<const double> series) {
  switch (method) {
    case ForecastMethod::kLinearRegression:
      return LinearRegressionNext(series);
    case ForecastMethod::kMovingAverage:
      return MovingAverageNext(series);
    case ForecastMethod::kExponentialSmoothing:
      return ExponentialSmoothingNext(series, 0.5);
  }
  return kNullMeasure;
}

}  // namespace assess
