#include "ingest/row_codec.h"

#include <cstdlib>

namespace assess {

Status SplitCsvLine(std::string_view line, std::vector<std::string>* out) {
  out->clear();
  std::string field;
  size_t i = 0;
  const size_t n = line.size();
  while (true) {
    field.clear();
    if (i < n && line[i] == '"') {
      ++i;  // opening quote
      bool closed = false;
      while (i < n) {
        char c = line[i];
        if (c == '"') {
          if (i + 1 < n && line[i + 1] == '"') {
            field.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        field.push_back(c);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated quoted CSV field");
      }
      if (i < n && line[i] != ',') {
        return Status::InvalidArgument(
            "unexpected text after closing quote in CSV field");
      }
    } else {
      while (i < n && line[i] != ',') {
        field.push_back(line[i]);
        ++i;
      }
    }
    out->push_back(field);
    if (i >= n) return Status::OK();
    ++i;  // the comma
  }
}

namespace {

void SkipSpace(std::string_view s, size_t* i) {
  while (*i < s.size() &&
         (s[*i] == ' ' || s[*i] == '\t' || s[*i] == '\r')) {
    ++*i;
  }
}

Status ParseJsonString(std::string_view s, size_t* i, std::string* out) {
  out->clear();
  if (*i >= s.size() || s[*i] != '"') {
    return Status::InvalidArgument("expected '\"' in JSONL object");
  }
  ++*i;
  while (*i < s.size()) {
    char c = s[*i];
    if (c == '"') {
      ++*i;
      return Status::OK();
    }
    if (c == '\\') {
      ++*i;
      if (*i >= s.size()) break;
      switch (s[*i]) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u':
          return Status::InvalidArgument(
              "\\u escapes are not supported in ingest JSONL");
        default:
          return Status::InvalidArgument("bad JSON string escape");
      }
      ++*i;
      continue;
    }
    out->push_back(c);
    ++*i;
  }
  return Status::InvalidArgument("unterminated JSON string");
}

// A bare scalar: number / true / false / null, returned as literal text
// (null as ""). Consumes up to the next ',' / '}' / whitespace.
Status ParseJsonScalar(std::string_view s, size_t* i, std::string* out) {
  out->clear();
  const size_t start = *i;
  while (*i < s.size()) {
    char c = s[*i];
    if (c == ',' || c == '}' || c == ' ' || c == '\t' || c == '\r') break;
    if (c == '{' || c == '[') {
      return Status::InvalidArgument(
          "nested objects/arrays are not supported in ingest JSONL");
    }
    out->push_back(c);
    ++*i;
  }
  if (*i == start) {
    return Status::InvalidArgument("expected a JSON value");
  }
  if (*out == "null") out->clear();
  return Status::OK();
}

}  // namespace

Status ParseJsonlObject(
    std::string_view line,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  size_t i = 0;
  SkipSpace(line, &i);
  if (i >= line.size() || line[i] != '{') {
    return Status::InvalidArgument("JSONL line must be a JSON object");
  }
  ++i;
  SkipSpace(line, &i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      std::string key, value;
      ASSESS_RETURN_NOT_OK(ParseJsonString(line, &i, &key));
      SkipSpace(line, &i);
      if (i >= line.size() || line[i] != ':') {
        return Status::InvalidArgument("expected ':' in JSONL object");
      }
      ++i;
      SkipSpace(line, &i);
      if (i < line.size() && line[i] == '"') {
        ASSESS_RETURN_NOT_OK(ParseJsonString(line, &i, &value));
      } else {
        ASSESS_RETURN_NOT_OK(ParseJsonScalar(line, &i, &value));
      }
      out->emplace_back(std::move(key), std::move(value));
      SkipSpace(line, &i);
      if (i >= line.size()) {
        return Status::InvalidArgument("unterminated JSONL object");
      }
      if (line[i] == ',') {
        ++i;
        SkipSpace(line, &i);
        continue;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      return Status::InvalidArgument("expected ',' or '}' in JSONL object");
    }
  }
  SkipSpace(line, &i);
  if (i != line.size()) {
    return Status::InvalidArgument("trailing text after JSONL object");
  }
  return Status::OK();
}

Result<double> ParseMeasureValue(std::string_view field) {
  if (field.empty()) {
    return Status::InvalidArgument("empty measure value");
  }
  // strtod needs a terminated buffer; measure fields are short.
  std::string buf(field);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

}  // namespace assess
