#ifndef ASSESS_INGEST_ROW_CODEC_H_
#define ASSESS_INGEST_ROW_CODEC_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace assess {

/// \brief Splits one CSV record into fields. Supports RFC-4180 quoting:
/// a field may be enclosed in double quotes, inside which commas and
/// newlines-free text pass through and `""` encodes one quote. Errors are
/// kInvalidArgument (unterminated quote, text after a closing quote).
Status SplitCsvLine(std::string_view line, std::vector<std::string>* out);

/// \brief Parses one line of JSONL into (key, value) pairs. The object must
/// be flat: values are strings, numbers, booleans or null; nested objects
/// and arrays are rejected (kInvalidArgument). Numbers and booleans are
/// returned as their literal text; null becomes the empty string. String
/// escapes \" \\ \/ \b \f \n \r \t are decoded; \uXXXX is rejected.
Status ParseJsonlObject(std::string_view line,
                        std::vector<std::pair<std::string, std::string>>* out);

/// \brief Strict double parser for measure fields: the entire field must be
/// a number (kInvalidArgument otherwise, with the offending text).
Result<double> ParseMeasureValue(std::string_view field);

}  // namespace assess

#endif  // ASSESS_INGEST_ROW_CODEC_H_
