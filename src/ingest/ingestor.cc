#include "ingest/ingestor.h"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <numeric>
#include <shared_mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "ingest/row_codec.h"
#include "obs/metrics.h"
#include "olap/cube.h"
#include "storage/star_query_engine.h"

namespace assess {

namespace {

Counter& IngestRowsTotal() {
  static Counter* c = MetricsRegistry::Instance().GetCounter(
      "assess_ingest_rows_total", "Fact rows committed by streaming ingest");
  return *c;
}

Counter& IngestBatchesTotal() {
  static Counter* c = MetricsRegistry::Instance().GetCounter(
      "assess_ingest_batches_total",
      "Atomic fact-table batches committed by streaming ingest");
  return *c;
}

/// What one input column (CSV header cell / JSONL key) feeds.
struct ColumnBinding {
  enum Kind { kDimLevel, kMeasure };
  Kind kind = kDimLevel;
  int hierarchy = -1;
  int level = -1;
  int measure = -1;
};

/// Merges a delta aggregation (the appended rows, grouped at the view's
/// group-by set) into a copy of the view's cube: matching coordinates
/// combine per the schema operator, new coordinates append. The index is
/// built over the *old* cube only — delta coordinates are unique within the
/// delta (it is itself grouped), so appended rows never need indexing.
Result<Cube> MergeViewDelta(const CubeSchema& schema,
                            const MaterializedView& view, const Cube& delta) {
  Cube merged = view.data;
  const int64_t delta_rows = delta.NumRows();
  if (delta_rows == 0) return merged;

  const int levels = merged.level_count();
  const int num_measures = merged.measure_count();
  std::vector<AggOp> ops(num_measures);
  std::vector<int> delta_col(num_measures);
  for (int i = 0; i < num_measures; ++i) {
    ASSESS_ASSIGN_OR_RETURN(int mi,
                            schema.MeasureIndex(merged.measure_name(i)));
    ops[i] = schema.measure(mi).op;
    ASSESS_ASSIGN_OR_RETURN(delta_col[i],
                            delta.MeasureIndex(merged.measure_name(i)));
  }
  for (int l = 0; l < levels; ++l) {
    if (delta.level_count() <= l ||
        delta.level(l).name() != merged.level(l).name()) {
      return Status::Internal(
          "delta aggregation axes do not match materialized view '" +
          view.name + "'");
    }
  }

  std::vector<int> keys(levels);
  std::iota(keys.begin(), keys.end(), 0);
  CoordinateIndex index(view.data, keys);
  std::vector<MemberId> coords(levels);
  std::vector<double> measures(num_measures);
  for (int64_t r = 0; r < delta_rows; ++r) {
    const std::vector<int32_t>& rows = index.Lookup(delta, keys, r);
    if (!rows.empty()) {
      const int64_t row = rows[0];
      for (int i = 0; i < num_measures; ++i) {
        const double d = delta.MeasureAt(r, delta_col[i]);
        const double old = merged.MeasureAt(row, i);
        double v = 0;
        switch (ops[i]) {
          case AggOp::kSum:
          case AggOp::kCount:
            v = old + d;
            break;
          case AggOp::kMin:
            v = std::min(old, d);
            break;
          case AggOp::kMax:
            v = std::max(old, d);
            break;
          case AggOp::kAvg:
            return Status::Internal(
                "avg measures cannot be delta-merged (caller must rebuild)");
        }
        merged.SetMeasure(row, i, v);
      }
    } else {
      for (int l = 0; l < levels; ++l) coords[l] = delta.CoordAt(r, l);
      for (int i = 0; i < num_measures; ++i) {
        measures[i] = delta.MeasureAt(r, delta_col[i]);
      }
      merged.AddRow(coords, measures);
    }
  }
  return merged;
}

}  // namespace

/// Per-IngestText state: schema bindings, the member lookup maps, the
/// pending batch columns and the running stats.
struct Ingestor::Run {
  explicit Run(const StarDatabase* db)
      : engine(db, /*use_views=*/false, /*threads=*/1) {}

  BoundCube* bound = nullptr;
  std::string cube_name;
  const CubeSchema* schema = nullptr;
  /// Delta/rebuild aggregation for view maintenance: no views (a view must
  /// never be built from itself), no cache, serial.
  StarQueryEngine engine;

  // Interned column bindings, shared by the CSV header and JSONL keys.
  std::vector<ColumnBinding> bindings;
  std::unordered_map<std::string, int> binding_index;
  std::vector<int> header_bindings;  // CSV: binding per header column

  /// Per hierarchy: finest-level member name -> dimension row. Run-local;
  /// misses re-check the live dictionary under the schema lock.
  std::vector<std::unordered_map<std::string, int32_t>> key_to_row;

  // Pending batch (column-major, staged until CommitBatch).
  std::vector<std::vector<int32_t>> fks;
  std::vector<std::vector<double>> measures;
  int64_t pending = 0;

  // Per-row scratch, sized once.
  std::vector<std::vector<const std::string*>> level_values;  // [h][level]
  std::vector<int32_t> row_fks;
  std::vector<double> row_measures;
  std::vector<char> measure_set;

  bool has_avg_measure = false;
  uint64_t repack_base = 0;
  IngestStats stats;

  // Write-ahead capture (populated only when options_.durability is set):
  // the bound CSV header line and the accepted data lines of the pending
  // batch, newline-joined. Replaying them through a fresh Ingestor
  // reproduces the batch bit-for-bit, auto-insert side effects included.
  std::string wal_header;
  std::string wal_lines;
};

Ingestor::Ingestor(StarDatabase* db, std::shared_ptr<CubeResultCache> cache,
                   IngestOptions options)
    : db_(db), cache_(std::move(cache)), options_(options) {}

Result<int> Ingestor::BindColumn(Run* run, const std::string& name) {
  auto it = run->binding_index.find(name);
  if (it != run->binding_index.end()) return it->second;
  const CubeSchema& schema = *run->schema;
  ColumnBinding binding;
  Result<int> h = schema.HierarchyOfLevel(name);
  if (h.ok()) {
    binding.kind = ColumnBinding::kDimLevel;
    binding.hierarchy = *h;
    ASSESS_ASSIGN_OR_RETURN(binding.level,
                            schema.hierarchy(*h).LevelIndex(name));
  } else {
    Result<int> m = schema.MeasureIndex(name);
    if (!m.ok()) {
      return Status::InvalidArgument("unknown column '" + name +
                                     "': not a level or measure of cube '" +
                                     run->cube_name + "'");
    }
    binding.kind = ColumnBinding::kMeasure;
    binding.measure = *m;
  }
  const int idx = static_cast<int>(run->bindings.size());
  run->bindings.push_back(binding);
  run->binding_index.emplace(name, idx);
  return idx;
}

Status Ingestor::BindCsvHeader(Run* run, const std::vector<std::string>& names) {
  run->header_bindings.clear();
  for (const std::string& name : names) {
    ASSESS_ASSIGN_OR_RETURN(int b, BindColumn(run, name));
    if (std::find(run->header_bindings.begin(), run->header_bindings.end(),
                  b) != run->header_bindings.end()) {
      return Status::InvalidArgument("duplicate CSV column '" + name + "'");
    }
    run->header_bindings.push_back(b);
  }
  const CubeSchema& schema = *run->schema;
  auto bound = [&](ColumnBinding::Kind kind, int h, int level, int m) {
    for (int b : run->header_bindings) {
      const ColumnBinding& cb = run->bindings[b];
      if (cb.kind != kind) continue;
      if (kind == ColumnBinding::kDimLevel
              ? (cb.hierarchy == h && cb.level == level)
              : cb.measure == m) {
        return true;
      }
    }
    return false;
  };
  for (int h = 0; h < schema.hierarchy_count(); ++h) {
    if (!bound(ColumnBinding::kDimLevel, h, 0, -1)) {
      return Status::InvalidArgument(
          "CSV header is missing key column '" +
          schema.hierarchy(h).level_name(0) + "' of dimension '" +
          schema.hierarchy(h).name() + "'");
    }
  }
  for (int m = 0; m < schema.measure_count(); ++m) {
    if (!bound(ColumnBinding::kMeasure, -1, -1, m)) {
      return Status::InvalidArgument("CSV header is missing measure column '" +
                                     schema.measure(m).name + "'");
    }
  }
  return Status::OK();
}

Status Ingestor::ResolveDimension(
    Run* run, int64_t line_no, int h,
    const std::vector<const std::string*>& level_values, int32_t* fk_out) {
  const std::string& key = *level_values[0];
  {
    std::shared_lock<std::shared_mutex> lock(db_->schema_mutex());
    auto it = run->key_to_row[h].find(key);
    if (it != run->key_to_row[h].end()) {
      const int32_t row = it->second;
      // Coarser values, when provided, must agree with the stored roll-up.
      const DimensionTable& dim = run->bound->dimension(h);
      const Hierarchy& hier = dim.hierarchy();
      for (int l = 1; l < hier.level_count(); ++l) {
        if (level_values[l] == nullptr) continue;
        const std::string& have = hier.MemberName(l, dim.CodeAt(row, l));
        if (have != *level_values[l]) {
          return Status::InvalidArgument(
              "member '" + key + "' of dimension '" + dim.name() +
              "' rolls up to '" + have + "' at level '" + hier.level_name(l) +
              "', not '" + *level_values[l] + "'");
        }
      }
      *fk_out = row;
      return Status::OK();
    }
  }
  if (!options_.auto_insert_members) {
    return Status::NotFound("unknown member '" + key + "' of dimension '" +
                            run->bound->dimension(h).name() +
                            "' (auto-insert is off)");
  }
  return AutoInsertMember(run, line_no, h, level_values, fk_out);
}

Status Ingestor::AutoInsertMember(
    Run* run, int64_t line_no, int h,
    const std::vector<const std::string*>& level_values, int32_t* fk_out) {
  (void)line_no;
  const std::string& key = *level_values[0];
  DimensionTable& dim = run->bound->mutable_dimension(h);
  Hierarchy& hier = dim.mutable_hierarchy();
  const int level_count = hier.level_count();
  // The whole roll-up chain is needed to link the new member.
  for (int l = 1; l < level_count; ++l) {
    if (level_values[l] == nullptr) {
      return Status::InvalidArgument(
          "auto-insert of member '" + key + "' needs a value for level '" +
          hier.level_name(l) + "' of dimension '" + dim.name() + "'");
    }
  }

  // Growing a dimension mutates structures queries index directly, so the
  // insert runs under the database's exclusive schema lock. Sessions hold
  // it shared for a statement; member-stable ingest never takes it
  // exclusively.
  std::unique_lock<std::shared_mutex> lock(db_->schema_mutex());

  // A concurrent ingest (or a sibling cube sharing this hierarchy) may have
  // interned members meanwhile; AddMember is idempotent, but an existing
  // member must agree with the roll-up the row declares.
  std::vector<MemberId> codes(level_count);
  std::vector<bool> existed(level_count);
  for (int l = 0; l < level_count; ++l) {
    const int32_t before = hier.LevelCardinality(l);
    codes[l] = hier.AddMember(l, *level_values[l]);
    existed[l] = codes[l] < before;
  }
  for (int l = 0; l + 1 < level_count; ++l) {
    if (existed[l]) {
      const MemberId parent = hier.RollUpMember(l, codes[l], l + 1);
      if (parent == kInvalidMember) {
        hier.SetParent(l, codes[l], codes[l + 1]);
      } else if (parent != codes[l + 1]) {
        return Status::InvalidArgument(
            "conflicting roll-up: member '" + *level_values[l] +
            "' of level '" + hier.level_name(l) + "' already rolls up to '" +
            hier.MemberName(l + 1, parent) + "', not '" +
            *level_values[l + 1] + "'");
      }
    } else {
      hier.SetParent(l, codes[l], codes[l + 1]);
    }
  }

  if (existed[0]) {
    // The member was interned before (e.g. by a cube sharing the
    // hierarchy); this cube's dimension may or may not already have its
    // row. Rare path: linear re-check of the live table.
    const std::vector<MemberId>& col = dim.level_column(0);
    for (int64_t r = static_cast<int64_t>(col.size()) - 1; r >= 0; --r) {
      if (col[r] == codes[0]) {
        run->key_to_row[h].emplace(key, static_cast<int32_t>(r));
        *fk_out = static_cast<int32_t>(r);
        return Status::OK();
      }
    }
  }

  dim.AddRow(codes);
  const int32_t row = static_cast<int32_t>(dim.NumRows() - 1);
  run->key_to_row[h].emplace(key, row);
  run->stats.new_members += 1;
  *fk_out = row;
  return Status::OK();
}

Status Ingestor::ProcessRow(Run* run, int64_t line_no,
                            const std::vector<std::string>& fields,
                            const std::vector<int>& field_bindings) {
  // Chaos site: a triggered failpoint rejects this row with its typed
  // error (committed batches stay committed; max_errors applies as usual).
  ASSESS_FAILPOINT("ingest.row");
  const CubeSchema& schema = *run->schema;
  const int hierarchies = schema.hierarchy_count();
  const int num_measures = schema.measure_count();

  for (auto& lv : run->level_values) {
    std::fill(lv.begin(), lv.end(), nullptr);
  }
  std::fill(run->measure_set.begin(), run->measure_set.end(), 0);

  for (size_t i = 0; i < fields.size(); ++i) {
    const ColumnBinding& b = run->bindings[field_bindings[i]];
    if (b.kind == ColumnBinding::kDimLevel) {
      const std::string*& slot = run->level_values[b.hierarchy][b.level];
      if (slot != nullptr) {
        return Status::InvalidArgument(
            "duplicate value for level '" +
            schema.hierarchy(b.hierarchy).level_name(b.level) + "'");
      }
      // Empty fields (and JSONL nulls) mean "not provided".
      if (!fields[i].empty()) slot = &fields[i];
    } else {
      if (run->measure_set[b.measure]) {
        return Status::InvalidArgument("duplicate value for measure '" +
                                       schema.measure(b.measure).name + "'");
      }
      Result<double> v = ParseMeasureValue(fields[i]);
      if (!v.ok()) {
        return v.status().WithContext("measure '" +
                                      schema.measure(b.measure).name + "'");
      }
      run->row_measures[b.measure] = *v;
      run->measure_set[b.measure] = 1;
    }
  }

  for (int h = 0; h < hierarchies; ++h) {
    if (run->level_values[h][0] == nullptr) {
      return Status::InvalidArgument(
          "missing value for key column '" +
          schema.hierarchy(h).level_name(0) + "' of dimension '" +
          schema.hierarchy(h).name() + "'");
    }
  }
  for (int m = 0; m < num_measures; ++m) {
    if (!run->measure_set[m]) {
      return Status::InvalidArgument("missing value for measure '" +
                                     schema.measure(m).name + "'");
    }
  }

  for (int h = 0; h < hierarchies; ++h) {
    ASSESS_RETURN_NOT_OK(ResolveDimension(run, line_no, h,
                                          run->level_values[h],
                                          &run->row_fks[h]));
  }

  // The row is fully validated and resolved: stage it. Nothing above
  // mutated the pending batch, so a rejected row leaves no trace.
  for (int h = 0; h < hierarchies; ++h) {
    run->fks[h].push_back(run->row_fks[h]);
  }
  for (int m = 0; m < num_measures; ++m) {
    run->measures[m].push_back(run->row_measures[m]);
  }
  run->pending += 1;
  return Status::OK();
}

Status Ingestor::CommitBatch(Run* run) {
  if (run->pending == 0) return Status::OK();
  // Chaos site: a triggered failpoint fails the whole ingest before this
  // batch publishes anything — earlier batches stay committed.
  ASSESS_FAILPOINT("ingest.commit");

  // One whole commit (append + derived extension + view maintenance +
  // cache sweep) at a time per cube; queries never wait here — they scan
  // admission snapshots. The schema lock is shared: view maintenance reads
  // dimensions and hierarchies, which a concurrent auto-insert (exclusive)
  // may not mutate mid-scan.
  std::lock_guard<std::mutex> commit_lock(run->bound->ingest_mutex());
  std::shared_lock<std::shared_mutex> schema_lock(db_->schema_mutex());

  FactTable& facts = run->bound->mutable_facts();

  // Write-ahead: the batch must be durable before its epoch publishes and
  // any receipt can reach a client. The epoch is computed up front (we hold
  // the cube's ingest mutex, so nobody else can move it) and stamped into
  // the record; a hook failure aborts the whole ingest with its typed error
  // while the fact table, views and cache are exactly as the previous batch
  // left them — no half-published epoch.
  const uint64_t commit_epoch = facts.epoch() + 1;
  if (options_.durability != nullptr) {
    IngestCommit commit;
    commit.cube = &run->cube_name;
    commit.epoch = commit_epoch;
    commit.format = options_.format;
    commit.auto_insert = options_.auto_insert_members;
    commit.row_count = static_cast<uint32_t>(run->pending);
    commit.header = &run->wal_header;
    commit.text = &run->wal_lines;
    ASSESS_RETURN_NOT_OK(options_.durability->OnCommit(commit));
  }

  const AppendResult app = facts.AppendBatch(run->fks, run->measures);
  if (app.epoch != commit_epoch) {
    return Status::Internal(
        "ingest epoch moved under the commit lock: logged " +
        std::to_string(commit_epoch) + ", published " +
        std::to_string(app.epoch));
  }
  // Extend packed FK views and zone maps to the new prefix right away (if
  // they were ever built), so query latency stays flat under churn.
  facts.ExtendDerivedIfBuilt();

  run->stats.rows_ingested += static_cast<uint64_t>(app.rows);
  run->stats.batches += 1;
  run->stats.epoch = app.epoch;
  IngestRowsTotal().Inc(static_cast<uint64_t>(app.rows));
  IngestBatchesTotal().Inc();

  for (auto& col : run->fks) col.clear();
  for (auto& col : run->measures) col.clear();
  run->wal_lines.clear();
  run->pending = 0;

  // Writes flow through the materialized views: aggregate only the appended
  // delta and merge it in, falling back to a full rebuild when the delta is
  // not contiguous with what the views cover (or avg makes merging lossy).
  // Until PublishViews lands, queries at the new epoch skip the (lagging)
  // views and scan facts — consistent, just slower.
  std::shared_ptr<const ViewSet> old_set = run->bound->views_snapshot();
  if (!old_set->views.empty()) {
    const int64_t new_rows = app.first_row + app.rows;
    const bool contiguous = old_set->rows == app.first_row;
    const bool delta_ok =
        options_.incremental && contiguous && !run->has_avg_measure;
    std::vector<MaterializedView> next;
    next.reserve(old_set->views.size());
    for (const MaterializedView& view : old_set->views) {
      if (delta_ok) {
        ASSESS_ASSIGN_OR_RETURN(
            Cube delta, run->engine.AggregateFactRange(
                            *run->bound, view.group_by, app.first_row,
                            new_rows));
        ASSESS_ASSIGN_OR_RETURN(Cube merged,
                                MergeViewDelta(*run->schema, view, delta));
        next.push_back(
            MaterializedView{view.name, view.group_by, std::move(merged)});
        run->stats.mv_incremental_updates += 1;
      } else {
        ASSESS_ASSIGN_OR_RETURN(
            Cube rebuilt, run->engine.AggregateFactRange(
                              *run->bound, view.group_by, 0, new_rows));
        next.push_back(
            MaterializedView{view.name, view.group_by, std::move(rebuilt)});
        run->stats.mv_full_rebuilds += 1;
      }
    }
    run->bound->PublishViews(std::move(next), app.epoch, new_rows);
  }

  if (cache_ != nullptr) {
    if (options_.incremental) {
      // Epoch keying already makes superseded entries unreachable; the
      // sweep is eager memory reclamation.
      run->stats.cache_invalidations +=
          cache_->InvalidateEpochsBefore(run->cube_name, app.epoch);
    } else {
      // Full-invalidation baseline: drop everything, every batch.
      run->stats.cache_invalidations += cache_->stats().entries;
      cache_->Clear();
    }
  }
  return Status::OK();
}

Status Ingestor::IngestLines(Run* run, std::string_view text) {
  std::vector<std::string> fields;
  std::vector<int> field_bindings;
  std::vector<std::pair<std::string, std::string>> kvs;
  bool have_header = options_.format != IngestFormat::kCsv;
  int64_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    line_no += 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;

    Status st = Status::OK();
    if (options_.format == IngestFormat::kCsv) {
      st = SplitCsvLine(line, &fields);
      if (st.ok() && !have_header) {
        have_header = true;
        st = BindCsvHeader(run, fields);
        if (!st.ok()) {
          // A bad header fails everything — no row is interpretable.
          return st.WithContext("line " + std::to_string(line_no));
        }
        if (options_.durability != nullptr) {
          run->wal_header.assign(line.data(), line.size());
        }
        continue;
      }
      if (st.ok() && fields.size() != run->header_bindings.size()) {
        st = Status::InvalidArgument(
            "expected " + std::to_string(run->header_bindings.size()) +
            " fields per the header, got " + std::to_string(fields.size()));
      }
      if (st.ok()) st = ProcessRow(run, line_no, fields, run->header_bindings);
    } else {
      st = ParseJsonlObject(line, &kvs);
      if (st.ok()) {
        fields.clear();
        field_bindings.clear();
        for (auto& kv : kvs) {
          Result<int> b = BindColumn(run, kv.first);
          if (!b.ok()) {
            st = b.status();
            break;
          }
          field_bindings.push_back(*b);
          fields.push_back(std::move(kv.second));
        }
        if (st.ok()) st = ProcessRow(run, line_no, fields, field_bindings);
      }
    }

    if (!st.ok()) {
      st = st.WithContext("line " + std::to_string(line_no));
      if (static_cast<int64_t>(run->stats.rows_rejected) >=
          options_.max_errors) {
        return st;
      }
      run->stats.rows_rejected += 1;
      continue;
    }
    if (options_.durability != nullptr) {
      // Only *accepted* rows are logged: replay re-ingests exactly what
      // committed, never a rejected line.
      if (!run->wal_lines.empty()) run->wal_lines += '\n';
      run->wal_lines.append(line.data(), line.size());
    }
    if (run->pending >= options_.batch_rows) {
      // Commit failures are fatal: the batch is atomic, nothing of it
      // published, and retrying rows out of order would reorder epochs.
      ASSESS_RETURN_NOT_OK(CommitBatch(run));
    }
  }
  return CommitBatch(run);
}

Result<IngestStats> Ingestor::IngestText(std::string_view cube_name,
                                         std::string_view text) {
  if (options_.batch_rows <= 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  ASSESS_ASSIGN_OR_RETURN(BoundCube * bound, db_->FindMutable(cube_name));
  Run run(db_);
  run.bound = bound;
  run.cube_name = std::string(cube_name);
  run.schema = &bound->schema();
  const CubeSchema& schema = *run.schema;
  const int hierarchies = schema.hierarchy_count();
  const int num_measures = schema.measure_count();
  run.fks.resize(hierarchies);
  run.measures.resize(num_measures);
  run.key_to_row.resize(hierarchies);
  run.level_values.resize(hierarchies);
  run.row_fks.resize(hierarchies, 0);
  run.row_measures.resize(num_measures, 0.0);
  run.measure_set.resize(num_measures, 0);
  for (int m = 0; m < num_measures; ++m) {
    if (schema.measure(m).op == AggOp::kAvg) run.has_avg_measure = true;
  }
  run.repack_base = bound->facts().derived_repacks();
  {
    std::shared_lock<std::shared_mutex> lock(db_->schema_mutex());
    for (int h = 0; h < hierarchies; ++h) {
      const DimensionTable& dim = bound->dimension(h);
      const Hierarchy& hier = dim.hierarchy();
      run.level_values[h].resize(hier.level_count(), nullptr);
      auto& map = run.key_to_row[h];
      map.reserve(static_cast<size_t>(dim.NumRows()));
      for (int64_t r = 0; r < dim.NumRows(); ++r) {
        map.emplace(hier.MemberName(0, dim.CodeAt(r, 0)),
                    static_cast<int32_t>(r));
      }
    }
  }
  run.stats.epoch = bound->facts().epoch();

  Status st = IngestLines(&run, text);
  run.stats.repacks = bound->facts().derived_repacks() - run.repack_base;
  if (!st.ok()) return st;
  return run.stats;
}

Result<IngestStats> Ingestor::IngestFile(std::string_view cube_name,
                                         const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open ingest file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return IngestText(cube_name, buf.str());
}

}  // namespace assess
