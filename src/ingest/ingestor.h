#ifndef ASSESS_INGEST_INGESTOR_H_
#define ASSESS_INGEST_INGESTOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cube_cache.h"
#include "common/result.h"
#include "ingest/ingest.h"
#include "storage/star_schema.h"

namespace assess {

/// \brief Streaming row ingestion into a bound cube: parses CSV or JSONL
/// rows, resolves dimension keys (optionally auto-inserting new members),
/// appends facts in atomic epoch-stamped batches, extends the derived scan
/// structures, maintains the materialized views incrementally and sweeps
/// superseded result-cache entries.
///
/// Columns are matched by name against the cube's schema: for every
/// hierarchy the finest level's column is required (it is the dimension
/// key); coarser-level columns are optional and only consulted to validate
/// or establish roll-up links; every schema measure's column is required.
///
/// Concurrency: one Ingestor call runs whole-batch commits under the
/// cube's ingest mutex, so concurrent ingests into the same cube
/// serialize. Queries are never blocked by member-stable ingest — they
/// scan epoch snapshots. Auto-inserting a member takes the database's
/// exclusive schema lock for the insert only.
///
/// Error handling: malformed or unresolvable rows produce typed errors
/// (kInvalidArgument / kNotFound) carrying the 1-based line number. By
/// default the first such error aborts the ingest; IngestOptions::max_errors
/// tolerates that many rejected rows. Batches already committed stay
/// committed — the returned stats (embedded in the error-free result only)
/// say how far the run got.
class Ingestor {
 public:
  /// `cache` may be null (no result cache to maintain); `db` must outlive
  /// the ingestor.
  Ingestor(StarDatabase* db, std::shared_ptr<CubeResultCache> cache,
           IngestOptions options);

  /// \brief Ingests `text` (the full file contents) into `cube_name`.
  Result<IngestStats> IngestText(std::string_view cube_name,
                                 std::string_view text);

  /// \brief Reads `path` and ingests it. The format comes from
  /// IngestOptions::format (callers typically set it from the extension
  /// via IngestFormatFromPath).
  Result<IngestStats> IngestFile(std::string_view cube_name,
                                 const std::string& path);

  const IngestOptions& options() const { return options_; }

 private:
  struct Run;  // per-call state (bindings, pending batch, member maps)

  /// Resolves a column name against the cube schema (level or measure),
  /// interning the binding in the run; kInvalidArgument for unknown names.
  Result<int> BindColumn(Run* run, const std::string& name);
  /// Binds the CSV header row and checks the required columns (every
  /// hierarchy's finest level, every measure) are present exactly once.
  Status BindCsvHeader(Run* run, const std::vector<std::string>& names);
  Status IngestLines(Run* run, std::string_view text);
  Status ProcessRow(Run* run, int64_t line_no,
                    const std::vector<std::string>& fields,
                    const std::vector<int>& field_bindings);
  Status ResolveDimension(Run* run, int64_t line_no, int h,
                          const std::vector<const std::string*>& level_values,
                          int32_t* fk_out);
  Status AutoInsertMember(Run* run, int64_t line_no, int h,
                          const std::vector<const std::string*>& level_values,
                          int32_t* fk_out);
  Status CommitBatch(Run* run);

  StarDatabase* db_;
  std::shared_ptr<CubeResultCache> cache_;
  IngestOptions options_;
};

}  // namespace assess

#endif  // ASSESS_INGEST_INGESTOR_H_
