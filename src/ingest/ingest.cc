#include "ingest/ingest.h"

#include <cstring>

namespace assess {

namespace {

constexpr int kStatsFields = 9;

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string_view IngestFormatToString(IngestFormat format) {
  switch (format) {
    case IngestFormat::kCsv:
      return "csv";
    case IngestFormat::kJsonl:
      return "jsonl";
  }
  return "unknown";
}

IngestFormat IngestFormatFromPath(std::string_view path) {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.substr(path.size() - suffix.size()) == suffix;
  };
  if (ends_with(".jsonl") || ends_with(".ndjson")) return IngestFormat::kJsonl;
  return IngestFormat::kCsv;
}

std::string IngestStats::Serialize() const {
  std::string out;
  out.reserve(kStatsFields * 8);
  AppendU64(rows_ingested, &out);
  AppendU64(rows_rejected, &out);
  AppendU64(batches, &out);
  AppendU64(new_members, &out);
  AppendU64(epoch, &out);
  AppendU64(mv_incremental_updates, &out);
  AppendU64(mv_full_rebuilds, &out);
  AppendU64(cache_invalidations, &out);
  AppendU64(repacks, &out);
  return out;
}

Result<IngestStats> IngestStats::Deserialize(std::string_view payload) {
  if (payload.size() < kStatsFields * 8) {
    return Status::CorruptFrame("ingest stats payload truncated");
  }
  const char* p = payload.data();
  IngestStats stats;
  stats.rows_ingested = ReadU64(p + 0);
  stats.rows_rejected = ReadU64(p + 8);
  stats.batches = ReadU64(p + 16);
  stats.new_members = ReadU64(p + 24);
  stats.epoch = ReadU64(p + 32);
  stats.mv_incremental_updates = ReadU64(p + 40);
  stats.mv_full_rebuilds = ReadU64(p + 48);
  stats.cache_invalidations = ReadU64(p + 56);
  stats.repacks = ReadU64(p + 64);
  return stats;
}

std::string IngestStats::ToString() const {
  std::string out;
  out += "ingested " + std::to_string(rows_ingested) + " rows in " +
         std::to_string(batches) + " batches (epoch " +
         std::to_string(epoch) + ")";
  if (rows_rejected > 0) {
    out += ", rejected " + std::to_string(rows_rejected);
  }
  if (new_members > 0) {
    out += ", " + std::to_string(new_members) + " new members";
  }
  out += "; views: " + std::to_string(mv_incremental_updates) +
         " incremental / " + std::to_string(mv_full_rebuilds) + " rebuilt";
  out += "; cache: " + std::to_string(cache_invalidations) + " swept";
  if (repacks > 0) {
    out += "; " + std::to_string(repacks) + " repacks";
  }
  return out;
}

}  // namespace assess
