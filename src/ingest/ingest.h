#ifndef ASSESS_INGEST_INGEST_H_
#define ASSESS_INGEST_INGEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace assess {

/// \brief Text row formats the streaming ingester understands.
enum class IngestFormat : uint8_t {
  kCsv = 0,    ///< header line + comma-separated records (RFC-4180 quoting)
  kJsonl = 1,  ///< one flat JSON object per line, keys = column names
};

std::string_view IngestFormatToString(IngestFormat format);

/// \brief Picks the format from a file name: ".jsonl"/".ndjson" select
/// kJsonl, everything else kCsv.
IngestFormat IngestFormatFromPath(std::string_view path);

/// \brief Knobs of one ingest run.
struct IngestOptions {
  IngestFormat format = IngestFormat::kCsv;

  /// When a row names a level-0 member missing from the dimension, insert
  /// it (together with its roll-up parents, which the row must then also
  /// provide) instead of rejecting the row. Inserts take the database's
  /// exclusive schema lock; member-stable ingest never does.
  bool auto_insert_members = false;

  /// Rows per atomic fact-table batch: each batch commits under one epoch,
  /// extends the derived scan structures, maintains the materialized views
  /// and invalidates superseded cache entries before the next batch starts.
  int64_t batch_rows = 8192;

  /// Incremental maintenance (the default): appended rows are aggregated
  /// once per view and merged into it, and only cache entries of this cube
  /// from older epochs are swept. When false, every batch rebuilds all
  /// views from scratch and clears the whole cache — the full-invalidation
  /// baseline the churn bench compares against.
  bool incremental = true;

  /// Malformed or unresolvable rows beyond this many abort the ingest with
  /// the row's typed error. 0 (default) = strict: fail on the first bad
  /// row. Rejected rows are counted in IngestStats::rows_rejected.
  int64_t max_errors = 0;
};

/// \brief What one ingest run did. Serializes to a fixed little-endian
/// layout for the kIngestReply wire frame.
struct IngestStats {
  uint64_t rows_ingested = 0;   ///< fact rows committed
  uint64_t rows_rejected = 0;   ///< malformed rows skipped (<= max_errors)
  uint64_t batches = 0;         ///< atomic fact-table batches committed
  uint64_t new_members = 0;     ///< dimension rows auto-inserted
  uint64_t epoch = 0;           ///< fact epoch after the last batch
  uint64_t mv_incremental_updates = 0;  ///< view delta-merges applied
  uint64_t mv_full_rebuilds = 0;        ///< views rebuilt from scratch
  uint64_t cache_invalidations = 0;     ///< cache entries swept
  uint64_t repacks = 0;  ///< packed-column width overflows hit

  std::string Serialize() const;
  static Result<IngestStats> Deserialize(std::string_view payload);

  /// \brief One-line human rendering for the CLI.
  std::string ToString() const;
};

}  // namespace assess

#endif  // ASSESS_INGEST_INGEST_H_
