#ifndef ASSESS_INGEST_INGEST_H_
#define ASSESS_INGEST_INGEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace assess {

/// \brief Text row formats the streaming ingester understands.
enum class IngestFormat : uint8_t {
  kCsv = 0,    ///< header line + comma-separated records (RFC-4180 quoting)
  kJsonl = 1,  ///< one flat JSON object per line, keys = column names
};

std::string_view IngestFormatToString(IngestFormat format);

/// \brief Picks the format from a file name: ".jsonl"/".ndjson" select
/// kJsonl, everything else kCsv.
IngestFormat IngestFormatFromPath(std::string_view path);

/// \brief Everything the durability layer needs to persist one committed
/// ingest batch before its epoch is published: the accepted row text (for
/// CSV, the bound header plus every accepted data line) and the epoch the
/// batch will commit at. Pointers borrow from the ingest run and are valid
/// only for the duration of the OnCommit call.
struct IngestCommit {
  const std::string* cube = nullptr;
  /// The epoch this batch commits at (current fact epoch + 1) — stamped
  /// into the WAL record so replay can verify it reproduces the same epoch.
  uint64_t epoch = 0;
  IngestFormat format = IngestFormat::kCsv;
  bool auto_insert = false;
  uint32_t row_count = 0;
  /// CSV header line the rows were bound under (empty for JSONL).
  const std::string* header = nullptr;
  /// Accepted data lines, newline-joined.
  const std::string* text = nullptr;
};

/// \brief Write-ahead hook the Ingestor calls inside CommitBatch — after
/// validation, under the cube's ingest mutex, *before* AppendBatch
/// publishes the epoch. A non-OK return aborts the commit: nothing is
/// appended, no epoch moves, and the error surfaces as the batch's typed
/// error. The DurabilityManager implements this to append + fsync the WAL
/// record, so a batch is durable strictly before any client can observe it.
class CommitDurabilityHook {
 public:
  virtual ~CommitDurabilityHook() = default;
  virtual Status OnCommit(const IngestCommit& commit) = 0;
};

/// \brief Knobs of one ingest run.
struct IngestOptions {
  IngestFormat format = IngestFormat::kCsv;

  /// When a row names a level-0 member missing from the dimension, insert
  /// it (together with its roll-up parents, which the row must then also
  /// provide) instead of rejecting the row. Inserts take the database's
  /// exclusive schema lock; member-stable ingest never does.
  bool auto_insert_members = false;

  /// Rows per atomic fact-table batch: each batch commits under one epoch,
  /// extends the derived scan structures, maintains the materialized views
  /// and invalidates superseded cache entries before the next batch starts.
  int64_t batch_rows = 8192;

  /// Incremental maintenance (the default): appended rows are aggregated
  /// once per view and merged into it, and only cache entries of this cube
  /// from older epochs are swept. When false, every batch rebuilds all
  /// views from scratch and clears the whole cache — the full-invalidation
  /// baseline the churn bench compares against.
  bool incremental = true;

  /// Malformed or unresolvable rows beyond this many abort the ingest with
  /// the row's typed error. 0 (default) = strict: fail on the first bad
  /// row. Rejected rows are counted in IngestStats::rows_rejected.
  int64_t max_errors = 0;

  /// When set, each batch commit calls OnCommit before publishing its
  /// epoch; a failure aborts the batch with the hook's typed error (see
  /// CommitDurabilityHook). Borrowed, not owned; null = no write-ahead
  /// logging (in-process and bench use).
  CommitDurabilityHook* durability = nullptr;
};

/// \brief What one ingest run did. Serializes to a fixed little-endian
/// layout for the kIngestReply wire frame.
struct IngestStats {
  uint64_t rows_ingested = 0;   ///< fact rows committed
  uint64_t rows_rejected = 0;   ///< malformed rows skipped (<= max_errors)
  uint64_t batches = 0;         ///< atomic fact-table batches committed
  uint64_t new_members = 0;     ///< dimension rows auto-inserted
  uint64_t epoch = 0;           ///< fact epoch after the last batch
  uint64_t mv_incremental_updates = 0;  ///< view delta-merges applied
  uint64_t mv_full_rebuilds = 0;        ///< views rebuilt from scratch
  uint64_t cache_invalidations = 0;     ///< cache entries swept
  uint64_t repacks = 0;  ///< packed-column width overflows hit

  std::string Serialize() const;
  static Result<IngestStats> Deserialize(std::string_view payload);

  /// \brief One-line human rendering for the CLI.
  std::string ToString() const;
};

}  // namespace assess

#endif  // ASSESS_INGEST_INGEST_H_
