#include "labeling/label_function.h"

#include <algorithm>

#include "common/str_util.h"
#include "labeling/distribution_labeling.h"
#include "labeling/kmeans_labeling.h"

namespace assess {

LabelingRegistry LabelingRegistry::Default() {
  LabelingRegistry registry;
  auto add_quantiles = [&registry](int k, const std::string& name) {
    Result<QuantileLabeling> fn = QuantileLabeling::Make(k, {}, name);
    // Builtin construction cannot fail: k >= 1 and default labels.
    Status st = registry.Register(
        std::make_shared<QuantileLabeling>(std::move(fn).value()));
    (void)st;
  };
  add_quantiles(2, "median");
  add_quantiles(3, "terciles");
  add_quantiles(4, "quartiles");
  add_quantiles(5, "quintiles");
  add_quantiles(10, "deciles");
  Status st = registry.Register(std::make_shared<ZScoreLabeling>());
  (void)st;
  Result<KMeansLabeling> km = KMeansLabeling::Make(5, /*auto_k=*/true);
  st = registry.Register(std::make_shared<KMeansLabeling>(std::move(km).value()));
  (void)st;
  return registry;
}

Status LabelingRegistry::Register(
    std::shared_ptr<const LabelFunction> function) {
  std::string key = ToLower(function->name());
  auto [it, inserted] = functions_.emplace(std::move(key), std::move(function));
  if (!inserted) {
    return Status::AlreadyExists("labeling function '" + it->second->name() +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<std::shared_ptr<const LabelFunction>> LabelingRegistry::Find(
    std::string_view name) const {
  auto it = functions_.find(ToLower(name));
  if (it == functions_.end()) {
    return Status::NotFound("no labeling function '" + std::string(name) +
                            "'");
  }
  return it->second;
}

bool LabelingRegistry::Contains(std::string_view name) const {
  return functions_.count(ToLower(name)) > 0;
}

std::vector<std::string> LabelingRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [key, fn] : functions_) names.push_back(fn->name());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace assess
