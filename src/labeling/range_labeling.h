#ifndef ASSESS_LABELING_RANGE_LABELING_H_
#define ASSESS_LABELING_RANGE_LABELING_H_

#include <string>
#include <vector>

#include "labeling/label_function.h"

namespace assess {

/// \brief One labeling rule: an interval with open/closed bounds mapped to a
/// label, e.g. "[0, 0.9): bad". Infinite bounds use ±infinity.
struct LabelRange {
  double lo = 0.0;
  double hi = 0.0;
  bool lo_closed = true;
  bool hi_closed = false;
  std::string label;

  bool Contains(double v) const {
    if (v < lo || (v == lo && !lo_closed)) return false;
    if (v > hi || (v == hi && !hi_closed)) return false;
    return true;
  }

  /// \brief Renders as "[0, 0.9): bad" (inf bounds as "inf"/"-inf").
  std::string ToString() const;
};

/// \brief Labeling based on explicit ranges (Section 3.3.1): the decision is
/// local to each cell's comparison value.
class RangeLabeling : public LabelFunction {
 public:
  /// \brief Validates the range set (well-formed intervals, no overlaps)
  /// and builds the function. `name` is empty for inline range sets and a
  /// function name for predeclared ones (e.g. "5stars").
  /// Completeness over R is the user's responsibility (per the paper);
  /// values outside every range make Apply fail.
  static Result<RangeLabeling> Make(std::vector<LabelRange> ranges,
                                    std::string name = "");

  const std::string& name() const override { return name_; }
  Status Apply(std::span<const double> values,
               std::vector<std::string>* labels) const override;
  std::string ToString() const override;

  const std::vector<LabelRange>& ranges() const { return ranges_; }

  /// \brief True when the ranges cover all of [lo, hi] without gaps.
  bool Covers(double lo, double hi) const;

 private:
  RangeLabeling(std::vector<LabelRange> ranges, std::string name)
      : ranges_(std::move(ranges)), name_(std::move(name)) {}

  std::vector<LabelRange> ranges_;  // sorted by lo
  std::string name_;
};

}  // namespace assess

#endif  // ASSESS_LABELING_RANGE_LABELING_H_
