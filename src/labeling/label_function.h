#ifndef ASSESS_LABELING_LABEL_FUNCTION_H_
#define ASSESS_LABELING_LABEL_FUNCTION_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace assess {

/// \brief A labeling function λ : R -> L (Section 3.3): partitions the
/// domain of comparison values into equivalence classes named by labels.
///
/// Null comparison values (non-matching assess* cells, undefined ratios)
/// receive the empty label, representing the null labels of Section 4.1.
class LabelFunction {
 public:
  virtual ~LabelFunction() = default;

  virtual const std::string& name() const = 0;

  /// \brief Labels each comparison value. `labels` is resized to match.
  /// Fails when a non-null value falls outside the function's domain (the
  /// user is in charge of completeness for range-based functions).
  virtual Status Apply(std::span<const double> values,
                       std::vector<std::string>* labels) const = 0;

  /// \brief Surface rendering: the function name for predeclared functions,
  /// the brace syntax for inline range sets.
  virtual std::string ToString() const = 0;
};

/// \brief Catalog of predeclared labeling functions available by name in
/// labels clauses (e.g. "quartiles", or a user-registered "5stars").
class LabelingRegistry {
 public:
  /// \brief A registry preloaded with the builtins: quartiles, quintiles,
  /// deciles, median (2-quantiles), zscore.
  static LabelingRegistry Default();

  Status Register(std::shared_ptr<const LabelFunction> function);

  Result<std::shared_ptr<const LabelFunction>> Find(
      std::string_view name) const;
  bool Contains(std::string_view name) const;

  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<const LabelFunction>>
      functions_;
};

}  // namespace assess

#endif  // ASSESS_LABELING_LABEL_FUNCTION_H_
