#ifndef ASSESS_LABELING_KMEANS_LABELING_H_
#define ASSESS_LABELING_KMEANS_LABELING_H_

#include <string>
#include <vector>

#include "labeling/label_function.h"

namespace assess {

/// \brief Clustering-based labeling (the "let the system come up with the
/// optimal number of clusters" option of Section 3.3.2): 1-D k-means over
/// the comparison values; groups are labeled "cluster-1" (lowest centroid)
/// through "cluster-k".
///
/// With auto_k, k is chosen in [2, k] by the elbow heuristic: the smallest
/// k whose within-cluster sum of squares drops below 10% of the total
/// variance, falling back to the maximum.
class KMeansLabeling : public LabelFunction {
 public:
  static Result<KMeansLabeling> Make(int k, bool auto_k = false,
                                     int max_iterations = 50);

  const std::string& name() const override { return name_; }
  Status Apply(std::span<const double> values,
               std::vector<std::string>* labels) const override;
  std::string ToString() const override { return name_; }

  /// \brief Runs 1-D Lloyd's algorithm on `sorted` (ascending, non-empty)
  /// with `k` clusters; returns the ascending centroids. Exposed for tests.
  static std::vector<double> Fit(const std::vector<double>& sorted, int k,
                                 int max_iterations);

 private:
  KMeansLabeling(int k, bool auto_k, int max_iterations, std::string name)
      : k_(k), auto_k_(auto_k), max_iterations_(max_iterations),
        name_(std::move(name)) {}

  int k_;
  bool auto_k_;
  int max_iterations_;
  std::string name_;
};

}  // namespace assess

#endif  // ASSESS_LABELING_KMEANS_LABELING_H_
