#include "labeling/distribution_labeling.h"

#include <algorithm>
#include <cmath>

#include "olap/cube.h"

namespace assess {

namespace {

Result<std::vector<std::string>> DefaultOrCustomLabels(
    int k, std::vector<std::string> labels) {
  if (k < 1) {
    return Status::InvalidArgument("labeling needs at least one group");
  }
  if (labels.empty()) {
    // top-1 names the highest-value group; groups are stored lowest first.
    for (int g = 0; g < k; ++g) {
      labels.push_back("top-" + std::to_string(k - g));
    }
  }
  if (static_cast<int>(labels.size()) != k) {
    return Status::InvalidArgument("expected " + std::to_string(k) +
                                   " labels, got " +
                                   std::to_string(labels.size()));
  }
  return labels;
}

std::vector<double> SortedNonNull(std::span<const double> values) {
  std::vector<double> sorted;
  sorted.reserve(values.size());
  for (double v : values) {
    if (!IsNullMeasure(v)) sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

Result<QuantileLabeling> QuantileLabeling::Make(
    int k, std::vector<std::string> labels, std::string name) {
  ASSESS_ASSIGN_OR_RETURN(labels, DefaultOrCustomLabels(k, std::move(labels)));
  if (name.empty()) name = std::to_string(k) + "-quantiles";
  return QuantileLabeling(k, std::move(labels), std::move(name));
}

Status QuantileLabeling::Apply(std::span<const double> values,
                               std::vector<std::string>* labels) const {
  labels->assign(values.size(), "");
  std::vector<double> sorted = SortedNonNull(values);
  if (sorted.empty()) return Status::OK();
  int64_t n = static_cast<int64_t>(sorted.size());
  // Value thresholds: threshold g is the first value of group g, so
  // group(v) = number of thresholds <= v. Ties always land in one group
  // (the labeling stays a function of the value), absorbed upward.
  std::vector<double> thresholds;
  thresholds.reserve(k_ - 1);
  for (int g = 1; g < k_; ++g) {
    thresholds.push_back(sorted[std::min<int64_t>(n - 1, g * n / k_)]);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    if (IsNullMeasure(v)) continue;
    int group = static_cast<int>(
        std::upper_bound(thresholds.begin(), thresholds.end(), v) -
        thresholds.begin());
    (*labels)[i] = labels_[group];
  }
  return Status::OK();
}

Result<EquiWidthLabeling> EquiWidthLabeling::Make(
    int k, std::vector<std::string> labels, std::string name) {
  ASSESS_ASSIGN_OR_RETURN(labels, DefaultOrCustomLabels(k, std::move(labels)));
  if (name.empty()) name = std::to_string(k) + "-equiwidth";
  return EquiWidthLabeling(k, std::move(labels), std::move(name));
}

Status EquiWidthLabeling::Apply(std::span<const double> values,
                                std::vector<std::string>* labels) const {
  labels->assign(values.size(), "");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (IsNullMeasure(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo > hi) return Status::OK();  // all null
  double width = (hi - lo) / k_;
  for (size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    if (IsNullMeasure(v)) continue;
    int group =
        width == 0.0
            ? 0
            : std::min(k_ - 1, static_cast<int>((v - lo) / width));
    (*labels)[i] = labels_[group];
  }
  return Status::OK();
}

Status ZScoreLabeling::Apply(std::span<const double> values,
                             std::vector<std::string>* labels) const {
  static const char* kLabels[] = {"very-low", "low", "normal", "high",
                                  "very-high"};
  labels->assign(values.size(), "");
  double sum = 0.0;
  int64_t n = 0;
  for (double v : values) {
    if (IsNullMeasure(v)) continue;
    sum += v;
    ++n;
  }
  if (n == 0) return Status::OK();
  double mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (double v : values) {
    if (!IsNullMeasure(v)) ss += (v - mean) * (v - mean);
  }
  double stddev = std::sqrt(ss / static_cast<double>(n));
  for (size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    if (IsNullMeasure(v)) continue;
    double z = stddev == 0.0 ? 0.0 : (v - mean) / stddev;
    int bucket = static_cast<int>(std::lround(std::clamp(z, -2.0, 2.0)));
    (*labels)[i] = kLabels[bucket + 2];
  }
  return Status::OK();
}

}  // namespace assess
