#ifndef ASSESS_LABELING_DISTRIBUTION_LABELING_H_
#define ASSESS_LABELING_DISTRIBUTION_LABELING_H_

#include <string>
#include <vector>

#include "labeling/label_function.h"

namespace assess {

/// \brief Labeling based on the overall value distribution (Section 3.3.2):
/// equi-depth histogram into k groups labeled top-1 (highest values) through
/// top-k, or custom labels given coarsest-to-finest... i.e. labels[0] names
/// the lowest-value group.
///
/// Group boundaries are value thresholds (the k-quantiles), so equal values
/// always share a label: λ stays a function of the comparison value.
class QuantileLabeling : public LabelFunction {
 public:
  /// \brief k groups with default labels "top-k".."top-1" (ascending value
  /// groups), or custom `labels` (size k, lowest group first).
  static Result<QuantileLabeling> Make(int k,
                                       std::vector<std::string> labels = {},
                                       std::string name = "");

  const std::string& name() const override { return name_; }
  Status Apply(std::span<const double> values,
               std::vector<std::string>* labels) const override;
  std::string ToString() const override { return name_; }

  int k() const { return k_; }

 private:
  QuantileLabeling(int k, std::vector<std::string> labels, std::string name)
      : k_(k), labels_(std::move(labels)), name_(std::move(name)) {}

  int k_;
  std::vector<std::string> labels_;  // lowest-value group first
  std::string name_;
};

/// \brief Equi-width histogram labeling: [min, max] split into k equal bins.
class EquiWidthLabeling : public LabelFunction {
 public:
  static Result<EquiWidthLabeling> Make(int k,
                                        std::vector<std::string> labels = {},
                                        std::string name = "");

  const std::string& name() const override { return name_; }
  Status Apply(std::span<const double> values,
               std::vector<std::string>* labels) const override;
  std::string ToString() const override { return name_; }

 private:
  EquiWidthLabeling(int k, std::vector<std::string> labels, std::string name)
      : k_(k), labels_(std::move(labels)), name_(std::move(name)) {}

  int k_;
  std::vector<std::string> labels_;
  std::string name_;
};

/// \brief The "more simplistic scheme" of Section 3.3.2: rounds the z-score
/// of each comparison value and clamps it to [-2, 2], yielding five labels
/// from "very-low" to "very-high".
class ZScoreLabeling : public LabelFunction {
 public:
  ZScoreLabeling() : name_("zscore") {}

  const std::string& name() const override { return name_; }
  Status Apply(std::span<const double> values,
               std::vector<std::string>* labels) const override;
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

}  // namespace assess

#endif  // ASSESS_LABELING_DISTRIBUTION_LABELING_H_
