#include "labeling/range_labeling.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "olap/cube.h"

namespace assess {

std::string LabelRange::ToString() const {
  std::string out = lo_closed ? "[" : "(";
  out += FormatNumber(lo);
  out += ", ";
  out += FormatNumber(hi);
  out += hi_closed ? "]" : ")";
  out += ": " + label;
  return out;
}

Result<RangeLabeling> RangeLabeling::Make(std::vector<LabelRange> ranges,
                                          std::string name) {
  if (ranges.empty()) {
    return Status::InvalidArgument("labeling needs at least one range");
  }
  for (const LabelRange& r : ranges) {
    if (std::isnan(r.lo) || std::isnan(r.hi)) {
      return Status::InvalidArgument("range bounds must not be NaN");
    }
    if (r.lo > r.hi || (r.lo == r.hi && !(r.lo_closed && r.hi_closed))) {
      return Status::InvalidArgument("empty range " + r.ToString());
    }
    if (r.label.empty()) {
      return Status::InvalidArgument("range " + r.ToString() +
                                     " has an empty label");
    }
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const LabelRange& a, const LabelRange& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.lo_closed && !b.lo_closed;
            });
  for (size_t i = 0; i + 1 < ranges.size(); ++i) {
    const LabelRange& a = ranges[i];
    const LabelRange& b = ranges[i + 1];
    bool overlap =
        a.hi > b.lo || (a.hi == b.lo && a.hi_closed && b.lo_closed);
    if (overlap) {
      return Status::InvalidArgument("overlapping ranges " + a.ToString() +
                                     " and " + b.ToString());
    }
  }
  return RangeLabeling(std::move(ranges), std::move(name));
}

Status RangeLabeling::Apply(std::span<const double> values,
                            std::vector<std::string>* labels) const {
  labels->assign(values.size(), "");
  for (size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    if (IsNullMeasure(v)) continue;  // null label
    // Binary search for the first range with lo > v; only ranges before it
    // can contain v. Non-overlap plus lo-order implies hi-order, so the
    // backward scan stops as soon as a range ends below v.
    auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), v,
        [](double value, const LabelRange& r) { return value < r.lo; });
    bool found = false;
    for (auto rit = it; rit != ranges_.begin();) {
      --rit;
      if (rit->Contains(v)) {
        (*labels)[i] = rit->label;
        found = true;
        break;
      }
      if (rit->hi < v) break;
    }
    if (!found) {
      return Status::OutOfRange("comparison value " + FormatNumber(v) +
                                " is not covered by any labeling range");
    }
  }
  return Status::OK();
}

std::string RangeLabeling::ToString() const {
  if (!name_.empty()) return name_;
  std::string out = "{";
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ranges_[i].ToString();
  }
  return out + "}";
}

bool RangeLabeling::Covers(double lo, double hi) const {
  // Sweep over the sorted, non-overlapping ranges tracking the frontier of
  // coverage: `cursor` is the smallest value possibly uncovered, and
  // `point_needed` says whether `cursor` itself still needs coverage.
  double cursor = lo;
  bool point_needed = true;
  for (const LabelRange& r : ranges_) {
    // Ranges ending strictly below the frontier contribute nothing.
    if (r.hi < cursor || (r.hi == cursor && point_needed && !r.hi_closed)) {
      continue;
    }
    // The range must reach back to the frontier, or there is a gap.
    if (r.lo > cursor || (r.lo == cursor && point_needed && !r.lo_closed)) {
      return false;
    }
    // Frontier advances to the end of this range.
    if (r.hi > hi || (r.hi == hi && r.hi_closed)) return true;
    if (r.hi > cursor || (r.hi == cursor && point_needed && r.hi_closed)) {
      cursor = r.hi;
      point_needed = !r.hi_closed;
    }
  }
  return false;
}

}  // namespace assess
