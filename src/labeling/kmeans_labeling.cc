#include "labeling/kmeans_labeling.h"

#include <algorithm>
#include <cmath>

#include "olap/cube.h"

namespace assess {

namespace {

// Assignment boundaries between ascending centroids: value v belongs to
// cluster c iff boundaries[c-1] <= v < boundaries[c].
std::vector<double> Boundaries(const std::vector<double>& centroids) {
  std::vector<double> bounds;
  bounds.reserve(centroids.size() - 1);
  for (size_t c = 0; c + 1 < centroids.size(); ++c) {
    bounds.push_back((centroids[c] + centroids[c + 1]) / 2.0);
  }
  return bounds;
}

int ClusterOf(const std::vector<double>& bounds, double v) {
  return static_cast<int>(
      std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

double Wcss(const std::vector<double>& sorted,
            const std::vector<double>& centroids) {
  std::vector<double> bounds = Boundaries(centroids);
  double total = 0.0;
  for (double v : sorted) {
    double d = v - centroids[ClusterOf(bounds, v)];
    total += d * d;
  }
  return total;
}

}  // namespace

Result<KMeansLabeling> KMeansLabeling::Make(int k, bool auto_k,
                                            int max_iterations) {
  if (k < 1) {
    return Status::InvalidArgument("k-means labeling needs k >= 1");
  }
  std::string name =
      auto_k ? "kmeans-auto" : "kmeans-" + std::to_string(k);
  return KMeansLabeling(k, auto_k, max_iterations, std::move(name));
}

std::vector<double> KMeansLabeling::Fit(const std::vector<double>& sorted,
                                        int k, int max_iterations) {
  int64_t n = static_cast<int64_t>(sorted.size());
  k = static_cast<int>(std::min<int64_t>(k, n));
  // Quantile initialization: robust and deterministic for 1-D data.
  std::vector<double> centroids(k);
  for (int c = 0; c < k; ++c) {
    centroids[c] = sorted[std::min<int64_t>(n - 1, (2 * c + 1) * n / (2 * k))];
  }
  std::sort(centroids.begin(), centroids.end());
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::vector<double> bounds = Boundaries(centroids);
    std::vector<double> sums(k, 0.0);
    std::vector<int64_t> counts(k, 0);
    for (double v : sorted) {
      int c = ClusterOf(bounds, v);
      sums[c] += v;
      counts[c] += 1;
    }
    bool changed = false;
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep the empty cluster's centroid
      double next = sums[c] / static_cast<double>(counts[c]);
      if (next != centroids[c]) {
        centroids[c] = next;
        changed = true;
      }
    }
    std::sort(centroids.begin(), centroids.end());
    if (!changed) break;
  }
  return centroids;
}

Status KMeansLabeling::Apply(std::span<const double> values,
                             std::vector<std::string>* labels) const {
  labels->assign(values.size(), "");
  std::vector<double> sorted;
  sorted.reserve(values.size());
  for (double v : values) {
    if (!IsNullMeasure(v)) sorted.push_back(v);
  }
  if (sorted.empty()) return Status::OK();
  std::sort(sorted.begin(), sorted.end());

  int k = static_cast<int>(std::min<int64_t>(
      k_, static_cast<int64_t>(sorted.size())));
  std::vector<double> centroids;
  if (auto_k_ && k >= 2) {
    // Elbow heuristic against the total variance.
    double mean = 0.0;
    for (double v : sorted) mean += v;
    mean /= static_cast<double>(sorted.size());
    double total_ss = 0.0;
    for (double v : sorted) total_ss += (v - mean) * (v - mean);
    for (int candidate = 2; candidate <= k; ++candidate) {
      centroids = Fit(sorted, candidate, max_iterations_);
      if (total_ss == 0.0 || Wcss(sorted, centroids) <= 0.1 * total_ss) break;
    }
  } else {
    centroids = Fit(sorted, k, max_iterations_);
  }

  std::vector<double> bounds = Boundaries(centroids);
  for (size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    if (IsNullMeasure(v)) continue;
    (*labels)[i] = "cluster-" + std::to_string(ClusterOf(bounds, v) + 1);
  }
  return Status::OK();
}

}  // namespace assess
