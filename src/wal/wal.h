#ifndef ASSESS_WAL_WAL_H_
#define ASSESS_WAL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ingest/ingest.h"

namespace assess {

/// \brief The per-database write-ahead log: every committed ingest batch is
/// appended as one CRC32C-framed, LSN-sequenced, epoch-stamped record and
/// made durable *before* the batch's epoch is published and the client's
/// kIngestReply receipt is sent. Recovery replays the records after the
/// newest checkpoint through the ordinary ingest path, so an acknowledged
/// batch survives any crash.
///
/// On-disk layout (all integers little-endian), one or more segment files
/// `wal-<first_lsn, 20 digits>.log` inside `<data-dir>/wal/`:
///
///   segment := magic "ASSESSW1" (8 bytes) | first_lsn(u64) | record*
///   record  := payload_len(u32) | crc32c(payload)(u32) | payload
///   payload := lsn(u64) | kind(u8) | epoch(u64) | format(u8) | flags(u8)
///            | cube_len(u16) | cube | row_count(u32)
///            | header_len(u32) | header | text_len(u32) | text
///
/// Records carry the *accepted row text* (for CSV: the bound header line
/// plus every accepted data line), not physical columns: replaying a record
/// through the Ingestor reproduces the exact same fact rows *and* every
/// auto-insert side effect on dimensions and hierarchy dictionaries — the
/// commit path is its own redo code. LSNs are dense and global across
/// segments; a segment holds the consecutive records starting at its
/// `first_lsn`.
///
/// Corruption discipline (the scan, see ScanWal): a record that fails its
/// CRC or runs past end-of-file *at the tail of the last segment* is a torn
/// write from the crash itself — the scan truncates it with a typed warning
/// and recovery proceeds with the valid prefix. The same damage anywhere
/// else (mid-segment bytes following the bad frame, a non-final segment, an
/// LSN discontinuity under a valid CRC) cannot be explained by a torn tail
/// and surfaces as a typed kCorruptWal error: recovery refuses to guess.
enum class WalRecordKind : uint8_t {
  kIngestBatch = 1,  ///< one committed ingest batch (row text + epoch)
};

/// \brief When the log fsyncs relative to a commit.
enum class FsyncMode : uint8_t {
  kNone = 0,   ///< never fsync (throughput baseline; a crash may lose
               ///< acknowledged batches — only for benches and tests)
  kAlways = 1, ///< fsync each commit by itself ("batch" on the CLI): the
               ///< durable baseline group commit is measured against
  kGroup = 2,  ///< group commit (default): concurrent committers coalesce
               ///< into one fsync — a leader syncs everything written so
               ///< far while followers wait on its result
};

std::string_view FsyncModeToString(FsyncMode mode);

/// \brief Parses the `--fsync-mode` flag: "none", "batch" or "group".
Result<FsyncMode> ParseFsyncMode(std::string_view text);

/// \brief WAL tuning knobs.
struct WalOptions {
  FsyncMode fsync_mode = FsyncMode::kGroup;
  /// A checkpoint rotates to a fresh segment regardless; this only bounds
  /// how large one segment may grow between checkpoints.
  int64_t segment_bytes = int64_t{64} << 20;
};

/// \brief Monotonic WAL counters (ServerStats v5 / assess_wal_* metrics).
struct WalStats {
  uint64_t appends = 0;        ///< records appended
  uint64_t fsyncs = 0;         ///< fsync(2) calls issued
  uint64_t bytes_written = 0;  ///< framed bytes appended
};

/// \brief One decoded (or to-be-encoded) WAL record. `lsn` is assigned by
/// WriteAheadLog::Append; every other field is the caller's.
struct WalRecordData {
  uint64_t lsn = 0;
  WalRecordKind kind = WalRecordKind::kIngestBatch;
  /// The fact-table epoch this batch committed at. Replay verifies the
  /// re-ingested batch lands on exactly this epoch.
  uint64_t epoch = 0;
  IngestFormat format = IngestFormat::kCsv;
  /// bit0: the batch was ingested with member auto-insert enabled.
  uint8_t flags = 0;
  std::string cube;
  /// Accepted data rows in the batch (replay cross-checks the re-ingested
  /// row count against it).
  uint32_t row_count = 0;
  /// CSV: the header line the batch's rows were bound under (empty for
  /// JSONL, which is self-describing).
  std::string header;
  /// The accepted data lines, newline-joined.
  std::string text;
};

inline constexpr uint8_t kWalFlagAutoInsert = 0x01;

/// \brief Encodes a record's payload (everything the CRC covers).
std::string EncodeWalPayload(const WalRecordData& rec);

/// \brief Decodes one payload; kCorruptWal on any structural violation
/// (truncation, unknown kind/format, trailing bytes).
Result<WalRecordData> DecodeWalPayload(std::string_view payload);

/// \brief The append side of the log. Thread-safe; one instance per data
/// directory, owned by the DurabilityManager.
class WriteAheadLog {
 public:
  /// \brief Opens (creating if needed) `wal_dir` for appending, starting a
  /// fresh segment whose first record will carry `next_lsn`. Existing
  /// segments are left alone — recovery reads them via ScanWal before
  /// opening the log for writing.
  static Result<std::unique_ptr<WriteAheadLog>> Open(std::string wal_dir,
                                                     WalOptions options,
                                                     uint64_t next_lsn);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// \brief Appends `rec` (assigning it the next LSN) and makes it durable
  /// per the fsync mode before returning its LSN. Under kGroup, concurrent
  /// appenders coalesce: one leader fsyncs everything written so far while
  /// the rest wait for the leader's result. Failpoints: `wal.append` fails
  /// the call *before* any byte is written (the log stays healthy — the
  /// batch simply was never made durable); `wal.fsync` fails the sync
  /// itself, which poisons the log — every later append is refused with
  /// kUnavailable, because bytes of unknown durability precede it.
  Result<uint64_t> Append(const WalRecordData& rec);

  /// \brief Forces everything appended so far durable (graceful-drain
  /// flush). No-op under FsyncMode::kNone.
  Status Sync();

  /// \brief Seals the current segment (fsync + close) and starts a fresh
  /// one at the current next-LSN. Called by the checkpointer *before*
  /// writing the snapshot, so the old segments' records are all covered by
  /// the checkpoint once it lands and can be deleted; if the checkpoint
  /// fails, the sealed segments are simply replayed like any others.
  Status StartNewSegment();

  /// \brief Deletes sealed segments every record of which has LSN <
  /// `lsn_exclusive` (the checkpoint's truncate step). The active segment
  /// is never deleted.
  Status DeleteSegmentsBelow(uint64_t lsn_exclusive);

  /// \brief The LSN the next append will get.
  uint64_t next_lsn() const;
  /// \brief The highest appended LSN (0 when none yet).
  uint64_t last_lsn() const;

  WalStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  WriteAheadLog(std::string dir, WalOptions options, uint64_t next_lsn);

  Status OpenSegmentLocked();
  Status SyncLocked(std::unique_lock<std::mutex>* lock);
  Status WriteFrameLocked(const std::string& payload);

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  int fd_ = -1;
  std::string segment_path_;
  int64_t segment_offset_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t written_seq_ = 0;  ///< highest LSN whose bytes are written
  uint64_t durable_seq_ = 0;  ///< highest LSN known durable
  bool sync_in_flight_ = false;
  /// A failed write or fsync poisons the log: the on-disk state past
  /// durable_seq_ is unknowable, so further appends are refused until the
  /// process restarts and recovery re-establishes a trusted prefix.
  Status poisoned_ = Status::OK();

  uint64_t appends_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t bytes_written_ = 0;
};

/// \brief What one WAL scan found and did.
struct WalScanReport {
  uint64_t records = 0;          ///< valid records seen (all segments)
  uint64_t replayed = 0;         ///< records delivered to the callback
  uint64_t last_lsn = 0;         ///< highest valid LSN (0 when none)
  uint64_t truncated_bytes = 0;  ///< torn-tail bytes dropped
  bool tail_truncated = false;
  /// Human-readable warning describing a repaired torn tail (empty
  /// otherwise) — recovery logs it, typed, instead of silently guessing.
  std::string tail_note;
};

/// \brief Scans every segment under `wal_dir` in LSN order, verifying
/// frames and LSN continuity, and invokes `fn` for each valid record with
/// lsn > `after_lsn` (the checkpoint's LSN; pass 0 to replay everything).
/// A torn tail on the final segment is dropped — and physically truncated
/// when `repair` is set — with a note in the report; any other damage
/// returns kCorruptWal and replays nothing further. A non-OK status from
/// `fn` aborts the scan with that status.
Status ScanWal(const std::string& wal_dir, uint64_t after_lsn, bool repair,
               const std::function<Status(const WalRecordData&)>& fn,
               WalScanReport* report);

}  // namespace assess

#endif  // ASSESS_WAL_WAL_H_
