#include "wal/checkpoint.h"

#include <cstdio>
#include <filesystem>

#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/str_util.h"
#include "storage/database_io.h"

namespace assess {

namespace fs = std::filesystem;

namespace {

constexpr char kCurrentName[] = "CURRENT";
constexpr char kWalMetaName[] = "wal.meta";
constexpr char kCheckpointPrefix[] = "checkpoint-";

Result<uint64_t> ParseU64(std::string_view text) {
  uint64_t value = 0;
  if (text.empty()) return Status::InvalidArgument("empty integer");
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("malformed integer '" +
                                     std::string(text) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

std::string EncodeCheckpointMeta(const CheckpointMeta& meta) {
  std::string out = "wal_lsn " + std::to_string(meta.wal_lsn) + "\n";
  for (const auto& [cube, epoch] : meta.cube_epochs) {
    out += "epoch " + cube + " " + std::to_string(epoch) + "\n";
  }
  return out;
}

Result<CheckpointMeta> DecodeCheckpointMeta(std::string_view text) {
  CheckpointMeta meta;
  bool saw_lsn = false;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(std::string(line), ' ');
    if (fields.size() == 2 && fields[0] == "wal_lsn") {
      ASSESS_ASSIGN_OR_RETURN(meta.wal_lsn, ParseU64(fields[1]));
      saw_lsn = true;
    } else if (fields.size() == 3 && fields[0] == "epoch") {
      ASSESS_ASSIGN_OR_RETURN(uint64_t epoch, ParseU64(fields[2]));
      meta.cube_epochs.emplace_back(fields[1], epoch);
    } else {
      return Status::CorruptCheckpoint("malformed wal.meta line '" +
                                       std::string(line) + "'");
    }
  }
  if (!saw_lsn) {
    return Status::CorruptCheckpoint("wal.meta has no wal_lsn line");
  }
  return meta;
}

std::string CheckpointDirName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%010llu", kCheckpointPrefix,
                static_cast<unsigned long long>(seq));
  return buf;
}

Result<uint64_t> ParseCheckpointDirName(std::string_view name) {
  const std::string_view prefix = kCheckpointPrefix;
  if (name.size() != prefix.size() + 10 ||
      name.substr(0, prefix.size()) != prefix) {
    return Status::InvalidArgument("not a checkpoint directory name: '" +
                                   std::string(name) + "'");
  }
  return ParseU64(name.substr(prefix.size()));
}

Status WriteCheckpoint(const StarDatabase& db, const std::string& data_dir,
                       uint64_t seq, const CheckpointMeta& meta) {
  const fs::path final_dir = fs::path(data_dir) / CheckpointDirName(seq);
  const fs::path tmp_dir = final_dir.string() + ".tmp";
  std::error_code ec;
  fs::remove_all(tmp_dir, ec);  // leftover of an earlier interrupted attempt
  if (fs::exists(final_dir)) {
    return Status::Internal("checkpoint directory '" + final_dir.string() +
                            "' already exists — sequence numbers must be "
                            "fresh");
  }
  SaveOptions options;
  options.extra_files.emplace_back(kWalMetaName, EncodeCheckpointMeta(meta));
  ASSESS_RETURN_NOT_OK(SaveDatabaseFiles(db, tmp_dir.string(), options));
  // Chaos site: the crash window between a fully-written snapshot and its
  // publication — recovery must keep using the previous checkpoint.
  ASSESS_FAILPOINT("checkpoint.rename");
  return AtomicRenamePath(tmp_dir.string(), final_dir.string());
}

Result<uint64_t> ReadCurrentCheckpoint(const std::string& data_dir) {
  std::string content;
  Status st = ReadFileToString((fs::path(data_dir) / kCurrentName).string(),
                               &content);
  if (st.code() == StatusCode::kNotFound) return st;
  ASSESS_RETURN_NOT_OK(st);
  while (!content.empty() &&
         (content.back() == '\n' || content.back() == '\r')) {
    content.pop_back();
  }
  Result<uint64_t> seq = ParseCheckpointDirName(content);
  if (!seq.ok()) {
    return Status::CorruptCheckpoint("CURRENT names '" + content +
                                     "', which is not a checkpoint");
  }
  if (!fs::exists(fs::path(data_dir) / content)) {
    return Status::CorruptCheckpoint("CURRENT names '" + content +
                                     "' but no such directory exists");
  }
  return seq;
}

Status PublishCurrentCheckpoint(const std::string& data_dir, uint64_t seq) {
  return WriteFileDurable((fs::path(data_dir) / kCurrentName).string(),
                          CheckpointDirName(seq) + "\n");
}

Result<LoadedCheckpoint> LoadCheckpoint(const std::string& data_dir,
                                        uint64_t seq) {
  const fs::path dir = fs::path(data_dir) / CheckpointDirName(seq);
  LoadedCheckpoint loaded;
  ASSESS_ASSIGN_OR_RETURN(loaded.db, LoadDatabase(dir.string()));
  std::string meta_text;
  Status st =
      ReadFileToString((dir / kWalMetaName).string(), &meta_text);
  if (!st.ok()) {
    return Status::CorruptCheckpoint("checkpoint '" + dir.string() +
                                     "' has no wal.meta: " + st.message());
  }
  ASSESS_ASSIGN_OR_RETURN(loaded.meta, DecodeCheckpointMeta(meta_text));
  // Restore the exact epochs: a cube named by wal.meta must exist, and
  // every loaded cube must be covered (else the snapshot and its meta
  // disagree about the catalog).
  for (const auto& [cube, epoch] : loaded.meta.cube_epochs) {
    Result<BoundCube*> bound = loaded.db->FindMutable(cube);
    if (!bound.ok()) {
      return Status::CorruptCheckpoint("wal.meta names cube '" + cube +
                                       "' which the snapshot does not "
                                       "contain");
    }
    (*bound)->mutable_facts().SetEpochForRecovery(epoch);
  }
  if (loaded.meta.cube_epochs.size() != loaded.db->CubeNames().size()) {
    return Status::CorruptCheckpoint(
        "wal.meta covers " + std::to_string(loaded.meta.cube_epochs.size()) +
        " cubes but the snapshot holds " +
        std::to_string(loaded.db->CubeNames().size()));
  }
  return loaded;
}

Status GarbageCollectCheckpoints(const std::string& data_dir,
                                 uint64_t keep_seq) {
  Status first_error = Status::OK();
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(data_dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    bool remove = false;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp" &&
        StartsWith(name, kCheckpointPrefix)) {
      remove = true;  // orphan of an interrupted snapshot write
    } else {
      Result<uint64_t> seq = ParseCheckpointDirName(name);
      remove = seq.ok() && *seq < keep_seq;
    }
    if (remove) {
      std::error_code rm_ec;
      fs::remove_all(entry.path(), rm_ec);
      if (rm_ec && first_error.ok()) {
        first_error = Status::Internal("cannot remove stale checkpoint '" +
                                       entry.path().string() +
                                       "': " + rm_ec.message());
      }
    }
  }
  return first_error;
}

}  // namespace assess
