#ifndef ASSESS_WAL_DURABILITY_H_
#define ASSESS_WAL_DURABILITY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "ingest/ingest.h"
#include "storage/star_schema.h"
#include "wal/wal.h"

namespace assess {

/// \brief Durability knobs (`assessd --data-dir` / `--fsync-mode` /
/// `--checkpoint-wal-mb`).
struct DurabilityOptions {
  WalOptions wal;
  /// Take a checkpoint once this many WAL bytes accumulated since the last
  /// one (0 disables the automatic trigger; explicit Checkpoint() calls and
  /// the shutdown checkpoint still run).
  int64_t checkpoint_wal_bytes = int64_t{128} << 20;
};

/// \brief What startup recovery found and did — logged once and surfaced
/// through ServerStats v5.
struct RecoveryInfo {
  /// True when the data directory was empty: the database was bootstrapped
  /// and sealed as checkpoint 1; nothing was replayed.
  bool fresh_start = false;
  uint64_t checkpoint_seq = 0;  ///< the checkpoint recovery loaded
  uint64_t checkpoint_lsn = 0;  ///< WAL position that checkpoint covers
  uint64_t replayed_records = 0;
  uint64_t truncated_bytes = 0;  ///< torn-tail bytes dropped from the WAL
  bool tail_truncated = false;
  std::string tail_note;  ///< human-readable torn-tail warning ("" if none)
};

/// \brief The durability subsystem of one data directory: owns the
/// recovered StarDatabase, the write-ahead log, and the checkpoint cadence.
///
///   <data-dir>/
///     CURRENT            -> names the live checkpoint (atomic pointer)
///     checkpoint-<seq>/  manifest-sealed snapshot + wal.meta
///     wal/wal-<lsn>.log  CRC32C-framed record segments
///
/// Open() recovers: load the CURRENT checkpoint (manifest-verified, exact
/// epochs restored), replay every WAL record past its LSN through the
/// ordinary Ingestor commit path (auto-insert side effects included, each
/// replayed batch cross-checked against its record's epoch and row count),
/// repair a torn tail, and refuse — typed kCorruptWal / kCorruptCheckpoint
/// — to guess at any other damage.
///
/// As a CommitDurabilityHook it appends + fsyncs one WAL record per ingest
/// batch *before* the batch's epoch publishes (group commit per
/// FsyncMode::kGroup), which is what makes a kIngestReply receipt a
/// durability promise.
class DurabilityManager : public CommitDurabilityHook {
 public:
  /// Builds the initial database when the data directory has no checkpoint
  /// yet (first boot). The result is immediately sealed as checkpoint 1.
  using Bootstrap = std::function<Result<std::unique_ptr<StarDatabase>>()>;

  static Result<std::unique_ptr<DurabilityManager>> Open(
      const std::string& data_dir, DurabilityOptions options,
      const Bootstrap& bootstrap);
  ~DurabilityManager() override = default;

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// \brief The recovered (or bootstrapped) database; owned by the manager.
  StarDatabase* db() { return db_.get(); }

  const RecoveryInfo& recovery() const { return recovery_; }

  /// \brief The write-ahead hook (see CommitDurabilityHook): encodes the
  /// batch, appends it and makes it durable per the fsync mode.
  Status OnCommit(const IngestCommit& commit) override;

  /// \brief Graceful-drain flush: everything appended so far becomes
  /// durable (no-op under FsyncMode::kNone).
  Status Flush();

  /// \brief Takes a checkpoint now: freezes appenders (every cube's ingest
  /// mutex + the shared schema lock), rotates the WAL, writes a
  /// manifest-sealed snapshot with exact epochs, atomically publishes it as
  /// CURRENT, then truncates covered WAL segments and collects stale
  /// checkpoints. Serialized; concurrent callers queue.
  Status Checkpoint();

  /// \brief True once checkpoint_wal_bytes of WAL accumulated since the
  /// last checkpoint.
  bool ShouldCheckpoint() const;

  WalStats wal_stats() const { return wal_->stats(); }
  uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  FsyncMode fsync_mode() const { return options_.wal.fsync_mode; }
  const std::string& data_dir() const { return data_dir_; }

 private:
  DurabilityManager(std::string data_dir, DurabilityOptions options);

  std::string data_dir_;
  std::string wal_dir_;
  DurabilityOptions options_;
  std::unique_ptr<StarDatabase> db_;
  std::unique_ptr<WriteAheadLog> wal_;
  RecoveryInfo recovery_;

  std::mutex checkpoint_mu_;  ///< one checkpoint at a time
  uint64_t last_checkpoint_seq_ = 0;
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> wal_bytes_at_checkpoint_{0};
};

}  // namespace assess

#endif  // ASSESS_WAL_DURABILITY_H_
