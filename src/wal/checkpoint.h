#ifndef ASSESS_WAL_CHECKPOINT_H_
#define ASSESS_WAL_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/star_schema.h"

namespace assess {

/// \brief Checkpoint directory management for the durability layer: a
/// checkpoint is one manifest-sealed database snapshot directory
/// `checkpoint-<seq>` under the data directory, plus a `wal.meta` file
/// recording the WAL position it covers and each cube's exact epoch. A
/// `CURRENT` pointer file (written atomically) names the live checkpoint;
/// recovery loads it and replays only the WAL records past its LSN.
///
/// Every step is crash-ordered: the snapshot is written to a `.tmp`
/// directory, fsynced file by file, sealed with its manifest, atomically
/// renamed to its final (fresh, never-reused) name, and only then does
/// CURRENT move. A crash anywhere leaves the previous checkpoint live and
/// at worst an orphan `.tmp`/unreferenced directory for the next garbage
/// collection.

/// \brief What `wal.meta` records.
struct CheckpointMeta {
  /// Highest WAL LSN whose effects the snapshot includes; recovery replays
  /// strictly greater LSNs.
  uint64_t wal_lsn = 0;
  /// Each cube's fact epoch at snapshot time. FromColumns can only infer
  /// "0 or 1" from a row count, but cache keys and WAL replay cross-checks
  /// need the exact value restored.
  std::vector<std::pair<std::string, uint64_t>> cube_epochs;
};

std::string EncodeCheckpointMeta(const CheckpointMeta& meta);
Result<CheckpointMeta> DecodeCheckpointMeta(std::string_view text);

/// \brief `checkpoint-<seq, 10 digits>`.
std::string CheckpointDirName(uint64_t seq);
/// \brief Inverse of CheckpointDirName; kInvalidArgument for other names.
Result<uint64_t> ParseCheckpointDirName(std::string_view name);

/// \brief Writes snapshot `seq` of `db` under `data_dir` (tmp + manifest +
/// atomic rename) but does *not* move CURRENT. Callers must ensure no
/// appender runs concurrently. Failpoint `checkpoint.rename` fails the
/// final rename, leaving only a `.tmp` orphan behind.
Status WriteCheckpoint(const StarDatabase& db, const std::string& data_dir,
                       uint64_t seq, const CheckpointMeta& meta);

/// \brief The sequence number CURRENT names; kNotFound when no checkpoint
/// has ever been published; kCorruptCheckpoint when CURRENT is malformed
/// or names a directory that does not exist.
Result<uint64_t> ReadCurrentCheckpoint(const std::string& data_dir);

/// \brief Atomically repoints CURRENT at checkpoint `seq`.
Status PublishCurrentCheckpoint(const std::string& data_dir, uint64_t seq);

/// \brief A loaded checkpoint: the database plus its wal.meta.
struct LoadedCheckpoint {
  std::unique_ptr<StarDatabase> db;
  CheckpointMeta meta;
};

/// \brief Loads checkpoint `seq` (manifest-verified) and restores each
/// cube's exact epoch from wal.meta. Typed failures as LoadDatabase, plus
/// kCorruptCheckpoint when wal.meta is missing, malformed, or names a cube
/// the snapshot does not contain.
Result<LoadedCheckpoint> LoadCheckpoint(const std::string& data_dir,
                                        uint64_t seq);

/// \brief Deletes checkpoint directories with seq < `keep_seq` and any
/// orphaned `*.tmp` snapshot directories a crash left behind. Best-effort;
/// returns the first deletion error but keeps going.
Status GarbageCollectCheckpoints(const std::string& data_dir,
                                 uint64_t keep_seq);

}  // namespace assess

#endif  // ASSESS_WAL_CHECKPOINT_H_
