#include "wal/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/fs_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace assess {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentMagic[8] = {'A', 'S', 'S', 'E', 'S', 'S', 'W', '1'};
constexpr size_t kSegmentHeaderBytes = 16;  // magic + first_lsn
constexpr size_t kFrameHeaderBytes = 8;     // payload_len + crc32c

Counter& WalAppendsTotal() {
  static Counter* c = MetricsRegistry::Instance().GetCounter(
      "assess_wal_appends_total", "WAL records appended");
  return *c;
}

Counter& WalFsyncsTotal() {
  static Counter* c = MetricsRegistry::Instance().GetCounter(
      "assess_wal_fsyncs_total", "WAL fsync(2) calls issued");
  return *c;
}

Counter& WalBytesTotal() {
  static Counter* c = MetricsRegistry::Instance().GetCounter(
      "assess_wal_bytes_total", "Framed bytes appended to the WAL");
  return *c;
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* out) {
    if (pos_ + 1 > data_.size()) return false;
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU16(uint16_t* out) {
    if (pos_ + 2 > data_.size()) return false;
    *out = static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_])) |
           static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + 1])) << 8;
    pos_ += 2;
    return true;
  }
  bool GetU32(uint32_t* out) {
    if (pos_ + 4 > data_.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }
  bool GetU64(uint64_t* out) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }
  bool GetBytes(size_t len, std::string* out) {
    if (pos_ + len > data_.size()) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

std::string SegmentName(uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

/// Parses `wal-<20 digits>.log`; false for unrelated files.
bool ParseSegmentName(const std::string& name, uint64_t* first_lsn) {
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
      name.compare(24, 4, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 24; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *first_lsn = v;
  return true;
}

uint32_t ReadU32At(const std::string& data, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(const std::string& data, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string_view FsyncModeToString(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kNone:
      return "none";
    case FsyncMode::kAlways:
      return "batch";
    case FsyncMode::kGroup:
      return "group";
  }
  return "unknown";
}

Result<FsyncMode> ParseFsyncMode(std::string_view text) {
  if (text == "none") return FsyncMode::kNone;
  if (text == "batch") return FsyncMode::kAlways;
  if (text == "group") return FsyncMode::kGroup;
  return Status::InvalidArgument("unknown fsync mode '" + std::string(text) +
                                 "' (expected none, batch or group)");
}

std::string EncodeWalPayload(const WalRecordData& rec) {
  std::string out;
  out.reserve(40 + rec.cube.size() + rec.header.size() + rec.text.size());
  PutU64(&out, rec.lsn);
  out.push_back(static_cast<char>(rec.kind));
  PutU64(&out, rec.epoch);
  out.push_back(static_cast<char>(rec.format));
  out.push_back(static_cast<char>(rec.flags));
  PutU16(&out, static_cast<uint16_t>(rec.cube.size()));
  out.append(rec.cube);
  PutU32(&out, rec.row_count);
  PutU32(&out, static_cast<uint32_t>(rec.header.size()));
  out.append(rec.header);
  PutU32(&out, static_cast<uint32_t>(rec.text.size()));
  out.append(rec.text);
  return out;
}

Result<WalRecordData> DecodeWalPayload(std::string_view payload) {
  PayloadReader reader(payload);
  WalRecordData rec;
  uint8_t kind = 0, format = 0;
  uint16_t cube_len = 0;
  uint32_t header_len = 0, text_len = 0;
  if (!reader.GetU64(&rec.lsn) || !reader.GetU8(&kind) ||
      !reader.GetU64(&rec.epoch) || !reader.GetU8(&format) ||
      !reader.GetU8(&rec.flags) || !reader.GetU16(&cube_len) ||
      !reader.GetBytes(cube_len, &rec.cube) ||
      !reader.GetU32(&rec.row_count) || !reader.GetU32(&header_len) ||
      !reader.GetBytes(header_len, &rec.header) ||
      !reader.GetU32(&text_len) || !reader.GetBytes(text_len, &rec.text)) {
    return Status::CorruptWal("WAL record payload is truncated");
  }
  if (!reader.AtEnd()) {
    return Status::CorruptWal("WAL record payload has trailing bytes");
  }
  if (kind != static_cast<uint8_t>(WalRecordKind::kIngestBatch)) {
    return Status::CorruptWal("WAL record has unknown kind " +
                              std::to_string(kind));
  }
  if (format != static_cast<uint8_t>(IngestFormat::kCsv) &&
      format != static_cast<uint8_t>(IngestFormat::kJsonl)) {
    return Status::CorruptWal("WAL record has unknown ingest format " +
                              std::to_string(format));
  }
  rec.kind = static_cast<WalRecordKind>(kind);
  rec.format = static_cast<IngestFormat>(format);
  return rec;
}

// ---------------------------------------------------------------------------
// WriteAheadLog
// ---------------------------------------------------------------------------

WriteAheadLog::WriteAheadLog(std::string dir, WalOptions options,
                             uint64_t next_lsn)
    : dir_(std::move(dir)), options_(options), next_lsn_(next_lsn) {
  written_seq_ = durable_seq_ = next_lsn_ - 1;
}

WriteAheadLog::~WriteAheadLog() {
  std::unique_lock<std::mutex> lock(mu_);
  sync_cv_.wait(lock, [this] { return !sync_in_flight_; });
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    std::string wal_dir, WalOptions options, uint64_t next_lsn) {
  if (next_lsn == 0) {
    return Status::InvalidArgument("WAL LSNs start at 1");
  }
  std::error_code ec;
  fs::create_directories(wal_dir, ec);
  if (ec) {
    return Status::Internal("cannot create WAL directory '" + wal_dir +
                            "': " + ec.message());
  }
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(std::move(wal_dir), options, next_lsn));
  {
    std::unique_lock<std::mutex> lock(wal->mu_);
    ASSESS_RETURN_NOT_OK(wal->OpenSegmentLocked());
  }
  // The new (empty) segment's directory entry must itself be durable:
  // otherwise a crash right after a durable append could lose the whole
  // file, not just a tail.
  ASSESS_RETURN_NOT_OK(FsyncPath(wal->dir_));
  return wal;
}

Status WriteAheadLog::OpenSegmentLocked() {
  segment_path_ =
      (fs::path(dir_) / SegmentName(next_lsn_)).string();
  int fd;
  do {
    fd = ::open(segment_path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::Internal("cannot create WAL segment '" + segment_path_ +
                            "': " + std::strerror(errno));
  }
  std::string header(kSegmentMagic, sizeof(kSegmentMagic));
  PutU64(&header, next_lsn_);
  ssize_t n = ::write(fd, header.data(), header.size());
  if (n != static_cast<ssize_t>(header.size())) {
    ::close(fd);
    return Status::Internal("cannot write WAL segment header to '" +
                            segment_path_ + "'");
  }
  fd_ = fd;
  segment_offset_ = static_cast<int64_t>(header.size());
  return Status::OK();
}

Status WriteAheadLog::WriteFrameLocked(const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload.data(), payload.size()));
  frame.append(payload);

  const int64_t base = segment_offset_;
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Roll the partial frame back so the file, if it survives, has no
      // half-written record; then poison the log (see header).
      ::ftruncate(fd_, base);
      return Status::Internal(std::string("WAL write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  segment_offset_ = base + static_cast<int64_t>(frame.size());
  bytes_written_ += frame.size();
  WalBytesTotal().Inc(frame.size());
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Append(const WalRecordData& rec) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  // Chaos site: fails the append *before* any byte reaches the file — the
  // caller's batch is simply not durable (and must not publish), but the
  // log itself stays healthy for the next committer.
  ASSESS_FAILPOINT("wal.append");

  WalRecordData stamped = rec;
  stamped.lsn = next_lsn_;
  const std::string payload = EncodeWalPayload(stamped);
  Status wrote = WriteFrameLocked(payload);
  if (!wrote.ok()) {
    poisoned_ = Status::Unavailable(
        "WAL poisoned by a failed write (" + wrote.message() +
        "); restart to recover");
    sync_cv_.notify_all();
    return wrote;
  }
  const uint64_t lsn = next_lsn_++;
  written_seq_ = lsn;
  appends_ += 1;
  WalAppendsTotal().Inc();

  switch (options_.fsync_mode) {
    case FsyncMode::kNone:
      // Never durable by policy; pretend it is so Sync() stays a no-op.
      durable_seq_ = lsn;
      return lsn;
    case FsyncMode::kAlways: {
      // One fsync per commit, serialized under the lock on purpose: this is
      // the honest no-coalescing baseline the group-commit bench compares
      // against.
      ASSESS_RETURN_NOT_OK(SyncLocked(&lock));
      return lsn;
    }
    case FsyncMode::kGroup:
      break;
  }

  // Group commit: whoever finds no sync in flight becomes the leader and
  // fsyncs everything written so far (possibly covering many followers'
  // records); everyone else waits for durable_seq_ to reach their LSN.
  while (durable_seq_ < lsn) {
    if (!poisoned_.ok()) return poisoned_;
    if (!sync_in_flight_) {
      ASSESS_RETURN_NOT_OK(SyncLocked(&lock));
    } else {
      sync_cv_.wait(lock);
    }
  }
  // Sticky leader: records appended while the last fsync ran are sitting
  // undurable with no sync in flight. Starting the next round from here —
  // already holding the lock — keeps the disk busy; otherwise it idles
  // until a woken follower gets scheduled and elects itself. One round
  // only, so no appender is delayed unboundedly; a failure poisons the
  // log for the waiters it concerns, while this record is already durable.
  if (!sync_in_flight_ && durable_seq_ < written_seq_ && poisoned_.ok()) {
    (void)SyncLocked(&lock);
  }
  return lsn;
}

Status WriteAheadLog::SyncLocked(std::unique_lock<std::mutex>* lock) {
  const uint64_t target = written_seq_;
  if (durable_seq_ >= target) return Status::OK();
  sync_in_flight_ = true;
  const int fd = fd_;
  lock->unlock();

  Status synced = [&]() -> Status {
    // Chaos site: a failed fsync means bytes of unknown durability — the
    // log is poisoned below and every later append refused.
    ASSESS_FAILPOINT("wal.fsync");
    Span span("wal.fsync");
    Status st = FsyncFd(fd, "WAL segment");
    span.AddInt("through_lsn", static_cast<int64_t>(target));
    return st;
  }();

  lock->lock();
  sync_in_flight_ = false;
  if (synced.ok()) {
    durable_seq_ = std::max(durable_seq_, target);
    fsyncs_ += 1;
    WalFsyncsTotal().Inc();
  } else {
    poisoned_ = Status::Unavailable("WAL poisoned by a failed fsync (" +
                                    synced.message() +
                                    "); restart to recover");
  }
  sync_cv_.notify_all();
  return synced;
}

Status WriteAheadLog::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  if (options_.fsync_mode == FsyncMode::kNone) return Status::OK();
  while (durable_seq_ < written_seq_) {
    if (!poisoned_.ok()) return poisoned_;
    if (!sync_in_flight_) {
      ASSESS_RETURN_NOT_OK(SyncLocked(&lock));
    } else {
      sync_cv_.wait(lock);
    }
  }
  return Status::OK();
}

Status WriteAheadLog::StartNewSegment() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  sync_cv_.wait(lock, [this] { return !sync_in_flight_; });
  // Seal: everything in the old segment durable before the switch, so
  // deleting it after a later checkpoint can never lose a record.
  if (options_.fsync_mode != FsyncMode::kNone &&
      durable_seq_ < written_seq_) {
    ASSESS_RETURN_NOT_OK(SyncLocked(&lock));
  }
  ::close(fd_);
  fd_ = -1;
  ASSESS_RETURN_NOT_OK(OpenSegmentLocked());
  lock.unlock();
  return FsyncPath(dir_);
}

Status WriteAheadLog::DeleteSegmentsBelow(uint64_t lsn_exclusive) {
  std::string active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = segment_path_;
  }
  // A segment is deletable when the *next* segment starts at or below
  // lsn_exclusive (then every record in it has LSN < lsn_exclusive).
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint64_t first = 0;
    const std::string name = entry.path().filename().string();
    if (ParseSegmentName(name, &first)) {
      segments.emplace_back(first, entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("cannot list WAL directory '" + dir_ +
                            "': " + ec.message());
  }
  std::sort(segments.begin(), segments.end());
  bool removed = false;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i].second == active) continue;
    if (segments[i + 1].first <= lsn_exclusive) {
      std::error_code rm;
      fs::remove(segments[i].second, rm);
      removed = true;
    }
  }
  if (removed) return FsyncPath(dir_);
  return Status::OK();
}

uint64_t WriteAheadLog::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t WriteAheadLog::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

WalStats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats stats;
  stats.appends = appends_;
  stats.fsyncs = fsyncs_;
  stats.bytes_written = bytes_written_;
  return stats;
}

// ---------------------------------------------------------------------------
// ScanWal
// ---------------------------------------------------------------------------

namespace {

/// Truncates `path` to `keep` bytes (torn-tail repair).
Status TruncateSegment(const std::string& path, int64_t keep) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::Internal("cannot open '" + path +
                            "' for truncation: " + std::strerror(errno));
  }
  int rc = ::ftruncate(fd, keep);
  Status st = rc == 0 ? FsyncFd(fd, path)
                      : Status::Internal("cannot truncate '" + path +
                                         "': " + std::strerror(errno));
  ::close(fd);
  return st;
}

}  // namespace

Status ScanWal(const std::string& wal_dir, uint64_t after_lsn, bool repair,
               const std::function<Status(const WalRecordData&)>& fn,
               WalScanReport* report) {
  *report = WalScanReport{};
  std::error_code ec;
  if (!fs::exists(wal_dir, ec)) return Status::OK();

  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(wal_dir, ec)) {
    uint64_t first = 0;
    const std::string name = entry.path().filename().string();
    if (ParseSegmentName(name, &first)) {
      segments.emplace_back(first, entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("cannot list WAL directory '" + wal_dir +
                            "': " + ec.message());
  }
  std::sort(segments.begin(), segments.end());

  uint64_t expected_lsn = 0;  // 0 = not yet established
  for (size_t s = 0; s < segments.size(); ++s) {
    const bool last_segment = s + 1 == segments.size();
    const std::string& path = segments[s].second;
    std::string data;
    ASSESS_RETURN_NOT_OK(ReadFileToString(path, &data));

    auto torn_tail = [&](size_t valid_end, const std::string& why) -> Status {
      if (!last_segment) {
        return Status::CorruptWal("WAL segment '" + path + "': " + why +
                                  " in a non-final segment");
      }
      report->tail_truncated = true;
      report->truncated_bytes = data.size() - valid_end;
      report->tail_note = "torn WAL tail in '" + path + "': " + why + "; " +
                          std::to_string(report->truncated_bytes) +
                          " trailing bytes dropped";
      if (repair) {
        ASSESS_RETURN_NOT_OK(
            TruncateSegment(path, static_cast<int64_t>(valid_end)));
      }
      return Status::OK();
    };

    // Segment header. A header torn mid-write can only happen to the
    // newest segment (older ones were sealed with an fsync).
    if (data.size() < kSegmentHeaderBytes ||
        std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
      if (data.size() < kSegmentHeaderBytes) {
        ASSESS_RETURN_NOT_OK(torn_tail(0, "incomplete segment header"));
        if (repair) {
          std::error_code rm;
          fs::remove(path, rm);  // a headerless segment holds nothing
        }
        break;
      }
      return Status::CorruptWal("WAL segment '" + path +
                                "' has a bad magic header");
    }
    const uint64_t first_lsn = ReadU64At(data, sizeof(kSegmentMagic));
    if (first_lsn != segments[s].first) {
      return Status::CorruptWal("WAL segment '" + path +
                                "' header LSN does not match its file name");
    }
    if (expected_lsn != 0 && first_lsn != expected_lsn) {
      return Status::CorruptWal(
          "WAL is missing records: segment '" + path + "' starts at LSN " +
          std::to_string(first_lsn) + " but LSN " +
          std::to_string(expected_lsn) + " was expected");
    }
    if (expected_lsn == 0 && first_lsn > after_lsn + 1) {
      return Status::CorruptWal(
          "WAL is missing records: the oldest segment starts at LSN " +
          std::to_string(first_lsn) + " but the checkpoint covers only up "
          "to LSN " + std::to_string(after_lsn));
    }
    expected_lsn = first_lsn;

    size_t pos = kSegmentHeaderBytes;
    bool stop = false;
    while (pos < data.size()) {
      if (pos + kFrameHeaderBytes > data.size()) {
        ASSESS_RETURN_NOT_OK(torn_tail(pos, "incomplete record frame"));
        stop = true;
        break;
      }
      const uint32_t len = ReadU32At(data, pos);
      const uint32_t crc = ReadU32At(data, pos + 4);
      if (pos + kFrameHeaderBytes + len > data.size()) {
        ASSESS_RETURN_NOT_OK(
            torn_tail(pos, "record runs past end of file"));
        stop = true;
        break;
      }
      const char* payload = data.data() + pos + kFrameHeaderBytes;
      if (Crc32c(payload, len) != crc) {
        const bool at_eof = pos + kFrameHeaderBytes + len == data.size();
        if (at_eof) {
          // The final record's sectors may land out of order; a CRC failure
          // with nothing after it is indistinguishable from a torn write.
          ASSESS_RETURN_NOT_OK(
              torn_tail(pos, "final record failed its CRC32C check"));
          stop = true;
          break;
        }
        return Status::CorruptWal(
            "WAL segment '" + path + "': record at offset " +
            std::to_string(pos) +
            " failed its CRC32C check with valid data following it");
      }
      ASSESS_ASSIGN_OR_RETURN(
          WalRecordData rec,
          DecodeWalPayload(std::string_view(payload, len)));
      if (rec.lsn != expected_lsn) {
        return Status::CorruptWal(
            "WAL segment '" + path + "': record at offset " +
            std::to_string(pos) + " carries LSN " + std::to_string(rec.lsn) +
            " where " + std::to_string(expected_lsn) + " was expected");
      }
      report->records += 1;
      report->last_lsn = rec.lsn;
      if (rec.lsn > after_lsn && fn != nullptr) {
        ASSESS_RETURN_NOT_OK(fn(rec));
        report->replayed += 1;
      }
      expected_lsn += 1;
      pos += kFrameHeaderBytes + len;
    }
    if (stop) break;
  }
  return Status::OK();
}

}  // namespace assess
