#include "wal/durability.h"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "ingest/ingestor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wal/checkpoint.h"

namespace assess {

namespace fs = std::filesystem;

namespace {

Counter& CheckpointsTotal() {
  static Counter* c = MetricsRegistry::Instance().GetCounter(
      "assess_checkpoints_total", "Checkpoints published");
  return *c;
}

Counter& ReplayedRecordsTotal() {
  static Counter* c = MetricsRegistry::Instance().GetCounter(
      "assess_wal_replayed_records_total",
      "WAL records replayed by startup recovery");
  return *c;
}

Counter& TruncatedBytesTotal() {
  static Counter* c = MetricsRegistry::Instance().GetCounter(
      "assess_wal_truncated_bytes_total",
      "Torn-tail WAL bytes dropped by startup recovery");
  return *c;
}

/// Re-ingests one WAL record through the ordinary commit path and
/// cross-checks the outcome against what the record promises. Any
/// divergence is typed corruption: the record carried a valid CRC, so a
/// replay mismatch means the checkpoint and the log disagree.
Status ReplayRecord(StarDatabase* db, const WalRecordData& rec) {
  if (rec.kind != WalRecordKind::kIngestBatch) {
    return Status::CorruptWal("WAL record " + std::to_string(rec.lsn) +
                              " has unknown kind");
  }
  IngestOptions opts;
  opts.format = rec.format;
  opts.auto_insert_members = (rec.flags & kWalFlagAutoInsert) != 0;
  // One atomic batch, exactly as it originally committed.
  opts.batch_rows = std::max<int64_t>(rec.row_count, 1);
  opts.max_errors = 0;
  Ingestor ingestor(db, /*cache=*/nullptr, opts);
  std::string text;
  if (rec.format == IngestFormat::kCsv) {
    text.reserve(rec.header.size() + 1 + rec.text.size());
    text += rec.header;
    text += '\n';
    text += rec.text;
  } else {
    text = rec.text;
  }
  Result<IngestStats> stats = ingestor.IngestText(rec.cube, text);
  if (!stats.ok()) {
    return Status::CorruptWal("replay of WAL record " +
                              std::to_string(rec.lsn) + " (cube '" +
                              rec.cube + "') failed: " +
                              stats.status().ToString());
  }
  if (stats->rows_ingested != rec.row_count || stats->epoch != rec.epoch) {
    return Status::CorruptWal(
        "replay of WAL record " + std::to_string(rec.lsn) + " diverged: "
        "record committed " + std::to_string(rec.row_count) +
        " rows at epoch " + std::to_string(rec.epoch) + ", replay produced " +
        std::to_string(stats->rows_ingested) + " rows at epoch " +
        std::to_string(stats->epoch));
  }
  return Status::OK();
}

}  // namespace

DurabilityManager::DurabilityManager(std::string data_dir,
                                     DurabilityOptions options)
    : data_dir_(std::move(data_dir)),
      wal_dir_((fs::path(data_dir_) / "wal").string()),
      options_(options) {}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const std::string& data_dir, DurabilityOptions options,
    const Bootstrap& bootstrap) {
  std::error_code ec;
  fs::create_directories(data_dir, ec);
  if (ec) {
    return Status::Internal("cannot create data directory '" + data_dir +
                            "': " + ec.message());
  }
  std::unique_ptr<DurabilityManager> mgr(
      new DurabilityManager(data_dir, options));
  fs::create_directories(mgr->wal_dir_, ec);
  if (ec) {
    return Status::Internal("cannot create WAL directory '" + mgr->wal_dir_ +
                            "': " + ec.message());
  }

  Result<uint64_t> current = ReadCurrentCheckpoint(data_dir);
  uint64_t next_lsn = 1;
  if (!current.ok() && current.status().code() == StatusCode::kNotFound) {
    // First boot: build the database and seal it as checkpoint 1, so even a
    // crash before the first ingest recovers to a well-defined state.
    ASSESS_ASSIGN_OR_RETURN(mgr->db_, bootstrap());
    if (mgr->db_ == nullptr) {
      return Status::Internal("durability bootstrap produced no database");
    }
    CheckpointMeta meta;
    meta.wal_lsn = 0;
    std::vector<std::string> names = mgr->db_->CubeNames();
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      ASSESS_ASSIGN_OR_RETURN(const BoundCube* cube, mgr->db_->Find(name));
      meta.cube_epochs.emplace_back(name, cube->facts().epoch());
    }
    ASSESS_RETURN_NOT_OK(WriteCheckpoint(*mgr->db_, data_dir, 1, meta));
    ASSESS_RETURN_NOT_OK(PublishCurrentCheckpoint(data_dir, 1));
    mgr->last_checkpoint_seq_ = 1;
    mgr->recovery_.fresh_start = true;
    mgr->recovery_.checkpoint_seq = 1;
  } else {
    ASSESS_RETURN_NOT_OK(current.status());
    Span span("wal.recover");
    ASSESS_ASSIGN_OR_RETURN(LoadedCheckpoint loaded,
                            LoadCheckpoint(data_dir, *current));
    mgr->db_ = std::move(loaded.db);
    WalScanReport report;
    StarDatabase* db = mgr->db_.get();
    ASSESS_RETURN_NOT_OK(ScanWal(
        mgr->wal_dir_, loaded.meta.wal_lsn, /*repair=*/true,
        [db](const WalRecordData& rec) { return ReplayRecord(db, rec); },
        &report));
    mgr->last_checkpoint_seq_ = *current;
    mgr->recovery_.checkpoint_seq = *current;
    mgr->recovery_.checkpoint_lsn = loaded.meta.wal_lsn;
    mgr->recovery_.replayed_records = report.replayed;
    mgr->recovery_.truncated_bytes = report.truncated_bytes;
    mgr->recovery_.tail_truncated = report.tail_truncated;
    mgr->recovery_.tail_note = report.tail_note;
    ReplayedRecordsTotal().Inc(report.replayed);
    TruncatedBytesTotal().Inc(report.truncated_bytes);
    span.AddInt("replayed", static_cast<int64_t>(report.replayed));
    span.AddInt("truncated_bytes",
                static_cast<int64_t>(report.truncated_bytes));
    next_lsn = std::max(report.last_lsn, loaded.meta.wal_lsn) + 1;
  }

  ASSESS_ASSIGN_OR_RETURN(
      mgr->wal_, WriteAheadLog::Open(mgr->wal_dir_, options.wal, next_lsn));
  // Sweep what older runs left behind: superseded checkpoints and orphaned
  // snapshot attempts. Best-effort.
  (void)GarbageCollectCheckpoints(data_dir, mgr->last_checkpoint_seq_);
  return mgr;
}

Status DurabilityManager::OnCommit(const IngestCommit& commit) {
  WalRecordData rec;
  rec.kind = WalRecordKind::kIngestBatch;
  rec.epoch = commit.epoch;
  rec.format = commit.format;
  rec.flags = commit.auto_insert ? kWalFlagAutoInsert : 0;
  rec.cube = *commit.cube;
  rec.row_count = commit.row_count;
  rec.header = *commit.header;
  rec.text = *commit.text;
  ASSESS_ASSIGN_OR_RETURN(uint64_t lsn, wal_->Append(rec));
  (void)lsn;
  return Status::OK();
}

Status DurabilityManager::Flush() { return wal_->Sync(); }

bool DurabilityManager::ShouldCheckpoint() const {
  if (options_.checkpoint_wal_bytes <= 0) return false;
  const uint64_t written = wal_->stats().bytes_written;
  const uint64_t base =
      wal_bytes_at_checkpoint_.load(std::memory_order_relaxed);
  return written - base >=
         static_cast<uint64_t>(options_.checkpoint_wal_bytes);
}

Status DurabilityManager::Checkpoint() {
  std::lock_guard<std::mutex> cp_lock(checkpoint_mu_);
  Span span("checkpoint");

  // Freeze every appender: all ingest mutexes (sorted by cube name for a
  // deterministic multi-lock order — single-cube commits take one of these
  // then the schema lock, same order as here) plus the schema lock shared,
  // because the save reads dimension tables and hierarchy dictionaries.
  std::vector<std::string> names = db_->CubeNames();
  std::sort(names.begin(), names.end());
  std::vector<std::unique_lock<std::mutex>> ingest_locks;
  ingest_locks.reserve(names.size());
  for (const std::string& name : names) {
    ASSESS_ASSIGN_OR_RETURN(BoundCube * cube, db_->FindMutable(name));
    ingest_locks.emplace_back(cube->ingest_mutex());
  }
  std::shared_lock<std::shared_mutex> schema_lock(db_->schema_mutex());

  CheckpointMeta meta;
  meta.wal_lsn = wal_->last_lsn();
  for (const std::string& name : names) {
    ASSESS_ASSIGN_OR_RETURN(const BoundCube* cube, db_->Find(name));
    meta.cube_epochs.emplace_back(name, cube->facts().epoch());
  }

  // Rotate before the snapshot is cut: everything the snapshot covers sits
  // in sealed segments the truncate step may delete; post-checkpoint
  // records land in the fresh segment. If the snapshot fails, the sealed
  // segments simply stay and replay like any others.
  ASSESS_RETURN_NOT_OK(wal_->StartNewSegment());

  const uint64_t seq = last_checkpoint_seq_ + 1;
  ASSESS_RETURN_NOT_OK(WriteCheckpoint(*db_, data_dir_, seq, meta));
  ASSESS_RETURN_NOT_OK(PublishCurrentCheckpoint(data_dir_, seq));
  last_checkpoint_seq_ = seq;
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  CheckpointsTotal().Inc();
  wal_bytes_at_checkpoint_.store(wal_->stats().bytes_written,
                                 std::memory_order_relaxed);
  span.AddInt("seq", static_cast<int64_t>(seq));
  span.AddInt("wal_lsn", static_cast<int64_t>(meta.wal_lsn));

  // The appenders may resume; truncation and GC touch only what the new
  // checkpoint superseded.
  for (auto& lock : ingest_locks) lock.unlock();
  schema_lock.unlock();
  ASSESS_RETURN_NOT_OK(wal_->DeleteSegmentsBelow(meta.wal_lsn + 1));
  return GarbageCollectCheckpoints(data_dir_, seq);
}

}  // namespace assess
