#include "sqlgen/sql_generator.h"

#include <sstream>

#include "common/str_util.h"

namespace assess {

namespace {

std::string DimAlias(const Hierarchy& hierarchy) {
  return ToLower(hierarchy.name().substr(0, 1));
}

std::string Quoted(const std::string& member) { return "'" + member + "'"; }

}  // namespace

std::string SqlGenerator::FactAlias() const { return "f"; }

Result<std::vector<std::string>> SqlGenerator::GroupByLevels(
    const CubeQuery& query) const {
  std::vector<std::string> levels;
  for (int h = 0; h < schema_->hierarchy_count(); ++h) {
    if (!query.group_by.HasHierarchy(h)) continue;
    levels.push_back(
        schema_->hierarchy(h).level_name(query.group_by.LevelOf(h)));
  }
  return levels;
}

Result<std::string> SqlGenerator::SelectList(const CubeQuery& query,
                                             const std::string& indent) const {
  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> levels,
                          GroupByLevels(query));
  std::vector<std::string> items = levels;
  for (int m : query.measures) {
    const MeasureDef& def = schema_->measure(m);
    items.push_back(std::string(AggOpToString(def.op)) + "(" + def.name +
                    ") as " + def.name);
  }
  return indent + Join(items, ", ");
}

Result<std::string> SqlGenerator::FromJoins(const CubeQuery& query) const {
  std::ostringstream out;
  out << ToLower(query.cube_name) << " " << FactAlias();
  // Join only the dimensions the query touches.
  for (int h = 0; h < schema_->hierarchy_count(); ++h) {
    bool needed = query.group_by.HasHierarchy(h);
    for (const Predicate& p : query.predicates) {
      if (p.hierarchy == h) needed = true;
    }
    if (!needed) continue;
    const Hierarchy& hier = schema_->hierarchy(h);
    std::string alias = DimAlias(hier);
    std::string key = alias + "key";
    out << "\n  join " << ToLower(hier.name()) << " " << alias << " on "
        << alias << "." << key << " = " << FactAlias() << "." << key;
  }
  return out.str();
}

Result<std::string> SqlGenerator::WhereClause(const CubeQuery& query) const {
  if (query.predicates.empty()) return std::string();
  std::vector<std::string> conjuncts;
  for (const Predicate& p : query.predicates) {
    const Hierarchy& hier = schema_->hierarchy(p.hierarchy);
    std::string column = hier.level_name(p.level);
    switch (p.op) {
      case PredicateOp::kEquals:
        conjuncts.push_back(column + " = " + Quoted(p.members[0]));
        break;
      case PredicateOp::kIn: {
        std::vector<std::string> quoted;
        quoted.reserve(p.members.size());
        for (const std::string& m : p.members) quoted.push_back(Quoted(m));
        conjuncts.push_back(column + " in (" + Join(quoted, ", ") + ")");
        break;
      }
      case PredicateOp::kBetween:
        conjuncts.push_back(column + " between " + Quoted(p.members[0]) +
                            " and " + Quoted(p.members[1]));
        break;
    }
  }
  return "\nwhere " + Join(conjuncts, " and ");
}

Result<std::string> SqlGenerator::RenderGet(const CubeQuery& query) const {
  std::ostringstream out;
  ASSESS_ASSIGN_OR_RETURN(std::string select, SelectList(query, ""));
  ASSESS_ASSIGN_OR_RETURN(std::string from, FromJoins(query));
  ASSESS_ASSIGN_OR_RETURN(std::string where, WhereClause(query));
  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> group_by,
                          GroupByLevels(query));
  out << "select " << select << "\nfrom " << from << where;
  if (!group_by.empty()) out << "\ngroup by " << Join(group_by, ", ");
  return out.str();
}

Result<std::string> SqlGenerator::RenderJoin(
    const CubeQuery& target, const SqlGenerator& benchmark_gen,
    const CubeQuery& benchmark,
    const std::vector<std::string>& join_levels, bool left_outer) const {
  ASSESS_ASSIGN_OR_RETURN(std::string sql_c, RenderGet(target));
  ASSESS_ASSIGN_OR_RETURN(std::string sql_b,
                          benchmark_gen.RenderGet(benchmark));
  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> levels,
                          GroupByLevels(target));

  std::vector<std::string> select;
  for (const std::string& level : levels) select.push_back("t1." + level);
  for (int m : target.measures) {
    select.push_back("t1." + schema_->measure(m).name);
  }
  for (int m : benchmark.measures) {
    const std::string& name = benchmark_gen.schema().measure(m).name;
    select.push_back("t2." + name + " as bc_" + name);
  }

  std::vector<std::string> on;
  on.reserve(join_levels.size());
  for (const std::string& level : join_levels) {
    on.push_back("t1." + level + " = t2." + level);
  }
  std::ostringstream out;
  out << "select " << Join(select, ", ") << "\nfrom\n  (" << sql_c
      << ") t1\n  " << (left_outer ? "left join" : "join") << "\n  (" << sql_b
      << ") t2";
  if (!on.empty()) out << "\n  on " << Join(on, " and ");
  return out.str();
}

Result<std::string> SqlGenerator::RenderPivot(
    const CubeQuery& query_all, const std::string& level,
    const std::string& reference_member,
    const std::vector<std::string>& other_members,
    bool require_complete) const {
  ASSESS_ASSIGN_OR_RETURN(std::string inner, RenderGet(query_all));
  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> levels,
                          GroupByLevels(query_all));

  std::vector<std::string> select;
  select.push_back(Quoted(reference_member) + " as " + level);
  for (const std::string& l : levels) {
    if (l != level) select.push_back(l);
  }
  std::vector<std::string> measure_names;
  for (int m : query_all.measures) {
    measure_names.push_back(schema_->measure(m).name);
  }
  for (const std::string& m : measure_names) {
    select.push_back(m);
    for (size_t i = 0; i < other_members.size(); ++i) {
      select.push_back("bc_" + m + (other_members.size() > 1
                                        ? "_" + std::to_string(i + 1)
                                        : ""));
    }
  }

  std::ostringstream out;
  out << "select " << Join(select, ", ") << "\nfrom\n  (" << inner << ")";
  out << "\npivot (";
  std::vector<std::string> aggs;
  for (int m : query_all.measures) {
    const MeasureDef& def = schema_->measure(m);
    aggs.push_back(std::string(AggOpToString(def.op)) + "(" + def.name + ")");
  }
  out << Join(aggs, ", ") << " for " << level << "\n  in ("
      << Quoted(reference_member) << " as "
      << Join(measure_names, ", ");
  for (size_t i = 0; i < other_members.size(); ++i) {
    out << ", " << Quoted(other_members[i]) << " as ";
    std::vector<std::string> renamed;
    for (const std::string& m : measure_names) {
      renamed.push_back("bc_" + m + (other_members.size() > 1
                                         ? "_" + std::to_string(i + 1)
                                         : ""));
    }
    out << Join(renamed, ", ");
  }
  out << ")\n)";
  if (require_complete) {
    std::vector<std::string> not_null;
    for (const std::string& m : measure_names) {
      not_null.push_back(m + " is not null");
      for (size_t i = 0; i < other_members.size(); ++i) {
        not_null.push_back("bc_" + m +
                           (other_members.size() > 1
                                ? "_" + std::to_string(i + 1)
                                : "") +
                           " is not null");
      }
    }
    out << "\nwhere " << Join(not_null, " and ");
  }
  return out.str();
}

}  // namespace assess
