#ifndef ASSESS_SQLGEN_SQL_GENERATOR_H_
#define ASSESS_SQLGEN_SQL_GENERATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "olap/cube_query.h"

namespace assess {

/// \brief Renders the SQL that the paper's prototype would push to the DBMS
/// for each engine entry point, over the standard star-schema naming scheme:
/// the fact table is the lower-cased cube name, each dimension table the
/// lower-cased hierarchy name, keys are "<initial>key" (c.ckey, p.pkey, ...)
/// and level columns carry the level names — the conventions of Listings
/// 1, 4 and 5.
///
/// The generated text is used (a) to show users the pushed-down queries,
/// and (b) as the SQL side of the formulation-effort metric of Table 1.
class SqlGenerator {
 public:
  explicit SqlGenerator(const CubeSchema* schema) : schema_(schema) {}

  const CubeSchema& schema() const { return *schema_; }

  /// \brief SQL of a single get (Listing 1).
  Result<std::string> RenderGet(const CubeQuery& query) const;

  /// \brief SQL of a pushed-down join of two gets (Listing 4): two inner
  /// subqueries t1/t2 joined on `join_levels`. `benchmark_gen` renders the
  /// benchmark side (it differs from *this for external benchmarks, whose
  /// measures live in another schema).
  Result<std::string> RenderJoin(const CubeQuery& target,
                                 const SqlGenerator& benchmark_gen,
                                 const CubeQuery& benchmark,
                                 const std::vector<std::string>& join_levels,
                                 bool left_outer) const;

  /// \brief SQL of a pushed-down pivot (Listing 5): one subquery over all
  /// slices plus a PIVOT clause keeping `reference_member`.
  Result<std::string> RenderPivot(
      const CubeQuery& query_all, const std::string& level,
      const std::string& reference_member,
      const std::vector<std::string>& other_members,
      bool require_complete) const;

 private:
  std::string FactAlias() const;
  Result<std::string> SelectList(const CubeQuery& query,
                                 const std::string& indent) const;
  Result<std::string> FromJoins(const CubeQuery& query) const;
  Result<std::string> WhereClause(const CubeQuery& query) const;
  Result<std::vector<std::string>> GroupByLevels(const CubeQuery& query) const;

  const CubeSchema* schema_;
};

}  // namespace assess

#endif  // ASSESS_SQLGEN_SQL_GENERATOR_H_
