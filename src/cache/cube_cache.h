#ifndef ASSESS_CACHE_CUBE_CACHE_H_
#define ASSESS_CACHE_CUBE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/query_fingerprint.h"
#include "olap/cube.h"
#include "olap/cube_schema.h"

namespace assess {

/// \brief Sizing knobs of the result cache.
struct CacheOptions {
  /// Total byte budget across all shards; LRU entries are evicted past it.
  size_t budget_bytes = size_t{64} << 20;
  /// Number of independently locked shards (clamped to >= 1). Keys are
  /// distributed by fingerprint hash, so concurrent sessions rarely contend.
  int shards = 8;
};

/// \brief Monotonic counters and residency gauges of the cache, readable at
/// any time (each counter is an independent atomic, so a snapshot taken
/// under concurrent traffic is per-field accurate but not globally atomic).
struct CacheStats {
  uint64_t lookups = 0;            ///< Execute() calls that consulted the cache
  uint64_t exact_hits = 0;         ///< answered by fingerprint identity
  uint64_t subsumption_hits = 0;   ///< answered by re-aggregating a finer entry
  uint64_t misses = 0;             ///< fell through to the engine scan
  uint64_t insertions = 0;         ///< entries stored (replacements included)
  uint64_t evictions = 0;          ///< entries dropped by the byte budget
  uint64_t epoch_invalidations = 0;  ///< entries swept by InvalidateEpochsBefore
  size_t bytes_resident = 0;       ///< estimated bytes currently held
  size_t entries = 0;              ///< entries currently held

  uint64_t hits() const { return exact_hits + subsumption_hits; }
};

/// \brief A sharded, thread-safe, byte-budgeted LRU cache of cube-query
/// results: the dynamic generalization of the static materialized views in
/// storage/materialized_view.h. Entries are keyed by canonical query
/// fingerprint; lookups either match exactly or find a finer-grained entry
/// whose result subsumes the request (see EntryAnswersQuery) for
/// client-side re-aggregation.
///
/// Mutable fact tables are handled by epoch keying: the engine stamps every
/// entry with the fact epoch it was computed at (part of the fingerprint,
/// checked again by subsumption), so entries from superseded epochs can
/// never answer a query — they merely occupy budget until the LRU or an
/// InvalidateEpochsBefore sweep reclaims them.
class CubeResultCache {
 public:
  explicit CubeResultCache(CacheOptions options = {});

  /// A copied-out cache entry: the canonical query it answers plus its
  /// result cube (measure columns named with schema measure names).
  struct Snapshot {
    CanonicalQuery query;
    Cube cube;
  };

  /// \brief Exact lookup by fingerprint key. Counts a lookup; on hit the
  /// entry is bumped to most-recently-used and its cube copied out.
  std::optional<Cube> FindExact(const std::string& key);

  /// \brief Whether an entry exists under `key`, without copying it, bumping
  /// its LRU position or counting a lookup. The MQO collector uses this to
  /// drop already-answered subplans from a shared-scan group cheaply.
  bool Contains(const std::string& key) const;

  /// \brief Subsumption lookup: among entries on `want.cube_name`, returns
  /// a copy of the smallest (fewest rows) entry that answers `want` per
  /// EntryAnswersQuery, or nullopt. Call after FindExact missed; counts the
  /// subsumption hit or the overall miss.
  std::optional<Snapshot> FindSubsuming(const CubeSchema& schema,
                                        const CanonicalQuery& want);

  /// \brief Stores `cube` as the result of `query` under `key`, replacing
  /// any previous entry, then evicts least-recently-used entries until the
  /// shard is back under budget. Entries bigger than a whole shard's budget
  /// are not stored (they would only thrash the LRU list).
  void Insert(const std::string& key, CanonicalQuery query, const Cube& cube);

  /// \brief Drops every entry.
  void Clear();

  /// \brief Sweeps entries of `cube_name` whose epoch predates `epoch` —
  /// the ingest commit's eager reclamation of results its append just made
  /// stale. Pure memory hygiene: epoch keying already makes such entries
  /// unreachable. Returns the number of entries dropped (also counted in
  /// stats and the assess_cache_epoch_invalidations_total metric).
  size_t InvalidateEpochsBefore(std::string_view cube_name, uint64_t epoch);

  CacheStats stats() const;

  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    std::string key;
    CanonicalQuery query;
    Cube cube;
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t budget_bytes_;
  size_t shard_budget_;
  std::vector<Shard> shards_;

  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> exact_hits_{0};
  mutable std::atomic<uint64_t> subsumption_hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> insertions_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> epoch_invalidations_{0};
};

/// \brief True when a cached result for `entry` can answer `want` by
/// client-side re-aggregation: same cube; the entry's group-by is
/// finer-or-equal (RollupAnswersQuery, shared with the materialized-view
/// picker, which also enforces that avg measures disqualify); the entry's
/// predicates are a subset of the request's (so the request's conjunction
/// implies the entry's and the entry's rows are a superset of the rows
/// needed); every *extra* request predicate sits on a level coarser-or-equal
/// than the entry's group-by level so it can be re-evaluated on the entry's
/// cells; and the requested measures are a subset of the entry's. Entries
/// from a different fact epoch never answer: their cube had different
/// contents.
bool EntryAnswersQuery(const CubeSchema& schema, const CanonicalQuery& want,
                       const CanonicalQuery& entry);

/// \brief Estimated resident size of a cached cube (coordinate columns,
/// measure columns, names and fixed bookkeeping).
size_t EstimateCubeBytes(const Cube& cube);

}  // namespace assess

#endif  // ASSESS_CACHE_CUBE_CACHE_H_
