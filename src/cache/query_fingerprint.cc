#include "cache/query_fingerprint.h"

#include <algorithm>

namespace assess {

namespace {

void AppendLengthPrefixed(std::string_view s, std::string* out) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

}  // namespace

std::string PredicateKey(const Predicate& predicate) {
  std::string key;
  key.push_back('p');
  key.append(std::to_string(predicate.hierarchy));
  key.push_back('.');
  key.append(std::to_string(predicate.level));
  key.push_back('.');
  key.append(std::to_string(static_cast<int>(predicate.op)));
  key.push_back('[');
  for (const std::string& m : predicate.members) AppendLengthPrefixed(m, &key);
  key.push_back(']');
  return key;
}

CanonicalQuery CanonicalizeQuery(const CubeQuery& query) {
  CanonicalQuery canon;
  canon.cube_name = query.cube_name;
  canon.group_by = query.group_by;

  canon.predicates = query.predicates;
  for (Predicate& p : canon.predicates) {
    // IN member order is immaterial; BETWEEN bounds are positional.
    if (p.op == PredicateOp::kIn) {
      std::sort(p.members.begin(), p.members.end());
      p.members.erase(std::unique(p.members.begin(), p.members.end()),
                      p.members.end());
      if (p.members.size() == 1) p.op = PredicateOp::kEquals;
    }
  }
  std::sort(canon.predicates.begin(), canon.predicates.end(),
            [](const Predicate& a, const Predicate& b) {
              return PredicateKey(a) < PredicateKey(b);
            });
  canon.predicates.erase(
      std::unique(canon.predicates.begin(), canon.predicates.end(),
                  [](const Predicate& a, const Predicate& b) {
                    return PredicateKey(a) == PredicateKey(b);
                  }),
      canon.predicates.end());

  canon.measures = query.measures;
  std::sort(canon.measures.begin(), canon.measures.end());
  canon.measures.erase(
      std::unique(canon.measures.begin(), canon.measures.end()),
      canon.measures.end());
  return canon;
}

std::string FingerprintKey(const CanonicalQuery& query) {
  std::string key;
  key.push_back('c');
  AppendLengthPrefixed(query.cube_name, &key);
  key.push_back('g');
  for (int h = 0; h < query.group_by.hierarchy_count(); ++h) {
    if (!query.group_by.HasHierarchy(h)) continue;
    key.append(std::to_string(h));
    key.push_back('.');
    key.append(std::to_string(query.group_by.LevelOf(h)));
    key.push_back(';');
  }
  for (const Predicate& p : query.predicates) key.append(PredicateKey(p));
  key.push_back('m');
  for (int m : query.measures) {
    key.append(std::to_string(m));
    key.push_back(',');
  }
  key.push_back('e');
  key.append(std::to_string(query.epoch));
  return key;
}

}  // namespace assess
