#ifndef ASSESS_CACHE_QUERY_FINGERPRINT_H_
#define ASSESS_CACHE_QUERY_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "olap/cube_query.h"
#include "olap/group_by_set.h"

namespace assess {

/// \brief The canonical form of a CubeQuery used as the cache identity:
/// textually different but semantically equivalent queries (same cube, same
/// group-by set, same predicate conjunction, same measure set) canonicalize
/// to the same value.
///
/// Normalizations applied:
///  - predicates are sorted by (hierarchy, level, op, members); IN member
///    lists are sorted and deduplicated; a one-member IN collapses to =;
///    duplicate predicates are dropped (conjunction is idempotent);
///  - measures are sorted and deduplicated (the cached cube carries named
///    columns, so any requested order can be projected back out);
///  - the alias is dropped (renaming happens client-side, after the get).
struct CanonicalQuery {
  std::string cube_name;
  GroupBySet group_by;
  std::vector<Predicate> predicates;
  std::vector<int> measures;
  /// The fact-table epoch the result was computed at. Not part of query
  /// canonicalization (CanonicalizeQuery leaves it 0); the engine stamps it
  /// from the admission snapshot before keying the cache, so entries from
  /// different table contents never collide and never answer each other.
  uint64_t epoch = 0;
};

CanonicalQuery CanonicalizeQuery(const CubeQuery& query);

/// \brief Collision-free stable encoding of one canonical predicate
/// (member names are length-prefixed); doubles as the sort/equality key.
std::string PredicateKey(const Predicate& predicate);

/// \brief Collision-free stable string key for a canonical query: the
/// cache's exact-match identity.
std::string FingerprintKey(const CanonicalQuery& query);

}  // namespace assess

#endif  // ASSESS_CACHE_QUERY_FINGERPRINT_H_
