#include "cache/cube_cache.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/materialized_view.h"

namespace assess {

CubeResultCache::CubeResultCache(CacheOptions options)
    : budget_bytes_(options.budget_bytes),
      shards_(std::max(options.shards, 1)) {
  shard_budget_ = budget_bytes_ / shards_.size();
}

CubeResultCache::Shard& CubeResultCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<Cube> CubeResultCache::FindExact(const std::string& key) {
  Span span("cache.lookup");
  lookups_.fetch_add(1, std::memory_order_relaxed);
  static Counter* const lookups_total =
      MetricsRegistry::Instance().GetCounter(
          "assess_cache_lookups_total",
          "Result-cache lookups across all cache instances");
  lookups_total->Inc();
  // A triggered lookup failpoint degrades to a miss: results must be
  // byte-identical with or without the cache's help.
  if (ASSESS_FAILPOINT_TRIGGERED("cache.lookup")) {
    span.AddInt("hit", 0);
    return std::nullopt;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    span.AddInt("hit", 0);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  exact_hits_.fetch_add(1, std::memory_order_relaxed);
  span.AddInt("hit", 1);
  return it->second->cube;
}

bool CubeResultCache::Contains(const std::string& key) const {
  const Shard& shard = shards_[std::hash<std::string>{}(key) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.index.count(key) > 0;
}

std::optional<CubeResultCache::Snapshot> CubeResultCache::FindSubsuming(
    const CubeSchema& schema, const CanonicalQuery& want) {
  Span span("cache.subsume");
  std::optional<Snapshot> best;
  int64_t best_rows = 0;
  if (ASSESS_FAILPOINT_TRIGGERED("cache.lookup")) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return best;
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
      if (!EntryAnswersQuery(schema, want, it->query)) continue;
      int64_t rows = it->cube.NumRows();
      if (best && rows >= best_rows) continue;
      best = Snapshot{it->query, it->cube};
      best_rows = rows;
      shard.lru.splice(shard.lru.begin(), shard.lru, it);
    }
  }
  if (best) {
    subsumption_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  span.AddInt("hit", best ? 1 : 0);
  return best;
}

void CubeResultCache::Insert(const std::string& key, CanonicalQuery query,
                             const Cube& cube) {
  if (ASSESS_FAILPOINT_TRIGGERED("cache.insert")) return;  // dropped insert
  Span span("cache.insert");
  size_t bytes = EstimateCubeBytes(cube) + key.size() + sizeof(Entry);
  span.AddInt("bytes", static_cast<int64_t>(bytes));
  if (bytes > shard_budget_) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, std::move(query), cube, bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CubeResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

size_t CubeResultCache::InvalidateEpochsBefore(std::string_view cube_name,
                                               uint64_t epoch) {
  static Counter* const invalidations_total =
      MetricsRegistry::Instance().GetCounter(
          "assess_cache_epoch_invalidations_total",
          "Cached results swept because their cube advanced past their epoch");
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->query.cube_name == cube_name && it->query.epoch < epoch) {
        shard.bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    epoch_invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    invalidations_total->Inc(static_cast<uint64_t>(dropped));
  }
  return dropped;
}

CacheStats CubeResultCache::stats() const {
  CacheStats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.exact_hits = exact_hits_.load(std::memory_order_relaxed);
  stats.subsumption_hits = subsumption_hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.epoch_invalidations =
      epoch_invalidations_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.bytes_resident += shard.bytes;
    stats.entries += shard.lru.size();
  }
  return stats;
}

bool EntryAnswersQuery(const CubeSchema& schema, const CanonicalQuery& want,
                       const CanonicalQuery& entry) {
  if (want.cube_name != entry.cube_name) return false;
  if (want.epoch != entry.epoch) return false;
  // Requested measures must all be present in the entry's result.
  if (!std::includes(entry.measures.begin(), entry.measures.end(),
                     want.measures.begin(), want.measures.end())) {
    return false;
  }
  // The entry's predicate conjunction must be implied by the request's:
  // every entry predicate appears canonically in the request, so the
  // entry's rows are a superset of the rows the request needs.
  std::unordered_set<std::string> want_keys;
  for (const Predicate& p : want.predicates) want_keys.insert(PredicateKey(p));
  std::unordered_set<std::string> entry_keys;
  for (const Predicate& p : entry.predicates) {
    const std::string key = PredicateKey(p);
    if (!want_keys.count(key)) return false;
    entry_keys.insert(key);
  }
  // The residual request (its group-by plus the extra predicates the entry
  // has not already applied) must be answerable by rolling the entry up —
  // the same rule that decides whether a materialized view answers a query.
  CubeQuery residual;
  residual.cube_name = want.cube_name;
  residual.group_by = want.group_by;
  residual.measures = want.measures;
  for (const Predicate& p : want.predicates) {
    if (!entry_keys.count(PredicateKey(p))) residual.predicates.push_back(p);
  }
  return RollupAnswersQuery(schema, residual, entry.group_by);
}

size_t EstimateCubeBytes(const Cube& cube) {
  size_t bytes = 0;
  const size_t rows = static_cast<size_t>(cube.NumRows());
  bytes += static_cast<size_t>(cube.level_count()) * rows * sizeof(MemberId);
  bytes += static_cast<size_t>(cube.measure_count()) * rows * sizeof(double);
  for (int m = 0; m < cube.measure_count(); ++m) {
    bytes += cube.measure_name(m).size() + sizeof(std::string);
  }
  bytes += static_cast<size_t>(cube.level_count()) * sizeof(LevelRef);
  return bytes;
}

}  // namespace assess
