#ifndef ASSESS_ALGEBRA_OPERATORS_H_
#define ASSESS_ALGEBRA_OPERATORS_H_

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "olap/cube.h"

namespace assess {

/// Client-side logical operators of Section 4.2, operating on materialized
/// Cube values (the paper's "in main memory" layer). All operators respect
/// the closure property: they consume cubes and produce cubes.

/// \brief Natural / partial join ⋈ (drill-across): joins `left` and `right`
/// on the axes named in `join_levels` (the full group-by set for the natural
/// join, a subset for the partial join ⋈_{l1..lm}). The output keeps the
/// left coordinates; right measures are renamed "<right_prefix>.<name>".
/// With `left_outer` (the assess* variant) non-matching left cells survive
/// with null right measures; one output row is emitted per matching pair.
Result<Cube> JoinCubes(const Cube& left, const Cube& right,
                       const std::vector<std::string>& join_levels,
                       const std::string& right_prefix, bool left_outer);

/// \brief Concatenating partial join: the general ⋈_{l1..lm} of the paper,
/// where all p cells of `right` matching a left cell contribute their
/// measures to one widened output row. Matches are ordered by the right
/// cube's `order_level` member ids (chronological for temporal levels) and
/// renamed `slot_names[slot][measure]`; `expected` fixes p. When
/// `require_complete`, left cells with fewer than `expected` matches are
/// dropped; otherwise missing slots are null.
Result<Cube> ConcatJoinCubes(const Cube& left, const Cube& right,
                             const std::vector<std::string>& join_levels,
                             const std::string& order_level, int expected,
                             const std::vector<std::vector<std::string>>&
                                 slot_names,
                             bool require_complete);

/// \brief Client-side pivot ⊞: folds the slices of `level` for
/// `other_members` into extra measures named `slot_names[slot][measure]`,
/// keeping only the `reference_member` slice (Definition in Section 4.2,
/// Figure 2). `require_complete` mirrors Listing 5's NOT NULL filter.
Result<Cube> PivotCube(const Cube& cube, const std::string& level,
                       const std::string& reference_member,
                       const std::vector<std::string>& other_members,
                       const std::vector<std::vector<std::string>>& slot_names,
                       bool require_complete);

/// \brief Scalar function for cell-at-a-time transforms: receives the input
/// measures of one cell.
using CellFn = std::function<double(std::span<const double>)>;

/// \brief Holistic function: receives whole input columns, writes the output
/// column (same length), and may fail (e.g. degenerate normalization).
using HolisticFn = std::function<Status(
    const std::vector<std::span<const double>>& inputs,
    std::span<double> out)>;

/// \brief Cell-transform ⊟_{f -> name, M̄}: appends measure `name` computed
/// cell-wise by `fn` over the measures named in `inputs`. With
/// `null_propagates` (the default), cells with any null input get a null
/// output; without it, `fn` receives the nulls (used by forecasting, which
/// skips missing past slices instead of failing the cell).
Status CellTransform(Cube* cube, const std::string& name,
                     const std::vector<std::string>& inputs, const CellFn& fn,
                     bool null_propagates = true);

/// \brief H-transform ⊡_{f -> name, M̄}: appends measure `name` computed by
/// the holistic `fn` from the whole input columns.
Status HTransform(Cube* cube, const std::string& name,
                  const std::vector<std::string>& inputs,
                  const HolisticFn& fn);

/// \brief Measure projection/renaming: returns a cube with the same cells
/// but only the measures in `keep`, renamed first->second. Used to turn a
/// forecast column into the benchmark measure m (Section 4.3, past case).
Result<Cube> ProjectMeasures(
    const Cube& cube,
    const std::vector<std::pair<std::string, std::string>>& keep);

/// \brief Appends a constant measure column (the constant benchmark m_const).
void AddConstantMeasure(Cube* cube, const std::string& name, double value);

/// \brief Deep copy standing in for the DBMS-to-client result transfer
/// (cursor serialization in the paper's Oracle/Python prototype). Every
/// engine result consumed by client-side operators passes through this once.
Cube TransferToClient(const Cube& cube);

}  // namespace assess

#endif  // ASSESS_ALGEBRA_OPERATORS_H_
