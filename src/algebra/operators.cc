#include "algebra/operators.h"

#include <algorithm>

namespace assess {

namespace {

Result<std::vector<int>> ResolvePositions(
    const Cube& cube, const std::vector<std::string>& names) {
  std::vector<int> positions;
  positions.reserve(names.size());
  for (const std::string& name : names) {
    ASSESS_ASSIGN_OR_RETURN(int pos, cube.LevelPosition(name));
    positions.push_back(pos);
  }
  return positions;
}

Result<std::vector<int>> ResolveMeasures(
    const Cube& cube, const std::vector<std::string>& names) {
  std::vector<int> indexes;
  indexes.reserve(names.size());
  for (const std::string& name : names) {
    ASSESS_ASSIGN_OR_RETURN(int idx, cube.MeasureIndex(name));
    indexes.push_back(idx);
  }
  return indexes;
}

}  // namespace

Result<Cube> JoinCubes(const Cube& left, const Cube& right,
                       const std::vector<std::string>& join_levels,
                       const std::string& right_prefix, bool left_outer) {
  ASSESS_ASSIGN_OR_RETURN(std::vector<int> left_pos,
                          ResolvePositions(left, join_levels));
  ASSESS_ASSIGN_OR_RETURN(std::vector<int> right_pos,
                          ResolvePositions(right, join_levels));
  CoordinateIndex index(right, right_pos);

  std::vector<std::string> out_names;
  for (int m = 0; m < left.measure_count(); ++m) {
    out_names.push_back(left.measure_name(m));
  }
  for (int m = 0; m < right.measure_count(); ++m) {
    out_names.push_back(right_prefix + "." + right.measure_name(m));
  }
  Cube out(left.levels(), std::move(out_names));

  std::vector<MemberId> coords(left.level_count());
  std::vector<double> values(left.measure_count() + right.measure_count());
  for (int64_t r = 0; r < left.NumRows(); ++r) {
    const std::vector<int32_t>& matches = index.Lookup(left, left_pos, r);
    if (matches.empty() && !left_outer) continue;
    for (int i = 0; i < left.level_count(); ++i) coords[i] = left.CoordAt(r, i);
    for (int m = 0; m < left.measure_count(); ++m) {
      values[m] = left.MeasureAt(r, m);
    }
    if (matches.empty()) {
      for (int m = 0; m < right.measure_count(); ++m) {
        values[left.measure_count() + m] = kNullMeasure;
      }
      out.AddRow(coords, values);
      continue;
    }
    for (int32_t match : matches) {
      for (int m = 0; m < right.measure_count(); ++m) {
        values[left.measure_count() + m] = right.MeasureAt(match, m);
      }
      out.AddRow(coords, values);
    }
  }
  return out;
}

Result<Cube> ConcatJoinCubes(
    const Cube& left, const Cube& right,
    const std::vector<std::string>& join_levels,
    const std::string& order_level, int expected,
    const std::vector<std::vector<std::string>>& slot_names,
    bool require_complete) {
  if (static_cast<int>(slot_names.size()) != expected) {
    return Status::InvalidArgument(
        "concatenating join: one renamed-measure tuple required per slot");
  }
  for (const auto& names : slot_names) {
    if (static_cast<int>(names.size()) != right.measure_count()) {
      return Status::InvalidArgument(
          "concatenating join: renamed tuple arity must match right measures");
    }
  }
  ASSESS_ASSIGN_OR_RETURN(std::vector<int> left_pos,
                          ResolvePositions(left, join_levels));
  ASSESS_ASSIGN_OR_RETURN(std::vector<int> right_pos,
                          ResolvePositions(right, join_levels));
  ASSESS_ASSIGN_OR_RETURN(int order_pos, right.LevelPosition(order_level));
  CoordinateIndex index(right, right_pos);

  std::vector<std::string> out_names;
  for (int m = 0; m < left.measure_count(); ++m) {
    out_names.push_back(left.measure_name(m));
  }
  for (const auto& names : slot_names) {
    for (const std::string& n : names) out_names.push_back(n);
  }
  Cube out(left.levels(), std::move(out_names));

  const int rm = right.measure_count();
  std::vector<MemberId> coords(left.level_count());
  std::vector<double> values(left.measure_count() + expected * rm);
  std::vector<int32_t> ordered;
  for (int64_t r = 0; r < left.NumRows(); ++r) {
    ordered = index.Lookup(left, left_pos, r);
    if (static_cast<int>(ordered.size()) < expected && require_complete) {
      continue;
    }
    // Chronological slot order: sort matches by the right order level.
    std::sort(ordered.begin(), ordered.end(),
              [&right, order_pos](int32_t a, int32_t b) {
                return right.CoordAt(a, order_pos) <
                       right.CoordAt(b, order_pos);
              });
    std::fill(values.begin(), values.end(), kNullMeasure);
    for (int i = 0; i < left.level_count(); ++i) coords[i] = left.CoordAt(r, i);
    for (int m = 0; m < left.measure_count(); ++m) {
      values[m] = left.MeasureAt(r, m);
    }
    int slots = std::min<int>(expected, static_cast<int>(ordered.size()));
    for (int s = 0; s < slots; ++s) {
      for (int m = 0; m < rm; ++m) {
        values[left.measure_count() + s * rm + m] =
            right.MeasureAt(ordered[s], m);
      }
    }
    out.AddRow(coords, values);
  }
  return out;
}

Result<Cube> PivotCube(const Cube& cube, const std::string& level,
                       const std::string& reference_member,
                       const std::vector<std::string>& other_members,
                       const std::vector<std::vector<std::string>>& slot_names,
                       bool require_complete) {
  ASSESS_ASSIGN_OR_RETURN(int pivot_pos, cube.LevelPosition(level));
  const LevelRef& pivot_level = cube.level(pivot_pos);
  ASSESS_ASSIGN_OR_RETURN(MemberId ref_id,
                          pivot_level.hierarchy->MemberIdOf(
                              pivot_level.level, reference_member));
  if (slot_names.size() != other_members.size()) {
    return Status::InvalidArgument(
        "pivot: one renamed-measure tuple required per folded slice");
  }
  std::vector<int> slot_of(pivot_level.cardinality(), -1);
  for (size_t i = 0; i < other_members.size(); ++i) {
    if (static_cast<int>(slot_names[i].size()) != cube.measure_count()) {
      return Status::InvalidArgument(
          "pivot: renamed tuple arity must match the cube measures");
    }
    ASSESS_ASSIGN_OR_RETURN(MemberId id,
                            pivot_level.hierarchy->MemberIdOf(
                                pivot_level.level, other_members[i]));
    slot_of[id] = static_cast<int>(i);
  }

  std::vector<int> rest_pos;
  for (int i = 0; i < cube.level_count(); ++i) {
    if (i != pivot_pos) rest_pos.push_back(i);
  }
  CoordinateIndex index(cube, rest_pos);

  const int base = cube.measure_count();
  const int num_slices = static_cast<int>(other_members.size());
  std::vector<std::string> out_names;
  for (int m = 0; m < base; ++m) out_names.push_back(cube.measure_name(m));
  for (const auto& names : slot_names) {
    for (const std::string& n : names) out_names.push_back(n);
  }
  Cube out(cube.levels(), std::move(out_names));

  std::vector<MemberId> coords(cube.level_count());
  std::vector<double> values(base * (1 + num_slices));
  for (int64_t r = 0; r < cube.NumRows(); ++r) {
    if (cube.CoordAt(r, pivot_pos) != ref_id) continue;
    std::fill(values.begin(), values.end(), kNullMeasure);
    for (int m = 0; m < base; ++m) values[m] = cube.MeasureAt(r, m);
    int found = 0;
    for (int32_t match : index.Lookup(cube, rest_pos, r)) {
      int slot = slot_of[cube.CoordAt(match, pivot_pos)];
      if (slot < 0) continue;
      ++found;
      for (int m = 0; m < base; ++m) {
        values[base * (1 + slot) + m] = cube.MeasureAt(match, m);
      }
    }
    if (require_complete && found < num_slices) continue;
    for (int i = 0; i < cube.level_count(); ++i) coords[i] = cube.CoordAt(r, i);
    out.AddRow(coords, values);
  }
  return out;
}

Status CellTransform(Cube* cube, const std::string& name,
                     const std::vector<std::string>& inputs, const CellFn& fn,
                     bool null_propagates) {
  ASSESS_ASSIGN_OR_RETURN(std::vector<int> in_idx,
                          ResolveMeasures(*cube, inputs));
  int out_idx = cube->AddMeasureColumn(name);
  std::vector<double> args(in_idx.size());
  for (int64_t r = 0; r < cube->NumRows(); ++r) {
    bool null_input = false;
    for (size_t i = 0; i < in_idx.size(); ++i) {
      args[i] = cube->MeasureAt(r, in_idx[i]);
      if (IsNullMeasure(args[i])) null_input = true;
    }
    cube->SetMeasure(r, out_idx,
                     (null_input && null_propagates)
                         ? kNullMeasure
                         : fn(std::span<const double>(args)));
  }
  return Status::OK();
}

Status HTransform(Cube* cube, const std::string& name,
                  const std::vector<std::string>& inputs,
                  const HolisticFn& fn) {
  ASSESS_ASSIGN_OR_RETURN(std::vector<int> in_idx,
                          ResolveMeasures(*cube, inputs));
  std::vector<std::span<const double>> columns;
  columns.reserve(in_idx.size());
  for (int idx : in_idx) {
    const std::vector<double>& col = cube->measure_column(idx);
    columns.emplace_back(col.data(), col.size());
  }
  int out_idx = cube->AddMeasureColumn(name);
  std::vector<double>& out = cube->mutable_measure_column(out_idx);
  return fn(columns, std::span<double>(out.data(), out.size()));
}

Result<Cube> ProjectMeasures(
    const Cube& cube,
    const std::vector<std::pair<std::string, std::string>>& keep) {
  std::vector<std::string> names;
  std::vector<std::vector<double>> columns;
  for (const auto& [src, dst] : keep) {
    ASSESS_ASSIGN_OR_RETURN(int idx, cube.MeasureIndex(src));
    names.push_back(dst);
    columns.push_back(cube.measure_column(idx));
  }
  std::vector<std::vector<MemberId>> coords;
  coords.reserve(cube.level_count());
  for (int i = 0; i < cube.level_count(); ++i) {
    coords.push_back(cube.coord_column(i));
  }
  return Cube::FromColumns(cube.levels(), std::move(coords), std::move(names),
                           std::move(columns));
}

void AddConstantMeasure(Cube* cube, const std::string& name, double value) {
  int idx = cube->AddMeasureColumn(name);
  std::vector<double>& col = cube->mutable_measure_column(idx);
  std::fill(col.begin(), col.end(), value);
}

Cube TransferToClient(const Cube& cube) {
  // Row-wise materialization, mirroring how a DBMS result set reaches the
  // client (cursor rows, not columnar blocks). The cost is proportional to
  // the cells transferred, which is what makes plans that avoid shipping
  // non-matching tuples (JOP/POP) cheaper than NP — the effect Section 6.2
  // attributes the NP overhead to.
  std::vector<std::string> names;
  names.reserve(cube.measure_count());
  for (int m = 0; m < cube.measure_count(); ++m) {
    names.push_back(cube.measure_name(m));
  }
  Cube out(cube.levels(), std::move(names));
  std::vector<MemberId> row_coords(cube.level_count());
  std::vector<double> row_measures(cube.measure_count());
  for (int64_t r = 0; r < cube.NumRows(); ++r) {
    for (int i = 0; i < cube.level_count(); ++i) {
      row_coords[i] = cube.CoordAt(r, i);
    }
    for (int m = 0; m < cube.measure_count(); ++m) {
      row_measures[m] = cube.MeasureAt(r, m);
    }
    out.AddRow(row_coords, row_measures);
  }
  return out;
}

}  // namespace assess
