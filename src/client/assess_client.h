#ifndef ASSESS_CLIENT_ASSESS_CLIENT_H_
#define ASSESS_CLIENT_ASSESS_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "assess/result_set.h"
#include "common/result.h"
#include "server/protocol.h"

namespace assess {

/// \brief Client side of the assessd protocol: a blocking, single-connection
/// remote AssessSession.
///
///   auto client = AssessClient::Connect("127.0.0.1", 7117);
///   if (!client.ok()) { ... }
///   auto result = client->Query(
///       "with SALES by month assess storeSales labels quartiles");
///
/// Query() mirrors AssessSession::Query(): the same statement against the
/// same database yields a bit-identical AssessResult (coordinates, measure
/// bits, labels, chosen plan, pushed SQL), just computed on the server with
/// its shared result cache. Server-side failures come back as the same
/// typed Status the in-process session would return (plus kUnavailable for
/// overload/shutdown rejections and kTimeout for deadline violations) —
/// an error never costs the connection.
///
/// One in-flight request per client (the protocol is strict
/// request/response); a client is not thread-safe — use one per thread, the
/// server pools their caches anyway. Movable, not copyable; the destructor
/// closes the connection.
class AssessClient {
 public:
  static Result<AssessClient> Connect(
      const std::string& host, uint16_t port,
      size_t max_frame_bytes = kDefaultMaxFrameBytes);

  AssessClient(AssessClient&& other) noexcept;
  AssessClient& operator=(AssessClient&& other) noexcept;
  AssessClient(const AssessClient&) = delete;
  AssessClient& operator=(const AssessClient&) = delete;
  ~AssessClient();

  /// \brief Executes one assess statement on the server.
  Result<AssessResult> Query(std::string_view statement);

  /// \brief Fetches the server's statistics snapshot.
  Result<ServerStats> Stats();

  /// \brief Round-trips a ping frame.
  Status Ping();

  /// \brief Closes the connection (idempotent; further calls fail with
  /// kUnavailable).
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  AssessClient(int fd, size_t max_frame_bytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  /// Sends `request` and reads the single response frame, enforcing the
  /// expected response type and decoding kError payloads into their Status.
  Status RoundTrip(FrameType request, std::string_view payload,
                   FrameType expected, std::string* response);

  int fd_ = -1;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace assess

#endif  // ASSESS_CLIENT_ASSESS_CLIENT_H_
