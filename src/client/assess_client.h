#ifndef ASSESS_CLIENT_ASSESS_CLIENT_H_
#define ASSESS_CLIENT_ASSESS_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "assess/result_set.h"
#include "common/result.h"
#include "common/rng.h"
#include "ingest/ingest.h"
#include "server/protocol.h"

namespace assess {

/// \brief Resilience knobs of an AssessClient.
struct ClientOptions {
  /// Deadline for establishing (or re-establishing) the TCP connection.
  /// A dead-but-routable host fails with kTimeout after this long instead
  /// of blocking for the kernel's SYN retry budget. <= 0 blocks.
  int64_t connect_timeout_ms = 5'000;
  /// Socket receive deadline per response; expiry surfaces as kTimeout and
  /// costs the connection (the next call reconnects). <= 0 blocks.
  int64_t read_timeout_ms = 60'000;
  /// Socket send deadline per request frame. <= 0 blocks.
  int64_t write_timeout_ms = 30'000;
  /// Automatic retries after a retryable failure (kUnavailable, kTimeout,
  /// kCorruptFrame): the total attempt count is 1 + max_retries. 0 keeps
  /// the pre-retry behaviour — every failure surfaces to the caller.
  int max_retries = 0;
  /// Decorrelated-jitter backoff between attempts: each sleep is uniform in
  /// [base, 3 * previous sleep], capped.
  int64_t backoff_base_ms = 50;
  int64_t backoff_cap_ms = 2'000;
  /// Seed for the backoff jitter and the request-id stream; 0 derives one
  /// from the wall clock (tests pass a fixed seed for reproducibility).
  uint64_t seed = 0;
  /// Attach a client-generated 64-bit trace id to every Query() and
  /// ExplainAnalyze() frame (read it back via last_trace_id()). The server
  /// roots its span tree under the id and stamps it into the slow-query
  /// log, error replies and /traces, so one id joins the client's view of
  /// a query with every server-side artifact it produced. Disable when
  /// talking to a pre-trace server: old decoders reject the flagged frame.
  bool trace_ids = true;
  /// Frame cap this client enforces on responses.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// \brief Client side of the assessd protocol: a blocking, single-connection
/// remote AssessSession.
///
///   auto client = AssessClient::Connect("127.0.0.1", 7117);
///   if (!client.ok()) { ... }
///   auto result = client->Query(
///       "with SALES by month assess storeSales labels quartiles");
///
/// Query() mirrors AssessSession::Query(): the same statement against the
/// same database yields a bit-identical AssessResult (coordinates, measure
/// bits, labels, chosen plan, pushed SQL), just computed on the server with
/// its shared result cache. Server-side failures come back as the same
/// typed Status the in-process session would return (plus kUnavailable for
/// overload/shutdown rejections and kTimeout for deadline violations) —
/// an error never costs the connection.
///
/// Resilience (ClientOptions): every call honours connect/read/write
/// deadlines, and with max_retries > 0 retryable failures (kUnavailable,
/// kTimeout, kCorruptFrame) trigger automatic reconnection and retry with
/// exponential backoff and decorrelated jitter. Retried queries are safe:
/// each Query() carries one client-generated request id reused across its
/// attempts, and the server replays the stored response for a repeated id
/// instead of executing twice — at-most-once execution even when a response
/// (not the request) was what got lost.
///
/// One in-flight request per client (the protocol is strict
/// request/response); a client is not thread-safe — use one per thread, the
/// server pools their caches anyway. Movable, not copyable; the destructor
/// closes the connection.
class AssessClient {
 public:
  static Result<AssessClient> Connect(const std::string& host, uint16_t port,
                                      ClientOptions options);
  /// Back-compat overload: default resilience options (no retries).
  static Result<AssessClient> Connect(
      const std::string& host, uint16_t port,
      size_t max_frame_bytes = kDefaultMaxFrameBytes);

  AssessClient(AssessClient&& other) noexcept;
  AssessClient& operator=(AssessClient&& other) noexcept;
  AssessClient(const AssessClient&) = delete;
  AssessClient& operator=(const AssessClient&) = delete;
  ~AssessClient();

  /// \brief Executes one assess statement on the server (retrying per
  /// ClientOptions under one request id).
  Result<AssessResult> Query(std::string_view statement);

  /// \brief Fetches the server's statistics snapshot (retryable: reads are
  /// idempotent by nature).
  Result<ServerStats> Stats();

  /// \brief Fetches the server's Prometheus-style metrics exposition
  /// (retryable, like Stats()).
  Result<std::string> Metrics();

  /// \brief Fetches the server's workload profile + MV-advisor report as
  /// rendered text (retryable, like Stats()). Empty-ish when the server
  /// runs with --workload-profile=off.
  Result<std::string> Workload();

  /// \brief Runs `statement` on the server under EXPLAIN ANALYZE and returns
  /// the rendered span tree + phase breakdown. Never retried and never
  /// deduplicated: every call re-executes and re-measures. Fails with
  /// kNotSupported when the server was built with ASSESS_TRACING=OFF.
  Result<std::string> ExplainAnalyze(std::string_view statement);

  /// \brief Streams `text` (CSV with header line, or JSONL) into `cube` on
  /// the server, returning what the load did. Retried under one request id,
  /// and the server replays the stored receipt for a repeated id — a retry
  /// after a lost response never appends the rows twice. `auto_insert` asks
  /// the server to add unknown dimension members; it is honoured only when
  /// the server's own ingest policy allows it. Fails with kNotSupported on
  /// a read-only server (assessd without --ingest).
  Result<IngestStats> Ingest(std::string_view cube, std::string_view text,
                             IngestFormat format = IngestFormat::kCsv,
                             bool auto_insert = false);

  /// \brief Round-trips a ping frame (retryable).
  Status Ping();

  /// \brief Sends a failpoint admin spec (see common/failpoint.h) and
  /// returns the server's armed-points listing. Never retried. Fails with
  /// kNotSupported unless the server runs with failpoint admin enabled.
  Result<std::string> Failpoint(std::string_view spec);

  /// \brief Closes the connection. With retries enabled the next call
  /// reconnects; otherwise further calls fail with kUnavailable.
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// \brief The trace id attached to the most recent Query() /
  /// ExplainAnalyze() call (all retries of one call share one id), or 0
  /// when ClientOptions::trace_ids is off. Quote it when filing a slow
  /// query: the server's log line, error reply and /traces entry carry
  /// the same id.
  uint64_t last_trace_id() const { return last_trace_id_; }

 private:
  AssessClient(std::string host, uint16_t port, const ClientOptions& options);

  /// Connects (with the configured deadline) if not connected, and applies
  /// the socket read/write deadlines.
  Status EnsureConnected();

  /// Sends `request` and reads the single response frame, enforcing the
  /// expected response type and decoding kError payloads into their Status.
  Status RoundTrip(FrameType request, std::string_view payload,
                   FrameType expected, std::string* response,
                   uint64_t trace_id = 0);

  /// EnsureConnected + RoundTrip under the retry policy: retryable failures
  /// reconnect and retry with decorrelated-jitter backoff.
  Status RoundTripWithRetry(FrameType request, std::string_view payload,
                            FrameType expected, std::string* response,
                            uint64_t trace_id = 0);

  uint64_t NextRequestId();
  /// A fresh nonzero trace id, or 0 when ClientOptions::trace_ids is off.
  uint64_t NextTraceId();

  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  Rng rng_;
  int64_t prev_backoff_ms_ = 0;
  uint64_t last_trace_id_ = 0;
  int fd_ = -1;
};

}  // namespace assess

#endif  // ASSESS_CLIENT_ASSESS_CLIENT_H_
