#include "client/assess_client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "assess/wire_format.h"

namespace assess {
namespace {

bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:   // overload, shutdown, torn connection
    case StatusCode::kTimeout:       // deadline: request may still have run
    case StatusCode::kCorruptFrame:  // garbled stream; retry on a fresh one
      return true;
    default:
      return false;
  }
}

void SetSocketDeadline(int fd, int option, int64_t ms) {
  if (ms <= 0) return;
  timeval deadline{};
  deadline.tv_sec = static_cast<time_t>(ms / 1000);
  deadline.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, option, &deadline, sizeof(deadline));
}

uint64_t DeriveSeed() {
  // Only for jitter and request-id uniqueness; determinism-sensitive tests
  // pass an explicit ClientOptions::seed instead.
  auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  return static_cast<uint64_t>(now) ^
         (static_cast<uint64_t>(::getpid()) << 32);
}

}  // namespace

AssessClient::AssessClient(std::string host, uint16_t port,
                           const ClientOptions& options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      rng_(options.seed != 0 ? options.seed : DeriveSeed()) {}

Result<AssessClient> AssessClient::Connect(const std::string& host,
                                           uint16_t port,
                                           ClientOptions options) {
  AssessClient client(host, port, options);
  ASSESS_RETURN_NOT_OK(client.EnsureConnected());
  return client;
}

Result<AssessClient> AssessClient::Connect(const std::string& host,
                                           uint16_t port,
                                           size_t max_frame_bytes) {
  ClientOptions options;
  options.max_frame_bytes = max_frame_bytes;
  return Connect(host, port, options);
}

AssessClient::AssessClient(AssessClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_),
      rng_(other.rng_),
      prev_backoff_ms_(other.prev_backoff_ms_),
      last_trace_id_(other.last_trace_id_),
      fd_(std::exchange(other.fd_, -1)) {}

AssessClient& AssessClient::operator=(AssessClient&& other) noexcept {
  if (this != &other) {
    Close();
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    rng_ = other.rng_;
    prev_backoff_ms_ = other.prev_backoff_ms_;
    last_trace_id_ = other.last_trace_id_;
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

AssessClient::~AssessClient() { Close(); }

void AssessClient::Close() {
  CloseSocket(fd_);
  fd_ = -1;
}

Status AssessClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  ASSESS_ASSIGN_OR_RETURN(
      int fd, ConnectTo(host_, port_, options_.connect_timeout_ms));
  SetSocketDeadline(fd, SO_RCVTIMEO, options_.read_timeout_ms);
  SetSocketDeadline(fd, SO_SNDTIMEO, options_.write_timeout_ms);
  fd_ = fd;
  return Status::OK();
}

uint64_t AssessClient::NextRequestId() {
  uint64_t id = 0;
  while (id == 0) id = rng_.Next();  // 0 means "no dedup" on the wire
  return id;
}

uint64_t AssessClient::NextTraceId() {
  if (!options_.trace_ids) return 0;
  uint64_t id = 0;
  while (id == 0) id = rng_.Next();  // 0 means "untraced" on the wire
  return id;
}

Status AssessClient::RoundTrip(FrameType request, std::string_view payload,
                               FrameType expected, std::string* response,
                               uint64_t trace_id) {
  if (fd_ < 0) return Status::Unavailable("client is not connected");
  Status written = WriteFrame(fd_, request, payload, trace_id);
  if (!written.ok()) {
    Close();  // a half-sent frame desynchronizes the stream
    return written;
  }
  Frame frame;
  Status read = ReadFrame(fd_, options_.max_frame_bytes, &frame);
  if (!read.ok()) {
    // A dead, expired or desynchronized connection is unusable from here on
    // (after a read deadline the response may still arrive, mid-stream).
    Close();
    return read;
  }
  if (frame.type == FrameType::kError) {
    Status remote = Status::OK();
    Status decoded = DeserializeStatus(frame.payload, &remote);
    if (!decoded.ok()) {
      Close();
      return decoded.WithContext("undecodable error response");
    }
    if (remote.code() == StatusCode::kCorruptFrame) {
      // The server read garbage from us; what we send next could land
      // mid-frame. Start over on a fresh connection.
      Close();
    }
    return remote;  // typed server-side error; the connection stays usable
  }
  if (frame.type != expected) {
    Close();
    return Status::Internal("unexpected response frame type");
  }
  *response = std::move(frame.payload);
  return Status::OK();
}

Status AssessClient::RoundTripWithRetry(FrameType request,
                                        std::string_view payload,
                                        FrameType expected,
                                        std::string* response,
                                        uint64_t trace_id) {
  prev_backoff_ms_ = 0;
  Status last = Status::OK();
  for (int attempt = 0;; ++attempt) {
    last = EnsureConnected();
    if (last.ok()) {
      last = RoundTrip(request, payload, expected, response, trace_id);
    }
    if (last.ok() || !IsRetryable(last) || attempt >= options_.max_retries) {
      return last;
    }
    // Decorrelated jitter: sleep uniform in [base, 3 * previous], capped —
    // retries spread out instead of synchronizing into retry storms.
    int64_t base = std::max<int64_t>(1, options_.backoff_base_ms);
    int64_t upper = std::max(base + 1, prev_backoff_ms_ * 3);
    int64_t sleep_ms = std::min(options_.backoff_cap_ms,
                                rng_.UniformRange(base, upper));
    prev_backoff_ms_ = sleep_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

Result<AssessResult> AssessClient::Query(std::string_view statement) {
  // One id for all attempts of this call: a retry after a lost *response*
  // replays the stored result server-side instead of executing twice. The
  // trace id is likewise minted once per call, so every retry of this
  // query tells the same story in the server's trace artifacts.
  std::string request = EncodeQueryPayload(NextRequestId(), statement);
  last_trace_id_ = NextTraceId();
  std::string payload;
  ASSESS_RETURN_NOT_OK(RoundTripWithRetry(FrameType::kQuery, request,
                                          FrameType::kResult, &payload,
                                          last_trace_id_));
  return DeserializeAssessResult(payload);
}

Result<ServerStats> AssessClient::Stats() {
  std::string payload;
  ASSESS_RETURN_NOT_OK(RoundTripWithRetry(FrameType::kStats, {},
                                          FrameType::kStatsReply, &payload));
  return ServerStats::Deserialize(payload);
}

Result<std::string> AssessClient::Metrics() {
  std::string payload;
  ASSESS_RETURN_NOT_OK(RoundTripWithRetry(FrameType::kMetrics, {},
                                          FrameType::kMetricsReply, &payload));
  return payload;
}

Result<std::string> AssessClient::Workload() {
  std::string payload;
  ASSESS_RETURN_NOT_OK(RoundTripWithRetry(
      FrameType::kWorkload, {}, FrameType::kWorkloadReply, &payload));
  return payload;
}

Result<std::string> AssessClient::ExplainAnalyze(std::string_view statement) {
  // Deliberately no retry loop: a timing measurement that silently ran
  // twice would be misleading, and the statement may be expensive.
  ASSESS_RETURN_NOT_OK(EnsureConnected());
  std::string request = EncodeQueryPayload(NextRequestId(), statement);
  last_trace_id_ = NextTraceId();
  std::string payload;
  ASSESS_RETURN_NOT_OK(RoundTrip(FrameType::kExplainAnalyze, request,
                                 FrameType::kExplainReply, &payload,
                                 last_trace_id_));
  return payload;
}

Result<IngestStats> AssessClient::Ingest(std::string_view cube,
                                         std::string_view text,
                                         IngestFormat format,
                                         bool auto_insert) {
  // One id across attempts, like Query(): the server's dedup store turns a
  // retried ingest into a replay of its stored receipt, so the rows land
  // at most once no matter which side of the exchange got lost.
  std::string request = EncodeIngestPayload(
      NextRequestId(), cube, format,
      auto_insert ? kIngestFlagAutoInsert : uint8_t{0}, text);
  std::string payload;
  ASSESS_RETURN_NOT_OK(RoundTripWithRetry(FrameType::kIngest, request,
                                          FrameType::kIngestReply, &payload));
  return IngestStats::Deserialize(payload);
}

Status AssessClient::Ping() {
  std::string payload;
  return RoundTripWithRetry(FrameType::kPing, {}, FrameType::kPong, &payload);
}

Result<std::string> AssessClient::Failpoint(std::string_view spec) {
  ASSESS_RETURN_NOT_OK(EnsureConnected());
  std::string payload;
  ASSESS_RETURN_NOT_OK(RoundTrip(FrameType::kFailpoint, spec,
                                 FrameType::kFailpointReply, &payload));
  return payload;
}

}  // namespace assess
