#include "client/assess_client.h"

#include <utility>

#include "assess/wire_format.h"

namespace assess {

Result<AssessClient> AssessClient::Connect(const std::string& host,
                                           uint16_t port,
                                           size_t max_frame_bytes) {
  ASSESS_ASSIGN_OR_RETURN(int fd, ConnectTo(host, port));
  return AssessClient(fd, max_frame_bytes);
}

AssessClient::AssessClient(AssessClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      max_frame_bytes_(other.max_frame_bytes_) {}

AssessClient& AssessClient::operator=(AssessClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    max_frame_bytes_ = other.max_frame_bytes_;
  }
  return *this;
}

AssessClient::~AssessClient() { Close(); }

void AssessClient::Close() {
  CloseSocket(fd_);
  fd_ = -1;
}

Status AssessClient::RoundTrip(FrameType request, std::string_view payload,
                               FrameType expected, std::string* response) {
  if (fd_ < 0) return Status::Unavailable("client is not connected");
  ASSESS_RETURN_NOT_OK(WriteFrame(fd_, request, payload));
  Frame frame;
  Status read = ReadFrame(fd_, max_frame_bytes_, &frame);
  if (!read.ok()) {
    // A dead or desynchronized connection is unusable from here on.
    Close();
    return read;
  }
  if (frame.type == FrameType::kError) {
    Status remote = Status::OK();
    Status decoded = DeserializeStatus(frame.payload, &remote);
    if (!decoded.ok()) {
      Close();
      return decoded.WithContext("undecodable error response");
    }
    return remote;  // typed server-side error; the connection stays usable
  }
  if (frame.type != expected) {
    Close();
    return Status::Internal("unexpected response frame type");
  }
  *response = std::move(frame.payload);
  return Status::OK();
}

Result<AssessResult> AssessClient::Query(std::string_view statement) {
  std::string payload;
  ASSESS_RETURN_NOT_OK(
      RoundTrip(FrameType::kQuery, statement, FrameType::kResult, &payload));
  return DeserializeAssessResult(payload);
}

Result<ServerStats> AssessClient::Stats() {
  std::string payload;
  ASSESS_RETURN_NOT_OK(
      RoundTrip(FrameType::kStats, {}, FrameType::kStatsReply, &payload));
  return ServerStats::Deserialize(payload);
}

Status AssessClient::Ping() {
  std::string payload;
  return RoundTrip(FrameType::kPing, {}, FrameType::kPong, &payload);
}

}  // namespace assess
