// AVX2 tier of the fused scan kernels. This TU is compiled with -mavx2
// (see src/CMakeLists.txt); the entry points are out-of-line so no AVX2
// code can leak into TUs built for the baseline ISA.

#include "storage/scan_kernels_impl.h"

namespace assess {
namespace simd_detail {

void FusedScanAvx2(const FusedScanArgs& args, int64_t begin, int64_t end,
                   AggState* state) {
  kernel_detail::FusedScanImpl<kernel_detail::IsaAvx2>(args, begin, end,
                                                       state);
}

void MinMaxInt32Avx2(const int32_t* values, int64_t n, int32_t* min_out,
                     int32_t* max_out) {
  kernel_detail::IsaAvx2::MinMax(values, n, min_out, max_out);
}

}  // namespace simd_detail
}  // namespace assess
