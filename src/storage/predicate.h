#ifndef ASSESS_STORAGE_PREDICATE_H_
#define ASSESS_STORAGE_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "olap/cube_query.h"
#include "olap/hierarchy.h"
#include "storage/table.h"

namespace assess {

/// \brief Per-member pass/fail flags for one predicate, indexed by member id
/// of the predicate's level (the domain Dom(l)).
///
/// Building flags once per query turns predicate evaluation during the fact
/// scan into a single array lookup per row.
Result<std::vector<uint8_t>> BuildDomainFlags(const Hierarchy& hierarchy,
                                              const Predicate& predicate);

/// \brief Conjunction of all `predicates` (each on a level of `hierarchy`),
/// evaluated per member of `eval_level`: flags[m] is 1 iff the member m of
/// eval_level rolls up to members satisfying every predicate. `eval_level`
/// must be finer-or-equal than every predicate level.
Result<std::vector<uint8_t>> BuildConjunctionFlags(
    const Hierarchy& hierarchy, const std::vector<Predicate>& predicates,
    int eval_level);

/// \brief Pass/fail flags over the rows of a dimension table for the
/// conjunction of `predicates` on its hierarchy (rows act as the evaluation
/// domain; useful for fact scans where the FK indexes dimension rows).
Result<std::vector<uint8_t>> BuildDimensionRowFlags(
    const DimensionTable& dim, const std::vector<Predicate>& predicates);

}  // namespace assess

#endif  // ASSESS_STORAGE_PREDICATE_H_
