#ifndef ASSESS_STORAGE_TABLE_H_
#define ASSESS_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "olap/hierarchy.h"
#include "storage/packed_column.h"

namespace assess {

/// \brief Min/max foreign-key code of one morsel of one fact column: the
/// zone-map block statistic that lets a scan skip a whole morsel when the
/// pushed-down predicate rejects every code in [min, max].
struct ZoneRange {
  int32_t min = 0;
  int32_t max = 0;
};

/// \brief Per-morsel zone maps over a fact table: dims[d][m] is the code
/// range of dimension d within morsel m (kMorselRows rows per morsel, the
/// scheduling granularity of common/task_pool.h). Built lazily on the first
/// scan that can use them and *extended* incrementally when rows are
/// appended afterwards (only the boundary morsel is recomputed).
struct FactZoneMaps {
  int64_t num_morsels = 0;
  /// The committed row count the maps cover. A scan over a shorter prefix
  /// may still prune with them: its boundary-morsel range is a superset of
  /// the prefix's true range, which can only make pruning conservative.
  int64_t built_rows = 0;
  std::vector<std::vector<ZoneRange>> dims;
};

/// \brief Dictionary-compressed (width-reduced, cache-line-aligned) views
/// of a fact table's foreign-key columns: what the vector scan kernels
/// read instead of the int32 columns. Built lazily like zone maps and
/// extended in place for appended suffixes (see PackedColumn).
struct PackedFactColumns {
  int64_t built_rows = 0;
  std::vector<PackedColumn> dims;
};

/// \brief The derived scan accelerators of one fact table, versioned
/// together: both members always cover the same committed row prefix.
struct FactDerived {
  FactZoneMaps zones;
  PackedFactColumns packed;
  /// Cumulative width-tier overflows that forced a full repack of a packed
  /// column over this table's lifetime (surfaced by ingest stats).
  uint64_t repacks = 0;

  int64_t rows() const { return packed.built_rows; }
};

/// \brief One consistent view of a fact table: the committed row prefix at
/// admission time, its epoch, and raw column pointers valid for the
/// snapshot's lifetime (`bank` pins the storage even if the table grows its
/// arrays afterwards). Queries capture a snapshot once and scan only this
/// prefix, so in-flight queries never observe a partial batch.
struct FactSnapshot {
  int64_t rows = 0;
  /// Publication counter: bumped by every committed mutation, so equal
  /// epochs imply identical table contents — what the result cache keys
  /// entries by.
  uint64_t epoch = 0;
  std::vector<const int32_t*> fk;       // one pointer per dimension
  std::vector<const double*> measures;  // one pointer per measure
  /// Derived accelerators covering >= `rows` (a newer snapshot may have
  /// extended them further; scans bounded by `rows` read only their own
  /// prefix, and a boundary-morsel zone range is then a superset —
  /// conservative for pruning, never wrong). Null until EnsureDerived.
  std::shared_ptr<const FactDerived> derived;
  std::shared_ptr<const void> bank;  // keepalive for fk/measures pointers
};

/// \brief What one committed append published: the half-open row range
/// [first_row, first_row + rows) and the epoch it became visible at.
struct AppendResult {
  int64_t first_row = 0;
  int64_t rows = 0;
  uint64_t epoch = 0;
};

/// \brief A dimension table of a star schema, bound to one hierarchy.
///
/// Storage is columnar: one MemberId column per hierarchy level, row-aligned.
/// The row index is the dimension key referenced by fact-table foreign keys
/// (the surrogate-key convention of dimensional modeling). Member ids
/// reference the hierarchy's per-level dictionaries, so attribute values are
/// dictionary-encoded exactly once.
///
/// Unlike FactTable, dimension tables have no lock-free append path:
/// growing one (auto-insert during ingest) requires the database's
/// exclusive schema lock, because readers index level columns and the
/// hierarchy dictionaries directly.
class DimensionTable {
 public:
  DimensionTable(std::string name, std::shared_ptr<Hierarchy> hierarchy)
      : name_(std::move(name)),
        hierarchy_(std::move(hierarchy)),
        level_codes_(hierarchy_->level_count()) {}

  const std::string& name() const { return name_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const std::shared_ptr<Hierarchy>& hierarchy_ptr() const {
    return hierarchy_;
  }
  Hierarchy& mutable_hierarchy() { return *hierarchy_; }

  int64_t NumRows() const {
    return level_codes_.empty() ? 0
                                : static_cast<int64_t>(level_codes_[0].size());
  }

  /// \brief Appends a row; `codes` holds one member id per level,
  /// finest-first, and must be consistent with the hierarchy's part-of
  /// mapping (checked by Validate()).
  void AddRow(const std::vector<MemberId>& codes);

  /// \brief Builds a table directly from per-level columns (the
  /// persistence loader's path). Columns must be equally sized and match
  /// the hierarchy's level count.
  static DimensionTable FromColumns(std::string name,
                                    std::shared_ptr<Hierarchy> hierarchy,
                                    std::vector<std::vector<MemberId>> codes);

  MemberId CodeAt(int64_t row, int level) const {
    return level_codes_[level][row];
  }
  const std::vector<MemberId>& level_column(int level) const {
    return level_codes_[level];
  }

  /// \brief Checks that each row's codes agree with the hierarchy roll-up.
  Status Validate() const;

 private:
  std::string name_;
  std::shared_ptr<Hierarchy> hierarchy_;
  std::vector<std::vector<MemberId>> level_codes_;
};

/// \brief The fact table of a star schema: one foreign-key column per
/// dimension (indexing dimension-table rows) plus one double column per
/// measure. A row is a business event (a cell of the detailed cube C0).
///
/// The table is append-only and versioned: every mutation commits under an
/// internal mutex and atomically publishes a new committed row count and
/// epoch. Readers take Snapshot() — raw column pointers plus the committed
/// prefix length — and never block appenders; appenders never invalidate a
/// live snapshot (capacity growth clones the column bank, and old banks
/// stay pinned by the snapshots holding them).
class FactTable {
 public:
  FactTable(std::string name, int dimension_count, int measure_count);
  FactTable(FactTable&&) = default;
  FactTable& operator=(FactTable&&) = default;

  const std::string& name() const { return name_; }

  int64_t NumRows() const {
    return state_->rows.load(std::memory_order_acquire);
  }
  /// \brief The current publication epoch (0 for an empty table).
  uint64_t epoch() const {
    return state_->epoch.load(std::memory_order_acquire);
  }
  int dimension_count() const { return dims_; }
  int measure_count() const { return meas_; }

  void Reserve(int64_t rows);

  /// \brief Appends and commits one row (epoch +1).
  void AddRow(const std::vector<int32_t>& fks,
              const std::vector<double>& measures);

  /// \brief Appends `fks[d]` / `measures[m]` column slices as one atomic
  /// batch: no snapshot ever observes part of it, and the whole batch
  /// becomes visible under a single new epoch. Columns must be equally
  /// sized and match the table's shape.
  AppendResult AppendBatch(const std::vector<std::vector<int32_t>>& fks,
                           const std::vector<std::vector<double>>& measures);

  /// \brief Builds a table directly from columns (the persistence loader's
  /// path). All columns must be equally sized.
  static FactTable FromColumns(std::string name,
                               std::vector<std::vector<int32_t>> fks,
                               std::vector<std::vector<double>> measures);

  /// \brief Overrides the publication epoch. FromColumns (and so the
  /// persistence loader) can only infer "0 or 1" from the row count, but
  /// crash recovery must restore the *exact* epoch the table carried when
  /// the checkpoint was taken — result-cache keys and WAL replay
  /// cross-checks compare epochs bit-for-bit. Recovery-time only: must not
  /// race appenders.
  void SetEpochForRecovery(uint64_t epoch);

  /// \brief Captures the committed prefix: O(columns), no derived build.
  FactSnapshot Snapshot() const;

  /// \brief Snapshot() plus EnsureDerived() — what fact scans use.
  FactSnapshot SnapshotWithDerived() const;

  /// \brief Fills `snap->derived` with accelerators covering at least
  /// `snap->rows`, building them on first use and otherwise *extending* the
  /// previous version for the appended suffix: packed columns append in
  /// place (full repack only on width-tier overflow), zone maps recompute
  /// only the boundary morsel. Serialized by an internal mutex.
  void EnsureDerived(FactSnapshot* snap) const;

  /// \brief Extends the derived accelerators to the current committed
  /// prefix if they were ever built; no-op otherwise (stays lazy so pure
  /// bulk loads never pay for them). Ingest commits call this so query
  /// latency stays flat under churn.
  void ExtendDerivedIfBuilt() const;

  /// \brief Cumulative packed-column width-overflow repacks.
  uint64_t derived_repacks() const;

  /// \brief Legacy columnar accessors. Valid only while no appender runs
  /// concurrently (setup, persistence, validation); serving paths use
  /// Snapshot().
  const std::vector<int32_t>& fk_column(int dim) const {
    return state_->bank->fk[dim];
  }
  const std::vector<double>& measure_column(int m) const {
    return state_->bank->measures[m];
  }

 private:
  struct ColumnBank {
    std::vector<std::vector<int32_t>> fk;
    std::vector<std::vector<double>> measures;
  };
  struct State {
    std::mutex mu;  // guards bank_/rows/epoch publication
    std::shared_ptr<ColumnBank> bank;
    std::atomic<int64_t> rows{0};
    std::atomic<uint64_t> epoch{0};
    std::mutex derived_mu;  // serializes derived build/extension
    std::shared_ptr<const FactDerived> derived;
  };

  /// Clones the column bank with geometric headroom when an append of
  /// `extra` rows would reallocate a column in place (which would
  /// invalidate live snapshots' raw pointers). Callers hold state_->mu.
  void EnsureCapacityLocked(int64_t extra);

  std::string name_;
  int dims_ = 0;
  int meas_ = 0;
  // Heap-held so FactTable stays movable (mutexes and atomics are not).
  std::unique_ptr<State> state_;
};

}  // namespace assess

#endif  // ASSESS_STORAGE_TABLE_H_
