#ifndef ASSESS_STORAGE_TABLE_H_
#define ASSESS_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "olap/hierarchy.h"
#include "storage/packed_column.h"

namespace assess {

/// \brief Min/max foreign-key code of one morsel of one fact column: the
/// zone-map block statistic that lets a scan skip a whole morsel when the
/// pushed-down predicate rejects every code in [min, max].
struct ZoneRange {
  int32_t min = 0;
  int32_t max = 0;
};

/// \brief Per-morsel zone maps over a fact table: dims[d][m] is the code
/// range of dimension d within morsel m (kMorselRows rows per morsel, the
/// scheduling granularity of common/task_pool.h). Built once, lazily, on
/// the first scan that can use them.
struct FactZoneMaps {
  int64_t num_morsels = 0;
  /// NumRows() when the maps were built: the scan path refuses to prune
  /// with maps that no longer cover the table (see
  /// FactTable::CheckDerivedFreshness).
  int64_t built_rows = 0;
  std::vector<std::vector<ZoneRange>> dims;
};

/// \brief Dictionary-compressed (width-reduced, cache-line-aligned) views
/// of a fact table's foreign-key columns: what the vector scan kernels
/// read instead of the int32 columns. Built once, lazily, like zone maps,
/// with the same staleness rule.
struct PackedFactColumns {
  int64_t built_rows = 0;
  std::vector<PackedColumn> dims;
};

/// \brief A dimension table of a star schema, bound to one hierarchy.
///
/// Storage is columnar: one MemberId column per hierarchy level, row-aligned.
/// The row index is the dimension key referenced by fact-table foreign keys
/// (the surrogate-key convention of dimensional modeling). Member ids
/// reference the hierarchy's per-level dictionaries, so attribute values are
/// dictionary-encoded exactly once.
class DimensionTable {
 public:
  DimensionTable(std::string name, std::shared_ptr<Hierarchy> hierarchy)
      : name_(std::move(name)),
        hierarchy_(std::move(hierarchy)),
        level_codes_(hierarchy_->level_count()) {}

  const std::string& name() const { return name_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const std::shared_ptr<Hierarchy>& hierarchy_ptr() const {
    return hierarchy_;
  }

  int64_t NumRows() const {
    return level_codes_.empty() ? 0
                                : static_cast<int64_t>(level_codes_[0].size());
  }

  /// \brief Appends a row; `codes` holds one member id per level,
  /// finest-first, and must be consistent with the hierarchy's part-of
  /// mapping (checked by Validate()).
  void AddRow(const std::vector<MemberId>& codes);

  /// \brief Builds a table directly from per-level columns (the
  /// persistence loader's path). Columns must be equally sized and match
  /// the hierarchy's level count.
  static DimensionTable FromColumns(std::string name,
                                    std::shared_ptr<Hierarchy> hierarchy,
                                    std::vector<std::vector<MemberId>> codes);

  MemberId CodeAt(int64_t row, int level) const {
    return level_codes_[level][row];
  }
  const std::vector<MemberId>& level_column(int level) const {
    return level_codes_[level];
  }

  /// \brief Checks that each row's codes agree with the hierarchy roll-up.
  Status Validate() const;

 private:
  std::string name_;
  std::shared_ptr<Hierarchy> hierarchy_;
  std::vector<std::vector<MemberId>> level_codes_;
};

/// \brief The fact table of a star schema: one foreign-key column per
/// dimension (indexing dimension-table rows) plus one double column per
/// measure. A row is a business event (a cell of the detailed cube C0).
class FactTable {
 public:
  FactTable(std::string name, int dimension_count, int measure_count)
      : name_(std::move(name)),
        fk_(dimension_count),
        measures_(measure_count) {}

  const std::string& name() const { return name_; }

  int64_t NumRows() const {
    return fk_.empty() ? 0 : static_cast<int64_t>(fk_[0].size());
  }
  int dimension_count() const { return static_cast<int>(fk_.size()); }
  int measure_count() const { return static_cast<int>(measures_.size()); }

  void Reserve(int64_t rows);
  void AddRow(const std::vector<int32_t>& fks,
              const std::vector<double>& measures);

  /// \brief Builds a table directly from columns (the persistence loader's
  /// path). All columns must be equally sized.
  static FactTable FromColumns(std::string name,
                               std::vector<std::vector<int32_t>> fks,
                               std::vector<std::vector<double>> measures);

  const std::vector<int32_t>& fk_column(int dim) const { return fk_[dim]; }
  const std::vector<double>& measure_column(int m) const {
    return measures_[m];
  }

  /// \brief The per-morsel zone maps, built on first use (one vectorized
  /// pass over the foreign-key columns) and cached. Thread-safe under the
  /// engine's contract that the table is immutable while being queried.
  /// Each map records the row count it was built at; rows appended
  /// afterwards make it stale, which CheckDerivedFreshness turns into a
  /// loud failure instead of silently wrong skips.
  const FactZoneMaps& zone_maps() const;

  /// \brief The dictionary-compressed foreign-key views, built on first
  /// use and cached; same immutability contract and staleness rule as
  /// zone_maps().
  const PackedFactColumns& packed_fk() const;

  /// \brief Fails (debug assert + typed Status) when `built_rows` — the
  /// row count a derived structure (zone maps, packed views) was built at —
  /// no longer matches NumRows(): rows were appended after the build, and
  /// the derived structure would silently mis-serve the scan. `what`
  /// names the structure in the diagnostic.
  Status CheckDerivedFreshness(int64_t built_rows, const char* what) const;

 private:
  struct ZoneMapCache {
    std::once_flag once;
    FactZoneMaps maps;
  };
  struct PackedCache {
    std::once_flag once;
    PackedFactColumns columns;
  };

  std::string name_;
  std::vector<std::vector<int32_t>> fk_;
  std::vector<std::vector<double>> measures_;
  // Heap-held so FactTable stays movable (once_flag is not); the cache
  // pointer moves with the table, the flag never moves.
  std::unique_ptr<ZoneMapCache> zone_cache_ =
      std::make_unique<ZoneMapCache>();
  std::unique_ptr<PackedCache> packed_cache_ =
      std::make_unique<PackedCache>();
};

}  // namespace assess

#endif  // ASSESS_STORAGE_TABLE_H_
