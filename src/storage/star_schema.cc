#include "storage/star_schema.h"

#include <algorithm>

namespace assess {

Status BoundCube::Validate() const {
  if (static_cast<int>(dimensions_.size()) != schema_->hierarchy_count()) {
    return Status::Internal("cube '" + schema_->name() +
                            "': dimension table count does not match schema");
  }
  if (facts_.dimension_count() != schema_->hierarchy_count() ||
      facts_.measure_count() != schema_->measure_count()) {
    return Status::Internal("cube '" + schema_->name() +
                            "': fact table shape does not match schema");
  }
  for (int h = 0; h < schema_->hierarchy_count(); ++h) {
    ASSESS_RETURN_NOT_OK(schema_->hierarchy(h).Validate());
    ASSESS_RETURN_NOT_OK(dimensions_[h].Validate());
    int64_t dim_rows = dimensions_[h].NumRows();
    const std::vector<int32_t>& fks = facts_.fk_column(h);
    for (int32_t fk : fks) {
      if (fk < 0 || fk >= dim_rows) {
        return Status::Internal(
            "cube '" + schema_->name() + "': dangling foreign key into '" +
            dimensions_[h].name() + "'");
      }
    }
  }
  return Status::OK();
}

Status StarDatabase::Register(std::string name,
                              std::unique_ptr<BoundCube> cube) {
  auto [it, inserted] = cubes_.emplace(std::move(name), std::move(cube));
  if (!inserted) {
    return Status::AlreadyExists("cube '" + it->first +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<const BoundCube*> StarDatabase::Find(std::string_view name) const {
  auto it = cubes_.find(std::string(name));
  if (it == cubes_.end()) {
    return Status::NotFound("no cube '" + std::string(name) +
                            "' in the database");
  }
  return const_cast<const BoundCube*>(it->second.get());
}

bool StarDatabase::Contains(std::string_view name) const {
  return cubes_.count(std::string(name)) > 0;
}

std::vector<std::string> StarDatabase::CubeNames() const {
  std::vector<std::string> names;
  names.reserve(cubes_.size());
  for (const auto& [name, cube] : cubes_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<BoundCube*> StarDatabase::FindMutable(std::string_view name) {
  auto it = cubes_.find(std::string(name));
  if (it == cubes_.end()) {
    return Status::NotFound("no cube '" + std::string(name) +
                            "' in the database");
  }
  return it->second.get();
}

}  // namespace assess
