#ifndef ASSESS_STORAGE_STAR_SCHEMA_H_
#define ASSESS_STORAGE_STAR_SCHEMA_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "olap/cube_schema.h"
#include "storage/materialized_view.h"
#include "storage/table.h"

namespace assess {

/// \brief An immutable, atomically-swapped set of materialized views,
/// stamped with the fact-table epoch its contents aggregate. The engine
/// uses a set only when its epoch matches the fact snapshot it scans at;
/// otherwise the views lag a commit and the scan falls back to the facts —
/// so a query never mixes view data and fact data from different epochs.
struct ViewSet {
  uint64_t epoch = 0;
  /// Committed fact rows the view contents aggregate: incremental
  /// maintenance may merge a delta only when the delta's first row equals
  /// this count (otherwise rows slipped in between and the maintainer
  /// falls back to a full rebuild).
  int64_t rows = 0;
  std::vector<MaterializedView> views;
};

/// \brief A detailed cube bound to its star-schema storage: the cube schema,
/// one dimension table per hierarchy (parallel to schema hierarchy order),
/// the fact table, and any materialized views declared on it.
class BoundCube {
 public:
  BoundCube(std::shared_ptr<CubeSchema> schema,
            std::vector<DimensionTable> dimensions, FactTable facts)
      : schema_(std::move(schema)),
        dimensions_(std::move(dimensions)),
        facts_(std::move(facts)),
        views_(std::make_shared<const ViewSet>()) {}

  const CubeSchema& schema() const { return *schema_; }
  const std::shared_ptr<CubeSchema>& schema_ptr() const { return schema_; }

  const DimensionTable& dimension(int h) const { return dimensions_[h]; }
  const FactTable& facts() const { return facts_; }

  /// \brief Write access for ingestion. Fact appends are snapshot-safe on
  /// their own; dimension growth additionally requires the database's
  /// exclusive schema lock (see StarDatabase::schema_mutex).
  FactTable& mutable_facts() { return facts_; }
  DimensionTable& mutable_dimension(int h) { return dimensions_[h]; }

  /// \brief The current view set (never null; possibly empty).
  std::shared_ptr<const ViewSet> views_snapshot() const {
    std::lock_guard<std::mutex> lock(view_mu_);
    return views_;
  }

  /// \brief Legacy accessor into the current set; setup-time use only (the
  /// reference is invalidated by the next AddView/PublishViews).
  const std::vector<MaterializedView>& views() const {
    std::lock_guard<std::mutex> lock(view_mu_);
    return views_->views;
  }

  /// \brief Appends a view, stamping the set at the facts' current epoch
  /// (setup-time path: no appender may run concurrently).
  void AddView(MaterializedView view) {
    std::lock_guard<std::mutex> lock(view_mu_);
    auto next = std::make_shared<ViewSet>();
    next->epoch = facts_.epoch();
    next->rows = facts_.NumRows();
    next->views = views_->views;
    next->views.push_back(std::move(view));
    views_ = std::move(next);
  }

  /// \brief Atomically replaces the whole set — the incremental-maintenance
  /// commit path. `epoch` / `rows` are the fact epoch and committed row
  /// count the view contents aggregate.
  void PublishViews(std::vector<MaterializedView> views, uint64_t epoch,
                    int64_t rows) {
    auto next = std::make_shared<ViewSet>();
    next->epoch = epoch;
    next->rows = rows;
    next->views = std::move(views);
    std::lock_guard<std::mutex> lock(view_mu_);
    views_ = std::move(next);
  }

  /// \brief Serializes appenders on this cube: one ingest commit (append +
  /// derived extension + view maintenance + cache invalidation) at a time.
  std::mutex& ingest_mutex() const { return ingest_mu_; }

  /// \brief Cross-checks dimension tables against their hierarchies and the
  /// fact table's foreign keys against dimension sizes.
  Status Validate() const;

 private:
  std::shared_ptr<CubeSchema> schema_;
  std::vector<DimensionTable> dimensions_;
  FactTable facts_;
  mutable std::mutex view_mu_;
  std::shared_ptr<const ViewSet> views_;
  mutable std::mutex ingest_mu_;
};

/// \brief The database: a catalog of named detailed cubes. Targets and
/// external benchmarks are both regular entries; an external benchmark is
/// simply another cube reconciled to share hierarchies with the target
/// (Section 3.1 of the paper assumes reconciliation has been applied).
class StarDatabase {
 public:
  StarDatabase() = default;
  StarDatabase(const StarDatabase&) = delete;
  StarDatabase& operator=(const StarDatabase&) = delete;

  Status Register(std::string name, std::unique_ptr<BoundCube> cube);

  Result<const BoundCube*> Find(std::string_view name) const;
  bool Contains(std::string_view name) const;

  /// \brief Names of all registered cubes (catalog listing).
  std::vector<std::string> CubeNames() const;

  /// \brief Mutable access, used to attach materialized views after load
  /// and by the ingestion path.
  Result<BoundCube*> FindMutable(std::string_view name);

  /// \brief The schema lock. Member-stable fact appends are lock-free
  /// (snapshots isolate them); but growing a dimension table or a hierarchy
  /// dictionary mutates structures queries index directly, so sessions hold
  /// this shared for the duration of a statement and dictionary-mutating
  /// ingest commits hold it exclusive.
  std::shared_mutex& schema_mutex() const { return schema_mu_; }

 private:
  std::unordered_map<std::string, std::unique_ptr<BoundCube>> cubes_;
  mutable std::shared_mutex schema_mu_;
};

}  // namespace assess

#endif  // ASSESS_STORAGE_STAR_SCHEMA_H_
