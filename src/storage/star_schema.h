#ifndef ASSESS_STORAGE_STAR_SCHEMA_H_
#define ASSESS_STORAGE_STAR_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "olap/cube_schema.h"
#include "storage/materialized_view.h"
#include "storage/table.h"

namespace assess {

/// \brief A detailed cube bound to its star-schema storage: the cube schema,
/// one dimension table per hierarchy (parallel to schema hierarchy order),
/// the fact table, and any materialized views declared on it.
class BoundCube {
 public:
  BoundCube(std::shared_ptr<CubeSchema> schema,
            std::vector<DimensionTable> dimensions, FactTable facts)
      : schema_(std::move(schema)),
        dimensions_(std::move(dimensions)),
        facts_(std::move(facts)) {}

  const CubeSchema& schema() const { return *schema_; }
  const std::shared_ptr<CubeSchema>& schema_ptr() const { return schema_; }

  const DimensionTable& dimension(int h) const { return dimensions_[h]; }
  const FactTable& facts() const { return facts_; }

  const std::vector<MaterializedView>& views() const { return views_; }
  void AddView(MaterializedView view) { views_.push_back(std::move(view)); }

  /// \brief Cross-checks dimension tables against their hierarchies and the
  /// fact table's foreign keys against dimension sizes.
  Status Validate() const;

 private:
  std::shared_ptr<CubeSchema> schema_;
  std::vector<DimensionTable> dimensions_;
  FactTable facts_;
  std::vector<MaterializedView> views_;
};

/// \brief The database: a catalog of named detailed cubes. Targets and
/// external benchmarks are both regular entries; an external benchmark is
/// simply another cube reconciled to share hierarchies with the target
/// (Section 3.1 of the paper assumes reconciliation has been applied).
class StarDatabase {
 public:
  StarDatabase() = default;
  StarDatabase(const StarDatabase&) = delete;
  StarDatabase& operator=(const StarDatabase&) = delete;

  Status Register(std::string name, std::unique_ptr<BoundCube> cube);

  Result<const BoundCube*> Find(std::string_view name) const;
  bool Contains(std::string_view name) const;

  /// \brief Names of all registered cubes (catalog listing).
  std::vector<std::string> CubeNames() const;

  /// \brief Mutable access, used to attach materialized views after load.
  Result<BoundCube*> FindMutable(std::string_view name);

 private:
  std::unordered_map<std::string, std::unique_ptr<BoundCube>> cubes_;
};

}  // namespace assess

#endif  // ASSESS_STORAGE_STAR_SCHEMA_H_
