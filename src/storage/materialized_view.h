#ifndef ASSESS_STORAGE_MATERIALIZED_VIEW_H_
#define ASSESS_STORAGE_MATERIALIZED_VIEW_H_

#include <string>
#include <vector>

#include "olap/cube.h"
#include "olap/cube_query.h"
#include "olap/cube_schema.h"
#include "olap/group_by_set.h"

namespace assess {

/// \brief A materialized aggregate view: the detailed cube pre-aggregated
/// at some group-by set, with no selection (the classical OLAP MV, the
/// in-memory analogue of the Oracle materialized views used in the paper's
/// experimental setup).
///
/// `data` holds one row per populated coordinate of `group_by`, with one
/// column per measure; measure values are pre-aggregated with the schema
/// operators, so answering a query from the view re-aggregates them.
struct MaterializedView {
  std::string name;
  GroupBySet group_by;
  Cube data;
};

/// \brief True when `query` can be answered by re-aggregating any
/// selection-free result pre-aggregated at `source_group_by`: every level
/// the query needs (group-by or predicate) is available at a finer-or-equal
/// level in the source, and all query measures re-aggregate losslessly
/// (sum/min/max/count; avg is not distributive and disqualifies the
/// source). Shared between the static view picker and the dynamic result
/// cache's subsumption matcher.
bool RollupAnswersQuery(const CubeSchema& schema, const CubeQuery& query,
                        const GroupBySet& source_group_by);

/// \brief RollupAnswersQuery specialized to a materialized view.
bool ViewAnswersQuery(const CubeSchema& schema, const CubeQuery& query,
                      const MaterializedView& view);

/// \brief Index of the smallest (fewest rows) applicable view in `views`,
/// or -1 when none applies and the query must scan the fact table.
int PickBestView(const CubeSchema& schema, const CubeQuery& query,
                 const std::vector<MaterializedView>& views);

}  // namespace assess

#endif  // ASSESS_STORAGE_MATERIALIZED_VIEW_H_
