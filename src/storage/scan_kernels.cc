#include "storage/scan_kernels.h"

#include "storage/scan_kernels_impl.h"

namespace assess {

// Entry points of the tier TUs (compiled with -msse4.2 / -mavx2; only added
// to the build on x86-64, see src/CMakeLists.txt).
#if defined(ASSESS_SIMD_X86)
namespace simd_detail {
void FusedScanSse42(const FusedScanArgs& args, int64_t begin, int64_t end,
                    AggState* state);
void MinMaxInt32Sse42(const int32_t* values, int64_t n, int32_t* min_out,
                      int32_t* max_out);
void FusedScanAvx2(const FusedScanArgs& args, int64_t begin, int64_t end,
                   AggState* state);
void MinMaxInt32Avx2(const int32_t* values, int64_t n, int32_t* min_out,
                     int32_t* max_out);
}  // namespace simd_detail
#endif

namespace {

void FusedScanScalar(const FusedScanArgs& args, int64_t begin, int64_t end,
                     AggState* state) {
  kernel_detail::FusedScanImpl<kernel_detail::IsaScalar>(args, begin, end,
                                                         state);
}

}  // namespace

FusedScanFn GetFusedScanKernel(SimdLevel level) {
#if defined(ASSESS_SIMD_X86)
  switch (level) {
    case SimdLevel::kAVX2:
      return &simd_detail::FusedScanAvx2;
    case SimdLevel::kSSE42:
      return &simd_detail::FusedScanSse42;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return &FusedScanScalar;
}

void MinMaxInt32(SimdLevel level, const int32_t* values, int64_t n,
                 int32_t* min_out, int32_t* max_out) {
#if defined(ASSESS_SIMD_X86)
  switch (level) {
    case SimdLevel::kAVX2:
      simd_detail::MinMaxInt32Avx2(values, n, min_out, max_out);
      return;
    case SimdLevel::kSSE42:
      simd_detail::MinMaxInt32Sse42(values, n, min_out, max_out);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  kernel_detail::IsaScalar::MinMax(values, n, min_out, max_out);
}

void DecodePackedCodes(const PackedColumn& packed, int64_t begin, int64_t end,
                       int32_t* out) {
  const uint8_t* base = packed.data();
  switch (packed.width()) {
    case PackedColumn::Width::kU8:
      for (int64_t r = begin; r < end; ++r) {
        out[r - begin] = base[r];
      }
      return;
    case PackedColumn::Width::kU16: {
      const uint16_t* src = reinterpret_cast<const uint16_t*>(base);
      for (int64_t r = begin; r < end; ++r) {
        out[r - begin] = src[r];
      }
      return;
    }
    case PackedColumn::Width::kU32: {
      const uint32_t* src = reinterpret_cast<const uint32_t*>(base);
      for (int64_t r = begin; r < end; ++r) {
        out[r - begin] = static_cast<int32_t>(src[r]);
      }
      return;
    }
  }
}

}  // namespace assess
