#include "storage/materialized_view.h"

#include <algorithm>

namespace assess {

bool RollupAnswersQuery(const CubeSchema& schema, const CubeQuery& query,
                        const GroupBySet& source_group_by) {
  // Measures must re-aggregate losslessly.
  for (int m : query.measures) {
    if (schema.measure(m).op == AggOp::kAvg) return false;
  }
  // Per hierarchy: the finest level the query touches must be rolled up to
  // from the source's level for that hierarchy.
  for (int h = 0; h < schema.hierarchy_count(); ++h) {
    int finest_needed = -1;  // -1: hierarchy untouched.
    if (query.group_by.HasHierarchy(h)) {
      finest_needed = query.group_by.LevelOf(h);
    }
    for (const Predicate& p : query.predicates) {
      if (p.hierarchy != h) continue;
      finest_needed =
          finest_needed < 0 ? p.level : std::min(finest_needed, p.level);
    }
    if (finest_needed < 0) continue;
    if (!source_group_by.HasHierarchy(h)) return false;
    if (source_group_by.LevelOf(h) > finest_needed) return false;
  }
  return true;
}

bool ViewAnswersQuery(const CubeSchema& schema, const CubeQuery& query,
                      const MaterializedView& view) {
  return RollupAnswersQuery(schema, query, view.group_by);
}

int PickBestView(const CubeSchema& schema, const CubeQuery& query,
                 const std::vector<MaterializedView>& views) {
  int best = -1;
  int64_t best_rows = 0;
  for (size_t i = 0; i < views.size(); ++i) {
    if (!ViewAnswersQuery(schema, query, views[i])) continue;
    int64_t rows = views[i].data.NumRows();
    if (best < 0 || rows < best_rows) {
      best = static_cast<int>(i);
      best_rows = rows;
    }
  }
  return best;
}

}  // namespace assess
