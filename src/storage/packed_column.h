#ifndef ASSESS_STORAGE_PACKED_COLUMN_H_
#define ASSESS_STORAGE_PACKED_COLUMN_H_

#include <cstdint>
#include <vector>

#include "common/simd.h"

namespace assess {

/// \brief A dictionary-compressed view of one fact foreign-key column.
///
/// Fact FK columns are already dictionary codes (row indexes into the
/// dimension table), so compression is width reduction: codes are stored at
/// the narrowest power-of-two byte width that holds the column's maximum
/// (1, 2 or 4 bytes). Power-of-two widths — rather than arbitrary bit
/// widths — keep the vector kernels' unpack step a single widening load
/// (cvtepu8/cvtepu16) instead of a per-width shift network, and keep
/// random access O(1) for the scalar mirror path.
///
/// Storage is cache-line-aligned and padded to a whole line of zero bytes
/// past the last code, so a vector kernel may always issue one full-width
/// load at the tail without reading unowned memory (the scalar tail loop
/// never reads the padding, and padding codes never reach a lane-table
/// gather).
class PackedColumn {
 public:
  enum class Width : uint8_t { kU8 = 1, kU16 = 2, kU32 = 4 };

  PackedColumn() = default;

  /// \brief Packs `codes` (all non-negative) at the narrowest width.
  static PackedColumn Pack(const std::vector<int32_t>& codes);

  int64_t size() const { return size_; }
  Width width() const { return width_; }
  int bytes_per_code() const { return static_cast<int>(width_); }
  int64_t byte_size() const { return size_ * bytes_per_code(); }

  const uint8_t* data() const { return bytes_.data(); }

  int32_t CodeAt(int64_t i) const {
    switch (width_) {
      case Width::kU8:
        return bytes_[i];
      case Width::kU16:
        return reinterpret_cast<const uint16_t*>(bytes_.data())[i];
      case Width::kU32:
        return static_cast<int32_t>(
            reinterpret_cast<const uint32_t*>(bytes_.data())[i]);
    }
    return 0;
  }

 private:
  Width width_ = Width::kU32;
  int64_t size_ = 0;
  std::vector<uint8_t, SimdAllocator<uint8_t>> bytes_;
};

}  // namespace assess

#endif  // ASSESS_STORAGE_PACKED_COLUMN_H_
