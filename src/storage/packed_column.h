#ifndef ASSESS_STORAGE_PACKED_COLUMN_H_
#define ASSESS_STORAGE_PACKED_COLUMN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/simd.h"

namespace assess {

/// \brief A dictionary-compressed view of one fact foreign-key column.
///
/// Fact FK columns are already dictionary codes (row indexes into the
/// dimension table), so compression is width reduction: codes are stored at
/// the narrowest power-of-two byte width that holds the column's maximum
/// (1, 2 or 4 bytes). Power-of-two widths — rather than arbitrary bit
/// widths — keep the vector kernels' unpack step a single widening load
/// (cvtepu8/cvtepu16) instead of a per-width shift network, and keep
/// random access O(1) for the scalar mirror path.
///
/// Storage is cache-line-aligned and padded to a whole line of zero bytes
/// past the last code, so a vector kernel may always issue one full-width
/// load at the tail without reading unowned memory (the scalar tail loop
/// never reads the padding, and padding codes never reach a lane-table
/// gather).
///
/// The buffer is held behind a shared_ptr so column versions are cheap to
/// snapshot: ExtendedWith() appends codes for an appended fact-row suffix
/// into the *same* buffer when the width tier and capacity allow it —
/// readers of older versions index only their own (smaller) prefix, and the
/// scan kernels never load past the scan end, so the append is invisible to
/// them — and falls back to a fresh buffer, re-encoding every code at the
/// wider width, when a new code overflows the current tier.
class PackedColumn {
 public:
  enum class Width : uint8_t { kU8 = 1, kU16 = 2, kU32 = 4 };

  PackedColumn() = default;

  /// \brief Packs `codes` (all non-negative) at the narrowest width.
  static PackedColumn Pack(const std::vector<int32_t>& codes);
  static PackedColumn Pack(const int32_t* codes, int64_t n);

  /// \brief A column covering this one's codes plus `delta[0, n)` appended.
  /// Single-writer: callers must serialize every ExtendedWith on one column
  /// lineage (FactTable's derived mutex does). Sets *repacked when a delta
  /// code overflowed the width tier and forced a full repack of the column
  /// at the next width.
  PackedColumn ExtendedWith(const int32_t* delta, int64_t n,
                            bool* repacked) const;

  int64_t size() const { return size_; }
  Width width() const { return width_; }
  int bytes_per_code() const { return static_cast<int>(width_); }
  int64_t byte_size() const { return size_ * bytes_per_code(); }

  const uint8_t* data() const {
    return bytes_ != nullptr ? bytes_->data() : nullptr;
  }

  int32_t CodeAt(int64_t i) const {
    const uint8_t* base = bytes_->data();
    switch (width_) {
      case Width::kU8:
        return base[i];
      case Width::kU16:
        return reinterpret_cast<const uint16_t*>(base)[i];
      case Width::kU32:
        return static_cast<int32_t>(
            reinterpret_cast<const uint32_t*>(base)[i]);
    }
    return 0;
  }

 private:
  using Buffer = std::vector<uint8_t, SimdAllocator<uint8_t>>;

  static Width WidthFor(int32_t max_code);
  static void Encode(Width width, const int32_t* codes, int64_t n,
                     uint8_t* out);
  /// Allocates a zeroed buffer holding `payload_bytes` of codes plus the
  /// alignment unit of tail padding.
  static std::shared_ptr<Buffer> NewBuffer(int64_t payload_bytes);

  Width width_ = Width::kU32;
  int64_t size_ = 0;
  std::shared_ptr<Buffer> bytes_;
};

}  // namespace assess

#endif  // ASSESS_STORAGE_PACKED_COLUMN_H_
