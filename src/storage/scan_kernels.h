#ifndef ASSESS_STORAGE_SCAN_KERNELS_H_
#define ASSESS_STORAGE_SCAN_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/simd.h"
#include "olap/cube_schema.h"
#include "olap/hierarchy.h"
#include "storage/flat_map64.h"
#include "storage/packed_column.h"

namespace assess {

/// \brief The fused scan→aggregate kernels: predicate evaluation, group-key
/// construction and measure accumulation in one pass over a morsel.
///
/// The engine lowers a scan into *lane tables*: for every hierarchy the
/// scan touches, a uint32 array over that hierarchy's code domain holding
///
///   lane[code] = kLaneReject                     when the conjunction of
///                                                predicates rejects `code`
///   lane[code] = radix * (group_member + 1)      when grouped (0 if only
///                                                predicated)
///
/// so per fact row the kernel computes key = 1 + Σ_h lane_h[code_h], with
/// the reject bit OR-accumulated alongside the sum. Keys are exact integers
/// (the engine only picks this kernel when the mixed-radix key space fits
/// kDenseKeyLimit, so the sum never reaches the reject bit) and group
/// lookup is a direct index into a dense key→group array — no hashing.
///
/// Determinism contract: every tier (scalar / SSE4.2 / AVX2) produces
/// bit-identical output. Vector tiers only compute integer keys and pass
/// bitmaps; floating-point accumulation is row-sequential in all tiers,
/// except the no-group-by fast path which uses kAccLanes fixed-lane partial
/// accumulators with the *same* lane assignment (row→lane (r−begin)&3) and
/// the same lane merge order in every tier, scalar included.

/// \brief Reject marker in a lane table (bit 31; clean lane sums stay far
/// below it because the key space is capped at kDenseKeyLimit).
inline constexpr uint32_t kLaneReject = 0x80000000u;

/// \brief Largest dense key space (max key + 1) the fused kernel handles;
/// larger group-by spaces fall back to the generic hash kernel. 2^18 keys
/// = a 1 MiB key→group array per in-flight morsel, freed at morsel end.
inline constexpr uint32_t kDenseKeyLimit = 1u << 18;

/// \brief Fixed lane count of the no-group-by partial accumulators. ISA-
/// independent: the AVX2 tier maps it onto one 4-lane register, the SSE4.2
/// tier onto two 2-lane registers, the scalar tier onto four doubles — all
/// with rows assigned to lane (r − begin) & 3 and lanes merged 0→3.
inline constexpr int kAccLanes = 4;

/// \brief One hierarchy's input to the fused kernel. Exactly one of
/// `packed` (fact scans) / `codes32` (view and cached-result roll-ups) is
/// set; `lane` spans the code domain of that source.
struct KernelColumn {
  const PackedColumn* packed = nullptr;
  const int32_t* codes32 = nullptr;
  const uint32_t* lane = nullptr;
};

/// \brief Decode schema for one grouped hierarchy: member ids are recovered
/// from a key as (key − 1) / radix % card1 − 1 on first-seen insertion.
struct KernelGroup {
  uint32_t radix = 0;
  uint32_t card1 = 0;  ///< level cardinality + 1
};

struct KernelMeasure {
  const double* source = nullptr;  ///< null: rows contribute 0.0 (count)
  AggOp op = AggOp::kSum;
};

/// \brief Per-morsel aggregation state shared by the dense fused kernels
/// and the generic hash kernel; partials merge in morsel index order.
struct AggState {
  FlatMap64 map{1024};
  int32_t num_groups = 0;
  std::vector<std::vector<MemberId>> out_coords;  ///< [grouped hier][group]
  std::vector<std::vector<double>> acc;           ///< [measure][group]
  std::vector<std::vector<int64_t>> cnt;          ///< [measure][group], avg
  /// Dense key→group index, -1 = empty. Allocated by the fused kernel on
  /// entry, released when its morsel completes (only the group lists above
  /// survive to the merge).
  std::vector<int32_t> dense;
  int64_t rows_visited = 0;
  int64_t rows_passed = 0;
};

/// \brief Everything a fused-kernel invocation needs besides the row range.
struct FusedScanArgs {
  std::vector<KernelColumn> columns;  ///< all touched hierarchies
  std::vector<KernelGroup> groups;    ///< grouped subset, radix-ascending
  std::vector<KernelMeasure> measures;
  uint32_t key_space = 0;  ///< dense array size (> max possible key)
};

/// \brief Runs the fused scan→aggregate over rows [begin, end) of one
/// morsel, accumulating into `state`.
using FusedScanFn = void (*)(const FusedScanArgs& args, int64_t begin,
                             int64_t end, AggState* state);

/// \brief The fused kernel for `level` (pointers for compiled-in tiers;
/// asking for a tier that is not compiled in returns the scalar kernel).
FusedScanFn GetFusedScanKernel(SimdLevel level);

/// \brief Min/max of `n` int32 codes (zone-map construction), vectorized at
/// `level`. Exact, so trivially tier-independent. `n` must be > 0.
void MinMaxInt32(SimdLevel level, const int32_t* values, int64_t n,
                 int32_t* min_out, int32_t* max_out);

/// \brief Decodes rows [begin, end) of a packed FK column into `out`
/// (out[i] = code of row begin + i). The multi-consumer shared scan uses
/// this to gather each packed column once per morsel and feed the same
/// int32 codes to every consumer's kernel — identical codes, identical
/// keys, so sharing cannot perturb results.
void DecodePackedCodes(const PackedColumn& packed, int64_t begin, int64_t end,
                       int32_t* out);

}  // namespace assess

#endif  // ASSESS_STORAGE_SCAN_KERNELS_H_
