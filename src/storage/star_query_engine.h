#ifndef ASSESS_STORAGE_STAR_QUERY_ENGINE_H_
#define ASSESS_STORAGE_STAR_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cube_cache.h"
#include "common/result.h"
#include "olap/cube.h"
#include "olap/cube_query.h"
#include "storage/star_schema.h"

namespace assess {

class TaskPool;
class WorkloadProfiler;

/// \brief Pivot push-down specification (the ⊞ operator executed
/// "server-side", Section 5.2.3). The query it applies to must slice the
/// pivot level on {reference_member} ∪ other_members.
struct PivotSpec {
  /// The sliced level l (its name).
  std::string level;
  /// u_k: the slice kept in the output, with its coordinate intact.
  std::string reference_member;
  /// u_1..u_{k-1}: slices folded into extra measures, in the given order.
  std::vector<std::string> other_members;
  /// New measure names: measure_names[i][j] names measure j of slice
  /// other_members[i] in the output (e.g. "benchmark.quantity", "past1").
  std::vector<std::vector<std::string>> measure_names;
  /// When true (assess), rows missing any neighbor slice are dropped —
  /// mirroring the NOT NULL filter of Listing 5. When false (assess*),
  /// missing neighbors yield null measures.
  bool require_complete = true;
};

/// \brief Full engine configuration. This is the option set interactive
/// front-ends (Executor/AssessSession) construct engines with; the result
/// cache is ON by default here because assess sessions re-touch the same
/// benchmark cubes constantly.
struct EngineOptions {
  bool use_views = true;
  /// Intra-query parallelism cap: how many pool participants one scan may
  /// occupy at once. <= 0 derives it from the shared pool's worker count —
  /// NOT from hardware_concurrency, so many sessions inside one assessd
  /// still size themselves against the one pool they all share instead of
  /// each assuming it owns the whole machine. 1 runs scans inline on the
  /// calling thread (bit-identical results either way; see TaskPool).
  int threads = 0;
  /// The worker pool scans are scheduled on. When unset, the process-wide
  /// TaskPool::Shared() is used — every engine in the process then draws
  /// from one fixed worker set no matter how many sessions exist.
  std::shared_ptr<TaskPool> pool;
  /// Semantic result cache: exact fingerprint hits plus subsumption-aware
  /// reuse of finer-grained cached results.
  bool use_result_cache = true;
  CacheOptions cache;
  /// When set, this cache instance is used instead of creating a private
  /// one — the way several sessions over one database share warm results.
  std::shared_ptr<CubeResultCache> shared_cache;
  /// When set, every internal get records its fingerprint, latency, scan
  /// volume and cache outcome into this workload profile (obs/
  /// workload_profiler.h). Not owned; must outlive the engine. Null keeps
  /// the engine profile-free.
  WorkloadProfiler* profiler = nullptr;
};

/// \brief Morsel accounting for one engine: how many scan morsels were
/// actually aggregated vs. skipped outright because their zone maps proved
/// no row could pass the pushed-down predicate.
struct ScanStats {
  uint64_t morsels_scanned = 0;
  uint64_t morsels_skipped = 0;
};

/// \brief How the last Execute() was answered, for tests and benches.
enum class CacheOutcome {
  kBypass,          ///< cache disabled for this engine
  kMiss,            ///< computed by scan (fact table or view)
  kExactHit,        ///< served from an identical cached result
  kSubsumptionHit,  ///< re-aggregated from a finer cached result
};

/// \brief The query engine over star-schema storage: the stand-in for the
/// DBMS of the paper's architecture.
///
/// Exactly three entry points exist, matching the three push-down shapes of
/// Section 5.2: Execute (a single `get`, used by every plan), ExecuteJoined
/// (get + get + join, the JOP push-down) and ExecutePivoted (get + pivot,
/// the POP push-down). Everything else happens client-side on Cube values.
///
/// All entry points funnel through one internal get, so the result cache
/// accelerates NP, JOP and POP alike.
class StarQueryEngine {
 public:
  /// \brief Configured construction (the front door for sessions).
  StarQueryEngine(const StarDatabase* db, const EngineOptions& options);

  /// \brief Legacy construction: serial by default and — deliberately —
  /// without a result cache, so direct uses (microbenches, equivalence
  /// tests, view materialization) keep measuring and exercising raw scans.
  /// `threads` > 1 lets large scans occupy that many participants of the
  /// process-wide TaskPool (morsel-driven; partials merged in morsel order,
  /// so results are bit-identical to the serial path at every thread
  /// count).
  explicit StarQueryEngine(const StarDatabase* db, bool use_views = true,
                           int threads = 1);

  /// \brief Executes a cube query (the `get` logical operator): aggregates
  /// the detailed cube at the query's group-by set under its predicates.
  /// Answers from the result cache when possible, else from the smallest
  /// applicable materialized view when enabled, else from the fact table.
  Result<Cube> Execute(const CubeQuery& query) const;

  /// \brief JOP push-down: evaluates target and benchmark queries and joins
  /// them on `join_levels` (level names common to both group-by sets),
  /// without materializing the two operand cubes for the client. Benchmark
  /// measures are renamed "<benchmark.alias>.<name>" when an alias is set.
  /// `left_outer` selects the assess* variant.
  Result<Cube> ExecuteJoined(const CubeQuery& target,
                             const CubeQuery& benchmark,
                             const std::vector<std::string>& join_levels,
                             bool left_outer) const;

  /// \brief JOP push-down for multi-match partial joins (the Past case of
  /// Example 5.3): all `expected` benchmark cells matching a target cell are
  /// concatenated into one widened row, ordered chronologically by
  /// `order_level` and renamed `slot_names[slot][measure]`.
  Result<Cube> ExecuteConcatJoined(
      const CubeQuery& target, const CubeQuery& benchmark,
      const std::vector<std::string>& join_levels,
      const std::string& order_level, int expected,
      const std::vector<std::vector<std::string>>& slot_names,
      bool require_complete) const;

  /// \brief POP push-down: evaluates `query_all` (whose predicate on
  /// spec.level selects reference + other members) and pivots the other
  /// slices into measures, in a single engine call (Listing 5's shape).
  Result<Cube> ExecutePivoted(const CubeQuery& query_all,
                              const PivotSpec& spec) const;

  /// \brief Multi-query shared scan (the server's MQO layer): executes every
  /// query in `queries` — all on one cube, all with the same canonical
  /// predicate conjunction, group-bys free to differ — in a single fused
  /// morsel pass over the fact table. Each packed FK column is gathered once
  /// per morsel and feeds every consumer's accumulator set; per-consumer
  /// partials merge in morsel index order, so each result is bit-identical
  /// to running that query alone through Execute() against the same
  /// snapshot. Results are inserted into the result cache (when enabled)
  /// and returned in input order.
  ///
  /// `pinned_epoch` is the fact epoch the batch planned against; when
  /// nonzero and the table has advanced past it, Unavailable is returned
  /// (the caller falls back to unbatched execution). Views are deliberately
  /// bypassed: all consumers must read the same source rows.
  Result<std::vector<Cube>> ExecuteSharedScan(
      const std::vector<CubeQuery>& queries, uint64_t pinned_epoch) const;

  /// \brief Materializes an aggregate view of `cube_name` at `level_names`
  /// (no predicates, all measures) and attaches it to the cube. Returns the
  /// number of rows in the view.
  Result<int64_t> MaterializeView(StarDatabase* db, const std::string& cube_name,
                                  const std::vector<std::string>& level_names,
                                  const std::string& view_name) const;

  /// \brief Aggregates committed fact rows [from, to) of `bound` at
  /// `group_by` — no predicates, all schema measures — through the fused
  /// kernels. This is the delta-aggregation primitive incremental
  /// materialized-view maintenance feeds appended batches through.
  Result<Cube> AggregateFactRange(const BoundCube& bound,
                                  const GroupBySet& group_by, int64_t from,
                                  int64_t to) const;

  /// \brief Whether the last Execute() was answered from a view (observable
  /// for tests and the ablation bench). False for cache hits.
  bool last_used_view() const { return last_used_view_; }

  /// \brief How the last internal get was answered.
  CacheOutcome last_cache_outcome() const { return last_cache_outcome_; }

  /// \brief The result cache, or nullptr when disabled. Shareable across
  /// engines/sessions over the same (immutable) database.
  const std::shared_ptr<CubeResultCache>& result_cache() const {
    return cache_;
  }

  /// \brief Cache counters (all zero when the cache is disabled).
  CacheStats cache_stats() const {
    return cache_ ? cache_->stats() : CacheStats{};
  }

  int threads() const { return threads_; }

  /// \brief The workload profile internal gets record into, or nullptr.
  WorkloadProfiler* profiler() const { return profiler_; }

  /// \brief The pool this engine schedules scans on (never null).
  const std::shared_ptr<TaskPool>& pool() const { return pool_; }

  /// \brief Morsel counters for every scan this engine has run. The same
  /// counts also accumulate into the pool, where assessd reads them
  /// fleet-wide for the stats frame.
  ScanStats scan_stats() const {
    return ScanStats{morsels_scanned_.load(std::memory_order_relaxed),
                     morsels_skipped_.load(std::memory_order_relaxed)};
  }

 private:
  Result<Cube> ExecuteInternal(const BoundCube& bound,
                               const CubeQuery& query) const;
  /// ExecuteInternal minus the "engine.get" span: cache lookup, subsumption
  /// roll-up, or uncached scan.
  Result<Cube> ExecuteGet(const BoundCube& bound,
                          const CubeQuery& query) const;
  /// `snap_in` is the admission snapshot the get must answer at (so the
  /// cache key's epoch and the scan agree); null takes a fresh one.
  Result<Cube> ExecuteUncached(const BoundCube& bound, const CubeQuery& query,
                               const FactSnapshot* snap_in) const;
  void CountMorsels(uint64_t scanned, uint64_t skipped) const;

  const StarDatabase* db_;
  bool use_views_;
  int threads_;
  std::shared_ptr<TaskPool> pool_;
  std::shared_ptr<CubeResultCache> cache_;
  WorkloadProfiler* profiler_ = nullptr;
  mutable std::atomic<uint64_t> morsels_scanned_{0};
  mutable std::atomic<uint64_t> morsels_skipped_{0};
  mutable bool last_used_view_ = false;
  mutable CacheOutcome last_cache_outcome_ = CacheOutcome::kBypass;
};

}  // namespace assess

#endif  // ASSESS_STORAGE_STAR_QUERY_ENGINE_H_
