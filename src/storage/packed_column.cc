#include "storage/packed_column.h"

#include <algorithm>
#include <cstring>

namespace assess {

PackedColumn PackedColumn::Pack(const std::vector<int32_t>& codes) {
  int32_t max_code = 0;
  for (int32_t c : codes) max_code = std::max(max_code, c);

  PackedColumn col;
  col.size_ = static_cast<int64_t>(codes.size());
  col.width_ = max_code <= 0xFF    ? Width::kU8
               : max_code <= 0xFFFF ? Width::kU16
                                    : Width::kU32;
  // One whole alignment unit of zero padding past the end: full-width tail
  // loads stay in bounds, and the padding decodes to code 0 (never used).
  int64_t payload = col.size_ * col.bytes_per_code();
  col.bytes_.assign(payload + kSimdAlign, 0);
  switch (col.width_) {
    case Width::kU8: {
      uint8_t* out = col.bytes_.data();
      for (int64_t i = 0; i < col.size_; ++i) {
        out[i] = static_cast<uint8_t>(codes[i]);
      }
      break;
    }
    case Width::kU16: {
      uint16_t* out = reinterpret_cast<uint16_t*>(col.bytes_.data());
      for (int64_t i = 0; i < col.size_; ++i) {
        out[i] = static_cast<uint16_t>(codes[i]);
      }
      break;
    }
    case Width::kU32: {
      if (payload > 0) {
        std::memcpy(col.bytes_.data(), codes.data(),
                    static_cast<size_t>(payload));
      }
      break;
    }
  }
  return col;
}

}  // namespace assess
