#include "storage/packed_column.h"

#include <algorithm>
#include <cstring>

namespace assess {

PackedColumn::Width PackedColumn::WidthFor(int32_t max_code) {
  return max_code <= 0xFF    ? Width::kU8
         : max_code <= 0xFFFF ? Width::kU16
                              : Width::kU32;
}

std::shared_ptr<PackedColumn::Buffer> PackedColumn::NewBuffer(
    int64_t payload_bytes) {
  auto buffer = std::make_shared<Buffer>();
  // One whole alignment unit of zero padding past the end: full-width tail
  // loads stay in bounds, and the padding decodes to code 0 (never used).
  buffer->assign(static_cast<size_t>(payload_bytes) + kSimdAlign, 0);
  return buffer;
}

void PackedColumn::Encode(Width width, const int32_t* codes, int64_t n,
                          uint8_t* out) {
  switch (width) {
    case Width::kU8: {
      for (int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<uint8_t>(codes[i]);
      }
      break;
    }
    case Width::kU16: {
      uint16_t* out16 = reinterpret_cast<uint16_t*>(out);
      for (int64_t i = 0; i < n; ++i) {
        out16[i] = static_cast<uint16_t>(codes[i]);
      }
      break;
    }
    case Width::kU32: {
      if (n > 0) {
        std::memcpy(out, codes, static_cast<size_t>(n) * sizeof(int32_t));
      }
      break;
    }
  }
}

PackedColumn PackedColumn::Pack(const std::vector<int32_t>& codes) {
  return Pack(codes.data(), static_cast<int64_t>(codes.size()));
}

PackedColumn PackedColumn::Pack(const int32_t* codes, int64_t n) {
  int32_t max_code = 0;
  for (int64_t i = 0; i < n; ++i) max_code = std::max(max_code, codes[i]);

  PackedColumn col;
  col.size_ = n;
  col.width_ = WidthFor(max_code);
  col.bytes_ = NewBuffer(n * col.bytes_per_code());
  Encode(col.width_, codes, n, col.bytes_->data());
  return col;
}

PackedColumn PackedColumn::ExtendedWith(const int32_t* delta, int64_t n,
                                        bool* repacked) const {
  *repacked = false;
  int32_t max_code = 0;
  for (int64_t i = 0; i < n; ++i) max_code = std::max(max_code, delta[i]);
  const Width need = WidthFor(max_code);

  PackedColumn out;
  out.size_ = size_ + n;

  const bool width_ok =
      static_cast<int>(need) <= static_cast<int>(width_);
  if (bytes_ != nullptr && width_ok) {
    const int64_t old_payload = size_ * bytes_per_code();
    const int64_t new_payload = out.size_ * bytes_per_code();
    if (new_payload + static_cast<int64_t>(kSimdAlign) <=
        static_cast<int64_t>(bytes_->size())) {
      // In-place append past the published prefix: bytes beyond `size_` are
      // unobservable through any older version of this column, and the
      // region past the new payload is still the zeroed padding.
      Encode(width_, delta, n, bytes_->data() + old_payload);
      out.width_ = width_;
      out.bytes_ = bytes_;
      return out;
    }
  }

  // Reallocation: either the buffer is out of headroom (re-encode at the
  // same width, with geometric growth so repeated batch appends amortize)
  // or a delta code overflowed the width tier (full repack, one tier up).
  out.width_ = width_ok ? width_ : need;
  *repacked = !width_ok && bytes_ != nullptr && size_ > 0;
  const int64_t payload = out.size_ * out.bytes_per_code();
  out.bytes_ = NewBuffer(std::max<int64_t>(payload * 2, 4096));
  if (size_ > 0) {
    if (out.width_ == width_) {
      std::memcpy(out.bytes_->data(), bytes_->data(),
                  static_cast<size_t>(size_ * bytes_per_code()));
    } else {
      uint8_t* base = out.bytes_->data();
      switch (out.width_) {
        case Width::kU8:
          for (int64_t i = 0; i < size_; ++i) {
            base[i] = static_cast<uint8_t>(CodeAt(i));
          }
          break;
        case Width::kU16:
          for (int64_t i = 0; i < size_; ++i) {
            reinterpret_cast<uint16_t*>(base)[i] =
                static_cast<uint16_t>(CodeAt(i));
          }
          break;
        case Width::kU32:
          for (int64_t i = 0; i < size_; ++i) {
            reinterpret_cast<uint32_t*>(base)[i] =
                static_cast<uint32_t>(CodeAt(i));
          }
          break;
      }
    }
  }
  Encode(out.width_, delta, n, out.bytes_->data() + size_ * out.bytes_per_code());
  return out;
}

}  // namespace assess
