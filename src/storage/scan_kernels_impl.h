#ifndef ASSESS_STORAGE_SCAN_KERNELS_IMPL_H_
#define ASSESS_STORAGE_SCAN_KERNELS_IMPL_H_

// Template bodies of the fused scan→aggregate kernels, included by one
// translation unit per instruction-set tier (scan_kernels.cc for scalar,
// scan_kernels_sse42.cc / scan_kernels_avx2.cc built with the matching -m
// flags — the __SSE4_2__/__AVX2__ guards below see those flags).
//
// The tier-specific code is confined to two primitives:
//   Isa::ComputeKeys      — group keys + pass bitmap for a run of rows
//   Isa::LaneAccumulate   — the no-group-by fixed-lane partial accumulators
// Everything stateful — dense group assignment, first-seen coordinate
// decode, measure accumulation — is the shared scalar code below, executed
// in row order in every tier, which is what makes the tiers bit-identical.

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <limits>
#include <vector>

#include "storage/scan_kernels.h"

#if defined(__SSE4_2__) || defined(__AVX2__)
#include <immintrin.h>
#endif

namespace assess {
namespace kernel_detail {

/// Rows per kernel block: key/bitmap buffers live in L1/L2 (16 KiB of keys)
/// and the block length is a multiple of 64 (whole bitmap words) and of
/// kAccLanes (lane phase never breaks inside a block).
inline constexpr int64_t kKernelBlock = 4096;

inline double InitialAccumulator(AggOp op) {
  switch (op) {
    case AggOp::kSum:
    case AggOp::kAvg:
    case AggOp::kCount:
      return 0.0;
    case AggOp::kMin:
      return std::numeric_limits<double>::infinity();
    case AggOp::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

inline int32_t CodeOf(const KernelColumn& col, int64_t row) {
  return col.packed != nullptr ? col.packed->CodeAt(row) : col.codes32[row];
}

/// Scalar reference for keys + pass bits over rows [row0, row0 + n); also
/// the tail path of the vector tiers, so its integer arithmetic *is* the
/// kernel's definition of a key. Bits are OR-ed into `bitmap`, which must
/// be zeroed beforehand.
inline void ComputeKeysScalar(const std::vector<KernelColumn>& cols,
                              int64_t row0, int64_t i0, int64_t n,
                              uint32_t* keys, uint64_t* bitmap) {
  for (int64_t i = i0; i < n; ++i) {
    uint32_t key = 1;
    uint32_t rej = 0;
    for (const KernelColumn& c : cols) {
      uint32_t lane = c.lane[CodeOf(c, row0 + i)];
      rej |= lane;
      key += lane;
    }
    keys[i] = key;
    if ((rej & kLaneReject) == 0) {
      bitmap[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

/// Folds one passing row into `state`: first-seen group assignment through
/// the dense key→group array, coordinate decode from the key, then the
/// measure accumulate. The single definition every dense path shares — the
/// block-staged vector tiers and the single-pass scalar tier both funnel
/// passing rows through here in row order, which is what makes them
/// bit-identical.
inline void AccumulateRow(const FusedScanArgs& args, uint32_t key, int64_t r,
                          AggState* state) {
  const int num_grouped = static_cast<int>(args.groups.size());
  const int num_measures = static_cast<int>(args.measures.size());
  int32_t group = state->dense[key];
  if (group < 0) {
    group = state->num_groups++;
    state->dense[key] = group;
    const uint32_t k0 = key - 1;
    for (int gi = 0; gi < num_grouped; ++gi) {
      const KernelGroup& kg = args.groups[gi];
      state->out_coords[gi].push_back(
          static_cast<MemberId>((k0 / kg.radix) % kg.card1) - 1);
    }
    for (int m = 0; m < num_measures; ++m) {
      state->acc[m].push_back(InitialAccumulator(args.measures[m].op));
      state->cnt[m].push_back(0);
    }
  }
  for (int m = 0; m < num_measures; ++m) {
    const KernelMeasure& km = args.measures[m];
    const double v = km.source != nullptr ? km.source[r] : 0.0;
    switch (km.op) {
      case AggOp::kSum:
        state->acc[m][group] += v;
        break;
      case AggOp::kAvg:
        state->acc[m][group] += v;
        state->cnt[m][group] += 1;
        break;
      case AggOp::kMin:
        state->acc[m][group] = std::min(state->acc[m][group], v);
        break;
      case AggOp::kMax:
        state->acc[m][group] = std::max(state->acc[m][group], v);
        break;
      case AggOp::kCount:
        state->acc[m][group] += 1;
        break;
    }
  }
}

/// Whether the single-measure kSum fast path of the accumulate loops
/// applies. That shape — one summed measure, groups resolved through the
/// dense array — is the archetypal OLAP scan, and special-casing it keeps
/// the accumulator base pointer and dense array in registers instead of
/// re-deriving them through AggState for every passing row.
inline bool SingleSumShape(const FusedScanArgs& args) {
  return args.measures.size() == 1 && args.measures[0].op == AggOp::kSum &&
         args.measures[0].source != nullptr;
}

/// The vector tiers' accumulation phase: walks the pass bitmap in row
/// order, handing each passing row to AccumulateRow.
inline void AccumulateBlock(const FusedScanArgs& args, int64_t row0,
                            int64_t n, const uint32_t* keys,
                            const uint64_t* bitmap, AggState* state) {
  const int64_t words = (n + 63) >> 6;
  if (SingleSumShape(args)) {
    // Same adds in the same row order as the generic loop below — first-
    // seen keys detour through AccumulateRow (which may reallocate acc, so
    // the raw pointer is re-fetched), everything else stays in registers.
    const double* src = args.measures[0].source;
    const int32_t* dense = state->dense.data();
    double* acc = state->acc[0].data();
    for (int64_t w = 0; w < words; ++w) {
      uint64_t bits = bitmap[w];
      state->rows_passed += std::popcount(bits);
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const int64_t i = (w << 6) + b;
        const int32_t group = dense[keys[i]];
        if (group >= 0) {
          acc[group] += src[row0 + i];
        } else {
          AccumulateRow(args, keys[i], row0 + i, state);
          acc = state->acc[0].data();
        }
      }
    }
    return;
  }
  for (int64_t w = 0; w < words; ++w) {
    uint64_t bits = bitmap[w];
    state->rows_passed += std::popcount(bits);
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const int64_t i = (w << 6) + b;
      AccumulateRow(args, keys[i], row0 + i, state);
    }
  }
}

/// The scalar tier's dense path: one pass, no key/bitmap staging buffers —
/// without vector key computation the staging costs more than it saves.
/// Rows flow through the same key arithmetic (ComputeKeysScalar's) and the
/// same AccumulateRow in the same order, so output bits match the staged
/// vector tiers exactly.
inline void DenseScanScalar(const FusedScanArgs& args, int64_t begin,
                            int64_t end, AggState* state) {
  if (SingleSumShape(args)) {
    const double* src = args.measures[0].source;
    const int32_t* dense = state->dense.data();
    double* acc = state->acc[0].data();
    int64_t passed = 0;
    for (int64_t r = begin; r < end; ++r) {
      uint32_t key = 1;
      uint32_t rej = 0;
      for (const KernelColumn& c : args.columns) {
        const uint32_t lane = c.lane[CodeOf(c, r)];
        rej |= lane;
        key += lane;
      }
      if ((rej & kLaneReject) != 0) continue;
      ++passed;
      const int32_t group = dense[key];
      if (group >= 0) {
        acc[group] += src[r];
      } else {
        AccumulateRow(args, key, r, state);
        acc = state->acc[0].data();
      }
    }
    state->rows_passed += passed;
    return;
  }
  for (int64_t r = begin; r < end; ++r) {
    uint32_t key = 1;
    uint32_t rej = 0;
    for (const KernelColumn& c : args.columns) {
      const uint32_t lane = c.lane[CodeOf(c, r)];
      rej |= lane;
      key += lane;
    }
    if ((rej & kLaneReject) != 0) continue;
    ++state->rows_passed;
    AccumulateRow(args, key, r, state);
  }
}

/// Per-measure fixed-lane partials of the no-group-by path.
struct LaneAcc {
  std::array<double, kAccLanes> sum{};
  std::array<int64_t, kAccLanes> count{};
};

#if defined(__SSE4_2__) || defined(__AVX2__)
template <class Isa>
int64_t LaneAccumulateVec(const FusedScanArgs& args, int64_t begin,
                          int64_t end, std::vector<LaneAcc>* lanes);
#endif

/// Merges the lane partials into group 0 of `state`, lanes 0→kAccLanes in
/// order — the deterministic reduction every tier shares.
inline void FoldLanes(const FusedScanArgs& args,
                      const std::vector<LaneAcc>& lanes, int64_t passed,
                      AggState* state) {
  state->rows_passed += passed;
  if (passed == 0) return;  // mirror the hash kernel: no row, no group
  const int num_measures = static_cast<int>(args.measures.size());
  state->num_groups = 1;
  for (int m = 0; m < num_measures; ++m) {
    double total = lanes[m].sum[0];
    for (int l = 1; l < kAccLanes; ++l) total += lanes[m].sum[l];
    int64_t count = 0;
    for (int l = 0; l < kAccLanes; ++l) count += lanes[m].count[l];
    state->acc[m].push_back(total);
    state->cnt[m].push_back(count);
  }
}

// -- scalar tier ------------------------------------------------------------

struct IsaScalar {
  static constexpr SimdLevel kLevel = SimdLevel::kScalar;

  static void ComputeKeys(const std::vector<KernelColumn>& cols, int64_t row0,
                          int64_t n, uint32_t* keys, uint64_t* bitmap) {
    std::memset(bitmap, 0, static_cast<size_t>((n + 63) >> 6) * 8);
    ComputeKeysScalar(cols, row0, 0, n, keys, bitmap);
  }

  /// The scalar mirror of the vector lane accumulators: same row→lane
  /// assignment ((r − begin) & 3), same per-lane addition order.
  static int64_t LaneAccumulate(const FusedScanArgs& args, int64_t begin,
                                int64_t end, std::vector<LaneAcc>* lanes) {
    const int num_measures = static_cast<int>(args.measures.size());
    int64_t passed = 0;
    for (int64_t r = begin; r < end; ++r) {
      bool pass = true;
      for (const KernelColumn& c : args.columns) {
        if ((c.lane[CodeOf(c, r)] & kLaneReject) != 0) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      ++passed;
      const int lane = static_cast<int>((r - begin) & (kAccLanes - 1));
      for (int m = 0; m < num_measures; ++m) {
        const KernelMeasure& km = args.measures[m];
        switch (km.op) {
          case AggOp::kSum:
            (*lanes)[m].sum[lane] += km.source[r];
            break;
          case AggOp::kAvg:
            (*lanes)[m].sum[lane] += km.source[r];
            (*lanes)[m].count[lane] += 1;
            break;
          case AggOp::kCount:
            (*lanes)[m].sum[lane] += 1.0;
            break;
          case AggOp::kMin:
          case AggOp::kMax:
            break;  // never lane-accumulated (DensePath handles them)
        }
      }
    }
    return passed;
  }

  static void MinMax(const int32_t* v, int64_t n, int32_t* lo, int32_t* hi) {
    int32_t mn = v[0];
    int32_t mx = v[0];
    for (int64_t i = 1; i < n; ++i) {
      mn = std::min(mn, v[i]);
      mx = std::max(mx, v[i]);
    }
    *lo = mn;
    *hi = mx;
  }
};

// -- SSE4.2 tier ------------------------------------------------------------

#if defined(__SSE4_2__)

struct IsaSse42 {
  static constexpr SimdLevel kLevel = SimdLevel::kSSE42;

  static __m128i LoadCodes4(const KernelColumn& col, int64_t row) {
    if (col.packed == nullptr) {
      return _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(col.codes32 + row));
    }
    const uint8_t* base = col.packed->data();
    switch (col.packed->width()) {
      case PackedColumn::Width::kU8: {
        uint32_t four = 0;
        std::memcpy(&four, base + row, 4);
        return _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(four)));
      }
      case PackedColumn::Width::kU16:
        return _mm_cvtepu16_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(base + row * 2)));
      case PackedColumn::Width::kU32:
        return _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(base + row * 4));
    }
    return _mm_setzero_si128();
  }

  /// No gather below AVX2: lane lookups are 4 scalar loads packed back into
  /// a vector; the adds, reject test and bitmap write stay vectorized.
  static __m128i GatherLanes(const uint32_t* lane, __m128i codes) {
    return _mm_set_epi32(
        static_cast<int>(lane[_mm_extract_epi32(codes, 3)]),
        static_cast<int>(lane[_mm_extract_epi32(codes, 2)]),
        static_cast<int>(lane[_mm_extract_epi32(codes, 1)]),
        static_cast<int>(lane[_mm_extract_epi32(codes, 0)]));
  }

  static void ComputeKeys(const std::vector<KernelColumn>& cols, int64_t row0,
                          int64_t n, uint32_t* keys, uint64_t* bitmap) {
    std::memset(bitmap, 0, static_cast<size_t>((n + 63) >> 6) * 8);
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      __m128i key = _mm_set1_epi32(1);
      __m128i rej = _mm_setzero_si128();
      for (const KernelColumn& c : cols) {
        __m128i lanes = GatherLanes(c.lane, LoadCodes4(c, row0 + i));
        rej = _mm_or_si128(rej, lanes);
        key = _mm_add_epi32(key, lanes);
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(keys + i), key);
      const uint64_t pass =
          static_cast<uint64_t>(~_mm_movemask_ps(_mm_castsi128_ps(rej))) &
          0xF;
      bitmap[i >> 6] |= pass << (i & 63);
    }
    ComputeKeysScalar(cols, row0, i, n, keys, bitmap);
  }

  static int64_t LaneAccumulate(const FusedScanArgs& args, int64_t begin,
                                int64_t end, std::vector<LaneAcc>* lanes) {
    return LaneAccumulateVec<IsaSse42>(args, begin, end, lanes);
  }

  /// kAccLanes = 4 mapped onto two 2-lane registers: lanes {0,1} and {2,3}.
  struct LaneRegs {
    __m128d lo, hi;
    __m128d cnt_lo, cnt_hi;

    void Load(const LaneAcc& a) {
      lo = _mm_loadu_pd(a.sum.data());
      hi = _mm_loadu_pd(a.sum.data() + 2);
      alignas(16) double c[kAccLanes];
      for (int l = 0; l < kAccLanes; ++l) {
        c[l] = static_cast<double>(a.count[l]);
      }
      cnt_lo = _mm_loadu_pd(c);
      cnt_hi = _mm_loadu_pd(c + 2);
    }
    void Store(LaneAcc* a) const {
      _mm_storeu_pd(a->sum.data(), lo);
      _mm_storeu_pd(a->sum.data() + 2, hi);
      alignas(16) double c[kAccLanes];
      _mm_storeu_pd(c, cnt_lo);
      _mm_storeu_pd(c + 2, cnt_hi);
      for (int l = 0; l < kAccLanes; ++l) {
        a->count[l] = static_cast<int64_t>(c[l]);
      }
    }
    void MaskedAdd(const double* src, uint32_t nibble, AggOp op) {
      const __m128d mask_lo = NibbleMaskLo(nibble);
      const __m128d mask_hi = NibbleMaskHi(nibble);
      if (op == AggOp::kSum || op == AggOp::kAvg) {
        lo = _mm_add_pd(lo, _mm_and_pd(_mm_loadu_pd(src), mask_lo));
        hi = _mm_add_pd(hi, _mm_and_pd(_mm_loadu_pd(src + 2), mask_hi));
      }
      if (op == AggOp::kAvg || op == AggOp::kCount) {
        const __m128d one = _mm_set1_pd(1.0);
        __m128d* c_lo = op == AggOp::kCount ? &lo : &cnt_lo;
        __m128d* c_hi = op == AggOp::kCount ? &hi : &cnt_hi;
        *c_lo = _mm_add_pd(*c_lo, _mm_and_pd(one, mask_lo));
        *c_hi = _mm_add_pd(*c_hi, _mm_and_pd(one, mask_hi));
      }
    }

   private:
    static __m128d NibbleMaskLo(uint32_t nibble) {
      return _mm_castsi128_pd(_mm_set_epi64x(
          nibble & 2 ? -1 : 0, nibble & 1 ? -1 : 0));
    }
    static __m128d NibbleMaskHi(uint32_t nibble) {
      return _mm_castsi128_pd(_mm_set_epi64x(
          nibble & 8 ? -1 : 0, nibble & 4 ? -1 : 0));
    }
  };

  static void MinMax(const int32_t* v, int64_t n, int32_t* lo, int32_t* hi) {
    if (n < 8) {
      IsaScalar::MinMax(v, n, lo, hi);
      return;
    }
    __m128i mn = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v));
    __m128i mx = mn;
    int64_t i = 4;
    for (; i + 4 <= n; i += 4) {
      __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
      mn = _mm_min_epi32(mn, x);
      mx = _mm_max_epi32(mx, x);
    }
    alignas(16) int32_t mins[4];
    alignas(16) int32_t maxs[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(mins), mn);
    _mm_store_si128(reinterpret_cast<__m128i*>(maxs), mx);
    int32_t best_lo = mins[0];
    int32_t best_hi = maxs[0];
    for (int l = 1; l < 4; ++l) {
      best_lo = std::min(best_lo, mins[l]);
      best_hi = std::max(best_hi, maxs[l]);
    }
    for (; i < n; ++i) {
      best_lo = std::min(best_lo, v[i]);
      best_hi = std::max(best_hi, v[i]);
    }
    *lo = best_lo;
    *hi = best_hi;
  }
};

#endif  // __SSE4_2__

// -- AVX2 tier --------------------------------------------------------------

#if defined(__AVX2__)

struct IsaAvx2 {
  static constexpr SimdLevel kLevel = SimdLevel::kAVX2;

  static __m256i LoadCodes8(const KernelColumn& col, int64_t row) {
    if (col.codes32 != nullptr) {
      return _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(col.codes32 + row));
    }
    const uint8_t* base = col.packed->data();
    switch (col.packed->width()) {
      case PackedColumn::Width::kU8:
        return _mm256_cvtepu8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(base + row)));
      case PackedColumn::Width::kU16:
        return _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(base + row * 2)));
      case PackedColumn::Width::kU32:
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(base + row * 4));
    }
    return _mm256_setzero_si256();
  }

  static void ComputeKeys(const std::vector<KernelColumn>& cols, int64_t row0,
                          int64_t n, uint32_t* keys, uint64_t* bitmap) {
    std::memset(bitmap, 0, static_cast<size_t>((n + 63) >> 6) * 8);
    uint8_t* bitmap_bytes = reinterpret_cast<uint8_t*>(bitmap);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      __m256i key = _mm256_set1_epi32(1);
      __m256i rej = _mm256_setzero_si256();
      for (const KernelColumn& c : cols) {
        __m256i lanes = _mm256_i32gather_epi32(
            reinterpret_cast<const int*>(c.lane), LoadCodes8(c, row0 + i), 4);
        rej = _mm256_or_si256(rej, lanes);
        key = _mm256_add_epi32(key, lanes);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i), key);
      // Sign bits of `rej` are the reject flags; i is 8-aligned, so the
      // eight pass bits land on one whole bitmap byte.
      bitmap_bytes[i >> 3] = static_cast<uint8_t>(
          ~_mm256_movemask_ps(_mm256_castsi256_ps(rej)));
    }
    ComputeKeysScalar(cols, row0, i, n, keys, bitmap);
  }

  static int64_t LaneAccumulate(const FusedScanArgs& args, int64_t begin,
                                int64_t end, std::vector<LaneAcc>* lanes) {
    return LaneAccumulateVec<IsaAvx2>(args, begin, end, lanes);
  }

  /// kAccLanes = 4 on one 4-lane register.
  struct LaneRegs {
    __m256d sum, cnt;

    void Load(const LaneAcc& a) {
      sum = _mm256_loadu_pd(a.sum.data());
      alignas(32) double c[kAccLanes];
      for (int l = 0; l < kAccLanes; ++l) {
        c[l] = static_cast<double>(a.count[l]);
      }
      cnt = _mm256_loadu_pd(c);
    }
    void Store(LaneAcc* a) const {
      _mm256_storeu_pd(a->sum.data(), sum);
      alignas(32) double c[kAccLanes];
      _mm256_storeu_pd(c, cnt);
      for (int l = 0; l < kAccLanes; ++l) {
        a->count[l] = static_cast<int64_t>(c[l]);
      }
    }
    void MaskedAdd(const double* src, uint32_t nibble, AggOp op) {
      const __m256d mask = NibbleMask(nibble);
      if (op == AggOp::kSum || op == AggOp::kAvg) {
        sum = _mm256_add_pd(sum, _mm256_and_pd(_mm256_loadu_pd(src), mask));
      }
      if (op == AggOp::kCount) {
        sum = _mm256_add_pd(sum, _mm256_and_pd(_mm256_set1_pd(1.0), mask));
      } else if (op == AggOp::kAvg) {
        cnt = _mm256_add_pd(cnt, _mm256_and_pd(_mm256_set1_pd(1.0), mask));
      }
    }

   private:
    static __m256d NibbleMask(uint32_t nibble) {
      return _mm256_castsi256_pd(_mm256_set_epi64x(
          nibble & 8 ? -1 : 0, nibble & 4 ? -1 : 0, nibble & 2 ? -1 : 0,
          nibble & 1 ? -1 : 0));
    }
  };

  static void MinMax(const int32_t* v, int64_t n, int32_t* lo, int32_t* hi) {
    if (n < 16) {
      IsaScalar::MinMax(v, n, lo, hi);
      return;
    }
    __m256i mn = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
    __m256i mx = mn;
    int64_t i = 8;
    for (; i + 8 <= n; i += 8) {
      __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
      mn = _mm256_min_epi32(mn, x);
      mx = _mm256_max_epi32(mx, x);
    }
    alignas(32) int32_t mins[8];
    alignas(32) int32_t maxs[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(mins), mn);
    _mm256_store_si256(reinterpret_cast<__m256i*>(maxs), mx);
    int32_t best_lo = mins[0];
    int32_t best_hi = maxs[0];
    for (int l = 1; l < 8; ++l) {
      best_lo = std::min(best_lo, mins[l]);
      best_hi = std::max(best_hi, maxs[l]);
    }
    for (; i < n; ++i) {
      best_lo = std::min(best_lo, v[i]);
      best_hi = std::max(best_hi, v[i]);
    }
    *lo = best_lo;
    *hi = best_hi;
  }
};

#endif  // __AVX2__

// -- shared vector-tier lane loop -------------------------------------------

#if defined(__SSE4_2__) || defined(__AVX2__)

/// The vector no-group-by loop shared by the SSE4.2 and AVX2 tiers: the
/// tier's ComputeKeys yields the pass bitmap for a block, then each measure
/// folds 4 rows at a time into its Isa::LaneRegs with masked adds (masked-
/// out lanes add +0.0 — bit-inert, because a sum accumulator can never hold
/// -0.0: it starts at +0.0 and x + (−x) rounds to +0.0). The tail (< 4
/// rows, only at morsel end) continues the same (r − begin) & 3 lane
/// assignment in scalar code, exactly as the scalar mirror does.
template <class Isa>
int64_t LaneAccumulateVec(const FusedScanArgs& args, int64_t begin,
                          int64_t end, std::vector<LaneAcc>* lanes) {
  const int num_measures = static_cast<int>(args.measures.size());
  alignas(kSimdAlign) uint32_t keys[kKernelBlock];
  alignas(kSimdAlign) uint64_t bitmap[kKernelBlock / 64];
  int64_t passed = 0;
  for (int64_t block = begin; block < end; block += kKernelBlock) {
    const int64_t n = std::min(kKernelBlock, end - block);
    Isa::ComputeKeys(args.columns, block, n, keys, bitmap);
    for (int64_t w = 0; w < (n + 63) >> 6; ++w) {
      passed += std::popcount(bitmap[w]);
    }
    const int64_t vec_n = n & ~int64_t{3};
    for (int m = 0; m < num_measures; ++m) {
      const KernelMeasure& km = args.measures[m];
      typename Isa::LaneRegs regs;
      regs.Load((*lanes)[m]);
      const double* src = km.source != nullptr ? km.source + block : nullptr;
      // kCount ignores src; feed a dummy aligned pointer to keep the loop
      // uniform (the masked add never dereferences it for kCount).
      alignas(kSimdAlign) static const double kZeros[kAccLanes] = {};
      for (int64_t i = 0; i < vec_n; i += 4) {
        const uint32_t nibble =
            static_cast<uint32_t>(bitmap[i >> 6] >> (i & 63)) & 0xF;
        if (nibble == 0) continue;
        regs.MaskedAdd(src != nullptr ? src + i : kZeros, nibble, km.op);
      }
      regs.Store(&(*lanes)[m]);
      // Scalar tail, continuing the lane phase.
      for (int64_t i = vec_n; i < n; ++i) {
        if (((bitmap[i >> 6] >> (i & 63)) & 1) == 0) continue;
        const int lane = static_cast<int>((block + i - begin) &
                                          (kAccLanes - 1));
        switch (km.op) {
          case AggOp::kSum:
            (*lanes)[m].sum[lane] += km.source[block + i];
            break;
          case AggOp::kAvg:
            (*lanes)[m].sum[lane] += km.source[block + i];
            (*lanes)[m].count[lane] += 1;
            break;
          case AggOp::kCount:
            (*lanes)[m].sum[lane] += 1.0;
            break;
          case AggOp::kMin:
          case AggOp::kMax:
            break;
        }
      }
    }
  }
  return passed;
}

#endif  // __SSE4_2__ || __AVX2__

/// Whether the no-group-by lane path applies: nothing grouped and every
/// measure lane-accumulable (min/max fold through the dense path instead —
/// their masked-lane identities interact with NaN orderings, and a dense
/// single-slot accumulate is already cheap).
inline bool UseLanePath(const FusedScanArgs& args) {
  if (!args.groups.empty()) return false;
  for (const KernelMeasure& m : args.measures) {
    if (m.op == AggOp::kMin || m.op == AggOp::kMax) return false;
  }
  return true;
}

/// The tier-generic fused kernel body.
template <class Isa>
void FusedScanImpl(const FusedScanArgs& args, int64_t begin, int64_t end,
                   AggState* state) {
  state->rows_visited += end - begin;
  if (UseLanePath(args)) {
    std::vector<LaneAcc> lanes(args.measures.size());
    const int64_t passed = Isa::LaneAccumulate(args, begin, end, &lanes);
    FoldLanes(args, lanes, passed, state);
    return;
  }
  state->dense.assign(args.key_space, -1);
  if constexpr (Isa::kLevel == SimdLevel::kScalar) {
    DenseScanScalar(args, begin, end, state);
  } else {
    alignas(kSimdAlign) uint32_t keys[kKernelBlock];
    alignas(kSimdAlign) uint64_t bitmap[kKernelBlock / 64];
    for (int64_t block = begin; block < end; block += kKernelBlock) {
      const int64_t n = std::min(kKernelBlock, end - block);
      Isa::ComputeKeys(args.columns, block, n, keys, bitmap);
      AccumulateBlock(args, block, n, keys, bitmap, state);
    }
  }
  // Only the group lists survive to the merge; the dense array is per-
  // morsel scratch and would otherwise pin key_space × 4 bytes per partial.
  state->dense = std::vector<int32_t>();
}

}  // namespace kernel_detail
}  // namespace assess

#endif  // ASSESS_STORAGE_SCAN_KERNELS_IMPL_H_
