#ifndef ASSESS_STORAGE_DATABASE_IO_H_
#define ASSESS_STORAGE_DATABASE_IO_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/star_schema.h"

namespace assess {

/// \brief On-disk persistence of a StarDatabase, so generated warehouses
/// can be saved once and reloaded by benches and examples — and so the
/// checkpointer (src/wal/checkpoint) can snapshot a live database.
///
/// Layout: one directory per database with a textual catalog file
/// (`catalog.assess`) describing cubes, hierarchies (with their member
/// dictionaries and part-of links) and measures, plus one little-endian
/// binary column file per fact column (`<cube>.<col>.bin`). Dimension
/// tables are stored inside the catalog (they are small); fact columns are
/// raw arrays for fast I/O. A `manifest` file written last lists every
/// other file with its size and CRC32C, so the loader can tell a complete
/// directory from one a crash cut short.
///
/// The format is versioned; readers reject unknown versions rather than
/// guessing.

/// \brief Knobs for SaveDatabaseFiles.
struct SaveOptions {
  /// fsync every file and the directory before returning. On by default;
  /// benches regenerating scratch data may turn it off.
  bool fsync = true;
  /// Extra (file name, content) pairs written into the directory and
  /// covered by the manifest — the checkpointer stores its `wal.meta`
  /// (checkpoint LSN + per-cube epochs) this way.
  std::vector<std::pair<std::string, std::string>> extra_files;
};

/// \brief Writes the database's file set — columns, catalog, extra files,
/// then the manifest — directly into `directory` (created when missing).
/// Not atomic on its own: a crash can leave a partial directory, which the
/// missing-or-mismatching manifest makes LoadDatabase reject with a typed
/// kCorruptCheckpoint. Callers wanting all-or-nothing use SaveDatabase
/// (temp + rename) or write into a fresh checkpoint-<seq> directory.
Status SaveDatabaseFiles(const StarDatabase& db, const std::string& directory,
                         const SaveOptions& options);

/// \brief Atomically replaces `directory` with a snapshot of `db`: the file
/// set is written to `<directory>.tmp`, fsynced, and renamed into place. A
/// crash at any point leaves either the previous complete directory or the
/// new one — never a torn mix (during the swap itself the previous version
/// sits at `<directory>.old` for one rename's worth of time).
Status SaveDatabase(const StarDatabase& db, const std::string& directory);

/// \brief Loads a database previously written by SaveDatabase /
/// SaveDatabaseFiles. Typed failures: kNotFound when there is no catalog,
/// kNotSupported for a future format version, kCorruptCheckpoint when the
/// manifest is missing or any file fails its size/CRC32C check (a partial
/// or damaged directory — never loaded on a guess).
Result<std::unique_ptr<StarDatabase>> LoadDatabase(
    const std::string& directory);

}  // namespace assess

#endif  // ASSESS_STORAGE_DATABASE_IO_H_
