#ifndef ASSESS_STORAGE_DATABASE_IO_H_
#define ASSESS_STORAGE_DATABASE_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/star_schema.h"

namespace assess {

/// \brief On-disk persistence of a StarDatabase, so generated warehouses
/// can be saved once and reloaded by benches and examples instead of being
/// regenerated.
///
/// Layout: one directory per database with a textual catalog file
/// (`catalog.assess`) describing cubes, hierarchies (with their member
/// dictionaries and part-of links) and measures, plus one little-endian
/// binary column file per fact column (`<cube>.<col>.bin`). Dimension
/// tables are stored inside the catalog (they are small); fact columns are
/// raw arrays for fast I/O.
///
/// The format is versioned; readers reject unknown versions rather than
/// guessing.
///
/// Saving overwrites files inside `directory` (which is created when
/// missing) but never deletes unrelated files.
Status SaveDatabase(const StarDatabase& db, const std::string& directory);

/// \brief Loads a database previously written by SaveDatabase.
Result<std::unique_ptr<StarDatabase>> LoadDatabase(
    const std::string& directory);

}  // namespace assess

#endif  // ASSESS_STORAGE_DATABASE_IO_H_
