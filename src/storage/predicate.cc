#include "storage/predicate.h"

#include <algorithm>

namespace assess {

Result<std::vector<uint8_t>> BuildDomainFlags(const Hierarchy& hierarchy,
                                              const Predicate& predicate) {
  int level = predicate.level;
  int32_t card = hierarchy.LevelCardinality(level);
  std::vector<uint8_t> flags(card, 0);
  switch (predicate.op) {
    case PredicateOp::kEquals:
    case PredicateOp::kIn: {
      for (const std::string& member : predicate.members) {
        ASSESS_ASSIGN_OR_RETURN(MemberId id,
                                hierarchy.MemberIdOf(level, member));
        flags[id] = 1;
      }
      break;
    }
    case PredicateOp::kBetween: {
      if (predicate.members.size() != 2) {
        return Status::InvalidArgument("between predicate needs two bounds");
      }
      const std::string& lo = predicate.members[0];
      const std::string& hi = predicate.members[1];
      for (MemberId id = 0; id < card; ++id) {
        const std::string& name = hierarchy.MemberName(level, id);
        if (name >= lo && name <= hi) flags[id] = 1;
      }
      break;
    }
  }
  return flags;
}

Result<std::vector<uint8_t>> BuildConjunctionFlags(
    const Hierarchy& hierarchy, const std::vector<Predicate>& predicates,
    int eval_level) {
  int32_t card = hierarchy.LevelCardinality(eval_level);
  std::vector<uint8_t> flags(card, 1);
  for (const Predicate& p : predicates) {
    if (p.level < eval_level) {
      return Status::InvalidArgument(
          "predicate on level '" + hierarchy.level_name(p.level) +
          "' is finer than evaluation level '" +
          hierarchy.level_name(eval_level) + "'");
    }
    ASSESS_ASSIGN_OR_RETURN(std::vector<uint8_t> domain,
                            BuildDomainFlags(hierarchy, p));
    for (MemberId m = 0; m < card; ++m) {
      if (!flags[m]) continue;
      MemberId up = hierarchy.RollUpMember(eval_level, m, p.level);
      if (up == kInvalidMember || !domain[up]) flags[m] = 0;
    }
  }
  return flags;
}

Result<std::vector<uint8_t>> BuildDimensionRowFlags(
    const DimensionTable& dim, const std::vector<Predicate>& predicates) {
  int64_t rows = dim.NumRows();
  std::vector<uint8_t> flags(rows, 1);
  for (const Predicate& p : predicates) {
    ASSESS_ASSIGN_OR_RETURN(std::vector<uint8_t> domain,
                            BuildDomainFlags(dim.hierarchy(), p));
    const std::vector<MemberId>& codes = dim.level_column(p.level);
    for (int64_t r = 0; r < rows; ++r) {
      if (flags[r] && !domain[codes[r]]) flags[r] = 0;
    }
  }
  return flags;
}

}  // namespace assess
