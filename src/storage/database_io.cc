#include "storage/database_io.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/str_util.h"

namespace assess {

namespace {

constexpr int kFormatVersion = 1;

namespace fs = std::filesystem;

// --- binary column files -----------------------------------------------

template <typename T>
Status WriteColumn(const fs::path& path, const std::vector<T>& column) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path.string() +
                            "' for writing");
  }
  out.write(reinterpret_cast<const char*>(column.data()),
            static_cast<std::streamsize>(column.size() * sizeof(T)));
  if (!out) {
    return Status::Internal("short write to '" + path.string() + "'");
  }
  return Status::OK();
}

template <typename T>
Result<std::vector<T>> ReadColumn(const fs::path& path, int64_t rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("missing column file '" + path.string() + "'");
  }
  std::vector<T> column(rows);
  in.read(reinterpret_cast<char*>(column.data()),
          static_cast<std::streamsize>(column.size() * sizeof(T)));
  if (in.gcount() !=
      static_cast<std::streamsize>(column.size() * sizeof(T))) {
    return Status::InvalidArgument("column file '" + path.string() +
                                   "' is truncated");
  }
  return column;
}

// --- catalog reading helpers ----------------------------------------------

class LineReader {
 public:
  explicit LineReader(std::istream* in) : in_(in) {}

  Result<std::string> NextLine() {
    std::string line;
    if (!std::getline(*in_, line)) {
      return Status::InvalidArgument("unexpected end of catalog at line " +
                                     std::to_string(number_));
    }
    ++number_;
    return line;
  }

  /// Reads a line and checks its first token; returns the rest.
  Result<std::vector<std::string>> Expect(const std::string& keyword,
                                          int min_fields) {
    ASSESS_ASSIGN_OR_RETURN(std::string line, NextLine());
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.empty() || fields[0] != keyword ||
        static_cast<int>(fields.size()) < min_fields + 1) {
      return Status::InvalidArgument("catalog line " +
                                     std::to_string(number_) +
                                     ": expected '" + keyword + " ...', got '" +
                                     line + "'");
    }
    fields.erase(fields.begin());
    return fields;
  }

  int line_number() const { return number_; }

 private:
  std::istream* in_;
  int number_ = 0;
};

Result<int64_t> ParseInt(const std::string& text) {
  try {
    size_t pos = 0;
    int64_t value = std::stoll(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed integer '" + text +
                                   "' in catalog");
  }
}

Result<AggOp> AggOpFromString(const std::string& name) {
  for (AggOp op : {AggOp::kSum, AggOp::kAvg, AggOp::kMin, AggOp::kMax,
                   AggOp::kCount}) {
    if (name == AggOpToString(op)) return op;
  }
  return Status::InvalidArgument("unknown aggregation operator '" + name +
                                 "'");
}

}  // namespace

Status SaveDatabase(const StarDatabase& db, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + directory +
                            "': " + ec.message());
  }

  // Collect the distinct hierarchies across cubes (they are shared).
  std::vector<std::shared_ptr<Hierarchy>> hierarchies;
  std::map<const Hierarchy*, size_t> hierarchy_index;
  std::vector<std::string> cube_names = db.CubeNames();
  for (const std::string& name : cube_names) {
    ASSESS_ASSIGN_OR_RETURN(const BoundCube* cube, db.Find(name));
    for (int h = 0; h < cube->schema().hierarchy_count(); ++h) {
      const std::shared_ptr<Hierarchy>& hier = cube->schema().hierarchy_ptr(h);
      if (hierarchy_index.emplace(hier.get(), hierarchies.size()).second) {
        hierarchies.push_back(hier);
      }
    }
  }

  std::ostringstream catalog;
  catalog << "assessdb " << kFormatVersion << "\n";
  catalog << "hierarchies " << hierarchies.size() << "\n";
  for (const auto& hier : hierarchies) {
    catalog << "hierarchy " << hier->name() << " "
            << (hier->temporal() ? 1 : 0) << " " << hier->level_count()
            << "\n";
    for (int l = 0; l < hier->level_count(); ++l) {
      int32_t card = hier->LevelCardinality(l);
      catalog << "level " << hier->level_name(l) << " " << card << "\n";
      for (MemberId m = 0; m < card; ++m) {
        const std::string& member = hier->MemberName(l, m);
        if (member.find('\n') != std::string::npos) {
          return Status::InvalidArgument("member names must not contain "
                                         "newlines: level '" +
                                         hier->level_name(l) + "'");
        }
        catalog << "m " << member << "\n";
      }
      if (l + 1 < hier->level_count()) {
        catalog << "parents";
        for (MemberId m = 0; m < card; ++m) {
          catalog << " " << hier->RollUpMember(l, m, l + 1);
        }
        catalog << "\n";
      }
    }
  }

  catalog << "cubes " << cube_names.size() << "\n";
  for (const std::string& name : cube_names) {
    ASSESS_ASSIGN_OR_RETURN(const BoundCube* cube, db.Find(name));
    const CubeSchema& schema = cube->schema();
    catalog << "cube " << name << " " << schema.hierarchy_count() << " "
            << schema.measure_count() << " " << cube->facts().NumRows()
            << "\n";
    for (int h = 0; h < schema.hierarchy_count(); ++h) {
      const DimensionTable& dim = cube->dimension(h);
      size_t hier_id = hierarchy_index.at(&schema.hierarchy(h));
      catalog << "dimension " << dim.name() << " " << hier_id << " "
              << dim.NumRows() << "\n";
      for (int l = 0; l < schema.hierarchy(h).level_count(); ++l) {
        fs::path file = fs::path(directory) /
                        (name + ".dim" + std::to_string(h) + ".l" +
                         std::to_string(l) + ".bin");
        ASSESS_RETURN_NOT_OK(WriteColumn(file, dim.level_column(l)));
      }
      fs::path fk_file = fs::path(directory) /
                         (name + ".fk" + std::to_string(h) + ".bin");
      ASSESS_RETURN_NOT_OK(WriteColumn(fk_file, cube->facts().fk_column(h)));
    }
    for (int m = 0; m < schema.measure_count(); ++m) {
      const MeasureDef& def = schema.measure(m);
      catalog << "measure " << def.name << " " << AggOpToString(def.op)
              << "\n";
      fs::path file = fs::path(directory) /
                      (name + ".m" + std::to_string(m) + ".bin");
      ASSESS_RETURN_NOT_OK(WriteColumn(file, cube->facts().measure_column(m)));
    }
  }

  std::ofstream out(fs::path(directory) / "catalog.assess",
                    std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot write catalog in '" + directory + "'");
  }
  out << catalog.str();
  if (!out.flush()) {
    return Status::Internal("short write of catalog in '" + directory + "'");
  }
  return Status::OK();
}

Result<std::unique_ptr<StarDatabase>> LoadDatabase(
    const std::string& directory) {
  std::ifstream in(fs::path(directory) / "catalog.assess");
  if (!in) {
    return Status::NotFound("no catalog in '" + directory + "'");
  }
  LineReader reader(&in);

  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> header,
                          reader.Expect("assessdb", 1));
  ASSESS_ASSIGN_OR_RETURN(int64_t version, ParseInt(header[0]));
  if (version != kFormatVersion) {
    return Status::NotSupported("unsupported database format version " +
                                std::to_string(version));
  }

  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> hier_count_fields,
                          reader.Expect("hierarchies", 1));
  ASSESS_ASSIGN_OR_RETURN(int64_t hier_count, ParseInt(hier_count_fields[0]));
  std::vector<std::shared_ptr<Hierarchy>> hierarchies;
  for (int64_t i = 0; i < hier_count; ++i) {
    ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                            reader.Expect("hierarchy", 3));
    auto hier = std::make_shared<Hierarchy>(fields[0]);
    ASSESS_ASSIGN_OR_RETURN(int64_t temporal, ParseInt(fields[1]));
    hier->set_temporal(temporal != 0);
    ASSESS_ASSIGN_OR_RETURN(int64_t levels, ParseInt(fields[2]));
    for (int64_t l = 0; l < levels; ++l) {
      ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> level_fields,
                              reader.Expect("level", 2));
      int level = hier->AddLevel(level_fields[0]);
      ASSESS_ASSIGN_OR_RETURN(int64_t members, ParseInt(level_fields[1]));
      for (int64_t m = 0; m < members; ++m) {
        ASSESS_ASSIGN_OR_RETURN(std::string line, reader.NextLine());
        if (!StartsWith(line, "m ")) {
          return Status::InvalidArgument(
              "catalog line " + std::to_string(reader.line_number()) +
              ": expected a member line");
        }
        hier->AddMember(level, line.substr(2));
      }
      if (l + 1 < levels) {
        ASSESS_ASSIGN_OR_RETURN(std::string line, reader.NextLine());
        std::vector<std::string> parents = Split(line, ' ');
        if (parents.empty() || parents[0] != "parents" ||
            static_cast<int64_t>(parents.size()) != members + 1) {
          return Status::InvalidArgument(
              "catalog line " + std::to_string(reader.line_number()) +
              ": malformed parents line");
        }
        // Parents reference the next level's members, which are not interned
        // yet; stash and resolve after that level is read. Simpler: levels
        // are serialized finest-first, so parents point into the *next*
        // level; defer by remembering the raw ids.
        for (int64_t m = 0; m < members; ++m) {
          ASSESS_ASSIGN_OR_RETURN(int64_t parent, ParseInt(parents[m + 1]));
          // Member ids are dense and assigned in serialization order, so the
          // raw id is valid once the next level is loaded; SetParent only
          // stores the id.
          hier->SetParent(level, static_cast<MemberId>(m),
                          static_cast<MemberId>(parent));
        }
      }
    }
    ASSESS_RETURN_NOT_OK(hier->Validate());
    hierarchies.push_back(std::move(hier));
  }

  auto db = std::make_unique<StarDatabase>();
  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> cube_count_fields,
                          reader.Expect("cubes", 1));
  ASSESS_ASSIGN_OR_RETURN(int64_t cube_count, ParseInt(cube_count_fields[0]));
  for (int64_t c = 0; c < cube_count; ++c) {
    ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                            reader.Expect("cube", 4));
    const std::string& name = fields[0];
    ASSESS_ASSIGN_OR_RETURN(int64_t hier_refs, ParseInt(fields[1]));
    ASSESS_ASSIGN_OR_RETURN(int64_t measures, ParseInt(fields[2]));
    ASSESS_ASSIGN_OR_RETURN(int64_t fact_rows, ParseInt(fields[3]));

    auto schema = std::make_shared<CubeSchema>(name);
    std::vector<DimensionTable> dims;
    std::vector<std::vector<int32_t>> fk_columns;
    for (int64_t h = 0; h < hier_refs; ++h) {
      ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> dim_fields,
                              reader.Expect("dimension", 3));
      ASSESS_ASSIGN_OR_RETURN(int64_t hier_id, ParseInt(dim_fields[1]));
      ASSESS_ASSIGN_OR_RETURN(int64_t dim_rows, ParseInt(dim_fields[2]));
      if (hier_id < 0 || hier_id >= static_cast<int64_t>(hierarchies.size())) {
        return Status::InvalidArgument("dimension references an unknown "
                                       "hierarchy");
      }
      std::shared_ptr<Hierarchy> hier = hierarchies[hier_id];
      schema->AddHierarchy(hier);
      std::vector<std::vector<MemberId>> codes;
      for (int l = 0; l < hier->level_count(); ++l) {
        fs::path file = fs::path(directory) /
                        (name + ".dim" + std::to_string(h) + ".l" +
                         std::to_string(l) + ".bin");
        ASSESS_ASSIGN_OR_RETURN(std::vector<MemberId> column,
                                ReadColumn<MemberId>(file, dim_rows));
        codes.push_back(std::move(column));
      }
      dims.push_back(DimensionTable::FromColumns(dim_fields[0], hier,
                                                 std::move(codes)));
      fs::path fk_file = fs::path(directory) /
                         (name + ".fk" + std::to_string(h) + ".bin");
      ASSESS_ASSIGN_OR_RETURN(std::vector<int32_t> fk,
                              ReadColumn<int32_t>(fk_file, fact_rows));
      fk_columns.push_back(std::move(fk));
    }
    std::vector<std::vector<double>> measure_columns;
    for (int64_t m = 0; m < measures; ++m) {
      ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> measure_fields,
                              reader.Expect("measure", 2));
      ASSESS_ASSIGN_OR_RETURN(AggOp op, AggOpFromString(measure_fields[1]));
      schema->AddMeasure({measure_fields[0], op});
      fs::path file = fs::path(directory) /
                      (name + ".m" + std::to_string(m) + ".bin");
      ASSESS_ASSIGN_OR_RETURN(std::vector<double> column,
                              ReadColumn<double>(file, fact_rows));
      measure_columns.push_back(std::move(column));
    }
    FactTable facts = FactTable::FromColumns(name, std::move(fk_columns),
                                             std::move(measure_columns));
    auto bound = std::make_unique<BoundCube>(schema, std::move(dims),
                                             std::move(facts));
    ASSESS_RETURN_NOT_OK(bound->Validate());
    ASSESS_RETURN_NOT_OK(db->Register(name, std::move(bound)));
  }
  return db;
}

}  // namespace assess
