#include "storage/database_io.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/crc32c.h"
#include "common/fs_util.h"
#include "common/str_util.h"

namespace assess {

namespace {

constexpr int kFormatVersion = 1;
constexpr char kManifestName[] = "manifest";
constexpr char kManifestMagic[] = "assessmanifest";
constexpr int kManifestVersion = 1;

namespace fs = std::filesystem;

// --- manifest -------------------------------------------------------------
//
// The manifest is written last and lists every other file in the directory
// with its size and CRC32C:
//
//   assessmanifest 1
//   file <name> <size> <crc32c, 8 hex digits>
//
// Its presence certifies the save completed; its checksums catch torn
// column files a crash (or a stray write) left behind.

class ManifestBuilder {
 public:
  void Add(const std::string& name, size_t size, uint32_t crc) {
    char line[64];
    std::snprintf(line, sizeof(line), " %zu %08x\n", size, crc);
    body_ += "file " + name + line;
  }

  std::string Render() const {
    return std::string(kManifestMagic) + " " +
           std::to_string(kManifestVersion) + "\n" + body_;
  }

 private:
  std::string body_;
};

Status WriteFileWithManifest(const fs::path& path, const char* data,
                             size_t size, bool fsync,
                             ManifestBuilder* manifest) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path.string() +
                            "' for writing");
  }
  out.write(data, static_cast<std::streamsize>(size));
  if (!out.flush()) {
    return Status::Internal("short write to '" + path.string() + "'");
  }
  out.close();
  if (fsync) ASSESS_RETURN_NOT_OK(FsyncPath(path.string()));
  manifest->Add(path.filename().string(), size, Crc32c(data, size));
  return Status::OK();
}

template <typename T>
Status WriteColumn(const fs::path& path, const std::vector<T>& column,
                   bool fsync, ManifestBuilder* manifest) {
  return WriteFileWithManifest(path,
                               reinterpret_cast<const char*>(column.data()),
                               column.size() * sizeof(T), fsync, manifest);
}

template <typename T>
Result<std::vector<T>> ReadColumn(const fs::path& path, int64_t rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("missing column file '" + path.string() + "'");
  }
  std::vector<T> column(rows);
  in.read(reinterpret_cast<char*>(column.data()),
          static_cast<std::streamsize>(column.size() * sizeof(T)));
  if (in.gcount() !=
      static_cast<std::streamsize>(column.size() * sizeof(T))) {
    return Status::InvalidArgument("column file '" + path.string() +
                                   "' is truncated");
  }
  return column;
}

/// Verifies `directory` against its manifest: every listed file must exist
/// with the recorded size and CRC32C. A missing or mismatching manifest is
/// the typed signature of a partial save.
Status VerifyManifest(const std::string& directory) {
  std::string manifest;
  Status read = ReadFileToString(
      (fs::path(directory) / kManifestName).string(), &manifest);
  if (!read.ok()) {
    return Status::CorruptCheckpoint(
        "database directory '" + directory + "' has no manifest — the save "
        "was cut short (or predates the manifest format); refusing to load "
        "a possibly partial directory");
  }
  std::istringstream in(manifest);
  std::string line;
  if (!std::getline(in, line) ||
      line != std::string(kManifestMagic) + " " +
                  std::to_string(kManifestVersion)) {
    return Status::CorruptCheckpoint("malformed manifest header in '" +
                                     directory + "'");
  }
  int files = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.size() != 4 || fields[0] != "file") {
      return Status::CorruptCheckpoint("malformed manifest line '" + line +
                                       "' in '" + directory + "'");
    }
    const std::string& name = fields[1];
    uint64_t want_size = 0;
    uint32_t want_crc = 0;
    if (std::sscanf(fields[2].c_str(), "%llu",
                    reinterpret_cast<unsigned long long*>(&want_size)) != 1 ||
        std::sscanf(fields[3].c_str(), "%x", &want_crc) != 1) {
      return Status::CorruptCheckpoint("malformed manifest entry for '" +
                                       name + "' in '" + directory + "'");
    }
    std::string content;
    Status st =
        ReadFileToString((fs::path(directory) / name).string(), &content);
    if (!st.ok()) {
      return Status::CorruptCheckpoint("manifest lists '" + name +
                                       "' but it is unreadable in '" +
                                       directory + "': " + st.message());
    }
    if (content.size() != want_size) {
      return Status::CorruptCheckpoint(
          "file '" + name + "' in '" + directory + "' is " +
          std::to_string(content.size()) + " bytes, manifest says " +
          std::to_string(want_size) + " — partial save");
    }
    if (Crc32c(content) != want_crc) {
      return Status::CorruptCheckpoint("file '" + name + "' in '" +
                                       directory +
                                       "' fails its manifest CRC32C check");
    }
    ++files;
  }
  if (files == 0) {
    return Status::CorruptCheckpoint("manifest in '" + directory +
                                     "' lists no files");
  }
  return Status::OK();
}

// --- catalog reading helpers ----------------------------------------------

class LineReader {
 public:
  explicit LineReader(std::istream* in) : in_(in) {}

  Result<std::string> NextLine() {
    std::string line;
    if (!std::getline(*in_, line)) {
      return Status::InvalidArgument("unexpected end of catalog at line " +
                                     std::to_string(number_));
    }
    ++number_;
    return line;
  }

  /// Reads a line and checks its first token; returns the rest.
  Result<std::vector<std::string>> Expect(const std::string& keyword,
                                          int min_fields) {
    ASSESS_ASSIGN_OR_RETURN(std::string line, NextLine());
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.empty() || fields[0] != keyword ||
        static_cast<int>(fields.size()) < min_fields + 1) {
      return Status::InvalidArgument("catalog line " +
                                     std::to_string(number_) +
                                     ": expected '" + keyword + " ...', got '" +
                                     line + "'");
    }
    fields.erase(fields.begin());
    return fields;
  }

  int line_number() const { return number_; }

 private:
  std::istream* in_;
  int number_ = 0;
};

Result<int64_t> ParseInt(const std::string& text) {
  try {
    size_t pos = 0;
    int64_t value = std::stoll(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed integer '" + text +
                                   "' in catalog");
  }
}

Result<AggOp> AggOpFromString(const std::string& name) {
  for (AggOp op : {AggOp::kSum, AggOp::kAvg, AggOp::kMin, AggOp::kMax,
                   AggOp::kCount}) {
    if (name == AggOpToString(op)) return op;
  }
  return Status::InvalidArgument("unknown aggregation operator '" + name +
                                 "'");
}

}  // namespace

Status SaveDatabaseFiles(const StarDatabase& db, const std::string& directory,
                         const SaveOptions& options) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + directory +
                            "': " + ec.message());
  }
  ManifestBuilder manifest;

  // Collect the distinct hierarchies across cubes (they are shared).
  std::vector<std::shared_ptr<Hierarchy>> hierarchies;
  std::map<const Hierarchy*, size_t> hierarchy_index;
  std::vector<std::string> cube_names = db.CubeNames();
  for (const std::string& name : cube_names) {
    ASSESS_ASSIGN_OR_RETURN(const BoundCube* cube, db.Find(name));
    for (int h = 0; h < cube->schema().hierarchy_count(); ++h) {
      const std::shared_ptr<Hierarchy>& hier = cube->schema().hierarchy_ptr(h);
      if (hierarchy_index.emplace(hier.get(), hierarchies.size()).second) {
        hierarchies.push_back(hier);
      }
    }
  }

  std::ostringstream catalog;
  catalog << "assessdb " << kFormatVersion << "\n";
  catalog << "hierarchies " << hierarchies.size() << "\n";
  for (const auto& hier : hierarchies) {
    catalog << "hierarchy " << hier->name() << " "
            << (hier->temporal() ? 1 : 0) << " " << hier->level_count()
            << "\n";
    for (int l = 0; l < hier->level_count(); ++l) {
      int32_t card = hier->LevelCardinality(l);
      catalog << "level " << hier->level_name(l) << " " << card << "\n";
      for (MemberId m = 0; m < card; ++m) {
        const std::string& member = hier->MemberName(l, m);
        if (member.find('\n') != std::string::npos) {
          return Status::InvalidArgument("member names must not contain "
                                         "newlines: level '" +
                                         hier->level_name(l) + "'");
        }
        catalog << "m " << member << "\n";
      }
      if (l + 1 < hier->level_count()) {
        catalog << "parents";
        for (MemberId m = 0; m < card; ++m) {
          catalog << " " << hier->RollUpMember(l, m, l + 1);
        }
        catalog << "\n";
      }
    }
  }

  catalog << "cubes " << cube_names.size() << "\n";
  for (const std::string& name : cube_names) {
    ASSESS_ASSIGN_OR_RETURN(const BoundCube* cube, db.Find(name));
    const CubeSchema& schema = cube->schema();
    catalog << "cube " << name << " " << schema.hierarchy_count() << " "
            << schema.measure_count() << " " << cube->facts().NumRows()
            << "\n";
    for (int h = 0; h < schema.hierarchy_count(); ++h) {
      const DimensionTable& dim = cube->dimension(h);
      size_t hier_id = hierarchy_index.at(&schema.hierarchy(h));
      catalog << "dimension " << dim.name() << " " << hier_id << " "
              << dim.NumRows() << "\n";
      for (int l = 0; l < schema.hierarchy(h).level_count(); ++l) {
        fs::path file = fs::path(directory) /
                        (name + ".dim" + std::to_string(h) + ".l" +
                         std::to_string(l) + ".bin");
        ASSESS_RETURN_NOT_OK(WriteColumn(file, dim.level_column(l),
                                         options.fsync, &manifest));
      }
      fs::path fk_file = fs::path(directory) /
                         (name + ".fk" + std::to_string(h) + ".bin");
      ASSESS_RETURN_NOT_OK(WriteColumn(fk_file, cube->facts().fk_column(h),
                                       options.fsync, &manifest));
    }
    for (int m = 0; m < schema.measure_count(); ++m) {
      const MeasureDef& def = schema.measure(m);
      catalog << "measure " << def.name << " " << AggOpToString(def.op)
              << "\n";
      fs::path file = fs::path(directory) /
                      (name + ".m" + std::to_string(m) + ".bin");
      ASSESS_RETURN_NOT_OK(WriteColumn(file, cube->facts().measure_column(m),
                                       options.fsync, &manifest));
    }
  }

  std::string catalog_text = catalog.str();
  ASSESS_RETURN_NOT_OK(WriteFileWithManifest(
      fs::path(directory) / "catalog.assess", catalog_text.data(),
      catalog_text.size(), options.fsync, &manifest));

  for (const auto& [name, content] : options.extra_files) {
    ASSESS_RETURN_NOT_OK(WriteFileWithManifest(fs::path(directory) / name,
                                               content.data(), content.size(),
                                               options.fsync, &manifest));
  }

  // The manifest goes last: once it exists (durably), the save is complete.
  std::string manifest_text = manifest.Render();
  ManifestBuilder ignored;
  ASSESS_RETURN_NOT_OK(
      WriteFileWithManifest(fs::path(directory) / kManifestName,
                            manifest_text.data(), manifest_text.size(),
                            options.fsync, &ignored));
  if (options.fsync) ASSESS_RETURN_NOT_OK(FsyncPath(directory));
  return Status::OK();
}

Status SaveDatabase(const StarDatabase& db, const std::string& directory) {
  const std::string tmp = directory + ".tmp";
  const std::string old = directory + ".old";
  std::error_code ec;
  fs::remove_all(tmp, ec);  // a leftover from an earlier interrupted save
  fs::remove_all(old, ec);
  ASSESS_RETURN_NOT_OK(SaveDatabaseFiles(db, tmp, SaveOptions{}));
  // Swap: the previous version moves aside, the fresh one renames into
  // place, the stale copy is deleted. At no instant is there no complete
  // directory on disk; the loader never sees a partial one because only a
  // fully-written, manifest-sealed tree ever carries the real name.
  bool had_previous = fs::exists(directory);
  if (had_previous) {
    ASSESS_RETURN_NOT_OK(AtomicRenamePath(directory, old));
  }
  ASSESS_RETURN_NOT_OK(AtomicRenamePath(tmp, directory));
  if (had_previous) {
    fs::remove_all(old, ec);
    if (ec) {
      return Status::Internal("cannot remove stale snapshot '" + old +
                              "': " + ec.message());
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<StarDatabase>> LoadDatabase(
    const std::string& directory) {
  std::ifstream in(fs::path(directory) / "catalog.assess");
  if (!in) {
    return Status::NotFound("no catalog in '" + directory + "'");
  }
  LineReader reader(&in);

  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> header,
                          reader.Expect("assessdb", 1));
  ASSESS_ASSIGN_OR_RETURN(int64_t version, ParseInt(header[0]));
  if (version != kFormatVersion) {
    return Status::NotSupported("unsupported database format version " +
                                std::to_string(version));
  }

  // The catalog parses so far and carries a supported version — now demand
  // a complete directory before trusting any column file.
  ASSESS_RETURN_NOT_OK(VerifyManifest(directory));

  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> hier_count_fields,
                          reader.Expect("hierarchies", 1));
  ASSESS_ASSIGN_OR_RETURN(int64_t hier_count, ParseInt(hier_count_fields[0]));
  std::vector<std::shared_ptr<Hierarchy>> hierarchies;
  for (int64_t i = 0; i < hier_count; ++i) {
    ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                            reader.Expect("hierarchy", 3));
    auto hier = std::make_shared<Hierarchy>(fields[0]);
    ASSESS_ASSIGN_OR_RETURN(int64_t temporal, ParseInt(fields[1]));
    hier->set_temporal(temporal != 0);
    ASSESS_ASSIGN_OR_RETURN(int64_t levels, ParseInt(fields[2]));
    for (int64_t l = 0; l < levels; ++l) {
      ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> level_fields,
                              reader.Expect("level", 2));
      int level = hier->AddLevel(level_fields[0]);
      ASSESS_ASSIGN_OR_RETURN(int64_t members, ParseInt(level_fields[1]));
      for (int64_t m = 0; m < members; ++m) {
        ASSESS_ASSIGN_OR_RETURN(std::string line, reader.NextLine());
        if (!StartsWith(line, "m ")) {
          return Status::InvalidArgument(
              "catalog line " + std::to_string(reader.line_number()) +
              ": expected a member line");
        }
        hier->AddMember(level, line.substr(2));
      }
      if (l + 1 < levels) {
        ASSESS_ASSIGN_OR_RETURN(std::string line, reader.NextLine());
        std::vector<std::string> parents = Split(line, ' ');
        if (parents.empty() || parents[0] != "parents" ||
            static_cast<int64_t>(parents.size()) != members + 1) {
          return Status::InvalidArgument(
              "catalog line " + std::to_string(reader.line_number()) +
              ": malformed parents line");
        }
        // Parents reference the next level's members, which are not interned
        // yet; stash and resolve after that level is read. Simpler: levels
        // are serialized finest-first, so parents point into the *next*
        // level; defer by remembering the raw ids.
        for (int64_t m = 0; m < members; ++m) {
          ASSESS_ASSIGN_OR_RETURN(int64_t parent, ParseInt(parents[m + 1]));
          // Member ids are dense and assigned in serialization order, so the
          // raw id is valid once the next level is loaded; SetParent only
          // stores the id.
          hier->SetParent(level, static_cast<MemberId>(m),
                          static_cast<MemberId>(parent));
        }
      }
    }
    ASSESS_RETURN_NOT_OK(hier->Validate());
    hierarchies.push_back(std::move(hier));
  }

  auto db = std::make_unique<StarDatabase>();
  ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> cube_count_fields,
                          reader.Expect("cubes", 1));
  ASSESS_ASSIGN_OR_RETURN(int64_t cube_count, ParseInt(cube_count_fields[0]));
  for (int64_t c = 0; c < cube_count; ++c) {
    ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                            reader.Expect("cube", 4));
    const std::string& name = fields[0];
    ASSESS_ASSIGN_OR_RETURN(int64_t hier_refs, ParseInt(fields[1]));
    ASSESS_ASSIGN_OR_RETURN(int64_t measures, ParseInt(fields[2]));
    ASSESS_ASSIGN_OR_RETURN(int64_t fact_rows, ParseInt(fields[3]));

    auto schema = std::make_shared<CubeSchema>(name);
    std::vector<DimensionTable> dims;
    std::vector<std::vector<int32_t>> fk_columns;
    for (int64_t h = 0; h < hier_refs; ++h) {
      ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> dim_fields,
                              reader.Expect("dimension", 3));
      ASSESS_ASSIGN_OR_RETURN(int64_t hier_id, ParseInt(dim_fields[1]));
      ASSESS_ASSIGN_OR_RETURN(int64_t dim_rows, ParseInt(dim_fields[2]));
      if (hier_id < 0 || hier_id >= static_cast<int64_t>(hierarchies.size())) {
        return Status::InvalidArgument("dimension references an unknown "
                                       "hierarchy");
      }
      std::shared_ptr<Hierarchy> hier = hierarchies[hier_id];
      schema->AddHierarchy(hier);
      std::vector<std::vector<MemberId>> codes;
      for (int l = 0; l < hier->level_count(); ++l) {
        fs::path file = fs::path(directory) /
                        (name + ".dim" + std::to_string(h) + ".l" +
                         std::to_string(l) + ".bin");
        ASSESS_ASSIGN_OR_RETURN(std::vector<MemberId> column,
                                ReadColumn<MemberId>(file, dim_rows));
        codes.push_back(std::move(column));
      }
      dims.push_back(DimensionTable::FromColumns(dim_fields[0], hier,
                                                 std::move(codes)));
      fs::path fk_file = fs::path(directory) /
                         (name + ".fk" + std::to_string(h) + ".bin");
      ASSESS_ASSIGN_OR_RETURN(std::vector<int32_t> fk,
                              ReadColumn<int32_t>(fk_file, fact_rows));
      fk_columns.push_back(std::move(fk));
    }
    std::vector<std::vector<double>> measure_columns;
    for (int64_t m = 0; m < measures; ++m) {
      ASSESS_ASSIGN_OR_RETURN(std::vector<std::string> measure_fields,
                              reader.Expect("measure", 2));
      ASSESS_ASSIGN_OR_RETURN(AggOp op, AggOpFromString(measure_fields[1]));
      schema->AddMeasure({measure_fields[0], op});
      fs::path file = fs::path(directory) /
                      (name + ".m" + std::to_string(m) + ".bin");
      ASSESS_ASSIGN_OR_RETURN(std::vector<double> column,
                              ReadColumn<double>(file, fact_rows));
      measure_columns.push_back(std::move(column));
    }
    FactTable facts = FactTable::FromColumns(name, std::move(fk_columns),
                                             std::move(measure_columns));
    auto bound = std::make_unique<BoundCube>(schema, std::move(dims),
                                             std::move(facts));
    ASSESS_RETURN_NOT_OK(bound->Validate());
    ASSESS_RETURN_NOT_OK(db->Register(name, std::move(bound)));
  }
  return db;
}

}  // namespace assess
