// SSE4.2 tier of the fused scan kernels. This TU is compiled with
// -msse4.2 (see src/CMakeLists.txt); nothing here may be inlined into
// callers built without that flag, which is why the entry points live
// behind out-of-line functions in simd_detail.

#include "storage/scan_kernels_impl.h"

namespace assess {
namespace simd_detail {

void FusedScanSse42(const FusedScanArgs& args, int64_t begin, int64_t end,
                    AggState* state) {
  kernel_detail::FusedScanImpl<kernel_detail::IsaSse42>(args, begin, end,
                                                        state);
}

void MinMaxInt32Sse42(const int32_t* values, int64_t n, int32_t* min_out,
                      int32_t* max_out) {
  kernel_detail::IsaSse42::MinMax(values, n, min_out, max_out);
}

}  // namespace simd_detail
}  // namespace assess
