#include "storage/star_query_engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_set>
#include <utility>

#include "algebra/operators.h"
#include "cache/query_fingerprint.h"
#include "common/failpoint.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/task_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "storage/flat_map64.h"
#include "storage/materialized_view.h"
#include "storage/predicate.h"
#include "storage/scan_kernels.h"

namespace assess {

namespace {

// Per-hierarchy scan plan: translation arrays from the source's code domain
// (dimension rows for fact scans, Dom(view level) for view scans) to group
// member ids and predicate pass flags.
struct HierScanPlan {
  bool grouped = false;
  // Source code column: a raw pointer (into a fact snapshot's pinned bank,
  // or a rolled-up cube's coordinate column) so plans never re-read a
  // vector object a concurrent appender may be growing.
  const int32_t* codes = nullptr;
  // Dictionary-compressed view of `codes` (fact scans only); the fused
  // kernels read it instead of the int32 column when present.
  const PackedColumn* packed = nullptr;
  // Exclusive upper bound of the source's code domain (dimension row count
  // for fact scans, Dom(view level) for roll-up scans): the lane-table
  // length of the fused kernels.
  int64_t code_domain = 0;
  // Fact-table dimension index behind `codes` (for zone-map lookup), or -1
  // when the source is a rolled-up cube (views, cached results) — those
  // carry no zone maps.
  int fact_dim = -1;
  // Translation domain -> group member id: either borrowed from a dimension
  // table column (fact scans) or owned (view scans). Never point
  // `external_group_code` at `owned_group_code`: plans are moved into a
  // vector, which would dangle the self-reference. Aggregate() resolves the
  // effective array.
  const std::vector<MemberId>* external_group_code = nullptr;
  std::vector<MemberId> owned_group_code;
  std::vector<uint8_t> pass;  // empty: all pass
  uint64_t radix = 0;
  int group_level = 0;
  std::shared_ptr<Hierarchy> hierarchy;

  const std::vector<MemberId>& group_code() const {
    return external_group_code != nullptr ? *external_group_code
                                          : owned_group_code;
  }
};

struct MeasureScanPlan {
  const double* source = nullptr;
  AggOp op = AggOp::kSum;  // effective re-aggregation operator
  std::string name;
};

double InitialAccumulator(AggOp op) {
  switch (op) {
    case AggOp::kSum:
    case AggOp::kAvg:
    case AggOp::kCount:
      return 0.0;
    case AggOp::kMin:
      return std::numeric_limits<double>::infinity();
    case AggOp::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

// Aggregates source rows [begin, end) into `state` (the generic hash
// kernel, used when the mixed-radix key space exceeds kDenseKeyLimit —
// the fused kernels of storage/scan_kernels.h cover everything smaller).
// Keys are mixed-radix coordinate encodings offset by one, so they are
// always >= 1 (FlatMap64's empty sentinel is 0) even for fully aggregated
// queries.
void AggregateRange(int64_t begin, int64_t end,
                    const std::vector<HierScanPlan*>& needed,
                    const std::vector<HierScanPlan*>& grouped,
                    const std::vector<MeasureScanPlan>& measures,
                    AggState* state) {
  const int num_grouped = static_cast<int>(grouped.size());
  const int num_measures = static_cast<int>(measures.size());
  std::array<MemberId, 16> row_groups;
  state->rows_visited += end - begin;
  for (int64_t r = begin; r < end; ++r) {
    uint64_t key = 1;
    bool pass = true;
    int g = 0;
    for (HierScanPlan* h : needed) {
      int32_t code = h->codes[r];
      if (!h->pass.empty() && !h->pass[code]) {
        pass = false;
        break;
      }
      if (h->grouped) {
        MemberId member = h->group_code()[code];
        row_groups[g++] = member;
        key += h->radix * (static_cast<uint64_t>(member) + 1);
      }
    }
    if (!pass) continue;
    ++state->rows_passed;

    bool inserted = false;
    int32_t group = state->map.FindOrInsert(key, state->num_groups, &inserted);
    if (inserted) {
      ++state->num_groups;
      for (int i = 0; i < num_grouped; ++i) {
        state->out_coords[i].push_back(row_groups[i]);
      }
      for (int m = 0; m < num_measures; ++m) {
        state->acc[m].push_back(InitialAccumulator(measures[m].op));
        state->cnt[m].push_back(0);
      }
    }
    for (int m = 0; m < num_measures; ++m) {
      double v = measures[m].source ? measures[m].source[r] : 0.0;
      switch (measures[m].op) {
        case AggOp::kSum:
          state->acc[m][group] += v;
          break;
        case AggOp::kAvg:
          state->acc[m][group] += v;
          state->cnt[m][group] += 1;
          break;
        case AggOp::kMin:
          state->acc[m][group] = std::min(state->acc[m][group], v);
          break;
        case AggOp::kMax:
          state->acc[m][group] = std::max(state->acc[m][group], v);
          break;
        case AggOp::kCount:
          state->acc[m][group] += 1;
          break;
      }
    }
  }
}

// Folds `from` into `into` (the parallel path's merge step): groups are
// re-keyed from their stored coordinates and accumulators combined per
// operator.
void MergeAggStates(const std::vector<HierScanPlan*>& grouped,
                    const std::vector<MeasureScanPlan>& measures,
                    const AggState& from, AggState* into) {
  const int num_grouped = static_cast<int>(grouped.size());
  const int num_measures = static_cast<int>(measures.size());
  for (int32_t g = 0; g < from.num_groups; ++g) {
    uint64_t key = 1;
    for (int i = 0; i < num_grouped; ++i) {
      key += grouped[i]->radix *
             (static_cast<uint64_t>(from.out_coords[i][g]) + 1);
    }
    bool inserted = false;
    int32_t group = into->map.FindOrInsert(key, into->num_groups, &inserted);
    if (inserted) {
      ++into->num_groups;
      for (int i = 0; i < num_grouped; ++i) {
        into->out_coords[i].push_back(from.out_coords[i][g]);
      }
      for (int m = 0; m < num_measures; ++m) {
        into->acc[m].push_back(InitialAccumulator(measures[m].op));
        into->cnt[m].push_back(0);
      }
    }
    for (int m = 0; m < num_measures; ++m) {
      switch (measures[m].op) {
        case AggOp::kSum:
        case AggOp::kCount:
          into->acc[m][group] += from.acc[m][g];
          break;
        case AggOp::kAvg:
          into->acc[m][group] += from.acc[m][g];
          into->cnt[m][group] += from.cnt[m][g];
          break;
        case AggOp::kMin:
          into->acc[m][group] = std::min(into->acc[m][group], from.acc[m][g]);
          break;
        case AggOp::kMax:
          into->acc[m][group] = std::max(into->acc[m][group], from.acc[m][g]);
          break;
      }
    }
  }
}

// How one Aggregate() call is scheduled: which pool runs its morsels, how
// many participants it may occupy, and (fact scans only) the zone maps that
// let whole morsels be skipped. `scanned`/`skipped` report back what
// happened, for the engine's counters and the server stats frame.
struct MorselExec {
  TaskPool* pool = nullptr;
  int max_threads = 1;
  const FactZoneMaps* zones = nullptr;
  uint64_t scanned = 0;
  uint64_t skipped = 0;
  // What Aggregate() actually ran, for spans and EXPLAIN ANALYZE: the SIMD
  // tier (meaningful when `fused`), whether the dense fused kernel or the
  // generic hash kernel did the work, and the scan's selectivity inputs.
  SimdLevel simd = SimdLevel::kScalar;
  bool fused = false;
  int64_t rows_visited = 0;
  int64_t rows_passed = 0;
};

// Process-wide dispatch counters (one bump per scan, not per morsel): which
// kernel tier actually ran, for `\metrics` and the CI smoke checks.
void CountKernelDispatch(const MorselExec& exec) {
  static Counter* const generic = MetricsRegistry::Instance().GetCounter(
      "assess_kernel_dispatch_generic_total",
      "Scans aggregated by the generic hash kernel");
  static Counter* const scalar = MetricsRegistry::Instance().GetCounter(
      "assess_kernel_dispatch_scalar_total",
      "Scans aggregated by the fused scalar kernel");
  static Counter* const sse42 = MetricsRegistry::Instance().GetCounter(
      "assess_kernel_dispatch_sse42_total",
      "Scans aggregated by the fused SSE4.2 kernel");
  static Counter* const avx2 = MetricsRegistry::Instance().GetCounter(
      "assess_kernel_dispatch_avx2_total",
      "Scans aggregated by the fused AVX2 kernel");
  if (!exec.fused) {
    generic->Inc(1);
    return;
  }
  switch (exec.simd) {
    case SimdLevel::kScalar:
      scalar->Inc(1);
      break;
    case SimdLevel::kSSE42:
      sse42->Inc(1);
      break;
    case SimdLevel::kAVX2:
      avx2->Inc(1);
      break;
  }
}

// Annotates a scan span with the kernel path and observed selectivity.
void AddKernelSpanAttrs(Span& span, const MorselExec& exec) {
  if (!span.active()) return;
  span.AddString("simd", exec.fused ? SimdLevelName(exec.simd) : "generic");
  span.AddString("kernel", exec.fused ? "fused_dense" : "hash");
  span.AddInt("rows_visited", exec.rows_visited);
  span.AddInt("rows_passed", exec.rows_passed);
  if (exec.rows_visited > 0) {
    // Per-mille so the span attribute stays integral.
    span.AddInt("selectivity_permille",
                exec.rows_passed * 1000 / exec.rows_visited);
  }
}

// Hash-aggregates `rows` source rows under the given hierarchy and measure
// plans, producing the derived cube.
//
// The scan is fused and morsel-driven: rows are decomposed into
// kMorselRows-sized morsels pulled dynamically by pool workers, each morsel
// evaluated predicate-and-aggregate in a single pass into its own partial
// state (no intermediate row-id vector), morsels whose zone maps prove the
// predicate unsatisfiable skipped outright. Partials are merged in morsel
// index order, so the floating-point reduction order — and therefore every
// output bit — is a function of the data alone, identical across thread
// counts and across runs.
Result<Cube> Aggregate(int64_t rows, std::vector<HierScanPlan>& hiers,
                       const std::vector<MeasureScanPlan>& measures,
                       MorselExec* exec) {
  // Assign radixes to the grouped hierarchies.
  std::vector<HierScanPlan*> needed;
  std::vector<HierScanPlan*> grouped;
  uint64_t factor = 1;
  for (HierScanPlan& h : hiers) {
    needed.push_back(&h);
    if (!h.grouped) continue;
    h.radix = factor;
    uint64_t card = static_cast<uint64_t>(
                        h.hierarchy->LevelCardinality(h.group_level)) +
                    1;
    if (factor > (uint64_t{1} << 62) / std::max<uint64_t>(card, 1)) {
      return Status::NotSupported(
          "group-by space exceeds 2^62 coordinates; no such schema is "
          "supported by the engine");
    }
    factor *= card;
    grouped.push_back(&h);
  }

  const int num_grouped = static_cast<int>(grouped.size());
  const int num_measures = static_cast<int>(measures.size());
  auto make_state = [&]() {
    AggState state;
    state.out_coords.resize(num_grouped);
    state.acc.resize(num_measures);
    state.cnt.resize(num_measures);
    return state;
  };

  // Kernel selection. The fused dense kernels apply when the mixed-radix
  // key space fits kDenseKeyLimit (the reject-bit encoding and the dense
  // key→group array both require it) and the dense array is not large
  // relative to the scan (clearing key_space slots per morsel must stay
  // negligible next to visiting the rows). Both inputs are properties of
  // the query and data alone — never of the SIMD tier or thread count — so
  // the kernel choice cannot break the bit-identical determinism contract.
  const uint64_t key_space = factor + 1;
  const bool use_fused =
      key_space <= kDenseKeyLimit &&
      static_cast<int64_t>(key_space) <= std::max<int64_t>(int64_t{4096}, rows);

  std::vector<std::vector<uint32_t>> lane_tables;
  FusedScanArgs fused_args;
  FusedScanFn fused_fn = nullptr;
  if (use_fused) {
    exec->fused = true;
    exec->simd = ActiveSimdLevel();
    fused_fn = GetFusedScanKernel(exec->simd);
    fused_args.key_space = static_cast<uint32_t>(key_space);
    lane_tables.reserve(needed.size());
    for (HierScanPlan* h : needed) {
      std::vector<uint32_t> lane(static_cast<size_t>(h->code_domain), 0u);
      const std::vector<MemberId>* gc =
          h->grouped ? &h->group_code() : nullptr;
      for (int64_t c = 0; c < h->code_domain; ++c) {
        if (!h->pass.empty() && !h->pass[c]) {
          lane[c] = kLaneReject;
        } else if (gc != nullptr) {
          lane[c] = static_cast<uint32_t>(h->radix) *
                    (static_cast<uint32_t>((*gc)[c]) + 1u);
        }
      }
      lane_tables.push_back(std::move(lane));
      KernelColumn col;
      col.packed = h->packed;
      if (h->packed == nullptr) col.codes32 = h->codes;
      col.lane = lane_tables.back().data();
      fused_args.columns.push_back(col);
      if (h->grouped) {
        fused_args.groups.push_back(KernelGroup{
            static_cast<uint32_t>(h->radix),
            static_cast<uint32_t>(
                h->hierarchy->LevelCardinality(h->group_level)) +
                1u});
      }
    }
    for (const MeasureScanPlan& m : measures) {
      fused_args.measures.push_back(KernelMeasure{m.source, m.op});
    }
  }

  const int64_t num_morsels =
      rows == 0 ? 0 : (rows + kMorselRows - 1) / kMorselRows;

  // Zone-map pruning: a morsel is skippable when, for some predicated
  // hierarchy, no code in the morsel's [min, max] range passes. The
  // per-hierarchy prefix sums over the pass flags make that an O(1) check
  // per (morsel, hierarchy); building them costs one pass over the
  // dimension rows, negligible next to the fact scan they prune.
  std::vector<int64_t> work;
  work.reserve(num_morsels);
  if (exec->zones != nullptr && num_morsels > 1) {
    struct Pruner {
      const std::vector<ZoneRange>* zones = nullptr;
      std::vector<int32_t> pass_prefix;
    };
    std::vector<Pruner> pruners;
    for (HierScanPlan& h : hiers) {
      if (h.pass.empty() || h.fact_dim < 0) continue;
      Pruner pruner;
      pruner.zones = &exec->zones->dims[h.fact_dim];
      pruner.pass_prefix.resize(h.pass.size() + 1);
      pruner.pass_prefix[0] = 0;
      for (size_t i = 0; i < h.pass.size(); ++i) {
        pruner.pass_prefix[i + 1] =
            pruner.pass_prefix[i] + (h.pass[i] ? 1 : 0);
      }
      pruners.push_back(std::move(pruner));
    }
    for (int64_t m = 0; m < num_morsels; ++m) {
      bool runnable = true;
      for (const Pruner& pruner : pruners) {
        const ZoneRange& zone = (*pruner.zones)[m];
        if (pruner.pass_prefix[zone.max + 1] -
                pruner.pass_prefix[zone.min] ==
            0) {
          runnable = false;
          break;
        }
      }
      if (runnable) work.push_back(m);
    }
  } else {
    for (int64_t m = 0; m < num_morsels; ++m) work.push_back(m);
  }
  exec->scanned = work.size();
  exec->skipped = static_cast<uint64_t>(num_morsels) - work.size();

  // One partial state per surviving morsel, filled by whichever pool
  // participant claims it.
  std::vector<AggState> partials;
  partials.reserve(work.size());
  for (size_t i = 0; i < work.size(); ++i) partials.push_back(make_state());

  if (!work.empty()) {
    auto task = [&](int64_t i) -> Status {
      int64_t begin = work[i] * kMorselRows;
      int64_t end = std::min(rows, begin + kMorselRows);
      if (fused_fn != nullptr) {
        fused_fn(fused_args, begin, end, &partials[i]);
      } else {
        AggregateRange(begin, end, needed, grouped, measures, &partials[i]);
      }
      return Status::OK();
    };
    if (exec->pool != nullptr) {
      ASSESS_RETURN_NOT_OK(exec->pool->RunMorsels(
          static_cast<int64_t>(work.size()), exec->max_threads, task));
    } else {
      for (size_t i = 0; i < work.size(); ++i) {
        ASSESS_RETURN_NOT_OK(task(static_cast<int64_t>(i)));
      }
    }
  }
  for (const AggState& partial : partials) {
    exec->rows_visited += partial.rows_visited;
    exec->rows_passed += partial.rows_passed;
  }
  CountKernelDispatch(*exec);

  // Deterministic merge: always in morsel index order. A single-morsel scan
  // adopts its partial unchanged, which also keeps sub-morsel scans
  // bit-identical to the pre-morsel serial engine.
  AggState result_state;
  if (work.size() == 1) {
    result_state = std::move(partials[0]);
  } else {
    result_state = make_state();
    for (const AggState& partial : partials) {
      MergeAggStates(grouped, measures, partial, &result_state);
    }
  }

  // Finalize averages.
  for (int m = 0; m < num_measures; ++m) {
    if (measures[m].op != AggOp::kAvg) continue;
    for (int32_t gi = 0; gi < result_state.num_groups; ++gi) {
      result_state.acc[m][gi] =
          result_state.cnt[m][gi] > 0
              ? result_state.acc[m][gi] / result_state.cnt[m][gi]
              : kNullMeasure;
    }
  }

  std::vector<LevelRef> out_levels;
  out_levels.reserve(num_grouped);
  for (HierScanPlan* h : grouped) {
    out_levels.push_back(LevelRef{h->hierarchy, h->group_level});
  }
  std::vector<std::string> out_names;
  out_names.reserve(num_measures);
  for (const MeasureScanPlan& m : measures) out_names.push_back(m.name);
  return Cube::FromColumns(std::move(out_levels),
                           std::move(result_state.out_coords),
                           std::move(out_names),
                           std::move(result_state.acc));
}

// One query's compiled fact-scan plan inside a shared scan.
struct ConsumerScan {
  std::vector<HierScanPlan> hiers;
  std::vector<MeasureScanPlan> measures;
};

// The multi-consumer sibling of Aggregate(): one morsel pass over `rows`
// fact rows feeds every consumer's accumulator set. Per morsel, each packed
// FK column any fused consumer touches is decoded once into an int32
// scratch buffer; every fused consumer then runs over the scratch codes
// (begin-relative, measure sources shifted to match). The decoded codes are
// exactly what the solo kernel would have read through PackedColumn::CodeAt,
// the accumulation stays row-sequential per consumer, and each consumer's
// partials merge in morsel index order — so every output is bit-identical
// to running that consumer alone. Consumers whose key space exceeds the
// dense limit fall back to the generic hash kernel at absolute rows,
// sharing the pass over the morsel but not the gather.
//
// All consumers must share one predicate conjunction (the caller's group
// contract): the zone-pruned work list is computed from consumer 0 and is
// valid for every consumer.
//
// The same contract pays for the scan's real sharing: the conjunction is
// evaluated ONCE per morsel and the passing rows compacted — codes and
// measure values alike — so each additional grouped consumer aggregates
// only the selected rows instead of re-testing the whole morsel. Under a
// selective predicate N consumers cost about one scan plus N tiny
// aggregations, not N scans. Compaction preserves the relative order of
// passing rows and the grouped kernels accumulate row-sequentially, so
// results stay bit-identical; no-group-by consumers are exempted (their
// fast path assigns rows to fixed accumulator lanes by (row − begin) & 3,
// which renumbering would perturb) and run over the full range as before.
Result<std::vector<Cube>> AggregateShared(int64_t rows,
                                          std::vector<ConsumerScan>& consumers,
                                          MorselExec* exec) {
  const int num_consumers = static_cast<int>(consumers.size());

  struct Compiled {
    std::vector<HierScanPlan*> needed;
    std::vector<HierScanPlan*> grouped;
    std::vector<std::vector<uint32_t>> lane_tables;
    FusedScanArgs args;
    bool fused = false;
    // Eligible for the shared-selection compacted path (fused AND grouped;
    // see the bit-identity note above).
    bool compact = false;
    // Per fused column: index into the shared decode list, or -1 when the
    // source is already int32 (then codes32 is shifted by the morsel base).
    std::vector<int> scratch_of;
    // Per fused column: index into the shared direct-source compaction
    // list when scratch_of is -1 (compacted path only).
    std::vector<int> direct_of;
    // Per measure: index into the shared measure compaction list, or -1
    // for null sources (count).
    std::vector<int> msource_of;
  };
  std::vector<Compiled> compiled(num_consumers);
  std::vector<const PackedColumn*> decode;  // shared gather list

  for (int c = 0; c < num_consumers; ++c) {
    Compiled& comp = compiled[c];
    uint64_t factor = 1;
    for (HierScanPlan& h : consumers[c].hiers) {
      comp.needed.push_back(&h);
      if (!h.grouped) continue;
      h.radix = factor;
      uint64_t card = static_cast<uint64_t>(
                          h.hierarchy->LevelCardinality(h.group_level)) +
                      1;
      if (factor > (uint64_t{1} << 62) / std::max<uint64_t>(card, 1)) {
        return Status::NotSupported(
            "group-by space exceeds 2^62 coordinates; no such schema is "
            "supported by the engine");
      }
      factor *= card;
      comp.grouped.push_back(&h);
    }
    const uint64_t key_space = factor + 1;
    comp.fused = key_space <= kDenseKeyLimit &&
                 static_cast<int64_t>(key_space) <=
                     std::max<int64_t>(int64_t{4096}, rows);
    if (!comp.fused) continue;
    comp.args.key_space = static_cast<uint32_t>(key_space);
    comp.lane_tables.reserve(comp.needed.size());
    for (HierScanPlan* h : comp.needed) {
      std::vector<uint32_t> lane(static_cast<size_t>(h->code_domain), 0u);
      const std::vector<MemberId>* gc =
          h->grouped ? &h->group_code() : nullptr;
      for (int64_t code = 0; code < h->code_domain; ++code) {
        if (!h->pass.empty() && !h->pass[code]) {
          lane[code] = kLaneReject;
        } else if (gc != nullptr) {
          lane[code] = static_cast<uint32_t>(h->radix) *
                       (static_cast<uint32_t>((*gc)[code]) + 1u);
        }
      }
      comp.lane_tables.push_back(std::move(lane));
      KernelColumn col;
      col.packed = h->packed;
      if (h->packed == nullptr) col.codes32 = h->codes;
      col.lane = comp.lane_tables.back().data();
      comp.args.columns.push_back(col);
      int scratch = -1;
      if (h->packed != nullptr) {
        for (size_t d = 0; d < decode.size(); ++d) {
          if (decode[d] == h->packed) scratch = static_cast<int>(d);
        }
        if (scratch < 0) {
          scratch = static_cast<int>(decode.size());
          decode.push_back(h->packed);
        }
      }
      comp.scratch_of.push_back(scratch);
      if (h->grouped) {
        comp.args.groups.push_back(KernelGroup{
            static_cast<uint32_t>(h->radix),
            static_cast<uint32_t>(
                h->hierarchy->LevelCardinality(h->group_level)) +
                1u});
      }
    }
    for (const MeasureScanPlan& m : consumers[c].measures) {
      comp.args.measures.push_back(KernelMeasure{m.source, m.op});
    }
  }

  bool any_fused = false;
  for (const Compiled& comp : compiled) any_fused |= comp.fused;
  FusedScanFn fused_fn = nullptr;
  if (any_fused) {
    exec->fused = true;
    exec->simd = ActiveSimdLevel();
    fused_fn = GetFusedScanKernel(exec->simd);
  }

  // Shared-selection setup: the columns the group's common conjunction
  // tests (evaluated once per morsel), plus dedup lists for everything the
  // compacted consumers read — direct int32 code sources and measure
  // sources are each gathered once per morsel, like the packed decode.
  struct SelColumn {
    const PackedColumn* packed = nullptr;    // packed source, or
    const int32_t* codes = nullptr;          // absolute int32 source
    const std::vector<uint8_t>* pass = nullptr;
  };
  std::vector<SelColumn> sel_columns;
  std::vector<const int32_t*> direct;    // codes32 sources to compact
  std::vector<const double*> msources;   // measure sources to compact
  bool any_compact = false;
  for (Compiled& comp : compiled) {
    comp.compact = comp.fused && !comp.args.groups.empty();
    any_compact |= comp.compact;
  }
  if (any_compact && num_consumers > 0) {
    for (HierScanPlan& h : consumers[0].hiers) {
      if (h.pass.empty()) continue;
      SelColumn sc;
      sc.pass = &h.pass;
      if (h.packed != nullptr) {
        sc.packed = h.packed;
      } else {
        sc.codes = h.codes;
      }
      sel_columns.push_back(sc);
    }
    // No shared predicate: nothing to select on, keep the plain path.
    if (sel_columns.empty()) {
      any_compact = false;
      for (Compiled& comp : compiled) comp.compact = false;
    }
  }
  if (any_compact) {
    for (Compiled& comp : compiled) {
      if (!comp.compact) continue;
      comp.direct_of.assign(comp.args.columns.size(), -1);
      for (size_t j = 0; j < comp.args.columns.size(); ++j) {
        if (comp.scratch_of[j] >= 0) continue;
        const int32_t* src = comp.args.columns[j].codes32;
        int idx = -1;
        for (size_t d = 0; d < direct.size(); ++d) {
          if (direct[d] == src) idx = static_cast<int>(d);
        }
        if (idx < 0) {
          idx = static_cast<int>(direct.size());
          direct.push_back(src);
        }
        comp.direct_of[j] = idx;
      }
      comp.msource_of.assign(comp.args.measures.size(), -1);
      for (size_t m = 0; m < comp.args.measures.size(); ++m) {
        const double* src = comp.args.measures[m].source;
        if (src == nullptr) continue;
        int idx = -1;
        for (size_t d = 0; d < msources.size(); ++d) {
          if (msources[d] == src) idx = static_cast<int>(d);
        }
        if (idx < 0) {
          idx = static_cast<int>(msources.size());
          msources.push_back(src);
        }
        comp.msource_of[m] = idx;
      }
    }
  }
  // Which decode-list columns actually need a full-morsel gather: those a
  // non-compacted fused consumer runs over. The shared conjunction is
  // tested in L1-sized decode chunks (never materialized morsel-wide) and
  // columns only compacted consumers read are point-gathered at the (few)
  // selected rows — under a selective predicate this is the difference
  // between touching every packed byte per consumer column and touching
  // almost none.
  std::vector<uint8_t> decode_full(decode.size(), any_compact ? 0 : 1);
  if (any_compact) {
    for (const Compiled& comp : compiled) {
      if (!comp.fused || comp.compact) continue;
      for (int idx : comp.scratch_of) {
        if (idx >= 0) decode_full[idx] = 1;
      }
    }
  }

  const int64_t num_morsels =
      rows == 0 ? 0 : (rows + kMorselRows - 1) / kMorselRows;

  // Zone-map pruning over consumer 0's predicated hierarchies; the shared
  // predicate conjunction makes the surviving work list right for everyone.
  std::vector<int64_t> work;
  work.reserve(num_morsels);
  if (exec->zones != nullptr && num_morsels > 1 && num_consumers > 0) {
    struct Pruner {
      const std::vector<ZoneRange>* zones = nullptr;
      std::vector<int32_t> pass_prefix;
    };
    std::vector<Pruner> pruners;
    for (HierScanPlan& h : consumers[0].hiers) {
      if (h.pass.empty() || h.fact_dim < 0) continue;
      Pruner pruner;
      pruner.zones = &exec->zones->dims[h.fact_dim];
      pruner.pass_prefix.resize(h.pass.size() + 1);
      pruner.pass_prefix[0] = 0;
      for (size_t i = 0; i < h.pass.size(); ++i) {
        pruner.pass_prefix[i + 1] =
            pruner.pass_prefix[i] + (h.pass[i] ? 1 : 0);
      }
      pruners.push_back(std::move(pruner));
    }
    for (int64_t m = 0; m < num_morsels; ++m) {
      bool runnable = true;
      for (const Pruner& pruner : pruners) {
        const ZoneRange& zone = (*pruner.zones)[m];
        if (pruner.pass_prefix[zone.max + 1] -
                pruner.pass_prefix[zone.min] ==
            0) {
          runnable = false;
          break;
        }
      }
      if (runnable) work.push_back(m);
    }
  } else {
    for (int64_t m = 0; m < num_morsels; ++m) work.push_back(m);
  }
  exec->scanned = work.size();
  exec->skipped = static_cast<uint64_t>(num_morsels) - work.size();

  auto make_state = [](const Compiled& comp, const ConsumerScan& consumer) {
    AggState state;
    state.out_coords.resize(comp.grouped.size());
    state.acc.resize(consumer.measures.size());
    state.cnt.resize(consumer.measures.size());
    return state;
  };
  std::vector<std::vector<AggState>> partials(num_consumers);
  for (int c = 0; c < num_consumers; ++c) {
    partials[c].reserve(work.size());
    for (size_t i = 0; i < work.size(); ++i) {
      partials[c].push_back(make_state(compiled[c], consumers[c]));
    }
  }

  if (!work.empty()) {
    auto task = [&](int64_t i) -> Status {
      const int64_t begin = work[i] * kMorselRows;
      const int64_t end = std::min(rows, begin + kMorselRows);
      const int64_t n = end - begin;
      // One gather per packed FK column, shared by every fused consumer.
      // Columns only compacted consumers read skip the full gather (see
      // decode_full) and are point-decoded at the selected rows below.
      std::vector<std::vector<int32_t>> scratch(decode.size());
      for (size_t d = 0; d < decode.size(); ++d) {
        if (!decode_full[d]) continue;
        scratch[d].resize(static_cast<size_t>(n));
        DecodePackedCodes(*decode[d], begin, end, scratch[d].data());
      }
      // The shared conjunction, tested once: `sel` holds the morsel-relative
      // indices of passing rows, in order. Everything a compacted consumer
      // reads is then gathered down to those rows once.
      std::unique_ptr<int32_t[]> sel_storage;  // default-init, no memset
      const int32_t* sel = nullptr;
      std::vector<std::vector<int32_t>> cscratch;
      std::vector<std::vector<int32_t>> cdirect;
      std::vector<std::vector<double>> cmeas;
      int64_t n_pass = 0;
      if (any_compact) {
        sel_storage.reset(new int32_t[static_cast<size_t>(n)]);
        int32_t* out = sel_storage.get();
        sel = out;
        // Chunked test: packed sel columns decode into an L1-resident
        // buffer, so the conjunction pass streams the packed bytes once
        // without a morsel-wide scratch round trip.
        constexpr int64_t kSelChunk = 4096;
        std::vector<std::vector<int32_t>> sel_buf(sel_columns.size());
        for (size_t ci = 0; ci < sel_columns.size(); ++ci) {
          if (sel_columns[ci].packed != nullptr) {
            sel_buf[ci].resize(kSelChunk);
          }
        }
        for (int64_t r0 = 0; r0 < n; r0 += kSelChunk) {
          const int64_t len = std::min(kSelChunk, n - r0);
          for (size_t ci = 0; ci < sel_columns.size(); ++ci) {
            const SelColumn& sc = sel_columns[ci];
            if (sc.packed != nullptr) {
              DecodePackedCodes(*sc.packed, begin + r0, begin + r0 + len,
                                sel_buf[ci].data());
            }
          }
          if (sel_columns.size() == 1) {
            // The common shape (one predicated hierarchy): a tight
            // two-array loop the compiler can keep branch-cheap.
            const SelColumn& sc = sel_columns[0];
            const uint8_t* pass = sc.pass->data();
            const int32_t* codes = sc.packed != nullptr
                                       ? sel_buf[0].data()
                                       : sc.codes + begin + r0;
            for (int64_t r = 0; r < len; ++r) {
              if (pass[codes[r]]) {
                out[n_pass++] = static_cast<int32_t>(r0 + r);
              }
            }
          } else {
            for (int64_t r = 0; r < len; ++r) {
              bool ok = true;
              for (size_t ci = 0; ci < sel_columns.size(); ++ci) {
                const SelColumn& sc = sel_columns[ci];
                const int32_t code = sc.packed != nullptr
                                         ? sel_buf[ci][r]
                                         : sc.codes[begin + r0 + r];
                if (!(*sc.pass)[code]) {
                  ok = false;
                  break;
                }
              }
              if (ok) out[n_pass++] = static_cast<int32_t>(r0 + r);
            }
          }
        }
        const size_t np = static_cast<size_t>(n_pass);
        cscratch.resize(decode.size());
        for (size_t d = 0; d < decode.size(); ++d) {
          cscratch[d].resize(np);
          if (decode_full[d]) {
            for (size_t k = 0; k < np; ++k) {
              cscratch[d][k] = scratch[d][sel[k]];
            }
          } else {
            for (size_t k = 0; k < np; ++k) {
              cscratch[d][k] = decode[d]->CodeAt(begin + sel[k]);
            }
          }
        }
        cdirect.resize(direct.size());
        for (size_t d = 0; d < direct.size(); ++d) {
          cdirect[d].resize(np);
          for (size_t k = 0; k < np; ++k) {
            cdirect[d][k] = direct[d][begin + sel[k]];
          }
        }
        cmeas.resize(msources.size());
        for (size_t d = 0; d < msources.size(); ++d) {
          cmeas[d].resize(np);
          for (size_t k = 0; k < np; ++k) {
            cmeas[d][k] = msources[d][begin + sel[k]];
          }
        }
      }
      for (int c = 0; c < num_consumers; ++c) {
        const Compiled& comp = compiled[c];
        if (comp.fused && comp.compact && any_compact) {
          if (n_pass > 0) {
            FusedScanArgs args = comp.args;
            for (size_t j = 0; j < args.columns.size(); ++j) {
              args.columns[j].packed = nullptr;
              args.columns[j].codes32 =
                  comp.scratch_of[j] >= 0
                      ? cscratch[comp.scratch_of[j]].data()
                      : cdirect[comp.direct_of[j]].data();
            }
            for (size_t m = 0; m < args.measures.size(); ++m) {
              if (comp.msource_of[m] >= 0) {
                args.measures[m].source = cmeas[comp.msource_of[m]].data();
              }
            }
            fused_fn(args, 0, n_pass, &partials[c][i]);
          }
          if (c == 0) {
            // Selectivity truth: the shared test visited every row; the
            // kernel only saw the survivors.
            partials[0][i].rows_visited += n - n_pass;
            partials[0][i].rows_passed = n_pass;
          }
        } else if (comp.fused) {
          FusedScanArgs args = comp.args;
          for (size_t j = 0; j < args.columns.size(); ++j) {
            if (comp.scratch_of[j] >= 0) {
              args.columns[j].packed = nullptr;
              args.columns[j].codes32 = scratch[comp.scratch_of[j]].data();
            } else {
              args.columns[j].codes32 += begin;
            }
          }
          for (KernelMeasure& km : args.measures) {
            if (km.source != nullptr) km.source += begin;
          }
          fused_fn(args, 0, n, &partials[c][i]);
        } else {
          AggregateRange(begin, end, compiled[c].needed, compiled[c].grouped,
                         consumers[c].measures, &partials[c][i]);
        }
      }
      return Status::OK();
    };
    if (exec->pool != nullptr) {
      ASSESS_RETURN_NOT_OK(exec->pool->RunMorsels(
          static_cast<int64_t>(work.size()), exec->max_threads, task));
    } else {
      for (size_t i = 0; i < work.size(); ++i) {
        ASSESS_RETURN_NOT_OK(task(static_cast<int64_t>(i)));
      }
    }
  }
  // Selectivity accounting from consumer 0: the gather is shared, so the
  // scan visits each surviving row once regardless of consumer count.
  if (num_consumers > 0) {
    for (const AggState& partial : partials[0]) {
      exec->rows_visited += partial.rows_visited;
      exec->rows_passed += partial.rows_passed;
    }
  }
  CountKernelDispatch(*exec);

  std::vector<Cube> out;
  out.reserve(num_consumers);
  for (int c = 0; c < num_consumers; ++c) {
    const Compiled& comp = compiled[c];
    const std::vector<MeasureScanPlan>& measures = consumers[c].measures;
    const int num_measures = static_cast<int>(measures.size());
    AggState result_state;
    if (work.size() == 1) {
      result_state = std::move(partials[c][0]);
    } else {
      result_state = make_state(comp, consumers[c]);
      for (const AggState& partial : partials[c]) {
        MergeAggStates(comp.grouped, measures, partial, &result_state);
      }
    }
    for (int m = 0; m < num_measures; ++m) {
      if (measures[m].op != AggOp::kAvg) continue;
      for (int32_t gi = 0; gi < result_state.num_groups; ++gi) {
        result_state.acc[m][gi] =
            result_state.cnt[m][gi] > 0
                ? result_state.acc[m][gi] / result_state.cnt[m][gi]
                : kNullMeasure;
      }
    }
    std::vector<LevelRef> out_levels;
    out_levels.reserve(comp.grouped.size());
    for (HierScanPlan* h : comp.grouped) {
      out_levels.push_back(LevelRef{h->hierarchy, h->group_level});
    }
    std::vector<std::string> out_names;
    out_names.reserve(num_measures);
    for (const MeasureScanPlan& m : measures) out_names.push_back(m.name);
    out.push_back(Cube::FromColumns(std::move(out_levels),
                                    std::move(result_state.out_coords),
                                    std::move(out_names),
                                    std::move(result_state.acc)));
  }
  return out;
}

// Answers `query` by re-aggregating `data`, a selection-free-or-weaker
// result pre-aggregated at `data_group_by` (a materialized view or a cached
// cube). `preds` holds, partitioned by hierarchy, the predicates still to
// apply on top of `data` (for views: all of the query's; for cached
// results: the ones the cached entry had not already applied). Feasibility
// (level reachability, lossless measures) must have been established by
// RollupAnswersQuery / EntryAnswersQuery.
Result<Cube> AggregateFromRollup(const CubeSchema& schema,
                                 const CubeQuery& query,
                                 const std::vector<std::vector<Predicate>>& preds,
                                 const Cube& data,
                                 const GroupBySet& data_group_by,
                                 MorselExec* exec) {
  std::vector<HierScanPlan> hiers;
  std::vector<MeasureScanPlan> measures;
  int64_t rows = data.NumRows();
  int data_pos = 0;
  for (int h = 0; h < schema.hierarchy_count(); ++h) {
    bool in_data = data_group_by.HasHierarchy(h);
    int pos = in_data ? data_pos++ : -1;
    bool grouped = query.group_by.HasHierarchy(h);
    if (!grouped && preds[h].empty()) continue;
    if (!in_data) {
      return Status::Internal("rollup source lacks a needed hierarchy");
    }
    const Hierarchy& hier = schema.hierarchy(h);
    int data_level = data_group_by.LevelOf(h);
    HierScanPlan plan;
    plan.hierarchy = schema.hierarchy_ptr(h);
    plan.grouped = grouped;
    plan.codes = data.coord_column(pos).data();
    plan.code_domain = hier.LevelCardinality(data_level);
    if (grouped) {
      plan.group_level = query.group_by.LevelOf(h);
      int32_t card = hier.LevelCardinality(data_level);
      plan.owned_group_code.resize(card);
      for (MemberId m = 0; m < card; ++m) {
        plan.owned_group_code[m] =
            hier.RollUpMember(data_level, m, plan.group_level);
      }
    }
    if (!preds[h].empty()) {
      ASSESS_ASSIGN_OR_RETURN(
          plan.pass, BuildConjunctionFlags(hier, preds[h], data_level));
    }
    hiers.push_back(std::move(plan));
  }
  for (int m : query.measures) {
    const MeasureDef& def = schema.measure(m);
    ASSESS_ASSIGN_OR_RETURN(int src, data.MeasureIndex(def.name));
    MeasureScanPlan mp;
    mp.source = data.measure_column(src).data();
    // Counts stored in the source re-aggregate by summation.
    mp.op = def.op == AggOp::kCount ? AggOp::kSum : def.op;
    mp.name = def.name;
    measures.push_back(std::move(mp));
  }
  return Aggregate(rows, hiers, measures, exec);
}

// Copies `cached` with its measure columns selected (by schema measure
// name) in the order `measure_ids` requests — the projection that maps a
// canonically stored cache entry back to the caller's measure list.
// Column copies keep values bit-identical to the originally computed cube.
Result<Cube> ProjectMeasures(const Cube& cached, const CubeSchema& schema,
                             const std::vector<int>& measure_ids) {
  std::vector<LevelRef> levels = cached.levels();
  std::vector<std::vector<MemberId>> coords;
  coords.reserve(levels.size());
  for (int i = 0; i < cached.level_count(); ++i) {
    coords.push_back(cached.coord_column(i));
  }
  std::vector<std::string> names;
  std::vector<std::vector<double>> columns;
  names.reserve(measure_ids.size());
  columns.reserve(measure_ids.size());
  for (int m : measure_ids) {
    const std::string& name = schema.measure(m).name;
    ASSESS_ASSIGN_OR_RETURN(int idx, cached.MeasureIndex(name));
    names.push_back(name);
    columns.push_back(cached.measure_column(idx));
  }
  return Cube::FromColumns(std::move(levels), std::move(coords),
                           std::move(names), std::move(columns));
}

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kBypass:
      return "bypass";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kExactHit:
      return "exact_hit";
    case CacheOutcome::kSubsumptionHit:
      return "subsumption_hit";
  }
  return "unknown";
}

}  // namespace

StarQueryEngine::StarQueryEngine(const StarDatabase* db,
                                 const EngineOptions& options)
    : db_(db),
      use_views_(options.use_views),
      pool_(options.pool ? options.pool : TaskPool::Shared()),
      profiler_(options.profiler) {
  // Default parallelism comes from the pool, not the hardware: inside
  // assessd many sessions share one pool, and each must size itself as one
  // tenant of that pool rather than as the machine's sole owner.
  int forced = ForcedThreadsFromEnv();
  threads_ = forced > 0            ? forced
             : options.threads > 0 ? options.threads
                                   : std::max(1, pool_->parallelism());
  if (options.use_result_cache) {
    cache_ = options.shared_cache
                 ? options.shared_cache
                 : std::make_shared<CubeResultCache>(options.cache);
  }
}

StarQueryEngine::StarQueryEngine(const StarDatabase* db, bool use_views,
                                 int threads)
    : db_(db), use_views_(use_views), pool_(TaskPool::Shared()) {
  int forced = ForcedThreadsFromEnv();
  threads_ = forced > 0 ? forced : std::max(1, threads);
}

namespace {

// Per-thread scan tally, so ExecuteInternal can attribute morsel counts to
// the one get it is timing. Correct because CountMorsels is always called
// on the get's calling thread with that scan's totals (morsel partials are
// summed into a MorselExec first, never counted from workers).
thread_local uint64_t tl_morsels_scanned = 0;
thread_local uint64_t tl_morsels_skipped = 0;

}  // namespace

void StarQueryEngine::CountMorsels(uint64_t scanned, uint64_t skipped) const {
  if (scanned == 0 && skipped == 0) return;
  tl_morsels_scanned += scanned;
  tl_morsels_skipped += skipped;
  morsels_scanned_.fetch_add(scanned, std::memory_order_relaxed);
  morsels_skipped_.fetch_add(skipped, std::memory_order_relaxed);
  if (pool_) pool_->AddScanCounts(scanned, skipped);
}

Result<Cube> StarQueryEngine::Execute(const CubeQuery& query) const {
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bound, db_->Find(query.cube_name));
  return ExecuteInternal(*bound, query);
}

Result<Cube> StarQueryEngine::ExecuteInternal(const BoundCube& bound,
                                              const CubeQuery& query) const {
  Span span("engine.get");
  if (span.active()) span.AddString("cube", query.cube_name);
  WorkloadProfiler* profiler =
      profiler_ != nullptr && profiler_->enabled() ? profiler_ : nullptr;
  const uint64_t scanned_before = tl_morsels_scanned;
  const uint64_t skipped_before = tl_morsels_skipped;
  Stopwatch watch;
  Result<Cube> result = ExecuteGet(bound, query);
  if (span.active()) {
    span.AddString("outcome", CacheOutcomeName(last_cache_outcome_));
    if (result.ok()) span.AddInt("rows", result->NumRows());
  }
  if (profiler != nullptr && result.ok()) {
    const double ms = watch.ElapsedMillis();
    const uint64_t scanned = tl_morsels_scanned - scanned_before;
    const uint64_t skipped = tl_morsels_skipped - skipped_before;
    WorkloadOutcome outcome = WorkloadOutcome::kBypass;
    switch (last_cache_outcome_) {
      case CacheOutcome::kBypass:
        outcome = WorkloadOutcome::kBypass;
        break;
      case CacheOutcome::kMiss:
        outcome = WorkloadOutcome::kMiss;
        break;
      case CacheOutcome::kExactHit:
        outcome = WorkloadOutcome::kExactHit;
        break;
      case CacheOutcome::kSubsumptionHit:
        outcome = WorkloadOutcome::kSubsumptionHit;
        break;
    }
    const FactSnapshot snap = bound.facts().Snapshot();
    WorkloadProfiler::Seen seen = profiler->RecordQuery(
        bound.schema(), CanonicalizeQuery(query), outcome, ms,
        scanned * static_cast<uint64_t>(kMorselRows), skipped, snap.rows);
    if (span.active() && seen.count > 0) {
      span.AddString("lattice", seen.lattice);
      span.AddInt("seen", static_cast<int64_t>(seen.count));
    }
  }
  return result;
}

Result<Cube> StarQueryEngine::ExecuteGet(const BoundCube& bound,
                                         const CubeQuery& query) const {
  ASSESS_FAILPOINT("storage.group_by");
  last_cache_outcome_ = CacheOutcome::kBypass;
  if (cache_ == nullptr) return ExecuteUncached(bound, query, nullptr);
  const CubeSchema& schema = bound.schema();
  for (const Predicate& p : query.predicates) {
    if (p.hierarchy < 0 || p.hierarchy >= schema.hierarchy_count()) {
      // Let the scan path produce its usual diagnostic.
      return ExecuteUncached(bound, query, nullptr);
    }
  }

  // Admission: capture the snapshot the whole get answers at. The cache is
  // keyed by its epoch, so entries are only ever reused for byte-identical
  // table contents, and the scan below reads exactly this prefix.
  FactSnapshot snap = bound.facts().Snapshot();
  CanonicalQuery canon = CanonicalizeQuery(query);
  canon.epoch = snap.epoch;
  std::string key = FingerprintKey(canon);
  if (std::optional<Cube> hit = cache_->FindExact(key)) {
    last_used_view_ = false;
    last_cache_outcome_ = CacheOutcome::kExactHit;
    return ProjectMeasures(*hit, schema, query.measures);
  }
  if (std::optional<CubeResultCache::Snapshot> finer =
          cache_->FindSubsuming(schema, canon)) {
    // Re-aggregate the finer cached result client-side, applying only the
    // predicates the cached entry has not already applied.
    std::unordered_set<std::string> applied;
    for (const Predicate& p : finer->query.predicates) {
      applied.insert(PredicateKey(p));
    }
    std::vector<std::vector<Predicate>> extra(schema.hierarchy_count());
    for (const Predicate& p : canon.predicates) {
      if (!applied.count(PredicateKey(p))) extra[p.hierarchy].push_back(p);
    }
    Span span("engine.rollup");
    MorselExec exec{pool_.get(), threads_};
    auto rolled_or = AggregateFromRollup(schema, query, extra, finer->cube,
                                         finer->query.group_by, &exec);
    CountMorsels(exec.scanned, exec.skipped);
    if (span.active()) {
      span.AddInt("source_rows", finer->cube.NumRows());
      span.AddInt("morsels_scanned", static_cast<int64_t>(exec.scanned));
      span.AddInt("morsels_skipped", static_cast<int64_t>(exec.skipped));
    }
    AddKernelSpanAttrs(span, exec);
    ASSESS_ASSIGN_OR_RETURN(Cube rolled, std::move(rolled_or));
    last_used_view_ = false;
    last_cache_outcome_ = CacheOutcome::kSubsumptionHit;
    cache_->Insert(key, std::move(canon), rolled);
    return rolled;
  }
  ASSESS_ASSIGN_OR_RETURN(Cube cube, ExecuteUncached(bound, query, &snap));
  last_cache_outcome_ = CacheOutcome::kMiss;
  cache_->Insert(key, std::move(canon), cube);
  return cube;
}

Result<Cube> StarQueryEngine::ExecuteUncached(const BoundCube& bound,
                                              const CubeQuery& query,
                                              const FactSnapshot* snap_in) const {
  ASSESS_FAILPOINT("storage.scan");
  const CubeSchema& schema = bound.schema();
  last_used_view_ = false;

  // Partition predicates by hierarchy.
  std::vector<std::vector<Predicate>> preds(schema.hierarchy_count());
  for (const Predicate& p : query.predicates) {
    if (p.hierarchy < 0 || p.hierarchy >= schema.hierarchy_count()) {
      return Status::InvalidArgument("predicate on unknown hierarchy");
    }
    preds[p.hierarchy].push_back(p);
  }

  if (query.group_by.Arity() > 16) {
    return Status::NotSupported("group-by sets beyond 16 levels");
  }

  // Admission snapshot: the consistent committed prefix this get answers
  // at (passed down by ExecuteGet so the cache key's epoch and the scan
  // agree; taken here for uncached paths).
  const FactTable& facts = bound.facts();
  FactSnapshot snap = snap_in != nullptr ? *snap_in : facts.Snapshot();

  int view_index = -1;
  std::shared_ptr<const ViewSet> view_set;
  if (use_views_) {
    view_set = bound.views_snapshot();
    // Views lag fact commits by design (facts publish first, views after);
    // a set stamped at another epoch aggregates different table contents,
    // so the scan falls back to the facts rather than mix epochs.
    if (view_set->epoch == snap.epoch) {
      view_index = PickBestView(schema, query, view_set->views);
    }
  }
  if (view_index >= 0) {
    last_used_view_ = true;
    const MaterializedView& view = view_set->views[view_index];
    Span span("engine.scan");
    MorselExec exec{pool_.get(), threads_};
    auto result = AggregateFromRollup(schema, query, preds, view.data,
                                      view.group_by, &exec);
    CountMorsels(exec.scanned, exec.skipped);
    if (span.active()) {
      span.AddString("source", "view");
      span.AddInt("rows", view.data.NumRows());
      span.AddInt("epoch", static_cast<int64_t>(snap.epoch));
      span.AddInt("morsels_scanned", static_cast<int64_t>(exec.scanned));
      span.AddInt("morsels_skipped", static_cast<int64_t>(exec.skipped));
    }
    AddKernelSpanAttrs(span, exec);
    return result;
  }

  Span span("engine.scan");
  std::vector<HierScanPlan> hiers;
  std::vector<MeasureScanPlan> measures;
  const int64_t rows = snap.rows;
  // Build or extend the packed/zone accelerators up to the snapshot before
  // reading any dimension state: every code they cover then predates the
  // dimension rows visible below, keeping lane tables and pass flags large
  // enough for every code a scan or pruner can meet.
  facts.EnsureDerived(&snap);
  for (int h = 0; h < schema.hierarchy_count(); ++h) {
    bool grouped = query.group_by.HasHierarchy(h);
    if (!grouped && preds[h].empty()) continue;
    const DimensionTable& dim = bound.dimension(h);
    HierScanPlan plan;
    plan.hierarchy = schema.hierarchy_ptr(h);
    plan.grouped = grouped;
    plan.codes = snap.fk[h];
    plan.packed = &snap.derived->packed.dims[h];
    plan.code_domain = dim.NumRows();
    plan.fact_dim = h;
    if (grouped) {
      plan.group_level = query.group_by.LevelOf(h);
      plan.external_group_code = &dim.level_column(plan.group_level);
    }
    if (!preds[h].empty()) {
      ASSESS_ASSIGN_OR_RETURN(plan.pass,
                              BuildDimensionRowFlags(dim, preds[h]));
    }
    hiers.push_back(std::move(plan));
  }
  for (int m : query.measures) {
    const MeasureDef& def = schema.measure(m);
    MeasureScanPlan mp;
    mp.source = snap.measures[m];
    mp.op = def.op;
    mp.name = def.name;
    measures.push_back(std::move(mp));
  }
  MorselExec exec{pool_.get(), threads_};
  // Zone maps pay off only when there is a predicate to prune with and more
  // than one morsel to prune; extension for appended suffixes is
  // incremental, so this stays one boundary-morsel recompute per commit.
  bool predicated = false;
  for (const HierScanPlan& h : hiers) {
    if (!h.pass.empty()) predicated = true;
  }
  if (predicated && rows > kMorselRows) {
    exec.zones = &snap.derived->zones;
  }
  auto result = Aggregate(rows, hiers, measures, &exec);
  CountMorsels(exec.scanned, exec.skipped);
  if (span.active()) {
    span.AddString("source", "fact");
    span.AddInt("rows", rows);
    span.AddInt("epoch", static_cast<int64_t>(snap.epoch));
    span.AddInt("morsels_scanned", static_cast<int64_t>(exec.scanned));
    span.AddInt("morsels_skipped", static_cast<int64_t>(exec.skipped));
  }
  AddKernelSpanAttrs(span, exec);
  return result;
}

Result<Cube> StarQueryEngine::AggregateFactRange(const BoundCube& bound,
                                                 const GroupBySet& group_by,
                                                 int64_t from,
                                                 int64_t to) const {
  const CubeSchema& schema = bound.schema();
  FactSnapshot snap = bound.facts().Snapshot();
  if (from < 0 || to < from || to > snap.rows) {
    return Status::InvalidArgument(
        "fact range [" + std::to_string(from) + ", " + std::to_string(to) +
        ") is outside the committed prefix of '" + bound.facts().name() +
        "' (" + std::to_string(snap.rows) + " rows)");
  }
  Span span("engine.delta_scan");
  std::vector<HierScanPlan> hiers;
  std::vector<MeasureScanPlan> measures;
  for (int h = 0; h < schema.hierarchy_count(); ++h) {
    if (!group_by.HasHierarchy(h)) continue;
    const DimensionTable& dim = bound.dimension(h);
    HierScanPlan plan;
    plan.hierarchy = schema.hierarchy_ptr(h);
    plan.grouped = true;
    plan.codes = snap.fk[h] + from;
    plan.code_domain = dim.NumRows();
    plan.group_level = group_by.LevelOf(h);
    plan.external_group_code = &dim.level_column(plan.group_level);
    hiers.push_back(std::move(plan));
  }
  for (int m = 0; m < schema.measure_count(); ++m) {
    const MeasureDef& def = schema.measure(m);
    MeasureScanPlan mp;
    mp.source = snap.measures[m] + from;
    mp.op = def.op;
    mp.name = def.name;
    measures.push_back(std::move(mp));
  }
  MorselExec exec{pool_.get(), threads_};
  auto result = Aggregate(to - from, hiers, measures, &exec);
  CountMorsels(exec.scanned, exec.skipped);
  if (span.active()) {
    span.AddString("source", "fact_delta");
    span.AddInt("rows", to - from);
    span.AddInt("epoch", static_cast<int64_t>(snap.epoch));
  }
  AddKernelSpanAttrs(span, exec);
  return result;
}

Result<std::vector<Cube>> StarQueryEngine::ExecuteSharedScan(
    const std::vector<CubeQuery>& queries, uint64_t pinned_epoch) const {
  if (queries.empty()) return std::vector<Cube>();
  ASSESS_FAILPOINT("mqo.shared_scan");
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bound,
                          db_->Find(queries[0].cube_name));
  const CubeSchema& schema = bound->schema();

  // Validate the group contract: one cube, one canonical predicate
  // conjunction. Violations are collector bugs, not user errors.
  std::vector<CanonicalQuery> canons;
  canons.reserve(queries.size());
  std::string shared_pred_key;
  for (size_t i = 0; i < queries.size(); ++i) {
    const CubeQuery& q = queries[i];
    if (q.cube_name != queries[0].cube_name) {
      return Status::Internal("shared scan mixes cubes");
    }
    if (q.group_by.Arity() > 16) {
      return Status::NotSupported("group-by sets beyond 16 levels");
    }
    for (const Predicate& p : q.predicates) {
      if (p.hierarchy < 0 || p.hierarchy >= schema.hierarchy_count()) {
        return Status::InvalidArgument("predicate on unknown hierarchy");
      }
    }
    CanonicalQuery canon = CanonicalizeQuery(q);
    std::string pred_key;
    for (const Predicate& p : canon.predicates) pred_key += PredicateKey(p);
    if (i == 0) {
      shared_pred_key = std::move(pred_key);
    } else if (pred_key != shared_pred_key) {
      return Status::Internal("shared scan mixes predicate conjunctions");
    }
    canons.push_back(std::move(canon));
  }

  const FactTable& facts = bound->facts();
  FactSnapshot snap = facts.Snapshot();
  if (pinned_epoch != 0 && snap.epoch != pinned_epoch) {
    return Status::Unavailable(
        "shared scan epoch changed (an ingest raced the batch)");
  }
  facts.EnsureDerived(&snap);
  const int64_t rows = snap.rows;

  Span span("engine.shared_scan");
  if (span.active()) {
    span.AddString("cube", queries[0].cube_name);
    span.AddInt("queries", static_cast<int64_t>(queries.size()));
    span.AddInt("rows", rows);
    span.AddInt("epoch", static_cast<int64_t>(snap.epoch));
  }

  // Compile each consumer's fact-scan plan. Views are deliberately
  // bypassed: every consumer must aggregate the same source rows for the
  // shared gather to be the one scan they all ride.
  std::vector<ConsumerScan> consumers;
  consumers.reserve(queries.size());
  for (const CubeQuery& query : queries) {
    std::vector<std::vector<Predicate>> preds(schema.hierarchy_count());
    for (const Predicate& p : query.predicates) {
      preds[p.hierarchy].push_back(p);
    }
    ConsumerScan consumer;
    for (int h = 0; h < schema.hierarchy_count(); ++h) {
      bool grouped = query.group_by.HasHierarchy(h);
      if (!grouped && preds[h].empty()) continue;
      const DimensionTable& dim = bound->dimension(h);
      HierScanPlan plan;
      plan.hierarchy = schema.hierarchy_ptr(h);
      plan.grouped = grouped;
      plan.codes = snap.fk[h];
      plan.packed = &snap.derived->packed.dims[h];
      plan.code_domain = dim.NumRows();
      plan.fact_dim = h;
      if (grouped) {
        plan.group_level = query.group_by.LevelOf(h);
        plan.external_group_code = &dim.level_column(plan.group_level);
      }
      if (!preds[h].empty()) {
        ASSESS_ASSIGN_OR_RETURN(plan.pass,
                                BuildDimensionRowFlags(dim, preds[h]));
      }
      consumer.hiers.push_back(std::move(plan));
    }
    for (int m : query.measures) {
      const MeasureDef& def = schema.measure(m);
      MeasureScanPlan mp;
      mp.source = snap.measures[m];
      mp.op = def.op;
      mp.name = def.name;
      consumer.measures.push_back(std::move(mp));
    }
    consumers.push_back(std::move(consumer));
  }

  MorselExec exec{pool_.get(), threads_};
  bool predicated = false;
  for (const HierScanPlan& h : consumers[0].hiers) {
    if (!h.pass.empty()) predicated = true;
  }
  if (predicated && rows > kMorselRows) {
    exec.zones = &snap.derived->zones;
  }
  auto result = AggregateShared(rows, consumers, &exec);
  CountMorsels(exec.scanned, exec.skipped);
  if (span.active()) {
    span.AddInt("morsels_scanned", static_cast<int64_t>(exec.scanned));
    span.AddInt("morsels_skipped", static_cast<int64_t>(exec.skipped));
  }
  AddKernelSpanAttrs(span, exec);
  ASSESS_ASSIGN_OR_RETURN(std::vector<Cube> cubes, std::move(result));

  // Seed the result cache: one insert per consumer, keyed exactly as the
  // solo path would key it, so batch members executing right after the
  // shared scan take exact hits.
  if (cache_ != nullptr) {
    for (size_t i = 0; i < cubes.size(); ++i) {
      canons[i].epoch = snap.epoch;
      std::string key = FingerprintKey(canons[i]);
      cache_->Insert(key, std::move(canons[i]), cubes[i]);
    }
  }
  return cubes;
}

Result<Cube> StarQueryEngine::ExecuteJoined(
    const CubeQuery& target, const CubeQuery& benchmark,
    const std::vector<std::string>& join_levels, bool left_outer) const {
  ASSESS_FAILPOINT("storage.join");
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bt, db_->Find(target.cube_name));
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bb, db_->Find(benchmark.cube_name));
  Span span("engine.join");
  ASSESS_ASSIGN_OR_RETURN(Cube left, ExecuteInternal(*bt, target));
  ASSESS_ASSIGN_OR_RETURN(Cube right, ExecuteInternal(*bb, benchmark));
  std::string prefix = benchmark.alias.empty() ? "benchmark" : benchmark.alias;
  return JoinCubes(left, right, join_levels, prefix, left_outer);
}

Result<Cube> StarQueryEngine::ExecuteConcatJoined(
    const CubeQuery& target, const CubeQuery& benchmark,
    const std::vector<std::string>& join_levels,
    const std::string& order_level, int expected,
    const std::vector<std::vector<std::string>>& slot_names,
    bool require_complete) const {
  ASSESS_FAILPOINT("storage.join");
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bt, db_->Find(target.cube_name));
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bb, db_->Find(benchmark.cube_name));
  Span span("engine.join");
  ASSESS_ASSIGN_OR_RETURN(Cube left, ExecuteInternal(*bt, target));
  ASSESS_ASSIGN_OR_RETURN(Cube right, ExecuteInternal(*bb, benchmark));
  return ConcatJoinCubes(left, right, join_levels, order_level, expected,
                         slot_names, require_complete);
}

Result<Cube> StarQueryEngine::ExecutePivoted(const CubeQuery& query_all,
                                             const PivotSpec& spec) const {
  ASSESS_ASSIGN_OR_RETURN(const BoundCube* bound,
                          db_->Find(query_all.cube_name));
  Span span("engine.pivot");
  ASSESS_ASSIGN_OR_RETURN(Cube all, ExecuteInternal(*bound, query_all));
  return PivotCube(all, spec.level, spec.reference_member, spec.other_members,
                   spec.measure_names, spec.require_complete);
}

Result<int64_t> StarQueryEngine::MaterializeView(
    StarDatabase* db, const std::string& cube_name,
    const std::vector<std::string>& level_names,
    const std::string& view_name) const {
  ASSESS_ASSIGN_OR_RETURN(BoundCube* bound, db->FindMutable(cube_name));
  const CubeSchema& schema = bound->schema();
  CubeQuery query;
  query.cube_name = cube_name;
  ASSESS_ASSIGN_OR_RETURN(query.group_by,
                          GroupBySet::FromLevelNames(schema, level_names));
  for (int m = 0; m < schema.measure_count(); ++m) query.measures.push_back(m);

  // Build the view from base data only (never from another view), at this
  // engine's parallelism — the morsel merge keeps it deterministic.
  StarQueryEngine base_engine(db_, /*use_views=*/false, threads_);
  ASSESS_ASSIGN_OR_RETURN(Cube data, base_engine.ExecuteInternal(*bound, query));
  int64_t rows = data.NumRows();
  bound->AddView(MaterializedView{view_name, query.group_by, std::move(data)});
  return rows;
}

}  // namespace assess
