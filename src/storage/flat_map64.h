#ifndef ASSESS_STORAGE_FLAT_MAP64_H_
#define ASSESS_STORAGE_FLAT_MAP64_H_

#include <cstdint>
#include <vector>

namespace assess {

/// \brief Open-addressing hash map from non-zero uint64 keys to int32 values,
/// specialized for the aggregation inner loop of StarQueryEngine.
///
/// Keys are mixed-radix coordinate encodings, which are always >= 1 (member
/// ids are offset by one), so key 0 serves as the empty-slot sentinel and
/// slots need no separate occupancy bits. Linear probing with power-of-two
/// capacity; values are group indexes into the engine's accumulator arrays.
class FlatMap64 {
 public:
  explicit FlatMap64(int64_t expected = 64) { Rehash(CapacityFor(expected)); }

  /// \brief Returns the value for `key`, inserting `next_value` when absent.
  /// `inserted` reports which happened.
  int32_t FindOrInsert(uint64_t key, int32_t next_value, bool* inserted) {
    if ((size_ + 1) * 10 >= capacity_ * 7) Rehash(capacity_ * 2);
    uint64_t mask = static_cast<uint64_t>(capacity_) - 1;
    uint64_t slot = Mix(key) & mask;
    while (true) {
      uint64_t k = keys_[slot];
      if (k == key) {
        *inserted = false;
        return values_[slot];
      }
      if (k == 0) {
        keys_[slot] = key;
        values_[slot] = next_value;
        ++size_;
        *inserted = true;
        return next_value;
      }
      slot = (slot + 1) & mask;
    }
  }

  /// \brief Returns the value for `key`, or -1 when absent.
  int32_t Find(uint64_t key) const {
    uint64_t mask = static_cast<uint64_t>(capacity_) - 1;
    uint64_t slot = Mix(key) & mask;
    while (true) {
      uint64_t k = keys_[slot];
      if (k == key) return values_[slot];
      if (k == 0) return -1;
      slot = (slot + 1) & mask;
    }
  }

  int64_t size() const { return size_; }

 private:
  static uint64_t Mix(uint64_t k) {
    k ^= k >> 33;
    k *= 0xFF51AFD7ED558CCDULL;
    k ^= k >> 33;
    k *= 0xC4CEB9FE1A85EC53ULL;
    k ^= k >> 33;
    return k;
  }

  static int64_t CapacityFor(int64_t expected) {
    int64_t cap = 64;
    while (cap * 7 < expected * 10) cap *= 2;
    return cap;
  }

  void Rehash(int64_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int32_t> old_values = std::move(values_);
    capacity_ = new_capacity;
    keys_.assign(capacity_, 0);
    values_.assign(capacity_, 0);
    uint64_t mask = static_cast<uint64_t>(capacity_) - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      uint64_t key = old_keys[i];
      if (key == 0) continue;
      uint64_t slot = Mix(key) & mask;
      while (keys_[slot] != 0) slot = (slot + 1) & mask;
      keys_[slot] = key;
      values_[slot] = old_values[i];
    }
  }

  int64_t capacity_ = 0;
  int64_t size_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<int32_t> values_;
};

}  // namespace assess

#endif  // ASSESS_STORAGE_FLAT_MAP64_H_
