#include "storage/table.h"

#include <algorithm>
#include <cassert>

#include "common/simd.h"
#include "common/task_pool.h"
#include "storage/scan_kernels.h"

namespace assess {

void DimensionTable::AddRow(const std::vector<MemberId>& codes) {
  for (size_t l = 0; l < level_codes_.size(); ++l) {
    level_codes_[l].push_back(codes[l]);
  }
}

Status DimensionTable::Validate() const {
  int levels = hierarchy_->level_count();
  for (int64_t row = 0; row < NumRows(); ++row) {
    for (int l = 0; l + 1 < levels; ++l) {
      MemberId fine = level_codes_[l][row];
      MemberId expected = hierarchy_->RollUpMember(l, fine, l + 1);
      if (expected != level_codes_[l + 1][row]) {
        return Status::Internal(
            "dimension '" + name_ + "' row " + std::to_string(row) +
            " disagrees with the part-of mapping between levels '" +
            hierarchy_->level_name(l) + "' and '" +
            hierarchy_->level_name(l + 1) + "'");
      }
    }
  }
  return Status::OK();
}

DimensionTable DimensionTable::FromColumns(
    std::string name, std::shared_ptr<Hierarchy> hierarchy,
    std::vector<std::vector<MemberId>> codes) {
  DimensionTable table(std::move(name), std::move(hierarchy));
  table.level_codes_ = std::move(codes);
  return table;
}

FactTable FactTable::FromColumns(std::string name,
                                 std::vector<std::vector<int32_t>> fks,
                                 std::vector<std::vector<double>> measures) {
  FactTable table(std::move(name), static_cast<int>(fks.size()),
                  static_cast<int>(measures.size()));
  table.fk_ = std::move(fks);
  table.measures_ = std::move(measures);
  return table;
}

void FactTable::Reserve(int64_t rows) {
  for (auto& col : fk_) col.reserve(rows);
  for (auto& col : measures_) col.reserve(rows);
}

void FactTable::AddRow(const std::vector<int32_t>& fks,
                       const std::vector<double>& measures) {
  for (size_t d = 0; d < fk_.size(); ++d) fk_[d].push_back(fks[d]);
  for (size_t m = 0; m < measures_.size(); ++m) {
    measures_[m].push_back(measures[m]);
  }
}

const FactZoneMaps& FactTable::zone_maps() const {
  std::call_once(zone_cache_->once, [this] {
    FactZoneMaps& maps = zone_cache_->maps;
    const SimdLevel simd = ActiveSimdLevel();
    int64_t rows = NumRows();
    maps.built_rows = rows;
    maps.num_morsels = rows == 0 ? 0 : (rows + kMorselRows - 1) / kMorselRows;
    maps.dims.resize(fk_.size());
    for (size_t d = 0; d < fk_.size(); ++d) {
      const std::vector<int32_t>& codes = fk_[d];
      maps.dims[d].resize(maps.num_morsels);
      for (int64_t m = 0; m < maps.num_morsels; ++m) {
        int64_t begin = m * kMorselRows;
        int64_t end = std::min(rows, begin + kMorselRows);
        ZoneRange zone;
        MinMaxInt32(simd, codes.data() + begin, end - begin, &zone.min,
                    &zone.max);
        maps.dims[d][m] = zone;
      }
    }
  });
  return zone_cache_->maps;
}

const PackedFactColumns& FactTable::packed_fk() const {
  std::call_once(packed_cache_->once, [this] {
    PackedFactColumns& packed = packed_cache_->columns;
    packed.built_rows = NumRows();
    packed.dims.reserve(fk_.size());
    for (const std::vector<int32_t>& codes : fk_) {
      packed.dims.push_back(PackedColumn::Pack(codes));
    }
  });
  return packed_cache_->columns;
}

Status FactTable::CheckDerivedFreshness(int64_t built_rows,
                                        const char* what) const {
  if (built_rows == NumRows()) return Status::OK();
  assert(false && "derived scan structure is stale: rows were appended "
                  "after it was built");
  return Status::Internal(
      std::string(what) + " of fact table '" + name_ + "' are stale: built "
      "at " + std::to_string(built_rows) + " rows but the table now has " +
      std::to_string(NumRows()) +
      "; loaders must finish appending before serving starts");
}

}  // namespace assess
