#include "storage/table.h"

#include <algorithm>
#include <cassert>

#include "common/simd.h"
#include "common/task_pool.h"
#include "storage/scan_kernels.h"

namespace assess {

void DimensionTable::AddRow(const std::vector<MemberId>& codes) {
  for (size_t l = 0; l < level_codes_.size(); ++l) {
    level_codes_[l].push_back(codes[l]);
  }
}

Status DimensionTable::Validate() const {
  int levels = hierarchy_->level_count();
  for (int64_t row = 0; row < NumRows(); ++row) {
    for (int l = 0; l + 1 < levels; ++l) {
      MemberId fine = level_codes_[l][row];
      MemberId expected = hierarchy_->RollUpMember(l, fine, l + 1);
      if (expected != level_codes_[l + 1][row]) {
        return Status::Internal(
            "dimension '" + name_ + "' row " + std::to_string(row) +
            " disagrees with the part-of mapping between levels '" +
            hierarchy_->level_name(l) + "' and '" +
            hierarchy_->level_name(l + 1) + "'");
      }
    }
  }
  return Status::OK();
}

DimensionTable DimensionTable::FromColumns(
    std::string name, std::shared_ptr<Hierarchy> hierarchy,
    std::vector<std::vector<MemberId>> codes) {
  DimensionTable table(std::move(name), std::move(hierarchy));
  table.level_codes_ = std::move(codes);
  return table;
}

FactTable::FactTable(std::string name, int dimension_count, int measure_count)
    : name_(std::move(name)),
      dims_(dimension_count),
      meas_(measure_count),
      state_(std::make_unique<State>()) {
  state_->bank = std::make_shared<ColumnBank>();
  state_->bank->fk.resize(dims_);
  state_->bank->measures.resize(meas_);
}

FactTable FactTable::FromColumns(std::string name,
                                 std::vector<std::vector<int32_t>> fks,
                                 std::vector<std::vector<double>> measures) {
  FactTable table(std::move(name), static_cast<int>(fks.size()),
                  static_cast<int>(measures.size()));
  int64_t rows = !fks.empty()         ? static_cast<int64_t>(fks[0].size())
                 : !measures.empty()  ? static_cast<int64_t>(measures[0].size())
                                      : 0;
  table.state_->bank->fk = std::move(fks);
  table.state_->bank->measures = std::move(measures);
  table.state_->rows.store(rows, std::memory_order_release);
  table.state_->epoch.store(rows > 0 ? 1 : 0, std::memory_order_release);
  return table;
}

void FactTable::EnsureCapacityLocked(int64_t extra) {
  ColumnBank& bank = *state_->bank;
  const int64_t rows = state_->rows.load(std::memory_order_relaxed);
  const int64_t need = rows + extra;
  bool fits = true;
  for (const auto& col : bank.fk) {
    if (static_cast<int64_t>(col.capacity()) < need) fits = false;
  }
  for (const auto& col : bank.measures) {
    if (static_cast<int64_t>(col.capacity()) < need) fits = false;
  }
  if (fits) return;

  // Live snapshots hold raw pointers into the current arrays; growing a
  // column in place would reallocate under them. Growth therefore clones
  // the whole bank — snapshots pin the old one until they drop — with
  // geometric headroom so repeated appends amortize to O(1) per row.
  const int64_t cap = std::max<int64_t>({need, rows * 2, int64_t{1024}});
  auto grown = std::make_shared<ColumnBank>();
  grown->fk.resize(bank.fk.size());
  grown->measures.resize(bank.measures.size());
  for (size_t d = 0; d < bank.fk.size(); ++d) {
    grown->fk[d].reserve(cap);
    grown->fk[d].assign(bank.fk[d].begin(), bank.fk[d].end());
  }
  for (size_t m = 0; m < bank.measures.size(); ++m) {
    grown->measures[m].reserve(cap);
    grown->measures[m].assign(bank.measures[m].begin(),
                              bank.measures[m].end());
  }
  state_->bank = std::move(grown);
}

void FactTable::Reserve(int64_t rows) {
  std::lock_guard<std::mutex> lock(state_->mu);
  int64_t have = state_->rows.load(std::memory_order_relaxed);
  if (rows > have) EnsureCapacityLocked(rows - have);
}

void FactTable::AddRow(const std::vector<int32_t>& fks,
                       const std::vector<double>& measures) {
  std::lock_guard<std::mutex> lock(state_->mu);
  EnsureCapacityLocked(1);
  ColumnBank& bank = *state_->bank;
  for (int d = 0; d < dims_; ++d) bank.fk[d].push_back(fks[d]);
  for (int m = 0; m < meas_; ++m) bank.measures[m].push_back(measures[m]);
  state_->rows.store(state_->rows.load(std::memory_order_relaxed) + 1,
                     std::memory_order_release);
  state_->epoch.store(state_->epoch.load(std::memory_order_relaxed) + 1,
                      std::memory_order_release);
}

AppendResult FactTable::AppendBatch(
    const std::vector<std::vector<int32_t>>& fks,
    const std::vector<std::vector<double>>& measures) {
  assert(static_cast<int>(fks.size()) == dims_);
  assert(static_cast<int>(measures.size()) == meas_);
  const int64_t n = !fks.empty()        ? static_cast<int64_t>(fks[0].size())
                    : !measures.empty() ? static_cast<int64_t>(measures[0].size())
                                        : 0;
  std::lock_guard<std::mutex> lock(state_->mu);
  AppendResult result;
  result.first_row = state_->rows.load(std::memory_order_relaxed);
  result.rows = n;
  result.epoch = state_->epoch.load(std::memory_order_relaxed);
  if (n == 0) return result;
  EnsureCapacityLocked(n);
  ColumnBank& bank = *state_->bank;
  for (int d = 0; d < dims_; ++d) {
    assert(static_cast<int64_t>(fks[d].size()) == n);
    bank.fk[d].insert(bank.fk[d].end(), fks[d].begin(), fks[d].end());
  }
  for (int m = 0; m < meas_; ++m) {
    assert(static_cast<int64_t>(measures[m].size()) == n);
    bank.measures[m].insert(bank.measures[m].end(), measures[m].begin(),
                            measures[m].end());
  }
  result.epoch += 1;
  state_->rows.store(result.first_row + n, std::memory_order_release);
  state_->epoch.store(result.epoch, std::memory_order_release);
  return result;
}

void FactTable::SetEpochForRecovery(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->epoch.store(epoch, std::memory_order_release);
}

FactSnapshot FactTable::Snapshot() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  FactSnapshot snap;
  snap.rows = state_->rows.load(std::memory_order_relaxed);
  snap.epoch = state_->epoch.load(std::memory_order_relaxed);
  const ColumnBank& bank = *state_->bank;
  snap.fk.reserve(dims_);
  for (int d = 0; d < dims_; ++d) snap.fk.push_back(bank.fk[d].data());
  snap.measures.reserve(meas_);
  for (int m = 0; m < meas_; ++m) {
    snap.measures.push_back(bank.measures[m].data());
  }
  snap.bank = state_->bank;
  return snap;
}

FactSnapshot FactTable::SnapshotWithDerived() const {
  FactSnapshot snap = Snapshot();
  EnsureDerived(&snap);
  return snap;
}

void FactTable::EnsureDerived(FactSnapshot* snap) const {
  std::lock_guard<std::mutex> lock(state_->derived_mu);
  std::shared_ptr<const FactDerived> cur = state_->derived;
  if (cur != nullptr && cur->rows() >= snap->rows) {
    snap->derived = std::move(cur);
    return;
  }
  const int64_t old_rows = cur != nullptr ? cur->rows() : 0;
  const int64_t rows = snap->rows;
  const SimdLevel simd = ActiveSimdLevel();

  auto next = std::make_shared<FactDerived>();
  next->repacks = cur != nullptr ? cur->repacks : 0;
  next->packed.built_rows = rows;
  next->packed.dims.reserve(dims_);
  for (int d = 0; d < dims_; ++d) {
    const int32_t* codes = snap->fk[d];
    if (cur != nullptr) {
      bool repacked = false;
      next->packed.dims.push_back(cur->packed.dims[d].ExtendedWith(
          codes + old_rows, rows - old_rows, &repacked));
      if (repacked) ++next->repacks;
    } else {
      next->packed.dims.push_back(PackedColumn::Pack(codes, rows));
    }
  }

  FactZoneMaps& zones = next->zones;
  zones.built_rows = rows;
  zones.num_morsels = rows == 0 ? 0 : (rows + kMorselRows - 1) / kMorselRows;
  zones.dims.resize(dims_);
  // Only the boundary morsel (which the suffix may have grown) and the
  // brand-new morsels need computing; complete older morsels are copied.
  const int64_t first_dirty = old_rows / kMorselRows;
  for (int d = 0; d < dims_; ++d) {
    std::vector<ZoneRange>& zd = zones.dims[d];
    if (cur != nullptr) zd = cur->zones.dims[d];
    zd.resize(zones.num_morsels);
    for (int64_t m = first_dirty; m < zones.num_morsels; ++m) {
      int64_t begin = m * kMorselRows;
      int64_t end = std::min(rows, begin + kMorselRows);
      MinMaxInt32(simd, snap->fk[d] + begin, end - begin, &zd[m].min,
                  &zd[m].max);
    }
  }

  state_->derived = next;
  snap->derived = std::move(next);
}

void FactTable::ExtendDerivedIfBuilt() const {
  {
    std::lock_guard<std::mutex> lock(state_->derived_mu);
    if (state_->derived == nullptr) return;
  }
  FactSnapshot snap = Snapshot();
  EnsureDerived(&snap);
}

uint64_t FactTable::derived_repacks() const {
  std::lock_guard<std::mutex> lock(state_->derived_mu);
  return state_->derived != nullptr ? state_->derived->repacks : 0;
}

}  // namespace assess
