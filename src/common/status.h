#ifndef ASSESS_COMMON_STATUS_H_
#define ASSESS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace assess {

/// \brief Error categories used across the library.
///
/// The library never throws on expected failure paths (bad statements,
/// unknown members, non-joinable cubes, ...); every fallible operation
/// returns a Status or a Result<T> carrying one of these codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (syntax errors, bad ranges, ...)
  kNotFound,          ///< unknown cube / level / member / function / label
  kAlreadyExists,     ///< duplicate registration
  kOutOfRange,        ///< index or interval violation
  kNotSupported,      ///< operation unsupported for the given benchmark/plan
  kInternal,          ///< invariant violation inside the library
  kUnavailable,       ///< resource temporarily unavailable (server overloaded,
                      ///< shutting down, connection closed); safe to retry
  kTimeout,           ///< per-request wall-clock deadline exceeded
  kCorruptFrame,      ///< a network frame failed its CRC32C integrity check;
                      ///< the stream is untrustworthy, safe to retry
  kFrameTooLarge,     ///< a network frame exceeds the configured size cap
  kCorruptWal,        ///< a write-ahead-log record failed its CRC32C check
                      ///< mid-log (not a torn tail); recovery must stop
                      ///< rather than guess what follows
  kCorruptCheckpoint, ///< a checkpoint directory is incomplete or fails its
                      ///< manifest verification; the loader rejects it
};

/// \brief The highest valid StatusCode value, for wire-format validation.
inline constexpr StatusCode kMaxStatusCode = StatusCode::kCorruptCheckpoint;

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Arrow/RocksDB-style status value: a code plus a message.
///
/// Cheap to pass by value in the OK case (no allocation). Use the factory
/// functions (Status::OK(), Status::InvalidArgument(...)) rather than the
/// constructor.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status CorruptFrame(std::string msg) {
    return Status(StatusCode::kCorruptFrame, std::move(msg));
  }
  static Status FrameTooLarge(std::string msg) {
    return Status(StatusCode::kFrameTooLarge, std::move(msg));
  }
  static Status CorruptWal(std::string msg) {
    return Status(StatusCode::kCorruptWal, std::move(msg));
  }
  static Status CorruptCheckpoint(std::string msg) {
    return Status(StatusCode::kCorruptCheckpoint, std::move(msg));
  }

  /// \brief Rebuilds a status from a code + message pair (the shape errors
  /// take on the wire). An unknown code collapses to kInternal.
  static Status FromCode(StatusCode code, std::string msg);

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy of this status with `context` prepended to the
  /// message, for building error chains ("while planning: ...").
  Status WithContext(std::string_view context) const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Propagates a non-OK Status out of the enclosing function.
#define ASSESS_RETURN_NOT_OK(expr)          \
  do {                                      \
    ::assess::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace assess

#endif  // ASSESS_COMMON_STATUS_H_
