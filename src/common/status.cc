#include "common/status.h"

namespace assess {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  Status copy = *this;
  copy.message_ = std::string(context) + ": " + message_;
  return copy;
}

}  // namespace assess
