#include "common/status.h"

namespace assess {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCorruptFrame:
      return "CorruptFrame";
    case StatusCode::kFrameTooLarge:
      return "FrameTooLarge";
    case StatusCode::kCorruptWal:
      return "CorruptWal";
    case StatusCode::kCorruptCheckpoint:
      return "CorruptCheckpoint";
  }
  return "Unknown";
}

Status Status::FromCode(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotSupported:
    case StatusCode::kInternal:
    case StatusCode::kUnavailable:
    case StatusCode::kTimeout:
    case StatusCode::kCorruptFrame:
    case StatusCode::kFrameTooLarge:
    case StatusCode::kCorruptWal:
    case StatusCode::kCorruptCheckpoint:
      return Status(code, std::move(msg));
  }
  return Status::Internal("unknown status code: " + std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  Status copy = *this;
  copy.message_ = std::string(context) + ": " + message_;
  return copy;
}

}  // namespace assess
