#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/str_util.h"

namespace assess {
namespace {

/// FNV-1a, for deriving a per-point default RNG seed from its name so two
/// armed points never share a random stream.
uint64_t HashName(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

Status ParseError(std::string_view point, const std::string& why) {
  return Status::InvalidArgument("failpoint spec '" + std::string(point) +
                                 "': " + why);
}

bool ParseStatusCode(std::string_view name, StatusCode* out) {
  struct Mapping {
    std::string_view name;
    StatusCode code;
  };
  static constexpr Mapping kCodes[] = {
      {"invalid_argument", StatusCode::kInvalidArgument},
      {"not_found", StatusCode::kNotFound},
      {"already_exists", StatusCode::kAlreadyExists},
      {"out_of_range", StatusCode::kOutOfRange},
      {"not_supported", StatusCode::kNotSupported},
      {"internal", StatusCode::kInternal},
      {"unavailable", StatusCode::kUnavailable},
      {"timeout", StatusCode::kTimeout},
      {"corrupt_frame", StatusCode::kCorruptFrame},
      {"frame_too_large", StatusCode::kFrameTooLarge},
      {"corrupt_wal", StatusCode::kCorruptWal},
      {"corrupt_checkpoint", StatusCode::kCorruptCheckpoint},
  };
  for (const Mapping& m : kCodes) {
    if (m.name == name) {
      *out = m.code;
      return true;
    }
  }
  return false;
}

/// Parses one `name=action:mod:mod` point; arms or disarms it.
Status ApplyOnePoint(FailpointRegistry* registry, std::string_view point) {
  size_t eq = point.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return ParseError(point, "expected name=action");
  }
  std::string name(Trim(point.substr(0, eq)));
  std::string_view rest = Trim(point.substr(eq + 1));
  if (rest.empty()) return ParseError(point, "missing action");

  // Split off ':'-separated modifiers; the action may carry a
  // parenthesized argument that itself never contains ':'.
  std::string_view action_text = rest;
  std::string_view mods;
  size_t colon = rest.find(':', rest.find(')') == std::string_view::npos
                                    ? 0
                                    : rest.find(')'));
  if (colon != std::string_view::npos) {
    action_text = Trim(rest.substr(0, colon));
    mods = rest.substr(colon + 1);
  }

  std::string_view verb = action_text;
  std::string_view args;
  size_t open = action_text.find('(');
  if (open != std::string_view::npos) {
    if (action_text.back() != ')') {
      return ParseError(point, "unbalanced parentheses");
    }
    verb = action_text.substr(0, open);
    args = action_text.substr(open + 1,
                              action_text.size() - open - 2);
  }

  FailpointSpec spec;
  if (verb == "off") {
    if (!args.empty()) return ParseError(point, "off takes no argument");
    registry->Disarm(name);
    return Status::OK();
  } else if (verb == "error") {
    spec.action = FailpointAction::kError;
    if (!args.empty()) {
      std::string_view code_text = args;
      size_t comma = args.find(',');
      if (comma != std::string_view::npos) {
        code_text = Trim(args.substr(0, comma));
        spec.message = std::string(Trim(args.substr(comma + 1)));
      }
      if (!ParseStatusCode(Trim(code_text), &spec.code)) {
        return ParseError(point, "unknown status code '" +
                                     std::string(code_text) + "'");
      }
    }
  } else if (verb == "delay") {
    spec.action = FailpointAction::kDelay;
    char* end = nullptr;
    std::string ms(Trim(args));
    long value = std::strtol(ms.c_str(), &end, 10);
    if (ms.empty() || end == nullptr || *end != '\0' || value < 0) {
      return ParseError(point, "delay wants a millisecond count");
    }
    spec.delay_ms = static_cast<int>(value);
  } else if (verb == "corrupt") {
    if (!args.empty()) return ParseError(point, "corrupt takes no argument");
    spec.action = FailpointAction::kCorrupt;
  } else if (verb == "abort") {
    if (!args.empty()) return ParseError(point, "abort takes no argument");
    spec.action = FailpointAction::kAbort;
  } else {
    return ParseError(point, "unknown action '" + std::string(verb) + "'");
  }

  while (!mods.empty()) {
    std::string_view mod = mods;
    size_t next = mods.find(':');
    if (next != std::string_view::npos) {
      mod = mods.substr(0, next);
      mods = mods.substr(next + 1);
    } else {
      mods = {};
    }
    mod = Trim(mod);
    std::string text;
    char* end = nullptr;
    if (mod.rfind("p=", 0) == 0) {
      text = std::string(mod.substr(2));
      double p = std::strtod(text.c_str(), &end);
      if (text.empty() || *end != '\0' || p < 0.0 || p > 1.0) {
        return ParseError(point, "p wants a probability in [0, 1]");
      }
      spec.probability = p;
    } else if (mod.rfind("budget=", 0) == 0) {
      text = std::string(mod.substr(7));
      long long budget = std::strtoll(text.c_str(), &end, 10);
      if (text.empty() || *end != '\0') {
        return ParseError(point, "budget wants an integer");
      }
      spec.budget = budget;
    } else if (mod.rfind("seed=", 0) == 0) {
      text = std::string(mod.substr(5));
      unsigned long long seed = std::strtoull(text.c_str(), &end, 10);
      if (text.empty() || *end != '\0') {
        return ParseError(point, "seed wants an integer");
      }
      spec.seed = seed;
    } else {
      return ParseError(point, "unknown modifier '" + std::string(mod) + "'");
    }
  }
  return registry->Arm(name, std::move(spec));
}

}  // namespace

std::atomic<int>& FailpointRegistry::ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* env = std::getenv("ASSESS_FAILPOINTS");
        env != nullptr && *env != '\0') {
      Status armed = r->ArmFromString(env);
      if (!armed.ok()) {
        std::fprintf(stderr, "ASSESS_FAILPOINTS ignored: %s\n",
                     armed.ToString().c_str());
      }
    }
    return r;
  }();
  return *registry;
}

#ifdef ASSESS_FAILPOINTS_ENABLED
// The macros gate on ArmedCount() before ever touching Instance(), so the
// environment variable must be read eagerly — otherwise a process armed
// only via ASSESS_FAILPOINTS would never wake the registry up.
namespace {
[[maybe_unused]] const bool kEnvArmed =
    (FailpointRegistry::Instance(), true);
}  // namespace
#endif

Status FailpointRegistry::Arm(const std::string& name, FailpointSpec spec) {
  if (!kFailpointsCompiledIn) {
    return Status::NotSupported(
        "failpoints compiled out (build with ASSESS_FAILPOINTS=ON)");
  }
  if (name.empty()) return Status::InvalidArgument("empty failpoint name");
  uint64_t seed = spec.seed != 0 ? spec.seed : HashName(name);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(name);
  if (it != points_.end()) {
    points_.erase(it);
    ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  }
  points_.emplace(name, Armed(std::move(spec), seed));
  ArmedCount().fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FailpointRegistry::ArmFromString(std::string_view config) {
  size_t pos = 0;
  while (pos <= config.size()) {
    size_t semi = config.find(';', pos);
    if (semi == std::string_view::npos) semi = config.size();
    std::string_view point = Trim(config.substr(pos, semi - pos));
    if (!point.empty()) {
      ASSESS_RETURN_NOT_OK(ApplyOnePoint(this, point));
    }
    pos = semi + 1;
  }
  return Status::OK();
}

bool FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (points_.erase(name) == 0) return false;
  ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  ArmedCount().fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

uint64_t FailpointRegistry::triggers(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(name);
  return it != points_.end() ? it->second.triggered : 0;
}

std::string FailpointRegistry::Describe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (points_.empty()) return "no failpoints armed";
  std::string out;
  for (const auto& [name, armed] : points_) {
    const char* action = "?";
    switch (armed.spec.action) {
      case FailpointAction::kError:
        action = "error";
        break;
      case FailpointAction::kDelay:
        action = "delay";
        break;
      case FailpointAction::kCorrupt:
        action = "corrupt";
        break;
      case FailpointAction::kAbort:
        action = "abort";
        break;
    }
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s: %s p=%.3g budget=%lld hits=%llu triggered=%llu\n",
                  name.c_str(), action, armed.spec.probability,
                  static_cast<long long>(armed.spec.budget),
                  static_cast<unsigned long long>(armed.hits),
                  static_cast<unsigned long long>(armed.triggered));
    out += line;
  }
  return out;
}

bool FailpointRegistry::Trigger(std::string_view name, FailpointSpec* spec,
                                uint64_t* draw) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(std::string(name));
  if (it == points_.end()) return false;
  Armed& armed = it->second;
  ++armed.hits;
  if (armed.spec.budget == 0) return false;  // budget exhausted
  if (armed.spec.probability < 1.0 &&
      armed.rng.NextDouble() >= armed.spec.probability) {
    return false;
  }
  if (armed.spec.budget > 0) --armed.spec.budget;
  ++armed.triggered;
  *spec = armed.spec;
  *draw = armed.rng.Next();
  return true;
}

Status FailpointRegistry::Hit(std::string_view name) {
  FailpointSpec spec;
  uint64_t draw = 0;
  if (!Trigger(name, &spec, &draw)) return Status::OK();
  switch (spec.action) {
    case FailpointAction::kError: {
      std::string message = spec.message.empty()
                                ? "injected by failpoint " + std::string(name)
                                : spec.message;
      return Status::FromCode(spec.code, std::move(message));
    }
    case FailpointAction::kDelay:
      // Sleep outside the registry lock (Trigger already released it), so a
      // stalled site never blocks arming or other sites.
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
      return Status::OK();
    case FailpointAction::kAbort:
      std::fprintf(stderr, "failpoint %.*s: abort\n",
                   static_cast<int>(name.size()), name.data());
      std::abort();
    case FailpointAction::kCorrupt:
      return Status::OK();  // only meaningful at corrupt sites
  }
  return Status::OK();
}

bool FailpointRegistry::HitTriggered(std::string_view name) {
  FailpointSpec spec;
  uint64_t draw = 0;
  if (!Trigger(name, &spec, &draw)) return false;
  if (spec.action == FailpointAction::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
  } else if (spec.action == FailpointAction::kAbort) {
    std::fprintf(stderr, "failpoint %.*s: abort\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return true;
}

void FailpointRegistry::HitCorrupt(std::string_view name, std::string* buf,
                                   size_t offset) {
  FailpointSpec spec;
  uint64_t draw = 0;
  if (!Trigger(name, &spec, &draw)) return;
  if (spec.action == FailpointAction::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
    return;
  }
  if (spec.action != FailpointAction::kCorrupt) return;
  if (buf == nullptr || buf->size() <= offset) return;
  // Flip 1-8 bytes past `offset` with a deterministic per-point stream.
  // The caller keeps the length prefix out of range so the receiver
  // *detects* the corruption instead of desynchronizing on a bad length.
  Rng rng(draw);
  size_t span = buf->size() - offset;
  size_t flips = 1 + rng.Uniform(8);
  for (size_t i = 0; i < flips; ++i) {
    size_t at = offset + rng.Uniform(span);
    (*buf)[at] = static_cast<char>((*buf)[at] ^
                                   static_cast<char>(1 + rng.Uniform(255)));
  }
}

}  // namespace assess
