#ifndef ASSESS_COMMON_FAILPOINT_H_
#define ASSESS_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"

namespace assess {

/// \brief Named fault-injection points, for testing how the stack survives
/// failures a real deployment sees: torn connections, corrupted frames,
/// slow disks, overload and crashes mid-request.
///
/// A failpoint is a named site in production code:
///
///   ASSESS_FAILPOINT("server.read_frame");           // may return an error
///   if (ASSESS_FAILPOINT_TRIGGERED("cache.insert"))  // may skip a step
///     return;
///   ASSESS_FAILPOINT_CORRUPT("net.write_frame", &buf);  // may flip bytes
///
/// Sites are compiled in only when the CMake option ASSESS_FAILPOINTS is ON
/// (the default); with ASSESS_FAILPOINTS=OFF every macro is a no-op and the
/// registry refuses to arm. When compiled in but not armed, a site costs
/// one relaxed atomic load and a predictable branch — nothing measurable on
/// the serving path.
///
/// Arming happens at runtime, by spec string, through any of:
///   - the ASSESS_FAILPOINTS environment variable (read once, at first use),
///   - `assessd --failpoints "<spec>"`,
///   - the kFailpoint admin frame (when the server allows it),
///   - FailpointRegistry::Instance().ArmFromString(...) in tests.
///
/// Spec grammar (';'-separated points):
///
///   spec    := point (';' point)*
///   point   := name '=' action modifier*
///   action  := 'off'                      disarm the point
///            | 'error'                    return kUnavailable
///            | 'error(' code ')'          return the named code
///            | 'error(' code ',' msg ')'  ... with a custom message
///            | 'delay(' ms ')'            sleep, then continue
///            | 'corrupt'                  flip bytes (corrupt sites only)
///            | 'abort'                    std::abort()
///   modifier:= ':p=' float                trigger probability (default 1)
///            | ':budget=' int             max triggers (default unlimited)
///            | ':seed=' int               RNG seed for p / corruption
///
/// Example: "server.read_frame=error(unavailable):p=0.25:budget=3;
///           server.worker_dequeue=delay(50)"
///
/// Code names: invalid_argument, not_found, already_exists, out_of_range,
/// not_supported, internal, unavailable, timeout, corrupt_frame,
/// frame_too_large, corrupt_wal, corrupt_checkpoint.

/// \brief True when failpoint sites are compiled in (ASSESS_FAILPOINTS=ON).
#ifdef ASSESS_FAILPOINTS_ENABLED
inline constexpr bool kFailpointsCompiledIn = true;
#else
inline constexpr bool kFailpointsCompiledIn = false;
#endif

/// \brief What an armed failpoint does when it triggers.
enum class FailpointAction {
  kError,    ///< return a Status with the configured code and message
  kDelay,    ///< sleep delay_ms, then continue
  kCorrupt,  ///< flip random bytes (only at ASSESS_FAILPOINT_CORRUPT sites)
  kAbort,    ///< std::abort() — simulates a crash mid-request
};

/// \brief Full configuration of one armed point.
struct FailpointSpec {
  FailpointAction action = FailpointAction::kError;
  StatusCode code = StatusCode::kUnavailable;  ///< for kError
  std::string message;                         ///< "" = default message
  int delay_ms = 0;                            ///< for kDelay
  double probability = 1.0;  ///< chance each hit triggers, in [0, 1]
  int64_t budget = -1;       ///< max triggers; < 0 means unlimited
  uint64_t seed = 0;         ///< 0 = derived from the point name
};

/// \brief Process-wide registry of armed failpoints. Thread-safe; the
/// unarmed fast path is a single relaxed atomic load (see the macros).
class FailpointRegistry {
 public:
  /// \brief The process singleton. On first call, arms whatever the
  /// ASSESS_FAILPOINTS environment variable specifies (parse errors are
  /// reported to stderr, not fatal).
  static FailpointRegistry& Instance();

  /// \brief Arms (or re-arms, resetting counters) one point. Fails with
  /// kNotSupported when failpoints are compiled out.
  Status Arm(const std::string& name, FailpointSpec spec);

  /// \brief Parses and applies a full spec string (grammar above). Applies
  /// points left to right; the first malformed point aborts with
  /// kInvalidArgument and leaves earlier points armed.
  Status ArmFromString(std::string_view config);

  /// \brief Disarms one point. Returns true when it was armed.
  bool Disarm(const std::string& name);

  /// \brief Disarms everything (chaos harness teardown).
  void DisarmAll();

  /// \brief Times the named point fired (triggered, not merely hit).
  uint64_t triggers(const std::string& name) const;

  /// \brief Human-readable listing of armed points with hit/trigger
  /// counters (the kFailpoint admin reply).
  std::string Describe() const;

  // Internal: the slow path behind the macros. `Hit` evaluates the point
  // and either returns a non-OK Status (kError), sleeps and returns OK
  // (kDelay), aborts (kAbort), or returns OK (unarmed / suppressed /
  // kCorrupt at a non-corrupt site).
  Status Hit(std::string_view name);
  // True when the point triggers with a non-error action — the skip-a-step
  // form (kError at such a site also reports true).
  bool HitTriggered(std::string_view name);
  // Flips 1-8 bytes of `*buf` past `offset` when the point triggers with
  // action kCorrupt. Also honours kDelay at corrupt sites.
  void HitCorrupt(std::string_view name, std::string* buf, size_t offset);

  /// \brief Number of armed points, as a cheap global gate.
  static std::atomic<int>& ArmedCount();

 private:
  struct Armed {
    FailpointSpec spec;
    Rng rng;
    uint64_t hits = 0;
    uint64_t triggered = 0;
    Armed(FailpointSpec s, uint64_t seed) : spec(std::move(s)), rng(seed) {}
  };

  FailpointRegistry() = default;

  /// Decides whether the point fires now (probability + budget, counters
  /// updated) and copies the spec out. Returns false when unarmed or
  /// suppressed.
  bool Trigger(std::string_view name, FailpointSpec* spec, uint64_t* draw);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Armed> points_;
};

#ifdef ASSESS_FAILPOINTS_ENABLED

/// \brief May return a non-OK Status (or sleep / abort) out of the
/// enclosing function; usable in functions returning Status or Result<T>.
#define ASSESS_FAILPOINT(name)                                              \
  do {                                                                      \
    if (::assess::FailpointRegistry::ArmedCount().load(                     \
            std::memory_order_relaxed) > 0) {                               \
      ::assess::Status _assess_fp =                                         \
          ::assess::FailpointRegistry::Instance().Hit(name);                \
      if (!_assess_fp.ok()) return _assess_fp;                              \
    }                                                                       \
  } while (false)

/// \brief Expression form: true when the point triggers (skip-a-step
/// sites, e.g. a cache insert that "fails" by not happening).
#define ASSESS_FAILPOINT_TRIGGERED(name)                             \
  (::assess::FailpointRegistry::ArmedCount().load(                   \
       std::memory_order_relaxed) > 0 &&                             \
   ::assess::FailpointRegistry::Instance().HitTriggered(name))

/// \brief May flip bytes of `*buf` past byte `offset` (corrupt action).
#define ASSESS_FAILPOINT_CORRUPT(name, buf, offset)                  \
  do {                                                               \
    if (::assess::FailpointRegistry::ArmedCount().load(              \
            std::memory_order_relaxed) > 0) {                        \
      ::assess::FailpointRegistry::Instance().HitCorrupt(name, buf,  \
                                                         offset);    \
    }                                                                \
  } while (false)

#else  // !ASSESS_FAILPOINTS_ENABLED

#define ASSESS_FAILPOINT(name) \
  do {                         \
    (void)(name);              \
  } while (false)
#define ASSESS_FAILPOINT_TRIGGERED(name) ((void)(name), false)
#define ASSESS_FAILPOINT_CORRUPT(name, buf, offset) \
  do {                                              \
    (void)(name);                                   \
    (void)(buf);                                    \
    (void)(offset);                                 \
  } while (false)

#endif  // ASSESS_FAILPOINTS_ENABLED

}  // namespace assess

#endif  // ASSESS_COMMON_FAILPOINT_H_
