#ifndef ASSESS_COMMON_RNG_H_
#define ASSESS_COMMON_RNG_H_

#include <cstdint>

namespace assess {

/// \brief Deterministic xorshift128+ generator used by the data generators.
///
/// Data generation must be reproducible across runs and platforms, so we do
/// not use std::mt19937 distributions (whose outputs are not pinned by the
/// standard for all distribution types).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding to spread low-entropy seeds.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// \brief Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \brief Zipf-like skewed pick in [0, n): lower indexes more likely.
  /// Used to make generated cubes realistically sparse/skewed.
  uint64_t Skewed(uint64_t n) {
    // Square a uniform draw: density ~ 1/(2*sqrt(x)).
    double u = NextDouble();
    return static_cast<uint64_t>(u * u * static_cast<double>(n)) % n;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace assess

#endif  // ASSESS_COMMON_RNG_H_
