#include "common/value.h"

#include "common/str_util.h"

namespace assess {

std::string Value::ToString() const {
  if (is_number()) return FormatNumber(number());
  return "'" + text() + "'";
}

}  // namespace assess
