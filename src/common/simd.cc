#include "common/simd.h"

#include <atomic>
#include <cctype>
#include <string>

namespace assess {

namespace {

// Set by CMake only when the per-tier kernel TUs are part of the build
// (x86-64 targets); other architectures run the scalar fallback.
#if defined(ASSESS_SIMD_X86)
constexpr bool kSimdCompiledIn = true;
#else
constexpr bool kSimdCompiledIn = false;
#endif

std::string ToLower(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*s))));
  }
  return out;
}

// -1 = no override; otherwise the forced SimdLevel value.
std::atomic<int> g_forced_level{-1};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSSE42:
      return "sse42";
    case SimdLevel::kAVX2:
      return "avx2";
  }
  return "scalar";
}

SimdLevel DetectCpuSimdLevel() {
  if constexpr (!kSimdCompiledIn) return SimdLevel::kScalar;
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSSE42;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ResolveSimdLevel(const char* spec, SimdLevel detected) {
  if (spec == nullptr) return detected;
  std::string s = ToLower(spec);
  if (s == "off" || s == "scalar" || s == "0" || s == "none") {
    return SimdLevel::kScalar;
  }
  if (s == "sse42" || s == "sse4.2") {
    return detected < SimdLevel::kSSE42 ? detected : SimdLevel::kSSE42;
  }
  if (s == "avx2") {
    return detected < SimdLevel::kAVX2 ? detected : SimdLevel::kAVX2;
  }
  // "auto", "", unrecognized: best available. Requesting a tier the CPU
  // cannot run falls back rather than failing — the knob is a ceiling.
  return detected;
}

SimdLevel ActiveSimdLevel() {
  int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) {
    SimdLevel detected = DetectCpuSimdLevel();
    SimdLevel wanted = static_cast<SimdLevel>(forced);
    return wanted < detected ? wanted : detected;
  }
  static const SimdLevel resolved =
      ResolveSimdLevel(std::getenv("ASSESS_SIMD"), DetectCpuSimdLevel());
  return resolved;
}

void ForceSimdLevelForTest(int level) {
  g_forced_level.store(level, std::memory_order_relaxed);
}

}  // namespace assess
