#ifndef ASSESS_COMMON_VALUE_H_
#define ASSESS_COMMON_VALUE_H_

#include <string>
#include <variant>

namespace assess {

/// \brief A scalar constant appearing in statements: either a number (for
/// constant benchmarks, thresholds) or a string (level members).
class Value {
 public:
  Value() : repr_(0.0) {}
  explicit Value(double number) : repr_(number) {}
  explicit Value(std::string text) : repr_(std::move(text)) {}

  bool is_number() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return !is_number(); }

  double number() const { return std::get<double>(repr_); }
  const std::string& text() const { return std::get<std::string>(repr_); }

  /// \brief Renders as the assess surface syntax would: numbers bare,
  /// strings single-quoted.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }

 private:
  std::variant<double, std::string> repr_;
};

}  // namespace assess

#endif  // ASSESS_COMMON_VALUE_H_
