#include "common/task_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace assess {

namespace {

int DefaultWorkerCount() {
  int forced = ForcedThreadsFromEnv();
  if (forced > 0) return forced;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

}  // namespace

int ForcedThreadsFromEnv() {
  static const int forced = [] {
    const char* env = std::getenv("ASSESS_THREADS");
    if (env == nullptr || *env == '\0') return 0;
    int value = std::atoi(env);
    return value > 0 ? value : 0;
  }();
  return forced;
}

/// One submitted job. Lives on the submitter's stack: workers only ever
/// reach it through active_jobs_ under mutex_, and RunMorsels unpublishes
/// it (again under mutex_, after every participant has left) before
/// returning — so no worker can hold a dangling pointer.
struct TaskPool::Job {
  const MorselFn* fn = nullptr;
  int64_t num_morsels = 0;
  int max_participants = 1;
  /// Next unclaimed morsel; claiming is one uncontended-case fetch-add,
  /// which is the whole scheduling cost per 64K rows.
  std::atomic<int64_t> next{0};
  /// Set once on the first callback error; later claims stop immediately.
  std::atomic<bool> failed{false};
  Status error;       ///< first error (guarded by pool mutex_)
  int participants = 0;  ///< threads inside Drain() (guarded by mutex_)
  std::condition_variable done_cv;  ///< waits on mutex_: participants == 0
  /// The submitter's trace position, captured before publication: workers
  /// install it so their pool-side spans parent under the submitting
  /// query's span even though they run on foreign threads. The trace
  /// outlives the job because RunMorsels (called beneath the traced scope)
  /// does not return until every participant has left.
  TraceContext::Binding trace;
};

TaskPool::TaskPool(int workers) {
  int count = workers <= 0 ? DefaultWorkerCount() : workers;
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back(&TaskPool::WorkerLoop, this);
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

const std::shared_ptr<TaskPool>& TaskPool::Shared() {
  static const std::shared_ptr<TaskPool> pool = std::make_shared<TaskPool>(0);
  return pool;
}

Status TaskPool::RunOne(Job* job, int64_t morsel) {
  ASSESS_FAILPOINT("pool.morsel");
  morsels_run_.fetch_add(1, std::memory_order_relaxed);
  return (*job->fn)(morsel);
}

void TaskPool::Drain(Job* job) {
  TraceContext::BindScope bind(job->trace);
  Span span("pool.drain");
  int64_t ran = 0;
  while (!job->failed.load(std::memory_order_acquire)) {
    int64_t morsel = job->next.fetch_add(1, std::memory_order_relaxed);
    if (morsel >= job->num_morsels) break;
    Status status = RunOne(job, morsel);
    ++ran;
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job->failed.load(std::memory_order_relaxed)) {
        job->error = std::move(status);
        job->failed.store(true, std::memory_order_release);
      }
    }
  }
  span.AddInt("morsels", ran);
}

TaskPool::Job* TaskPool::ClaimEligibleJobLocked() {
  for (Job* job : active_jobs_) {
    if (job->failed.load(std::memory_order_relaxed)) continue;
    if (job->next.load(std::memory_order_relaxed) >= job->num_morsels) {
      continue;
    }
    if (job->participants >= job->max_participants) continue;
    ++job->participants;
    return job;
  }
  return nullptr;
}

void TaskPool::WorkerLoop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        if (stop_) return true;
        job = ClaimEligibleJobLocked();
        return job != nullptr;
      });
      if (job == nullptr) return;  // stop_
    }
    Drain(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--job->participants == 0) job->done_cv.notify_all();
    }
  }
}

Status TaskPool::RunMorsels(int64_t num_morsels, int max_participants,
                            const MorselFn& fn) {
  if (num_morsels <= 0) return Status::OK();
  if (max_participants <= 0) max_participants = std::max(1, parallelism());

  Job job;
  job.fn = &fn;
  job.num_morsels = num_morsels;
  job.max_participants = max_participants;
  job.trace = TraceContext::CurrentBinding();

  // Serial inline path: same morsel decomposition, same failpoint site,
  // zero scheduling. Results are identical to the parallel path by the
  // engine's deterministic morsel-order merge, so callers may flip thread
  // counts freely.
  if (max_participants == 1 || num_morsels == 1 || workers_.empty()) {
    for (int64_t m = 0; m < num_morsels; ++m) {
      ASSESS_RETURN_NOT_OK(RunOne(&job, m));
    }
    jobs_run_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.participants = 1;  // the caller, registered before publication
    active_jobs_.push_back(&job);
  }
  work_cv_.notify_all();

  Drain(&job);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    --job.participants;
    job.done_cv.wait(lock, [&] { return job.participants == 0; });
    active_jobs_.erase(
        std::find(active_jobs_.begin(), active_jobs_.end(), &job));
  }
  jobs_run_.fetch_add(1, std::memory_order_relaxed);
  return job.failed.load(std::memory_order_acquire) ? job.error : Status::OK();
}

void TaskPool::AddScanCounts(uint64_t scanned, uint64_t skipped) {
  morsels_scanned_.fetch_add(scanned, std::memory_order_relaxed);
  morsels_skipped_.fetch_add(skipped, std::memory_order_relaxed);
  // Process-wide mirrors in the metrics registry (one call per scan, not
  // per morsel, so the registry never sits on the morsel hot path).
  static Counter* const scanned_total =
      MetricsRegistry::Instance().GetCounter(
          "assess_morsels_scanned_total",
          "Morsels aggregated across all engines");
  static Counter* const skipped_total =
      MetricsRegistry::Instance().GetCounter(
          "assess_morsels_skipped_total",
          "Morsels pruned by zone maps across all engines");
  scanned_total->Inc(scanned);
  skipped_total->Inc(skipped);
}

TaskPoolStats TaskPool::stats() const {
  TaskPoolStats stats;
  stats.workers = workers_.size();
  stats.jobs_run = jobs_run_.load(std::memory_order_relaxed);
  stats.morsels_run = morsels_run_.load(std::memory_order_relaxed);
  stats.morsels_scanned = morsels_scanned_.load(std::memory_order_relaxed);
  stats.morsels_skipped = morsels_skipped_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Job* job : active_jobs_) {
      if (!job->failed.load(std::memory_order_relaxed) &&
          job->next.load(std::memory_order_relaxed) < job->num_morsels) {
        ++stats.queue_depth;
      }
    }
  }
  return stats;
}

}  // namespace assess
