#ifndef ASSESS_COMMON_RESULT_H_
#define ASSESS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace assess {

/// \brief Either a value of type T or a non-OK Status (Arrow-style Result).
///
/// Access to the value when !ok() is a programming error (asserted in debug
/// builds). Use ASSESS_ASSIGN_OR_RETURN to unwrap inside functions that
/// themselves return Status/Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (mirrors Arrow; allows `return v;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be built from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Moves the value out, or returns `alternative` when not ok().
  T ValueOr(T alternative) && {
    return ok() ? std::get<T>(std::move(repr_)) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

/// \brief Evaluates `rexpr` (a Result<T>), propagating its status on failure
/// and otherwise assigning the value to `lhs`.
#define ASSESS_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  ASSESS_ASSIGN_OR_RETURN_IMPL_(                                  \
      ASSESS_CONCAT_(_assess_result_, __LINE__), lhs, rexpr)

#define ASSESS_CONCAT_INNER_(x, y) x##y
#define ASSESS_CONCAT_(x, y) ASSESS_CONCAT_INNER_(x, y)
#define ASSESS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace assess

#endif  // ASSESS_COMMON_RESULT_H_
