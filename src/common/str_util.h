#ifndef ASSESS_COMMON_STR_UTIL_H_
#define ASSESS_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace assess {

/// \brief Joins `parts` with `sep` ("a", "b" -> "a, b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Formats a double the way the assess surface syntax prints numbers:
/// integers without a decimal point, otherwise shortest round-trip form.
std::string FormatNumber(double v);

}  // namespace assess

#endif  // ASSESS_COMMON_STR_UTIL_H_
