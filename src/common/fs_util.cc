#include "common/fs_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace assess {

namespace fs = std::filesystem;

Status FsyncFd(int fd, const std::string& what) {
  while (::fsync(fd) < 0) {
    if (errno == EINTR) continue;
    // EINVAL means the filesystem cannot sync this object (some virtual
    // filesystems); treat it as best-effort rather than failing the commit.
    if (errno == EINVAL) return Status::OK();
    return Status::Internal("fsync of '" + what +
                            "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::Internal("cannot open '" + path +
                            "' for fsync: " + std::strerror(errno));
  }
  Status synced = FsyncFd(fd, path);
  ::close(fd);
  return synced;
}

Status FsyncParentDir(const std::string& path) {
  fs::path parent = fs::path(path).parent_path();
  if (parent.empty()) parent = ".";
  return FsyncPath(parent.string());
}

Status AtomicRenamePath(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) < 0) {
    return Status::Internal("cannot rename '" + from + "' to '" + to +
                            "': " + std::strerror(errno));
  }
  return FsyncParentDir(to);
}

Status WriteFileDurable(const std::string& path, std::string_view content,
                        bool fsync) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open '" + tmp + "' for writing");
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out.flush()) {
      return Status::Internal("short write to '" + tmp + "'");
    }
  }
  if (fsync) ASSESS_RETURN_NOT_OK(FsyncPath(tmp));
  ASSESS_RETURN_NOT_OK(AtomicRenamePath(tmp, path));
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return Status::OK();
}

}  // namespace assess
