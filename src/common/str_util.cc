#include "common/str_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace assess {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatNumber(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  double integral;
  if (std::modf(v, &integral) == 0.0 && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  // %.17g round-trips but is noisy; try shorter precisions first.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double parsed = 0;
    std::from_chars(buf, buf + std::char_traits<char>::length(buf), parsed);
    if (parsed == v) break;
  }
  return buf;
}

}  // namespace assess
