#ifndef ASSESS_COMMON_SIMD_H_
#define ASSESS_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace assess {

/// \brief The instruction-set tiers the scan kernels are compiled for.
///
/// Dispatch is compile-time per translation unit (each tier's kernels live
/// in a TU built with the matching -m flags) and runtime per process: the
/// active tier is the best one that is (a) compiled in, (b) supported by
/// the CPU, and (c) not ruled out by the ASSESS_SIMD environment variable.
/// Every tier computes bit-identical results — the scalar fallback mirrors
/// the vector kernels' lane order exactly — so the choice is purely a
/// performance knob and CI can pin any tier on any machine.
enum class SimdLevel : int {
  kScalar = 0,
  kSSE42 = 1,
  kAVX2 = 2,
};

/// \brief Lower-case tier name ("scalar", "sse42", "avx2") for spans,
/// metrics and EXPLAIN ANALYZE.
const char* SimdLevelName(SimdLevel level);

/// \brief The best tier this CPU can execute (compiled-in tiers only; on
/// non-x86 builds this is always kScalar).
SimdLevel DetectCpuSimdLevel();

/// \brief The tier scans actually run at: DetectCpuSimdLevel() clamped by
/// the ASSESS_SIMD environment variable. Recognized values (case-
/// insensitive): "off"/"scalar"/"0" force the scalar fallback; "sse42" and
/// "avx2" cap the tier (requesting a tier the CPU lacks falls back to the
/// best supported one, never errors); anything else / unset means "auto".
/// Resolved once per process and cached; ForceSimdLevelForTest overrides.
SimdLevel ActiveSimdLevel();

/// \brief Test/bench hook: pins ActiveSimdLevel() to `level` (clamped to
/// what the CPU supports) until reset. Pass -1 to clear the override.
void ForceSimdLevelForTest(int level);

/// \brief Resolves an ASSESS_SIMD-style string against a detected tier
/// (exposed for tests of the parsing rules).
SimdLevel ResolveSimdLevel(const char* spec, SimdLevel detected);

/// \brief Cache-line-aligned allocator for columnar buffers the vector
/// kernels load with full-width aligned reads. Allocations are padded to a
/// multiple of kSimdAlign bytes so a kernel may always read one whole
/// vector at the tail without touching unowned memory.
inline constexpr size_t kSimdAlign = 64;

template <class T>
struct SimdAllocator {
  using value_type = T;

  SimdAllocator() = default;
  template <class U>
  SimdAllocator(const SimdAllocator<U>&) {}

  T* allocate(size_t n) {
    size_t bytes = (n * sizeof(T) + kSimdAlign - 1) / kSimdAlign * kSimdAlign;
    void* p = ::operator new(bytes, std::align_val_t{kSimdAlign});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t{kSimdAlign});
  }

  template <class U>
  bool operator==(const SimdAllocator<U>&) const {
    return true;
  }
};

}  // namespace assess

#endif  // ASSESS_COMMON_SIMD_H_
