#ifndef ASSESS_COMMON_STOPWATCH_H_
#define ASSESS_COMMON_STOPWATCH_H_

#include <chrono>

namespace assess {

/// \brief Monotonic wall-clock stopwatch used by the executor's per-step
/// timing breakdown (Figure 4) and by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace assess

#endif  // ASSESS_COMMON_STOPWATCH_H_
