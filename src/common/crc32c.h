#ifndef ASSESS_COMMON_CRC32C_H_
#define ASSESS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace assess {

/// \brief CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected), the
/// checksum behind the assessd frame integrity trailer. Software
/// slicing-by-8 implementation — fast enough that a 16 MiB frame costs a
/// few milliseconds and a typical response frame is far below a microsecond.
///
/// `Crc32c("123456789")` == 0xE3069283 (the standard check value).
uint32_t Crc32c(const void* data, size_t len);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

/// \brief Incremental form: extends `crc` (a previous Crc32c result, or 0
/// for an empty prefix) with `len` more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

}  // namespace assess

#endif  // ASSESS_COMMON_CRC32C_H_
