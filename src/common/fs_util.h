#ifndef ASSESS_COMMON_FS_UTIL_H_
#define ASSESS_COMMON_FS_UTIL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace assess {

/// \brief Small durable-filesystem helpers shared by the persistence layer
/// (storage/database_io) and the WAL (src/wal/): fsync wrappers and the
/// write-to-temp + fsync + atomic-rename idiom that makes a file or
/// directory appear all-or-nothing even across a crash.
///
/// Every helper returns a typed Status instead of throwing; callers decide
/// whether a durability failure is fatal (a WAL fsync is) or a warning.

/// \brief fsync(2) on an already-open descriptor; `what` names the file in
/// the error message.
Status FsyncFd(int fd, const std::string& what);

/// \brief Opens `path` read-only and fsyncs it. Works for directories too —
/// which is how a rename or file creation inside a directory is made
/// durable on POSIX.
Status FsyncPath(const std::string& path);

/// \brief Fsyncs the parent directory of `path`, making `path`'s own
/// directory entry (creation, rename, unlink) durable.
Status FsyncParentDir(const std::string& path);

/// \brief rename(2) `from` onto `to`, then fsyncs `to`'s parent directory so
/// the swap survives a crash. POSIX rename is atomic for files and for
/// directories whose target does not exist; callers renaming directories
/// must pick fresh target names (checkpoint-<seq>) rather than replacing.
Status AtomicRenamePath(const std::string& from, const std::string& to);

/// \brief Writes `content` to `path` all-or-nothing: writes `path`.tmp,
/// fsyncs it (when `fsync` is set), renames it over `path` and fsyncs the
/// parent directory. A crash leaves either the old file or the new one,
/// never a torn mix.
Status WriteFileDurable(const std::string& path, std::string_view content,
                        bool fsync = true);

/// \brief Reads a whole file into `*out`; kNotFound when it does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace assess

#endif  // ASSESS_COMMON_FS_UTIL_H_
