#ifndef ASSESS_COMMON_TASK_POOL_H_
#define ASSESS_COMMON_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace assess {

/// \brief Rows per scan morsel: the unit of work the pool schedules. Small
/// enough that a skewed predicate cannot strand one worker with most of the
/// scan, large enough that the per-morsel dispatch (one atomic fetch-add)
/// is invisible next to 64K row visits. Zone maps (storage/table.h) share
/// this granularity so one morsel is also one skippable block.
inline constexpr int64_t kMorselRows = int64_t{1} << 16;

/// \brief Counters a TaskPool accumulates over its lifetime. `queue_depth`
/// is a point-in-time gauge (jobs that still have unclaimed morsels);
/// everything else is monotonic. The morsel scan/skip counters are fed by
/// the storage engine (see StarQueryEngine), so a pool shared by many
/// sessions — the assessd deployment — reports fleet-wide scan activity.
struct TaskPoolStats {
  uint64_t workers = 0;
  uint64_t queue_depth = 0;
  uint64_t jobs_run = 0;
  uint64_t morsels_run = 0;
  uint64_t morsels_scanned = 0;
  uint64_t morsels_skipped = 0;
};

/// \brief A process-wide pool of workers executing morsel-decomposed jobs
/// (Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014).
///
/// Scheduling model: a job is a count of morsels plus a callback; workers
/// (and the submitting thread) claim morsel indices dynamically off one
/// shared atomic cursor, so a worker that finishes early immediately pulls
/// the next morsel instead of idling behind a static partition. Concurrent
/// jobs coexist in one pool: every query submitted by every session draws
/// from the same fixed worker set, so N concurrent queries cost N× the
/// queue depth, never N× the threads (the oversubscription the per-query
/// std::thread design suffered from).
///
/// The submitting thread always participates in its own job. That is the
/// liveness guarantee: even when every pool worker is busy with other jobs
/// (or the pool has zero workers), the caller alone drains its morsels, so
/// RunMorsels can never deadlock behind pool saturation.
///
/// Error model: the first non-OK Status returned by the callback wins, the
/// job stops claiming further morsels, and RunMorsels returns that Status
/// after all in-flight morsels finish. The failpoint site "pool.morsel"
/// fires before every morsel execution (including the serial inline path),
/// so fault injection can prove a failed or delayed morsel surfaces as a
/// typed error, not a hang.
class TaskPool {
 public:
  /// Runs one morsel by index; a non-OK return fails the whole job.
  using MorselFn = std::function<Status(int64_t morsel)>;

  /// \brief Spawns `workers` threads; <= 0 sizes the pool from
  /// ASSESS_THREADS when set, else one worker per hardware thread.
  explicit TaskPool(int workers = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// \brief The process-wide pool every engine uses unless constructed with
  /// an explicit one. Sized from ASSESS_THREADS / hardware concurrency.
  static const std::shared_ptr<TaskPool>& Shared();

  /// \brief Number of pool workers (the default intra-query parallelism an
  /// engine derives instead of assuming it owns the whole machine).
  int parallelism() const { return static_cast<int>(workers_.size()); }

  /// \brief Executes fn(0) .. fn(num_morsels - 1), blocking until all have
  /// completed or the job failed. At most `max_participants` threads work
  /// on the job at once (<= 0: pool parallelism); the caller is one of
  /// them. With one participant (or an empty pool) the morsels run inline
  /// on the caller in index order — the serial path is the same code.
  Status RunMorsels(int64_t num_morsels, int max_participants,
                    const MorselFn& fn);

  /// \brief Accumulates engine-side scan accounting (morsels actually
  /// scanned vs. skipped by zone maps) into this pool's stats.
  void AddScanCounts(uint64_t scanned, uint64_t skipped);

  TaskPoolStats stats() const;

 private:
  struct Job;

  void WorkerLoop();
  /// Claims and runs morsels of `job` until none remain or the job failed.
  void Drain(Job* job);
  /// The per-morsel execution wrapper (failpoint + callback + accounting).
  Status RunOne(Job* job, int64_t morsel);
  /// Under mutex_: first job with unclaimed morsels and spare participant
  /// capacity, with its participant count already incremented; or nullptr.
  Job* ClaimEligibleJobLocked();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Job*> active_jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> jobs_run_{0};
  std::atomic<uint64_t> morsels_run_{0};
  std::atomic<uint64_t> morsels_scanned_{0};
  std::atomic<uint64_t> morsels_skipped_{0};
};

/// \brief The ASSESS_THREADS override: when the environment variable is set
/// to a positive integer, every engine runs its scans at exactly that
/// parallelism regardless of configuration (and the shared pool is sized to
/// it). This is how CI forces the parallel path under TSan; 0 means unset.
int ForcedThreadsFromEnv();

}  // namespace assess

#endif  // ASSESS_COMMON_TASK_POOL_H_
