#include "common/crc32c.h"

#include <array>

namespace assess {
namespace {

/// Eight 256-entry tables for slicing-by-8, generated once at first use
/// from the reflected Castagnoli polynomial.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const Tables& tables = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (len >= 8) {
    // Byte-wise loads keep this alignment- and endianness-agnostic.
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[7][lo & 0xFF] ^ tables.t[6][(lo >> 8) & 0xFF] ^
          tables.t[5][(lo >> 16) & 0xFF] ^ tables.t[4][lo >> 24] ^
          tables.t[3][p[4]] ^ tables.t[2][p[5]] ^ tables.t[1][p[6]] ^
          tables.t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = tables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace assess
