#include "storage/star_query_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "algebra/operators.h"
#include "common/rng.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;
using ::assess::testutil::CellMap;
using ::assess::testutil::K;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : mini_(BuildMiniSales()), engine_(mini_.db.get()) {}

  CubeQuery Query(const std::vector<std::string>& by,
                  std::vector<Predicate> preds,
                  const std::vector<std::string>& measures) {
    auto q = CubeQuery::Make(*mini_.schema, "SALES", by, std::move(preds),
                             measures);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  testutil::MiniDb mini_;
  StarQueryEngine engine_;
};

TEST_F(EngineTest, AggregatesFigure1Quantities) {
  Cube cube = *engine_.Execute(
      Query({"product", "country"},
            {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}}}, {"quantity"}));
  auto cells = CellMap(cube, "quantity");
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[K("Apple", "Italy")], 100);  // 60 + 40 across two facts
  EXPECT_EQ(cells[K("Pear", "Italy")], 90);
  EXPECT_EQ(cells[K("Lemon", "Italy")], 30);
  EXPECT_EQ(cells[K("Apple", "France")], 150);
  EXPECT_EQ(cells[K("Pear", "France")], 110);
  EXPECT_EQ(cells[K("Lemon", "France")], 20);
}

TEST_F(EngineTest, SelectionOnSlice) {
  Cube cube = *engine_.Execute(
      Query({"product", "country"},
            {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}},
             {2, 1, PredicateOp::kEquals, {"Italy"}}},
            {"quantity"}));
  EXPECT_EQ(cube.NumRows(), 3);
  auto cells = CellMap(cube, "quantity");
  EXPECT_EQ(cells[K("Apple", "Italy")], 100);
  EXPECT_EQ(cells.count({"Apple", "France"}), 0u);
}

TEST_F(EngineTest, FullAggregationYieldsOneCell) {
  Cube cube = *engine_.Execute(Query({}, {}, {"quantity"}));
  ASSERT_EQ(cube.NumRows(), 1);
  EXPECT_EQ(cube.level_count(), 0);
  EXPECT_EQ(cube.MeasureAt(0, 0), 100 + 90 + 30 + 150 + 110 + 20);
}

TEST_F(EngineTest, SparseCoordinatesAreAbsent) {
  // Dairy sold only as 'milk'; grouping by product under a Dairy slice must
  // not emit Apple/Pear/Lemon cells (a cube is a partial function).
  Cube cube = *engine_.Execute(
      Query({"product"}, {{1, 1, PredicateOp::kEquals, {"Dairy"}}},
            {"quantity", "sales"}));
  EXPECT_EQ(cube.NumRows(), 1);
  EXPECT_EQ(cube.CoordName(0, 0), "milk");
}

TEST_F(EngineTest, EmptySelectionYieldsEmptyCube) {
  // 1997-07-15 has only milk facts; slicing it on Fresh Fruit is empty.
  Cube cube = *engine_.Execute(
      Query({"product"},
            {{0, 0, PredicateOp::kEquals, {"1997-07-15"}},
             {1, 1, PredicateOp::kEquals, {"Fresh Fruit"}}},
            {"quantity"}));
  EXPECT_EQ(cube.NumRows(), 0);
}

TEST_F(EngineTest, MonthRollUpAggregatesDays) {
  Cube cube = *engine_.Execute(
      Query({"month"}, {{2, 0, PredicateOp::kEquals, {"SmartMart"}}},
            {"sales"}));
  auto cells = CellMap(cube, "sales");
  EXPECT_EQ(cells[K("1997-03")], 10);
  EXPECT_EQ(cells[K("1997-07")], 45);  // fruit facts carry zero sales
}

TEST_F(EngineTest, InAndBetweenPredicates) {
  Cube in_cube = *engine_.Execute(
      Query({"month"},
            {{0, 1, PredicateOp::kIn, {"1997-03", "1997-05"}}}, {"sales"}));
  EXPECT_EQ(in_cube.NumRows(), 2);
  Cube between_cube = *engine_.Execute(
      Query({"month"},
            {{0, 1, PredicateOp::kBetween, {"1997-03", "1997-05"}}},
            {"sales"}));
  EXPECT_EQ(between_cube.NumRows(), 3);
}

TEST_F(EngineTest, MultipleMeasures) {
  Cube cube = *engine_.Execute(Query({"country"}, {}, {"quantity", "sales"}));
  auto qty = CellMap(cube, "quantity");
  auto sales = CellMap(cube, "sales");
  EXPECT_EQ(qty[K("Italy")], 220);
  EXPECT_EQ(sales[K("Italy")], 10 + 20 + 30 + 40 + 45);
  EXPECT_EQ(qty[K("France")], 280);
  EXPECT_EQ(sales[K("France")], 5 + 10 + 15 + 20 + 18);
}

TEST_F(EngineTest, UnknownCubeFails) {
  CubeQuery q = Query({}, {}, {"quantity"});
  q.cube_name = "NOPE";
  EXPECT_FALSE(engine_.Execute(q).ok());
}

// --- Aggregation operators beyond sum ------------------------------------

TEST(AggOpsTest, AvgMinMaxCount) {
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  auto schema = std::make_shared<CubeSchema>("T");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"s", AggOp::kSum});
  schema->AddMeasure({"a", AggOp::kAvg});
  schema->AddMeasure({"lo", AggOp::kMin});
  schema->AddMeasure({"hi", AggOp::kMax});
  schema->AddMeasure({"n", AggOp::kCount});

  DimensionTable dim("k", hier);
  MemberId g1 = hier->AddMember(0, "g1");
  MemberId g2 = hier->AddMember(0, "g2");
  dim.AddRow({g1});
  dim.AddRow({g2});
  FactTable facts("T", 1, 5);
  // Group g1: values 2, 4, 9; group g2: value 5. The same value feeds all
  // five measures so each operator is checked independently.
  for (double v : {2.0, 4.0, 9.0}) facts.AddRow({0}, {v, v, v, v, v});
  facts.AddRow({1}, {5.0, 5.0, 5.0, 5.0, 5.0});

  StarDatabase db;
  ASSERT_TRUE(db.Register("T", std::make_unique<BoundCube>(
                                   schema, std::vector<DimensionTable>{dim},
                                   std::move(facts)))
                  .ok());
  StarQueryEngine engine(&db);
  CubeQuery q = *CubeQuery::Make(*schema, "T", {"k"}, {},
                                 {"s", "a", "lo", "hi", "n"});
  Cube cube = *engine.Execute(q);
  auto sum = CellMap(cube, "s");
  auto avg = CellMap(cube, "a");
  auto lo = CellMap(cube, "lo");
  auto hi = CellMap(cube, "hi");
  auto n = CellMap(cube, "n");
  EXPECT_EQ(sum[K("g1")], 15);
  EXPECT_EQ(avg[K("g1")], 5);
  EXPECT_EQ(lo[K("g1")], 2);
  EXPECT_EQ(hi[K("g1")], 9);
  EXPECT_EQ(n[K("g1")], 3);
  EXPECT_EQ(sum[K("g2")], 5);
  EXPECT_EQ(avg[K("g2")], 5);
  EXPECT_EQ(n[K("g2")], 1);
}

// --- Materialized views ---------------------------------------------------

class EngineViewTest : public EngineTest {};

TEST_F(EngineViewTest, ViewAnsweredQueriesMatchFactScan) {
  StarQueryEngine no_views(mini_.db.get(), /*use_views=*/false);
  CubeQuery q = Query({"type", "country"}, {}, {"quantity"});
  Cube expected = *no_views.Execute(q);

  ASSERT_TRUE(engine_
                  .MaterializeView(mini_.db.get(), "SALES",
                                   {"month", "product", "country"}, "mv1")
                  .ok());
  Cube from_view = *engine_.Execute(q);
  EXPECT_TRUE(engine_.last_used_view());
  EXPECT_EQ(CellMap(expected, "quantity"), CellMap(from_view, "quantity"));
}

TEST_F(EngineViewTest, ViewSkippedWhenTooCoarse) {
  ASSERT_TRUE(
      engine_.MaterializeView(mini_.db.get(), "SALES", {"year"}, "mv_year")
          .ok());
  Cube cube = *engine_.Execute(Query({"product"}, {}, {"quantity"}));
  EXPECT_FALSE(engine_.last_used_view());
  EXPECT_EQ(cube.NumRows(), 4);
}

TEST_F(EngineViewTest, ViewHonorsPredicatesAtItsGranularity) {
  StarQueryEngine no_views(mini_.db.get(), /*use_views=*/false);
  ASSERT_TRUE(engine_
                  .MaterializeView(mini_.db.get(), "SALES",
                                   {"month", "product", "store"}, "mv2")
                  .ok());
  CubeQuery q = Query({"month"},
                      {{2, 1, PredicateOp::kEquals, {"Italy"}},
                       {1, 1, PredicateOp::kEquals, {"Dairy"}}},
                      {"sales"});
  Cube expected = *no_views.Execute(q);
  Cube actual = *engine_.Execute(q);
  EXPECT_TRUE(engine_.last_used_view());
  EXPECT_EQ(CellMap(expected, "sales"), CellMap(actual, "sales"));
}

TEST_F(EngineViewTest, DisabledViewsAreNotConsulted) {
  ASSERT_TRUE(engine_
                  .MaterializeView(mini_.db.get(), "SALES",
                                   {"product", "country"}, "mv3")
                  .ok());
  StarQueryEngine no_views(mini_.db.get(), /*use_views=*/false);
  Cube cube = *no_views.Execute(Query({"country"}, {}, {"quantity"}));
  EXPECT_FALSE(no_views.last_used_view());
  EXPECT_EQ(cube.NumRows(), 2);
}

// --- Push-down entry points -----------------------------------------------

TEST_F(EngineTest, ExecuteJoinedMatchesClientJoin) {
  CubeQuery target = Query({"product", "country"},
                           {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}},
                            {2, 1, PredicateOp::kEquals, {"Italy"}}},
                           {"quantity"});
  CubeQuery benchmark = Query({"product", "country"},
                              {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}},
                               {2, 1, PredicateOp::kEquals, {"France"}}},
                              {"quantity"});
  benchmark.alias = "benchmark";

  Cube joined = *engine_.ExecuteJoined(target, benchmark, {"product"}, false);
  Cube c = *engine_.Execute(target);
  Cube b = *engine_.Execute(benchmark);
  Cube expected = *JoinCubes(c, b, {"product"}, "benchmark", false);
  EXPECT_EQ(CellMap(joined, "benchmark.quantity"),
            CellMap(expected, "benchmark.quantity"));
  EXPECT_EQ(joined.NumRows(), 3);
}

TEST_F(EngineTest, ExecutePivotedMatchesClientPivot) {
  CubeQuery all = Query({"product", "country"},
                        {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}},
                         {2, 1, PredicateOp::kIn, {"Italy", "France"}}},
                        {"quantity"});
  PivotSpec spec;
  spec.level = "country";
  spec.reference_member = "Italy";
  spec.other_members = {"France"};
  spec.measure_names = {{"benchmark.quantity"}};
  Cube pivoted = *engine_.ExecutePivoted(all, spec);
  auto cells = CellMap(pivoted, "benchmark.quantity");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[K("Apple", "Italy")], 150);
  EXPECT_EQ(cells[K("Lemon", "Italy")], 20);
}

// --- Randomized equivalence against a naive reference ---------------------

struct RandomWorkload {
  uint64_t seed;
};

class EngineRandomTest : public ::testing::TestWithParam<RandomWorkload> {};

// Brute-force reference: aggregate by scanning facts and rolling members up
// through the hierarchy, with per-row predicate evaluation.
std::map<std::vector<std::string>, double> NaiveAggregate(
    const BoundCube& bound, const CubeQuery& q) {
  const CubeSchema& schema = bound.schema();
  std::map<std::vector<std::string>, double> out;
  for (int64_t r = 0; r < bound.facts().NumRows(); ++r) {
    bool pass = true;
    for (const Predicate& p : q.predicates) {
      const DimensionTable& dim = bound.dimension(p.hierarchy);
      int32_t fk = bound.facts().fk_column(p.hierarchy)[r];
      const std::string& member =
          dim.hierarchy().MemberName(p.level, dim.CodeAt(fk, p.level));
      bool ok = false;
      if (p.op == PredicateOp::kEquals || p.op == PredicateOp::kIn) {
        for (const std::string& m : p.members) ok = ok || m == member;
      } else {
        ok = member >= p.members[0] && member <= p.members[1];
      }
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    std::vector<std::string> coord;
    for (int h = 0; h < schema.hierarchy_count(); ++h) {
      if (!q.group_by.HasHierarchy(h)) continue;
      const DimensionTable& dim = bound.dimension(h);
      int32_t fk = bound.facts().fk_column(h)[r];
      int level = q.group_by.LevelOf(h);
      coord.push_back(
          dim.hierarchy().MemberName(level, dim.CodeAt(fk, level)));
    }
    out[coord] += bound.facts().measure_column(q.measures[0])[r];
  }
  return out;
}

TEST_P(EngineRandomTest, MatchesNaiveReference) {
  testutil::MiniDb mini = BuildMiniSales();
  // Extend the database with random facts so coverage goes beyond the
  // hand-laid ones: rebuild with 500 extra random rows.
  const BoundCube* bound = *mini.db->Find("SALES");
  Rng rng(GetParam().seed);

  FactTable facts("SALES", 3, 2);
  for (int64_t r = 0; r < bound->facts().NumRows(); ++r) {
    facts.AddRow({bound->facts().fk_column(0)[r],
                  bound->facts().fk_column(1)[r],
                  bound->facts().fk_column(2)[r]},
                 {bound->facts().measure_column(0)[r],
                  bound->facts().measure_column(1)[r]});
  }
  for (int i = 0; i < 500; ++i) {
    facts.AddRow({static_cast<int32_t>(rng.Uniform(7)),
                  static_cast<int32_t>(rng.Uniform(4)),
                  static_cast<int32_t>(rng.Uniform(2))},
                 {static_cast<double>(rng.Uniform(100)),
                  static_cast<double>(rng.Uniform(50))});
  }
  std::vector<DimensionTable> dims = {bound->dimension(0),
                                      bound->dimension(1),
                                      bound->dimension(2)};
  StarDatabase db;
  auto schema = mini.schema;
  ASSERT_TRUE(db.Register("SALES", std::make_unique<BoundCube>(
                                       schema, std::move(dims),
                                       std::move(facts)))
                  .ok());
  const BoundCube* rebuilt = *db.Find("SALES");
  StarQueryEngine engine(&db);

  // A spread of group-by sets and predicates.
  const std::vector<std::vector<std::string>> group_bys = {
      {"product", "country"}, {"month"}, {"date", "store"},
      {"type", "country"},    {},        {"year", "type", "store"}};
  const std::vector<std::vector<Predicate>> predicate_sets = {
      {},
      {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}}},
      {{2, 1, PredicateOp::kEquals, {"Italy"}},
       {0, 1, PredicateOp::kBetween, {"1997-04", "1997-07"}}},
      {{0, 2, PredicateOp::kEquals, {"1997"}},
       {1, 0, PredicateOp::kIn, {"Apple", "milk"}}},
  };
  for (const auto& by : group_bys) {
    for (const auto& preds : predicate_sets) {
      auto q = CubeQuery::Make(*schema, "SALES", by, preds, {"quantity"});
      ASSERT_TRUE(q.ok());
      Result<Cube> cube = engine.Execute(*q);
      ASSERT_TRUE(cube.ok()) << cube.status().ToString();
      auto expected = NaiveAggregate(*rebuilt, *q);
      auto actual = CellMap(*cube, "quantity");
      EXPECT_EQ(actual, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomTest,
                         ::testing::Values(RandomWorkload{1},
                                           RandomWorkload{2},
                                           RandomWorkload{3},
                                           RandomWorkload{17},
                                           RandomWorkload{99}));

}  // namespace
}  // namespace assess
